file(REMOVE_RECURSE
  "../bench/fig17_timeline"
  "../bench/fig17_timeline.pdb"
  "CMakeFiles/fig17_timeline.dir/fig17_timeline.cc.o"
  "CMakeFiles/fig17_timeline.dir/fig17_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
