# Empty dependencies file for fig15_production.
# This may be replaced when dependencies are built.
