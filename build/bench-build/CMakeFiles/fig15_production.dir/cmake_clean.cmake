file(REMOVE_RECURSE
  "../bench/fig15_production"
  "../bench/fig15_production.pdb"
  "CMakeFiles/fig15_production.dir/fig15_production.cc.o"
  "CMakeFiles/fig15_production.dir/fig15_production.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
