file(REMOVE_RECURSE
  "../bench/tab01_workloads"
  "../bench/tab01_workloads.pdb"
  "CMakeFiles/tab01_workloads.dir/tab01_workloads.cc.o"
  "CMakeFiles/tab01_workloads.dir/tab01_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
