# Empty dependencies file for ablation_contribution.
# This may be replaced when dependencies are built.
