file(REMOVE_RECURSE
  "../bench/ablation_contribution"
  "../bench/ablation_contribution.pdb"
  "CMakeFiles/ablation_contribution.dir/ablation_contribution.cc.o"
  "CMakeFiles/ablation_contribution.dir/ablation_contribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
