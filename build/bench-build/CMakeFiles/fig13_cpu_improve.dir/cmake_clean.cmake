file(REMOVE_RECURSE
  "../bench/fig13_cpu_improve"
  "../bench/fig13_cpu_improve.pdb"
  "CMakeFiles/fig13_cpu_improve.dir/fig13_cpu_improve.cc.o"
  "CMakeFiles/fig13_cpu_improve.dir/fig13_cpu_improve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cpu_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
