file(REMOVE_RECURSE
  "../bench/tab02_sla_violations"
  "../bench/tab02_sla_violations.pdb"
  "CMakeFiles/tab02_sla_violations.dir/tab02_sla_violations.cc.o"
  "CMakeFiles/tab02_sla_violations.dir/tab02_sla_violations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_sla_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
