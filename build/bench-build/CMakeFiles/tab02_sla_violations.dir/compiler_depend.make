# Empty compiler generated dependencies file for tab02_sla_violations.
# This may be replaced when dependencies are built.
