# Empty dependencies file for fig02_interference.
# This may be replaced when dependencies are built.
