file(REMOVE_RECURSE
  "../bench/fig02_interference"
  "../bench/fig02_interference.pdb"
  "CMakeFiles/fig02_interference.dir/fig02_interference.cc.o"
  "CMakeFiles/fig02_interference.dir/fig02_interference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
