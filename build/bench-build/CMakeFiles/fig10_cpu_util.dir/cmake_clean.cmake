file(REMOVE_RECURSE
  "../bench/fig10_cpu_util"
  "../bench/fig10_cpu_util.pdb"
  "CMakeFiles/fig10_cpu_util.dir/fig10_cpu_util.cc.o"
  "CMakeFiles/fig10_cpu_util.dir/fig10_cpu_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
