# Empty dependencies file for fig16_microservice.
# This may be replaced when dependencies are built.
