file(REMOVE_RECURSE
  "../bench/fig16_microservice"
  "../bench/fig16_microservice.pdb"
  "CMakeFiles/fig16_microservice.dir/fig16_microservice.cc.o"
  "CMakeFiles/fig16_microservice.dir/fig16_microservice.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_microservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
