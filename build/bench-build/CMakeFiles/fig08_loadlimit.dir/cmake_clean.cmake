file(REMOVE_RECURSE
  "../bench/fig08_loadlimit"
  "../bench/fig08_loadlimit.pdb"
  "CMakeFiles/fig08_loadlimit.dir/fig08_loadlimit.cc.o"
  "CMakeFiles/fig08_loadlimit.dir/fig08_loadlimit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_loadlimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
