# Empty dependencies file for fig08_loadlimit.
# This may be replaced when dependencies are built.
