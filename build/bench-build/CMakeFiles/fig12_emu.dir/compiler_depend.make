# Empty compiler generated dependencies file for fig12_emu.
# This may be replaced when dependencies are built.
