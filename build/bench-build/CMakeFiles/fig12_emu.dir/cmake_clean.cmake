file(REMOVE_RECURSE
  "../bench/fig12_emu"
  "../bench/fig12_emu.pdb"
  "CMakeFiles/fig12_emu.dir/fig12_emu.cc.o"
  "CMakeFiles/fig12_emu.dir/fig12_emu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
