
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_emu.cc" "bench-build/CMakeFiles/fig12_emu.dir/fig12_emu.cc.o" "gcc" "bench-build/CMakeFiles/fig12_emu.dir/fig12_emu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/rhythm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rhythm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rhythm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/interference/CMakeFiles/rhythm_interference.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/rhythm_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/rhythm_control.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rhythm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bemodel/CMakeFiles/rhythm_bemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rhythm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rhythm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
