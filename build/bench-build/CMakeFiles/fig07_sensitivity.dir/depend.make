# Empty dependencies file for fig07_sensitivity.
# This may be replaced when dependencies are built.
