file(REMOVE_RECURSE
  "../bench/fig07_sensitivity"
  "../bench/fig07_sensitivity.pdb"
  "CMakeFiles/fig07_sensitivity.dir/fig07_sensitivity.cc.o"
  "CMakeFiles/fig07_sensitivity.dir/fig07_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
