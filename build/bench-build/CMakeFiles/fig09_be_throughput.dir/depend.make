# Empty dependencies file for fig09_be_throughput.
# This may be replaced when dependencies are built.
