file(REMOVE_RECURSE
  "../bench/fig09_be_throughput"
  "../bench/fig09_be_throughput.pdb"
  "CMakeFiles/fig09_be_throughput.dir/fig09_be_throughput.cc.o"
  "CMakeFiles/fig09_be_throughput.dir/fig09_be_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_be_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
