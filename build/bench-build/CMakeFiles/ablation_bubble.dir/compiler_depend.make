# Empty compiler generated dependencies file for ablation_bubble.
# This may be replaced when dependencies are built.
