file(REMOVE_RECURSE
  "../bench/ablation_bubble"
  "../bench/ablation_bubble.pdb"
  "CMakeFiles/ablation_bubble.dir/ablation_bubble.cc.o"
  "CMakeFiles/ablation_bubble.dir/ablation_bubble.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bubble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
