# Empty dependencies file for fig18_threshold_tradeoff.
# This may be replaced when dependencies are built.
