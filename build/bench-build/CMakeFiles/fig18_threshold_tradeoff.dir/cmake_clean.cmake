file(REMOVE_RECURSE
  "../bench/fig18_threshold_tradeoff"
  "../bench/fig18_threshold_tradeoff.pdb"
  "CMakeFiles/fig18_threshold_tradeoff.dir/fig18_threshold_tradeoff.cc.o"
  "CMakeFiles/fig18_threshold_tradeoff.dir/fig18_threshold_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_threshold_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
