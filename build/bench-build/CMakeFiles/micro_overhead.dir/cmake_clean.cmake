file(REMOVE_RECURSE
  "../bench/micro_overhead"
  "../bench/micro_overhead.pdb"
  "CMakeFiles/micro_overhead.dir/micro_overhead.cc.o"
  "CMakeFiles/micro_overhead.dir/micro_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
