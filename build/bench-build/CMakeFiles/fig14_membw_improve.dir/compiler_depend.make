# Empty compiler generated dependencies file for fig14_membw_improve.
# This may be replaced when dependencies are built.
