file(REMOVE_RECURSE
  "../bench/fig14_membw_improve"
  "../bench/fig14_membw_improve.pdb"
  "CMakeFiles/fig14_membw_improve.dir/fig14_membw_improve.cc.o"
  "CMakeFiles/fig14_membw_improve.dir/fig14_membw_improve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_membw_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
