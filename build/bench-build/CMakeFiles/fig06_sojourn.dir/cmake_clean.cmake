file(REMOVE_RECURSE
  "../bench/fig06_sojourn"
  "../bench/fig06_sojourn.pdb"
  "CMakeFiles/fig06_sojourn.dir/fig06_sojourn.cc.o"
  "CMakeFiles/fig06_sojourn.dir/fig06_sojourn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sojourn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
