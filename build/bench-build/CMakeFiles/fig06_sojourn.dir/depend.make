# Empty dependencies file for fig06_sojourn.
# This may be replaced when dependencies are built.
