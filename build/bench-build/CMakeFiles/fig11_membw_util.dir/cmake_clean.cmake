file(REMOVE_RECURSE
  "../bench/fig11_membw_util"
  "../bench/fig11_membw_util.pdb"
  "CMakeFiles/fig11_membw_util.dir/fig11_membw_util.cc.o"
  "CMakeFiles/fig11_membw_util.dir/fig11_membw_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_membw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
