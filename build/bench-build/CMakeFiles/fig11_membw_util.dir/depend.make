# Empty dependencies file for fig11_membw_util.
# This may be replaced when dependencies are built.
