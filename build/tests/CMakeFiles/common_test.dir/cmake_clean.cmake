file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/p2_quantile_test.cc.o"
  "CMakeFiles/common_test.dir/common/p2_quantile_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/percentile_window_test.cc.o"
  "CMakeFiles/common_test.dir/common/percentile_window_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/stats_test.cc.o"
  "CMakeFiles/common_test.dir/common/stats_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/time_series_test.cc.o"
  "CMakeFiles/common_test.dir/common/time_series_test.cc.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
