file(REMOVE_RECURSE
  "CMakeFiles/bemodel_test.dir/bemodel/be_job_spec_test.cc.o"
  "CMakeFiles/bemodel_test.dir/bemodel/be_job_spec_test.cc.o.d"
  "CMakeFiles/bemodel_test.dir/bemodel/be_runtime_test.cc.o"
  "CMakeFiles/bemodel_test.dir/bemodel/be_runtime_test.cc.o.d"
  "bemodel_test"
  "bemodel_test.pdb"
  "bemodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bemodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
