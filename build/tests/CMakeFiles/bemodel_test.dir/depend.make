# Empty dependencies file for bemodel_test.
# This may be replaced when dependencies are built.
