file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster/app_thresholds_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/app_thresholds_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/bubble_profiler_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/bubble_profiler_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/deployment_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/deployment_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/experiment_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/experiment_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/metrics_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/metrics_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/multi_lc_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/multi_lc_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/per_app_thresholds_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/per_app_thresholds_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/profiler_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/profiler_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/scheduler_integration_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/scheduler_integration_test.cc.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
