file(REMOVE_RECURSE
  "CMakeFiles/interference_test.dir/interference/interference_model_test.cc.o"
  "CMakeFiles/interference_test.dir/interference/interference_model_test.cc.o.d"
  "CMakeFiles/interference_test.dir/interference/interference_property_test.cc.o"
  "CMakeFiles/interference_test.dir/interference/interference_property_test.cc.o.d"
  "interference_test"
  "interference_test.pdb"
  "interference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
