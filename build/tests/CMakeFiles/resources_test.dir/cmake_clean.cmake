file(REMOVE_RECURSE
  "CMakeFiles/resources_test.dir/resources/cat_allocator_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/cat_allocator_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/core_allocator_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/core_allocator_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/machine_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/machine_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/membw_accountant_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/membw_accountant_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/memory_allocator_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/memory_allocator_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/network_qdisc_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/network_qdisc_test.cc.o.d"
  "CMakeFiles/resources_test.dir/resources/power_model_test.cc.o"
  "CMakeFiles/resources_test.dir/resources/power_model_test.cc.o.d"
  "resources_test"
  "resources_test.pdb"
  "resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
