# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/resources_test[1]_include.cmake")
include("/root/repo/build/tests/bemodel_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/interference_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
