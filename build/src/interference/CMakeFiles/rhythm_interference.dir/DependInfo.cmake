
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interference/interference_model.cc" "src/interference/CMakeFiles/rhythm_interference.dir/interference_model.cc.o" "gcc" "src/interference/CMakeFiles/rhythm_interference.dir/interference_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bemodel/CMakeFiles/rhythm_bemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
