file(REMOVE_RECURSE
  "librhythm_interference.a"
)
