file(REMOVE_RECURSE
  "CMakeFiles/rhythm_interference.dir/interference_model.cc.o"
  "CMakeFiles/rhythm_interference.dir/interference_model.cc.o.d"
  "librhythm_interference.a"
  "librhythm_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
