# Empty compiler generated dependencies file for rhythm_interference.
# This may be replaced when dependencies are built.
