file(REMOVE_RECURSE
  "CMakeFiles/rhythm_scheduler.dir/be_scheduler.cc.o"
  "CMakeFiles/rhythm_scheduler.dir/be_scheduler.cc.o.d"
  "librhythm_scheduler.a"
  "librhythm_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
