file(REMOVE_RECURSE
  "librhythm_scheduler.a"
)
