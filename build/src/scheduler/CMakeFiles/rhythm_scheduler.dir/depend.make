# Empty dependencies file for rhythm_scheduler.
# This may be replaced when dependencies are built.
