
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_catalog.cc" "src/workload/CMakeFiles/rhythm_workload.dir/app_catalog.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/app_catalog.cc.o.d"
  "/root/repo/src/workload/call_graph.cc" "src/workload/CMakeFiles/rhythm_workload.dir/call_graph.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/call_graph.cc.o.d"
  "/root/repo/src/workload/component.cc" "src/workload/CMakeFiles/rhythm_workload.dir/component.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/component.cc.o.d"
  "/root/repo/src/workload/lc_service.cc" "src/workload/CMakeFiles/rhythm_workload.dir/lc_service.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/lc_service.cc.o.d"
  "/root/repo/src/workload/load_profile.cc" "src/workload/CMakeFiles/rhythm_workload.dir/load_profile.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/load_profile.cc.o.d"
  "/root/repo/src/workload/trace_file_profile.cc" "src/workload/CMakeFiles/rhythm_workload.dir/trace_file_profile.cc.o" "gcc" "src/workload/CMakeFiles/rhythm_workload.dir/trace_file_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rhythm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bemodel/CMakeFiles/rhythm_bemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rhythm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
