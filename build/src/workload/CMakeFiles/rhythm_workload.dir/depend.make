# Empty dependencies file for rhythm_workload.
# This may be replaced when dependencies are built.
