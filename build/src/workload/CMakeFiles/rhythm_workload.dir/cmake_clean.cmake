file(REMOVE_RECURSE
  "CMakeFiles/rhythm_workload.dir/app_catalog.cc.o"
  "CMakeFiles/rhythm_workload.dir/app_catalog.cc.o.d"
  "CMakeFiles/rhythm_workload.dir/call_graph.cc.o"
  "CMakeFiles/rhythm_workload.dir/call_graph.cc.o.d"
  "CMakeFiles/rhythm_workload.dir/component.cc.o"
  "CMakeFiles/rhythm_workload.dir/component.cc.o.d"
  "CMakeFiles/rhythm_workload.dir/lc_service.cc.o"
  "CMakeFiles/rhythm_workload.dir/lc_service.cc.o.d"
  "CMakeFiles/rhythm_workload.dir/load_profile.cc.o"
  "CMakeFiles/rhythm_workload.dir/load_profile.cc.o.d"
  "CMakeFiles/rhythm_workload.dir/trace_file_profile.cc.o"
  "CMakeFiles/rhythm_workload.dir/trace_file_profile.cc.o.d"
  "librhythm_workload.a"
  "librhythm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
