file(REMOVE_RECURSE
  "librhythm_workload.a"
)
