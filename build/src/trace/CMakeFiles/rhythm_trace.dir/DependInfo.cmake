
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/cpg_builder.cc" "src/trace/CMakeFiles/rhythm_trace.dir/cpg_builder.cc.o" "gcc" "src/trace/CMakeFiles/rhythm_trace.dir/cpg_builder.cc.o.d"
  "/root/repo/src/trace/events.cc" "src/trace/CMakeFiles/rhythm_trace.dir/events.cc.o" "gcc" "src/trace/CMakeFiles/rhythm_trace.dir/events.cc.o.d"
  "/root/repo/src/trace/path_classifier.cc" "src/trace/CMakeFiles/rhythm_trace.dir/path_classifier.cc.o" "gcc" "src/trace/CMakeFiles/rhythm_trace.dir/path_classifier.cc.o.d"
  "/root/repo/src/trace/sojourn_extractor.cc" "src/trace/CMakeFiles/rhythm_trace.dir/sojourn_extractor.cc.o" "gcc" "src/trace/CMakeFiles/rhythm_trace.dir/sojourn_extractor.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/rhythm_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/rhythm_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
