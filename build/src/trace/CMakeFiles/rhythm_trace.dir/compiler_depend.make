# Empty compiler generated dependencies file for rhythm_trace.
# This may be replaced when dependencies are built.
