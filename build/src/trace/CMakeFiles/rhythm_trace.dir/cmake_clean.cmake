file(REMOVE_RECURSE
  "CMakeFiles/rhythm_trace.dir/cpg_builder.cc.o"
  "CMakeFiles/rhythm_trace.dir/cpg_builder.cc.o.d"
  "CMakeFiles/rhythm_trace.dir/events.cc.o"
  "CMakeFiles/rhythm_trace.dir/events.cc.o.d"
  "CMakeFiles/rhythm_trace.dir/path_classifier.cc.o"
  "CMakeFiles/rhythm_trace.dir/path_classifier.cc.o.d"
  "CMakeFiles/rhythm_trace.dir/sojourn_extractor.cc.o"
  "CMakeFiles/rhythm_trace.dir/sojourn_extractor.cc.o.d"
  "CMakeFiles/rhythm_trace.dir/trace_io.cc.o"
  "CMakeFiles/rhythm_trace.dir/trace_io.cc.o.d"
  "librhythm_trace.a"
  "librhythm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
