file(REMOVE_RECURSE
  "librhythm_trace.a"
)
