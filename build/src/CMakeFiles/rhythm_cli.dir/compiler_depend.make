# Empty compiler generated dependencies file for rhythm_cli.
# This may be replaced when dependencies are built.
