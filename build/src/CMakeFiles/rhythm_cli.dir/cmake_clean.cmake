file(REMOVE_RECURSE
  "CMakeFiles/rhythm_cli.dir/__/tools/rhythm_cli.cc.o"
  "CMakeFiles/rhythm_cli.dir/__/tools/rhythm_cli.cc.o.d"
  "rhythm_cli"
  "rhythm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
