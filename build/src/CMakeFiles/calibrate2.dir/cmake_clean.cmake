file(REMOVE_RECURSE
  "CMakeFiles/calibrate2.dir/__/tools/calibrate2.cc.o"
  "CMakeFiles/calibrate2.dir/__/tools/calibrate2.cc.o.d"
  "calibrate2"
  "calibrate2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
