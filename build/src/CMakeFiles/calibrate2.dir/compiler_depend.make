# Empty compiler generated dependencies file for calibrate2.
# This may be replaced when dependencies are built.
