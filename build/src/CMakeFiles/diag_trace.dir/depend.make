# Empty dependencies file for diag_trace.
# This may be replaced when dependencies are built.
