file(REMOVE_RECURSE
  "CMakeFiles/diag_trace.dir/__/tools/diag_trace.cc.o"
  "CMakeFiles/diag_trace.dir/__/tools/diag_trace.cc.o.d"
  "diag_trace"
  "diag_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
