# Empty dependencies file for diag_cell.
# This may be replaced when dependencies are built.
