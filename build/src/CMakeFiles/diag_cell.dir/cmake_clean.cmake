file(REMOVE_RECURSE
  "CMakeFiles/diag_cell.dir/__/tools/diag_cell.cc.o"
  "CMakeFiles/diag_cell.dir/__/tools/diag_cell.cc.o.d"
  "diag_cell"
  "diag_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
