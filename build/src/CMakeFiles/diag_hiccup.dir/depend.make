# Empty dependencies file for diag_hiccup.
# This may be replaced when dependencies are built.
