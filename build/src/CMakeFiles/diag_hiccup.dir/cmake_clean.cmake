file(REMOVE_RECURSE
  "CMakeFiles/diag_hiccup.dir/__/tools/diag_hiccup.cc.o"
  "CMakeFiles/diag_hiccup.dir/__/tools/diag_hiccup.cc.o.d"
  "diag_hiccup"
  "diag_hiccup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_hiccup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
