file(REMOVE_RECURSE
  "CMakeFiles/tracedump.dir/__/tools/tracedump.cc.o"
  "CMakeFiles/tracedump.dir/__/tools/tracedump.cc.o.d"
  "tracedump"
  "tracedump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracedump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
