# Empty dependencies file for tracedump.
# This may be replaced when dependencies are built.
