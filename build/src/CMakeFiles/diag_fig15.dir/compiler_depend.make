# Empty compiler generated dependencies file for diag_fig15.
# This may be replaced when dependencies are built.
