file(REMOVE_RECURSE
  "CMakeFiles/diag_fig15.dir/__/tools/diag_fig15.cc.o"
  "CMakeFiles/diag_fig15.dir/__/tools/diag_fig15.cc.o.d"
  "diag_fig15"
  "diag_fig15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_fig15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
