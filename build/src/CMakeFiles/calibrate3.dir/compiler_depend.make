# Empty compiler generated dependencies file for calibrate3.
# This may be replaced when dependencies are built.
