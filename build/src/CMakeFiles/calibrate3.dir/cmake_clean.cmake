file(REMOVE_RECURSE
  "CMakeFiles/calibrate3.dir/__/tools/calibrate3.cc.o"
  "CMakeFiles/calibrate3.dir/__/tools/calibrate3.cc.o.d"
  "calibrate3"
  "calibrate3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
