file(REMOVE_RECURSE
  "CMakeFiles/diag_stress.dir/__/tools/diag_stress.cc.o"
  "CMakeFiles/diag_stress.dir/__/tools/diag_stress.cc.o.d"
  "diag_stress"
  "diag_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
