# Empty compiler generated dependencies file for diag_stress.
# This may be replaced when dependencies are built.
