# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("resources")
subdirs("bemodel")
subdirs("workload")
subdirs("interference")
subdirs("trace")
subdirs("analysis")
subdirs("control")
subdirs("baseline")
subdirs("scheduler")
subdirs("cluster")
