# Empty dependencies file for rhythm_bemodel.
# This may be replaced when dependencies are built.
