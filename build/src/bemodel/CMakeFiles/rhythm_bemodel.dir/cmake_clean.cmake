file(REMOVE_RECURSE
  "CMakeFiles/rhythm_bemodel.dir/be_job_spec.cc.o"
  "CMakeFiles/rhythm_bemodel.dir/be_job_spec.cc.o.d"
  "CMakeFiles/rhythm_bemodel.dir/be_runtime.cc.o"
  "CMakeFiles/rhythm_bemodel.dir/be_runtime.cc.o.d"
  "librhythm_bemodel.a"
  "librhythm_bemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_bemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
