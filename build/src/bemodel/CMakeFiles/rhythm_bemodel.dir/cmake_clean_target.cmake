file(REMOVE_RECURSE
  "librhythm_bemodel.a"
)
