
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bemodel/be_job_spec.cc" "src/bemodel/CMakeFiles/rhythm_bemodel.dir/be_job_spec.cc.o" "gcc" "src/bemodel/CMakeFiles/rhythm_bemodel.dir/be_job_spec.cc.o.d"
  "/root/repo/src/bemodel/be_runtime.cc" "src/bemodel/CMakeFiles/rhythm_bemodel.dir/be_runtime.cc.o" "gcc" "src/bemodel/CMakeFiles/rhythm_bemodel.dir/be_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
