file(REMOVE_RECURSE
  "CMakeFiles/rhythm_sim.dir/simulator.cc.o"
  "CMakeFiles/rhythm_sim.dir/simulator.cc.o.d"
  "librhythm_sim.a"
  "librhythm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
