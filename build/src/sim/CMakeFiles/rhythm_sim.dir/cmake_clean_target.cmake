file(REMOVE_RECURSE
  "librhythm_sim.a"
)
