
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/cat_allocator.cc" "src/resources/CMakeFiles/rhythm_resources.dir/cat_allocator.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/cat_allocator.cc.o.d"
  "/root/repo/src/resources/core_allocator.cc" "src/resources/CMakeFiles/rhythm_resources.dir/core_allocator.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/core_allocator.cc.o.d"
  "/root/repo/src/resources/machine.cc" "src/resources/CMakeFiles/rhythm_resources.dir/machine.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/machine.cc.o.d"
  "/root/repo/src/resources/membw_accountant.cc" "src/resources/CMakeFiles/rhythm_resources.dir/membw_accountant.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/membw_accountant.cc.o.d"
  "/root/repo/src/resources/memory_allocator.cc" "src/resources/CMakeFiles/rhythm_resources.dir/memory_allocator.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/memory_allocator.cc.o.d"
  "/root/repo/src/resources/network_qdisc.cc" "src/resources/CMakeFiles/rhythm_resources.dir/network_qdisc.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/network_qdisc.cc.o.d"
  "/root/repo/src/resources/power_model.cc" "src/resources/CMakeFiles/rhythm_resources.dir/power_model.cc.o" "gcc" "src/resources/CMakeFiles/rhythm_resources.dir/power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
