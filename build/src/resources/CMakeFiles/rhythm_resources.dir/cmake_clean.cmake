file(REMOVE_RECURSE
  "CMakeFiles/rhythm_resources.dir/cat_allocator.cc.o"
  "CMakeFiles/rhythm_resources.dir/cat_allocator.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/core_allocator.cc.o"
  "CMakeFiles/rhythm_resources.dir/core_allocator.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/machine.cc.o"
  "CMakeFiles/rhythm_resources.dir/machine.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/membw_accountant.cc.o"
  "CMakeFiles/rhythm_resources.dir/membw_accountant.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/memory_allocator.cc.o"
  "CMakeFiles/rhythm_resources.dir/memory_allocator.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/network_qdisc.cc.o"
  "CMakeFiles/rhythm_resources.dir/network_qdisc.cc.o.d"
  "CMakeFiles/rhythm_resources.dir/power_model.cc.o"
  "CMakeFiles/rhythm_resources.dir/power_model.cc.o.d"
  "librhythm_resources.a"
  "librhythm_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
