# Empty dependencies file for rhythm_resources.
# This may be replaced when dependencies are built.
