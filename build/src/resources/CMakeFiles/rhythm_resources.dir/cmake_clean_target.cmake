file(REMOVE_RECURSE
  "librhythm_resources.a"
)
