file(REMOVE_RECURSE
  "librhythm_baseline.a"
)
