# Empty compiler generated dependencies file for rhythm_baseline.
# This may be replaced when dependencies are built.
