file(REMOVE_RECURSE
  "CMakeFiles/rhythm_baseline.dir/heracles.cc.o"
  "CMakeFiles/rhythm_baseline.dir/heracles.cc.o.d"
  "librhythm_baseline.a"
  "librhythm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
