file(REMOVE_RECURSE
  "CMakeFiles/rhythm_cluster.dir/app_thresholds.cc.o"
  "CMakeFiles/rhythm_cluster.dir/app_thresholds.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/bubble_profiler.cc.o"
  "CMakeFiles/rhythm_cluster.dir/bubble_profiler.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/deployment.cc.o"
  "CMakeFiles/rhythm_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/experiment.cc.o"
  "CMakeFiles/rhythm_cluster.dir/experiment.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/metrics.cc.o"
  "CMakeFiles/rhythm_cluster.dir/metrics.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/multi_lc.cc.o"
  "CMakeFiles/rhythm_cluster.dir/multi_lc.cc.o.d"
  "CMakeFiles/rhythm_cluster.dir/profiler.cc.o"
  "CMakeFiles/rhythm_cluster.dir/profiler.cc.o.d"
  "librhythm_cluster.a"
  "librhythm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
