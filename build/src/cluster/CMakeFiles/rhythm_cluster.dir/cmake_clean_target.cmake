file(REMOVE_RECURSE
  "librhythm_cluster.a"
)
