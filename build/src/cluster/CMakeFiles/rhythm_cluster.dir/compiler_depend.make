# Empty compiler generated dependencies file for rhythm_cluster.
# This may be replaced when dependencies are built.
