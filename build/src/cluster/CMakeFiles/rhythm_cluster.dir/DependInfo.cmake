
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/app_thresholds.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/app_thresholds.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/app_thresholds.cc.o.d"
  "/root/repo/src/cluster/bubble_profiler.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/bubble_profiler.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/bubble_profiler.cc.o.d"
  "/root/repo/src/cluster/deployment.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/deployment.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/deployment.cc.o.d"
  "/root/repo/src/cluster/experiment.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/experiment.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/experiment.cc.o.d"
  "/root/repo/src/cluster/metrics.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/metrics.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/metrics.cc.o.d"
  "/root/repo/src/cluster/multi_lc.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/multi_lc.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/multi_lc.cc.o.d"
  "/root/repo/src/cluster/profiler.cc" "src/cluster/CMakeFiles/rhythm_cluster.dir/profiler.cc.o" "gcc" "src/cluster/CMakeFiles/rhythm_cluster.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rhythm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rhythm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/rhythm_control.dir/DependInfo.cmake"
  "/root/repo/build/src/interference/CMakeFiles/rhythm_interference.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/rhythm_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rhythm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rhythm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rhythm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bemodel/CMakeFiles/rhythm_bemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
