file(REMOVE_RECURSE
  "CMakeFiles/rhythm_control.dir/machine_agent.cc.o"
  "CMakeFiles/rhythm_control.dir/machine_agent.cc.o.d"
  "CMakeFiles/rhythm_control.dir/thresholds.cc.o"
  "CMakeFiles/rhythm_control.dir/thresholds.cc.o.d"
  "CMakeFiles/rhythm_control.dir/top_controller.cc.o"
  "CMakeFiles/rhythm_control.dir/top_controller.cc.o.d"
  "librhythm_control.a"
  "librhythm_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
