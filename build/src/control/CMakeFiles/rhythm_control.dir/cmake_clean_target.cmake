file(REMOVE_RECURSE
  "librhythm_control.a"
)
