# Empty dependencies file for rhythm_control.
# This may be replaced when dependencies are built.
