
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/machine_agent.cc" "src/control/CMakeFiles/rhythm_control.dir/machine_agent.cc.o" "gcc" "src/control/CMakeFiles/rhythm_control.dir/machine_agent.cc.o.d"
  "/root/repo/src/control/thresholds.cc" "src/control/CMakeFiles/rhythm_control.dir/thresholds.cc.o" "gcc" "src/control/CMakeFiles/rhythm_control.dir/thresholds.cc.o.d"
  "/root/repo/src/control/top_controller.cc" "src/control/CMakeFiles/rhythm_control.dir/top_controller.cc.o" "gcc" "src/control/CMakeFiles/rhythm_control.dir/top_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhythm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bemodel/CMakeFiles/rhythm_bemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rhythm_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
