# Empty dependencies file for rhythm_common.
# This may be replaced when dependencies are built.
