file(REMOVE_RECURSE
  "librhythm_common.a"
)
