file(REMOVE_RECURSE
  "CMakeFiles/rhythm_common.dir/logging.cc.o"
  "CMakeFiles/rhythm_common.dir/logging.cc.o.d"
  "CMakeFiles/rhythm_common.dir/p2_quantile.cc.o"
  "CMakeFiles/rhythm_common.dir/p2_quantile.cc.o.d"
  "CMakeFiles/rhythm_common.dir/percentile_window.cc.o"
  "CMakeFiles/rhythm_common.dir/percentile_window.cc.o.d"
  "CMakeFiles/rhythm_common.dir/stats.cc.o"
  "CMakeFiles/rhythm_common.dir/stats.cc.o.d"
  "CMakeFiles/rhythm_common.dir/time_series.cc.o"
  "CMakeFiles/rhythm_common.dir/time_series.cc.o.d"
  "librhythm_common.a"
  "librhythm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
