file(REMOVE_RECURSE
  "CMakeFiles/be_scheduler_sim.dir/be_scheduler_sim.cpp.o"
  "CMakeFiles/be_scheduler_sim.dir/be_scheduler_sim.cpp.o.d"
  "be_scheduler_sim"
  "be_scheduler_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/be_scheduler_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
