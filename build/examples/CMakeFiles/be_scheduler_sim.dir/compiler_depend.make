# Empty compiler generated dependencies file for be_scheduler_sim.
# This may be replaced when dependencies are built.
