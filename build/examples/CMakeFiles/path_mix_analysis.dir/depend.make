# Empty dependencies file for path_mix_analysis.
# This may be replaced when dependencies are built.
