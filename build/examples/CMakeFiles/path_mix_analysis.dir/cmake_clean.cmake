file(REMOVE_RECURSE
  "CMakeFiles/path_mix_analysis.dir/path_mix_analysis.cpp.o"
  "CMakeFiles/path_mix_analysis.dir/path_mix_analysis.cpp.o.d"
  "path_mix_analysis"
  "path_mix_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_mix_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
