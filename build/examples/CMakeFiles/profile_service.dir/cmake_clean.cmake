file(REMOVE_RECURSE
  "CMakeFiles/profile_service.dir/profile_service.cpp.o"
  "CMakeFiles/profile_service.dir/profile_service.cpp.o.d"
  "profile_service"
  "profile_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
