# Empty compiler generated dependencies file for profile_service.
# This may be replaced when dependencies are built.
