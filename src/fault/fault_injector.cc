#include "src/fault/fault_injector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/common/logging.h"

namespace rhythm {

FaultInjector::FaultInjector(Simulator* sim, const FaultSchedule& schedule, int pod_count,
                             uint64_t seed)
    : sim_(sim),
      events_(schedule.Sorted()),
      rng_(seed),
      offline_depth_(static_cast<size_t>(pod_count), 0),
      blackout_depth_(static_cast<size_t>(pod_count), 0),
      frozen_depth_(static_cast<size_t>(pod_count), 0),
      drop_depth_(static_cast<size_t>(pod_count), 0),
      hold_depth_(static_cast<size_t>(pod_count), 0),
      drop_probability_(static_cast<size_t>(pod_count), 0.0),
      failover_magnitude_(static_cast<size_t>(pod_count), 0.0) {
  RHYTHM_CHECK(sim != nullptr);
  RHYTHM_CHECK(pod_count > 0);
  // A malformed event used to no-op (out-of-range pod) or quietly misbehave
  // (negative window, off-scale magnitude); reject it up front so the
  // mistake surfaces at wiring time, not as a silently different run.
  for (const FaultEvent& event : events_) {
    if (IsClusterScopeFault(event.kind)) {
      // Machine loss targets a ClusterRunRequest's roster; a lone deployment
      // has no machine list to kill. The cluster engine strips these events
      // before building per-group trials, so reaching here is a wiring bug.
      throw std::invalid_argument(std::string("FaultInjector: ") + FaultKindName(event.kind) +
                                  " is cluster-scope; inject it via a ClusterRunRequest");
    }
    const std::string error = FaultEventError(event, pod_count);
    if (!error.empty()) {
      throw std::invalid_argument("FaultInjector: " + error);
    }
  }
}

void FaultInjector::Start() {
  RHYTHM_CHECK(!started_);
  started_ = true;
  for (const FaultEvent& event : events_) {
    if (event.kind == FaultKind::kLoadSpike) {
      continue;  // handled by SpikedLoadProfile, not by cluster state.
    }
    sim_->ScheduleAt(event.start_s, [this, event] { Activate(event); });
    if (event.kind != FaultKind::kBeInstanceFailure && event.duration_s > 0.0) {
      sim_->ScheduleAt(event.start_s + event.duration_s, [this, event] { Deactivate(event); });
    }
  }
}

void FaultInjector::Emit(const FaultEvent& event, ObsFaultEdge edge) {
  if (obs_ == nullptr) {
    return;
  }
  ObsEvent record;
  record.time_s = sim_->Now();
  record.machine = event.pod;
  record.kind = ObsKind::kFault;
  record.code = static_cast<uint8_t>(event.kind);
  record.detail = static_cast<uint8_t>(edge);
  record.a = event.magnitude;
  record.b = event.duration_s;
  obs_->Record(record);
}

void FaultInjector::Activate(const FaultEvent& event) {
  if (!ValidPod(event.pod)) {
    return;
  }
  // Point faults record an instant; windows record their begin edge (before
  // the handlers run, so the cause precedes its consequences in the log).
  Emit(event, event.kind == FaultKind::kBeInstanceFailure ? ObsFaultEdge::kInstant
                                                          : ObsFaultEdge::kBegin);
  switch (event.kind) {
    case FaultKind::kPodCrash:
      if (offline_depth_[event.pod]++ == 0) {
        failover_magnitude_[event.pod] = std::max(event.magnitude, 0.0);
        ++counts_.crashes;
        if (crash_handler_) {
          crash_handler_(event.pod, /*online=*/false);
        }
      }
      break;
    case FaultKind::kTelemetryDropout:
      ++blackout_depth_[event.pod];
      break;
    case FaultKind::kTelemetryFreeze:
      ++frozen_depth_[event.pod];
      break;
    case FaultKind::kActuationDrop:
      ++drop_depth_[event.pod];
      drop_probability_[event.pod] = std::clamp(event.magnitude, 0.0, 1.0);
      break;
    case FaultKind::kBeInstanceFailure:
      ++counts_.be_failures;
      if (be_failure_handler_) {
        be_failure_handler_(event.pod);
      }
      break;
    case FaultKind::kBeAdmissionHold:
      if (hold_depth_[event.pod]++ == 0) {
        ++counts_.admission_holds;
        if (admission_hold_handler_) {
          admission_hold_handler_(event.pod, /*held=*/true);
        }
      }
      break;
    case FaultKind::kLoadSpike:
      break;
  }
}

void FaultInjector::Deactivate(const FaultEvent& event) {
  if (!ValidPod(event.pod)) {
    return;
  }
  Emit(event, ObsFaultEdge::kEnd);
  switch (event.kind) {
    case FaultKind::kPodCrash:
      if (--offline_depth_[event.pod] == 0) {
        failover_magnitude_[event.pod] = 0.0;
        ++counts_.reboots;
        if (crash_handler_) {
          crash_handler_(event.pod, /*online=*/true);
        }
      }
      break;
    case FaultKind::kTelemetryDropout:
      --blackout_depth_[event.pod];
      break;
    case FaultKind::kTelemetryFreeze:
      --frozen_depth_[event.pod];
      break;
    case FaultKind::kActuationDrop:
      if (--drop_depth_[event.pod] == 0) {
        drop_probability_[event.pod] = 0.0;
      }
      break;
    case FaultKind::kBeAdmissionHold:
      if (--hold_depth_[event.pod] == 0 && admission_hold_handler_) {
        admission_hold_handler_(event.pod, /*held=*/false);
      }
      break;
    case FaultKind::kBeInstanceFailure:
    case FaultKind::kLoadSpike:
      break;
  }
}

bool FaultInjector::DropActuation(int pod) {
  if (!ValidPod(pod) || drop_depth_[pod] == 0) {
    return false;
  }
  const double p = drop_probability_[pod];
  const bool dropped = p >= 1.0 ? true : rng_.Bernoulli(p);
  if (dropped) {
    ++counts_.dropped_actuations;
    if (obs_ != nullptr) {
      ObsEvent record;
      record.time_s = sim_->Now();
      record.machine = pod;
      record.kind = ObsKind::kFault;
      record.code = static_cast<uint8_t>(FaultKind::kActuationDrop);
      record.detail = static_cast<uint8_t>(ObsFaultEdge::kInstant);
      record.a = p;
      obs_->Record(record);
    }
  }
  return dropped;
}

double FaultInjector::FailoverInflation(int pod) const {
  if (!ValidPod(pod)) {
    return 1.0;
  }
  if (PodOffline(pod)) {
    return 1.0 + failover_magnitude_[pod];
  }
  // Survivors absorb a share of every concurrently-down pod's traffic.
  double spread = 0.0;
  for (int other = 0; other < pod_count(); ++other) {
    if (other != pod && PodOffline(other)) {
      spread += kFailoverSpreadFraction * failover_magnitude_[other];
    }
  }
  return 1.0 + spread;
}

bool FaultInjector::AnyPodOffline() const {
  return std::any_of(offline_depth_.begin(), offline_depth_.end(),
                     [](int depth) { return depth > 0; });
}

}  // namespace rhythm
