// Drives a FaultSchedule through the simulator.
//
// The injector turns the schedule's windows into per-pod state the cluster
// queries every tick — is the machine down, is telemetry silent or frozen,
// does this actuation get lost — plus callbacks for the edge-triggered
// transitions (crash, reboot, BE-instance death) the deployment must wire
// into machines and runtimes. Probabilistic actuation drops draw from a
// dedicated seeded Rng, so the whole fault realization is a deterministic
// function of (schedule, seed).

#ifndef RHYTHM_SRC_FAULT_FAULT_INJECTOR_H_
#define RHYTHM_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/obs_event.h"
#include "src/sim/simulator.h"

namespace rhythm {

class FaultInjector {
 public:
  struct Counts {
    uint64_t crashes = 0;
    uint64_t reboots = 0;
    uint64_t be_failures = 0;            // kBeInstanceFailure events fired.
    uint64_t dropped_actuations = 0;     // commands the gate swallowed.
    uint64_t admission_holds = 0;        // kBeAdmissionHold windows opened.
  };

  // Survivors absorb the failed-over component's traffic: every online pod's
  // inflation rises by this fraction of the crashed pod's failover
  // magnitude, per concurrently-down pod.
  static constexpr double kFailoverSpreadFraction = 0.25;

  FaultInjector(Simulator* sim, const FaultSchedule& schedule, int pod_count, uint64_t seed);

  // Edge-triggered wiring; set before Start(). The crash handler fires with
  // online=false at the crash and online=true at the reboot.
  void set_crash_handler(std::function<void(int pod, bool online)> handler) {
    crash_handler_ = std::move(handler);
  }
  void set_be_failure_handler(std::function<void(int pod)> handler) {
    be_failure_handler_ = std::move(handler);
  }
  // Fires with held=true when a kBeAdmissionHold window opens on the pod
  // (outermost edge only) and held=false when the last window closes — the
  // synchronized re-admission edge.
  void set_admission_hold_handler(std::function<void(int pod, bool held)> handler) {
    admission_hold_handler_ = std::move(handler);
  }

  // Schedules every window transition into the simulator. Call once.
  void Start();

  // -- Level-triggered state, queried by the cluster ------------------------

  bool PodOffline(int pod) const { return offline_depth_[pod] > 0; }
  bool TelemetryBlackout(int pod) const {
    return blackout_depth_[pod] > 0 || PodOffline(pod);
  }
  bool TelemetryFrozen(int pod) const { return frozen_depth_[pod] > 0; }
  bool AdmissionHeld(int pod) const { return hold_depth_[pod] > 0; }

  // Consulted by the BE runtime's actuation gate: true when the command is
  // lost. Consumes an RNG draw only while a drop window is active, so runs
  // without actuation faults never touch the stream.
  bool DropActuation(int pod);

  // Service-time inflation the crash failover imposes on `pod`'s component:
  // the crashed component runs on its cold standby (1 + magnitude), and
  // surviving pods absorb a share of the spread traffic.
  double FailoverInflation(int pod) const;

  bool AnyPodOffline() const;
  const Counts& counts() const { return counts_; }
  int pod_count() const { return static_cast<int>(offline_depth_.size()); }

  // Observability: window edges and dropped actuations emit kFault events
  // (stamped with the simulator clock; the injector already owns `sim`).
  void AttachObs(ObsSink* sink) { obs_ = sink; }

 private:
  void Activate(const FaultEvent& event);
  void Deactivate(const FaultEvent& event);
  void Emit(const FaultEvent& event, ObsFaultEdge edge);
  bool ValidPod(int pod) const { return pod >= 0 && pod < pod_count(); }

  Simulator* sim_;
  std::vector<FaultEvent> events_;
  Rng rng_;
  std::function<void(int pod, bool online)> crash_handler_;
  std::function<void(int pod)> be_failure_handler_;
  std::function<void(int pod, bool held)> admission_hold_handler_;
  // Depth counters tolerate overlapping windows of the same kind.
  std::vector<int> offline_depth_;
  std::vector<int> blackout_depth_;
  std::vector<int> frozen_depth_;
  std::vector<int> drop_depth_;
  std::vector<int> hold_depth_;
  std::vector<double> drop_probability_;   // of the innermost active window.
  std::vector<double> failover_magnitude_;  // of the active crash, per pod.
  Counts counts_;
  bool started_ = false;
  ObsSink* obs_ = nullptr;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_FAULT_FAULT_INJECTOR_H_
