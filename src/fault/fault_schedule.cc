#include "src/fault/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/rng.h"

namespace rhythm {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPodCrash:
      return "PodCrash";
    case FaultKind::kTelemetryDropout:
      return "TelemetryDropout";
    case FaultKind::kTelemetryFreeze:
      return "TelemetryFreeze";
    case FaultKind::kActuationDrop:
      return "ActuationDrop";
    case FaultKind::kBeInstanceFailure:
      return "BeInstanceFailure";
    case FaultKind::kLoadSpike:
      return "LoadSpike";
    case FaultKind::kBeAdmissionHold:
      return "BeAdmissionHold";
    case FaultKind::kMachineFailure:
      return "MachineFailure";
    case FaultKind::kMachineRestart:
      return "MachineRestart";
  }
  return "?";
}

bool IsClusterScopeFault(FaultKind kind) {
  return kind == FaultKind::kMachineFailure || kind == FaultKind::kMachineRestart;
}

bool FaultSchedule::HasKind(FaultKind kind) const {
  return std::any_of(events.begin(), events.end(),
                     [kind](const FaultEvent& event) { return event.kind == kind; });
}

std::vector<FaultEvent> FaultSchedule::Sorted() const {
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.start_s != b.start_s) {
      return a.start_s < b.start_s;
    }
    if (a.pod != b.pod) {
      return a.pod < b.pod;
    }
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    if (a.duration_s != b.duration_s) {
      return a.duration_s < b.duration_s;
    }
    return a.magnitude < b.magnitude;
  });
  return sorted;
}

std::string FaultEventError(const FaultEvent& event, int pod_count) {
  const std::string prefix = std::string(FaultKindName(event.kind)) + " event: ";
  if (!std::isfinite(event.start_s) || event.start_s < 0.0) {
    return prefix + "start_s must be finite and >= 0 (got " + std::to_string(event.start_s) + ")";
  }
  if (!std::isfinite(event.duration_s) || event.duration_s < 0.0) {
    return prefix + "duration_s must be finite and >= 0 (got " +
           std::to_string(event.duration_s) + ")";
  }
  if (!std::isfinite(event.magnitude)) {
    return prefix + "magnitude must be finite";
  }
  const bool windowed = event.kind == FaultKind::kPodCrash ||
                        event.kind == FaultKind::kTelemetryDropout ||
                        event.kind == FaultKind::kTelemetryFreeze ||
                        event.kind == FaultKind::kActuationDrop ||
                        event.kind == FaultKind::kBeAdmissionHold ||
                        event.kind == FaultKind::kMachineRestart;
  if (windowed && event.duration_s <= 0.0) {
    return prefix + "duration_s must be > 0 for windowed faults";
  }
  if (event.kind != FaultKind::kLoadSpike && (event.pod < 0 || event.pod >= pod_count)) {
    const char* target = IsClusterScopeFault(event.kind) ? "machine " : "pod ";
    return prefix + target + std::to_string(event.pod) + " out of range [0, " +
           std::to_string(pod_count) + ")";
  }
  switch (event.kind) {
    case FaultKind::kPodCrash:
      if (event.magnitude < 0.0 || event.magnitude > kMaxCrashInflation) {
        return prefix + "failover inflation must lie in [0, " +
               std::to_string(kMaxCrashInflation) + "] (got " + std::to_string(event.magnitude) +
               ")";
      }
      break;
    case FaultKind::kActuationDrop:
      if (event.magnitude < 0.0 || event.magnitude > 1.0) {
        return prefix + "drop probability must lie in [0, 1] (got " +
               std::to_string(event.magnitude) + ")";
      }
      break;
    case FaultKind::kLoadSpike:
      if (event.magnitude < 0.0 || event.magnitude > 1.0) {
        return prefix + "load boost must lie in [0, 1] (got " + std::to_string(event.magnitude) +
               ")";
      }
      break;
    case FaultKind::kTelemetryDropout:
    case FaultKind::kTelemetryFreeze:
    case FaultKind::kBeInstanceFailure:
    case FaultKind::kBeAdmissionHold:
    case FaultKind::kMachineFailure:
    case FaultKind::kMachineRestart:
      break;  // magnitude ignored; finiteness already checked.
  }
  return "";
}

namespace {

// Draws `expected` events on average, each placed uniformly in the middle
// 80% of the run (faults at the very edges test nothing: no steady state
// before, no recovery window after).
template <typename MakeEvent>
void DrawEvents(FaultSchedule& schedule, Rng& rng, double duration_s, double expected,
                MakeEvent make_event) {
  const uint64_t count = rng.Poisson(expected);
  for (uint64_t i = 0; i < count; ++i) {
    const double start = rng.Uniform(0.1 * duration_s, 0.9 * duration_s);
    schedule.Add(make_event(start));
  }
}

}  // namespace

FaultSchedule RandomFaultSchedule(const ChaosConfig& config, uint64_t seed) {
  FaultSchedule schedule;
  Rng rng(seed);
  const int pods = std::max(config.pod_count, 1);
  auto pick_pod = [&] { return static_cast<int>(rng.UniformInt(static_cast<uint64_t>(pods))); };

  DrawEvents(schedule, rng, config.duration_s, config.expected_crashes, [&](double start) {
    return FaultEvent{.kind = FaultKind::kPodCrash,
                      .pod = pick_pod(),
                      .start_s = start,
                      .duration_s = rng.Uniform(config.crash_min_down_s, config.crash_max_down_s),
                      .magnitude = config.crash_failover_inflation};
  });
  DrawEvents(schedule, rng, config.duration_s, config.expected_telemetry_dropouts,
             [&](double start) {
               return FaultEvent{
                   .kind = rng.Bernoulli(0.5) ? FaultKind::kTelemetryDropout
                                              : FaultKind::kTelemetryFreeze,
                   .pod = pick_pod(),
                   .start_s = start,
                   .duration_s = rng.Uniform(config.dropout_min_s, config.dropout_max_s)};
             });
  DrawEvents(schedule, rng, config.duration_s, config.expected_actuation_windows,
             [&](double start) {
               return FaultEvent{.kind = FaultKind::kActuationDrop,
                                 .pod = pick_pod(),
                                 .start_s = start,
                                 .duration_s = config.actuation_window_s,
                                 .magnitude = config.actuation_drop_probability};
             });
  DrawEvents(schedule, rng, config.duration_s, config.expected_be_failures, [&](double start) {
    return FaultEvent{.kind = FaultKind::kBeInstanceFailure, .pod = pick_pod(), .start_s = start};
  });
  DrawEvents(schedule, rng, config.duration_s, config.expected_admission_holds,
             [&](double start) {
               return FaultEvent{.kind = FaultKind::kBeAdmissionHold,
                                 .pod = pick_pod(),
                                 .start_s = start,
                                 .duration_s = rng.Uniform(config.hold_min_s, config.hold_max_s)};
             });
  DrawEvents(schedule, rng, config.duration_s, config.expected_load_spikes, [&](double start) {
    return FaultEvent{.kind = FaultKind::kLoadSpike,
                      .start_s = start,
                      .duration_s = config.spike_duration_s,
                      .magnitude = rng.Uniform(config.spike_min_boost, config.spike_max_boost)};
  });
  // Cluster-scope machine losses draw last so every pre-existing (config,
  // seed) pair keeps its exact schedule when these rates stay at their 0
  // defaults.
  if (config.machine_count > 0) {
    const uint64_t machines = static_cast<uint64_t>(config.machine_count);
    auto pick_machine = [&] { return static_cast<int>(rng.UniformInt(machines)); };
    DrawEvents(schedule, rng, config.duration_s, config.expected_machine_failures,
               [&](double start) {
                 return FaultEvent{.kind = FaultKind::kMachineFailure,
                                   .pod = pick_machine(),
                                   .start_s = start};
               });
    DrawEvents(schedule, rng, config.duration_s, config.expected_machine_restarts,
               [&](double start) {
                 return FaultEvent{
                     .kind = FaultKind::kMachineRestart,
                     .pod = pick_machine(),
                     .start_s = start,
                     .duration_s =
                         rng.Uniform(config.restart_min_down_s, config.restart_max_down_s)};
               });
  }
  return schedule;
}

}  // namespace rhythm
