#include "src/fault/spiked_load_profile.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

SpikedLoadProfile::SpikedLoadProfile(const LoadProfile* base, const FaultSchedule& schedule)
    : base_(base) {
  RHYTHM_CHECK(base != nullptr);
  for (const FaultEvent& event : schedule.Sorted()) {
    if (event.kind == FaultKind::kLoadSpike) {
      spikes_.push_back(event);
    }
  }
}

double SpikedLoadProfile::SpikeBoostAt(const FaultEvent& spike, double t) {
  if (spike.duration_s <= 0.0 || t < spike.start_s || t >= spike.start_s + spike.duration_s) {
    return 0.0;
  }
  return spike.magnitude * (1.0 - (t - spike.start_s) / spike.duration_s);
}

double SpikedLoadProfile::LoadAt(double t) const {
  double load = base_->LoadAt(t);
  for (const FaultEvent& spike : spikes_) {
    load += SpikeBoostAt(spike, t);
  }
  return std::clamp(load, 0.0, 1.0);
}

}  // namespace rhythm
