// Deterministic schedules of injectable fault events.
//
// A FaultSchedule is a plain list of timed events — machine crashes,
// telemetry dropouts, lost actuations, BE-instance failures and flash-crowd
// load spikes — that the FaultInjector replays through the simulator. A
// schedule is data, not behaviour: the same schedule plus the same seed
// always reproduces the same run bit-for-bit, so chaos tests can assert
// exact recovery trajectories.

#ifndef RHYTHM_SRC_FAULT_FAULT_SCHEDULE_H_
#define RHYTHM_SRC_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rhythm {

enum class FaultKind {
  // Machine hosting the Servpod goes down for [start, start+duration): its
  // BE instances are lost, the LC component fails over to a less-provisioned
  // standby (magnitude = extra relative service-time inflation on the
  // component while failed over, e.g. 0.3 -> 1.3x), and its telemetry goes
  // silent. At start+duration the machine reboots empty.
  kPodCrash,
  // The accounting tick publishes no tail sample for the pod during the
  // window; the controller's copy ages until the stale detector fails safe.
  kTelemetryDropout,
  // The accounting tick keeps republishing the value captured at window
  // start with a *fresh* timestamp — undetectable staleness; the guards must
  // contain whatever the controller does with the poisoned signal.
  kTelemetryFreeze,
  // Grow/Cut/Suspend commands issued inside the window are silently dropped
  // by the machine with probability `magnitude` (1.0 = every command lost).
  kActuationDrop,
  // One BE instance on the pod dies at `start` (duration ignored): its
  // resources free up but its in-flight work is forfeited.
  kBeInstanceFailure,
  // Flash crowd layered onto the load profile: load jumps by `magnitude`
  // at `start` and decays linearly to zero over `duration`. `pod` ignored
  // (load is a service-wide signal). Applied via SpikedLoadProfile.
  kLoadSpike,
  // The cluster withdraws BE work from the pod for [start, start+duration):
  // running instances are stopped (in-flight work forfeited, resources
  // freed) and no new instance may be created until the window closes. At
  // the close, admission reopens *instantly* on every held pod — the
  // synchronized re-admission edge the adversarial search exploits when it
  // aligns the release with a load ramp. `magnitude` ignored.
  kBeAdmissionHold,
  // Cluster-scope: the machine at index `pod` (a *machine* index into the
  // ClusterRunRequest's spec, not a Servpod index) is lost permanently at
  // `start`. Every group with a pod on the machine is disrupted; the
  // ClusterSupervisor (when enabled) fails the groups over to surviving
  // machines at the next barrier. duration_s and magnitude ignored. Only the
  // cluster engine consumes this kind — a single-trial FaultInjector rejects
  // it (a lone deployment has no machine roster to kill).
  kMachineFailure,
  // Cluster-scope: machine `pod` is lost at `start` and rejoins empty at
  // `start + duration_s` (duration must be > 0). Rejoined machines are
  // eligible for placement again from the next epoch. magnitude ignored.
  kMachineRestart,
};

const char* FaultKindName(FaultKind kind);

// True for fault kinds that target a cluster machine roster rather than one
// deployment's Servpods (kMachineFailure / kMachineRestart). Such events are
// only meaningful to the cluster engine; Trial/FaultInjector reject them.
bool IsClusterScopeFault(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kPodCrash;
  int pod = 0;              // target Servpod (machine index for cluster-scope
                            // kinds); ignored by kLoadSpike.
  double start_s = 0.0;
  double duration_s = 0.0;  // ignored by kBeInstanceFailure/kMachineFailure.
  double magnitude = 0.0;   // kind-specific, see FaultKind comments.
};

// Validates one event against a deployment of `pod_count` Servpods (for
// cluster-scope kinds, pass the *machine* count). Returns an empty string
// for a well-formed event, else a description of the defect. Bounds are
// kind-specific: every event needs a finite start_s >= 0 and a finite
// duration_s >= 0; windowed kinds (crash, dropout, freeze, actuation drop,
// admission hold, machine restart) need duration_s > 0; pod must be in
// [0, pod_count) except for kLoadSpike, which ignores it; kActuationDrop and
// kLoadSpike magnitudes must lie in [0, 1] (a drop probability / a
// load-fraction boost) and kPodCrash inflation in [0, kMaxCrashInflation].
std::string FaultEventError(const FaultEvent& event, int pod_count);

// Largest accepted kPodCrash failover inflation (a 10x service-time blowup
// is already far past anything a cold standby exhibits; beyond it, treat the
// schedule as malformed rather than simulate nonsense).
inline constexpr double kMaxCrashInflation = 10.0;

struct FaultSchedule {
  std::vector<FaultEvent> events;

  void Add(const FaultEvent& event) { events.push_back(event); }
  bool empty() const { return events.empty(); }

  // True when any event has the given kind (e.g. whether kLoadSpike events
  // require a SpikedLoadProfile wrap — the runner checks this).
  bool HasKind(FaultKind kind) const;

  // Events ordered by the full (start, pod, kind, duration, magnitude)
  // tuple — the injector consumes this, so insertion order never affects the
  // run, even for schedules holding duplicate (start, pod, kind) events.
  std::vector<FaultEvent> Sorted() const;
};

// Knobs for drawing a random chaos schedule. Rates are expected event counts
// over the whole duration (a Poisson draw per kind); windows are uniform
// within the configured bounds. All draws flow through one seeded Rng, so
// the schedule is a pure function of (config, seed).
struct ChaosConfig {
  double duration_s = 600.0;
  int pod_count = 1;
  double expected_crashes = 1.0;
  double crash_min_down_s = 20.0;
  double crash_max_down_s = 60.0;
  double crash_failover_inflation = 0.3;
  double expected_telemetry_dropouts = 1.0;
  double dropout_min_s = 10.0;
  double dropout_max_s = 30.0;
  double expected_actuation_windows = 1.0;
  double actuation_window_s = 20.0;
  double actuation_drop_probability = 0.5;
  double expected_be_failures = 2.0;
  // Admission-hold windows (kBeAdmissionHold). Default 0 keeps the draw
  // sequence of pre-existing seeds untouched (Poisson(0) consumes nothing).
  double expected_admission_holds = 0.0;
  double hold_min_s = 10.0;
  double hold_max_s = 60.0;
  double expected_load_spikes = 1.0;
  double spike_min_boost = 0.15;
  double spike_max_boost = 0.35;
  double spike_duration_s = 30.0;
  // Cluster-scope machine loss (kMachineFailure / kMachineRestart). Targets
  // are drawn from [0, machine_count); machine_count <= 0 disables both
  // draws even if the expected rates are set. Defaults 0 keep the draw
  // sequence of pre-existing seeds untouched (Poisson(0) consumes nothing).
  int machine_count = 0;
  double expected_machine_failures = 0.0;
  double expected_machine_restarts = 0.0;
  double restart_min_down_s = 10.0;
  double restart_max_down_s = 40.0;
};

FaultSchedule RandomFaultSchedule(const ChaosConfig& config, uint64_t seed);

}  // namespace rhythm

#endif  // RHYTHM_SRC_FAULT_FAULT_SCHEDULE_H_
