// Flash-crowd decorator over any LoadProfile.
//
// Layers the kLoadSpike events of a FaultSchedule onto a base profile: the
// offered load jumps by the spike's magnitude at its start and drains
// linearly over its duration (crowds arrive abruptly and disperse
// gradually). Pure function of time — wrapping a profile never perturbs any
// RNG stream, so spiked runs stay bit-reproducible.

#ifndef RHYTHM_SRC_FAULT_SPIKED_LOAD_PROFILE_H_
#define RHYTHM_SRC_FAULT_SPIKED_LOAD_PROFILE_H_

#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/workload/load_profile.h"

namespace rhythm {

class SpikedLoadProfile : public LoadProfile {
 public:
  // Keeps only the kLoadSpike events of `schedule`. `base` must outlive this
  // profile.
  SpikedLoadProfile(const LoadProfile* base, const FaultSchedule& schedule);

  double LoadAt(double t) const override;

  // Additive boost contributed by one spike at time t (0 outside its
  // window).
  static double SpikeBoostAt(const FaultEvent& spike, double t);

  int spike_count() const { return static_cast<int>(spikes_.size()); }

 private:
  const LoadProfile* base_;
  std::vector<FaultEvent> spikes_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_FAULT_SPIKED_LOAD_PROFILE_H_
