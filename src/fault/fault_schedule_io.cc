#include "src/fault/fault_schedule_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rhythm {

namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kPodCrash,        FaultKind::kTelemetryDropout,  FaultKind::kTelemetryFreeze,
    FaultKind::kActuationDrop,   FaultKind::kBeInstanceFailure, FaultKind::kLoadSpike,
    FaultKind::kBeAdmissionHold, FaultKind::kMachineFailure,    FaultKind::kMachineRestart,
};

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  for (FaultKind candidate : kAllKinds) {
    if (name == FaultKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::string FaultScheduleToText(const FaultSchedule& schedule) {
  std::ostringstream out;
  out << "# rhythm-fault-schedule v1\n";
  out << "# kind pod start_s duration_s magnitude\n";
  for (const FaultEvent& event : schedule.events) {
    out << FaultKindName(event.kind) << ' ' << event.pod << ' ' << FormatDouble(event.start_s)
        << ' ' << FormatDouble(event.duration_s) << ' ' << FormatDouble(event.magnitude) << '\n';
  }
  return out.str();
}

FaultSchedule FaultScheduleFromText(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip trailing CR (files may round-trip through CRLF tooling).
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind_name;
    FaultEvent event;
    if (!(fields >> kind_name >> event.pod >> event.start_s >> event.duration_s >>
          event.magnitude)) {
      throw std::invalid_argument("FaultScheduleFromText: line " + std::to_string(line_number) +
                                  " is not 'kind pod start duration magnitude': " + line);
    }
    if (!ParseFaultKind(kind_name, &event.kind)) {
      throw std::invalid_argument("FaultScheduleFromText: line " + std::to_string(line_number) +
                                  " has unknown fault kind '" + kind_name + "'");
    }
    std::string rest;
    if (fields >> rest) {
      throw std::invalid_argument("FaultScheduleFromText: line " + std::to_string(line_number) +
                                  " has trailing content '" + rest + "'");
    }
    schedule.Add(event);
  }
  return schedule;
}

void SaveFaultSchedule(const FaultSchedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveFaultSchedule: cannot open " + path);
  }
  out << FaultScheduleToText(schedule);
  if (!out.flush()) {
    throw std::runtime_error("SaveFaultSchedule: write failed for " + path);
  }
}

FaultSchedule LoadFaultSchedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadFaultSchedule: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return FaultScheduleFromText(text.str());
}

}  // namespace rhythm
