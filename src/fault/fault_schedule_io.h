// Text round-trip for FaultSchedule: the interchange format behind minimized
// chaos repros (tests/fault/repros/) and the chaos_fuzz CLI's --repro-out.
//
// One event per line, fields in schedule order:
//
//   # rhythm-fault-schedule v1
//   PodCrash 1 30 20 0.3            <- kind pod start_s duration_s magnitude
//   LoadSpike 0 55 20 0.25
//
// Doubles are printed with %.17g so a schedule survives Save/Load
// bit-exactly (the same trial replays bit-identically from the file). Blank
// lines and lines starting with '#' are ignored, which lets repro files
// carry human-readable context (and lets repro_io layer trial metadata on
// top of the same format).

#ifndef RHYTHM_SRC_FAULT_FAULT_SCHEDULE_IO_H_
#define RHYTHM_SRC_FAULT_FAULT_SCHEDULE_IO_H_

#include <string>

#include "src/fault/fault_schedule.h"

namespace rhythm {

// Serializes the schedule (in insertion order) to the text format above.
std::string FaultScheduleToText(const FaultSchedule& schedule);

// Parses the text format; throws std::invalid_argument naming the offending
// line on any malformed input (unknown kind, missing field, trailing junk).
FaultSchedule FaultScheduleFromText(const std::string& text);

// File variants. Save overwrites atomically enough for test use (plain
// ofstream); Load throws std::runtime_error when the file cannot be read.
void SaveFaultSchedule(const FaultSchedule& schedule, const std::string& path);
FaultSchedule LoadFaultSchedule(const std::string& path);

// Inverse of FaultKindName. Returns true and sets `kind` on a match.
bool ParseFaultKind(const std::string& name, FaultKind* kind);

}  // namespace rhythm

#endif  // RHYTHM_SRC_FAULT_FAULT_SCHEDULE_IO_H_
