// Dependency-free HTTP/1.1 message layer for rhythmd: an incremental
// request parser (bytes in, complete requests out — pipelining-aware) and a
// deterministic response renderer. No sockets here; src/serve/server.h owns
// the transport, which keeps this half trivially fuzzable (see
// tests/serve/http_parser_test.cc).
//
// Robustness contract: any byte stream either yields well-formed requests or
// drives the parser into a sticky error state carrying the 4xx/5xx status to
// answer with before closing — it never throws, never over-reads, and caps
// header and body sizes so a hostile peer cannot balloon memory.

#ifndef RHYTHM_SRC_SERVE_HTTP_H_
#define RHYTHM_SRC_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rhythm {

struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;      // request line + headers.
  size_t max_body_bytes = 4 * 1024 * 1024;  // Content-Length cap.
};

struct HttpRequest {
  std::string method;   // as sent (token charset enforced).
  std::string target;   // origin-form path, query string included.
  std::string version;  // "HTTP/1.1" or "HTTP/1.0".
  // Header fields in arrival order, names lower-cased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // after Connection / version defaulting.

  // First header named `lower_name` (must be lower-case); null when absent.
  const std::string* Header(const std::string& lower_name) const;
  // `target` with any ?query suffix removed — what routing matches on.
  std::string Path() const;
};

class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  // Appends raw bytes from the connection.
  void Feed(const char* data, size_t size) { buffer_.append(data, size); }

  enum class Status {
    kNeedMore,  // no complete request buffered yet.
    kRequest,   // *out holds the next request (pipelined calls keep going).
    kError,     // malformed stream; answer error_status() and close.
  };

  // Extracts the next complete request from the buffer. After kError the
  // parser is poisoned: resynchronizing inside a corrupt stream would risk
  // request smuggling, so every later call reports the same error.
  Status Next(HttpRequest* out);

  // HTTP status code describing the failure (400, 413, 431, 501, 505).
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

 private:
  Status Poison(int status, const std::string& what);

  HttpLimits limits_;
  std::string buffer_;
  int error_status_ = 0;
  std::string error_;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close = false;  // forces Connection: close on the wire.
};

// Convenience: a JSON error body ({"error": "..."}).
HttpResponse HttpError(int status, const std::string& message);

const char* HttpStatusText(int status);

// Renders status line + headers + body. Deterministic: emits only
// Content-Type, Content-Length and Connection — no Date — so identical
// responses are byte-identical across time and threads.
std::string RenderHttpResponse(const HttpResponse& response, bool keep_alive);

}  // namespace rhythm

#endif  // RHYTHM_SRC_SERVE_HTTP_H_
