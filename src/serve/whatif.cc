#include "src/serve/whatif.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/common/json.h"
#include "src/fault/fault_schedule_io.h"
#include "src/place/interference_score.h"
#include "src/place/placement_policy.h"

namespace rhythm {
namespace {

// "E-commerce" -> "ecommerce": the normalization behind name lookup.
std::string Normalize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

[[noreturn]] void Reject(const std::string& what) {
  throw std::invalid_argument("whatif: " + what);
}

// Typos in a what-if body should come back as 422s naming the key, not be
// silently ignored — a query that "works" while dropping its fault schedule
// is worse than one that fails loudly.
void RejectUnknownKeys(const JsonValue& object,
                       const std::vector<std::string>& allowed,
                       const char* context) {
  for (const auto& [key, value] : object.object) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      Reject(std::string(context) + ": unknown key \"" + key + "\"");
    }
  }
}

double RequireNumber(const JsonValue& object, const std::string& key,
                     const char* context) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    Reject(std::string(context) + ": \"" + key + "\" must be a number");
  }
  return value->number;
}

std::shared_ptr<const FaultSchedule> ParseFaults(const JsonValue& array,
                                                 const char* context) {
  if (!array.is_array()) {
    Reject(std::string(context) + ": \"faults\" must be an array");
  }
  FaultSchedule schedule;
  for (const JsonValue& entry : array.array) {
    if (!entry.is_object()) {
      Reject(std::string(context) + ": fault entries must be objects");
    }
    RejectUnknownKeys(entry,
                      {"kind", "pod", "machine", "start_s", "duration_s",
                       "magnitude"},
                      "fault");
    const std::string kind_name = entry.StringOr("kind", "");
    FaultEvent event;
    if (!ParseFaultKind(kind_name, &event.kind)) {
      Reject("fault: unknown kind \"" + kind_name + "\"");
    }
    // "machine" is the cluster-scope spelling of the same field.
    event.pod = static_cast<int>(entry.IntOr("pod", entry.IntOr("machine", 0)));
    event.start_s = entry.NumberOr("start_s", 0.0);
    event.duration_s = entry.NumberOr("duration_s", 0.0);
    event.magnitude = entry.NumberOr("magnitude", 0.0);
    schedule.Add(event);
  }
  if (schedule.events.empty()) {
    return nullptr;
  }
  return std::make_shared<FaultSchedule>(std::move(schedule));
}

ControlHardening ParseHardening(const JsonValue& object) {
  if (!object.is_object()) {
    Reject("\"hardening\" must be an object");
  }
  RejectUnknownKeys(object, {"readmission_jitter", "oscillation_guard"},
                    "hardening");
  ControlHardening hardening;
  hardening.readmission_jitter = object.BoolOr("readmission_jitter", false);
  hardening.oscillation_guard = object.BoolOr("oscillation_guard", false);
  return hardening;
}

std::shared_ptr<const LoadProfile> ParseLoadProfile(const JsonValue& object) {
  if (!object.is_object()) {
    Reject("\"load_profile\" must be an object");
  }
  RejectUnknownKeys(object,
                    {"kind", "load", "duration_s", "min_load", "max_load"},
                    "load_profile");
  const std::string kind = Normalize(object.StringOr("kind", ""));
  if (kind == "constant") {
    return std::make_shared<ConstantLoad>(
        RequireNumber(object, "load", "load_profile"));
  }
  if (kind == "diurnal") {
    return std::make_shared<DiurnalTrace>(
        RequireNumber(object, "duration_s", "load_profile"),
        RequireNumber(object, "min_load", "load_profile"),
        RequireNumber(object, "max_load", "load_profile"));
  }
  Reject("load_profile: kind must be \"constant\" or \"diurnal\"");
}

RunRequest ParseTrial(const JsonValue& body) {
  RejectUnknownKeys(body,
                    {"kind", "app", "be", "controller", "seed", "load",
                     "warmup_s", "measure_s", "label", "load_profile",
                     "faults", "thresholds", "hardening", "invariants"},
                    "trial");
  RunRequest request;
  const std::string app = body.StringOr("app", "");
  if (!app.empty() && !ParseLcAppKindName(app, &request.app)) {
    Reject("unknown app \"" + app + "\"");
  }
  const std::string be = body.StringOr("be", "");
  if (!be.empty() && !ParseBeJobKindName(be, &request.be)) {
    Reject("unknown be \"" + be + "\"");
  }
  const std::string controller = body.StringOr("controller", "");
  if (!controller.empty() &&
      !ParseControllerKindName(controller, &request.controller)) {
    Reject("unknown controller \"" + controller + "\"");
  }
  request.seed = static_cast<uint64_t>(body.IntOr("seed", 11));
  request.load = body.NumberOr("load", request.load);
  request.warmup_s = body.NumberOr("warmup_s", request.warmup_s);
  request.measure_s = body.NumberOr("measure_s", request.measure_s);
  request.label = body.StringOr("label", "");
  if (const JsonValue* profile = body.Find("load_profile")) {
    request.profile = ParseLoadProfile(*profile);
  }
  if (const JsonValue* faults = body.Find("faults")) {
    request.faults = ParseFaults(*faults, "trial");
  }
  if (const JsonValue* hardening = body.Find("hardening")) {
    request.hardening = ParseHardening(*hardening);
  }
  if (const JsonValue* thresholds = body.Find("thresholds")) {
    if (!thresholds->is_array()) {
      Reject("\"thresholds\" must be an array of {loadlimit, slacklimit}");
    }
    for (const JsonValue& entry : thresholds->array) {
      if (!entry.is_object()) {
        Reject("threshold entries must be objects");
      }
      RejectUnknownKeys(entry, {"loadlimit", "slacklimit"}, "thresholds");
      ServpodThresholds pod;
      pod.loadlimit = RequireNumber(entry, "loadlimit", "thresholds");
      pod.slacklimit = RequireNumber(entry, "slacklimit", "thresholds");
      request.thresholds.push_back(pod);
    }
  }
  if (const JsonValue* invariants = body.Find("invariants")) {
    const std::string mode =
        invariants->is_string() ? Normalize(invariants->string) : "";
    if (mode == "collect") {
      request.verify.mode = InvariantMode::kCollect;
    } else if (mode != "off") {
      Reject("\"invariants\" must be \"off\" or \"collect\"");
    }
  }
  return request;
}

ClusterSpec ParseClusterSpec(const JsonValue& body) {
  const int machines = static_cast<int>(body.IntOr("machines", 32));
  if (body.BoolOr("synthetic", false)) {
    const uint64_t spec_seed = static_cast<uint64_t>(
        body.IntOr("synthetic_seed", body.IntOr("seed", 11)));
    return SyntheticClusterSpec(machines, spec_seed);
  }
  const JsonValue* demand = body.Find("lc_demand");
  if (demand == nullptr) {
    return DefaultEvalClusterSpec(machines);
  }
  if (!demand->is_array() || demand->array.empty()) {
    Reject("\"lc_demand\" must be a non-empty array");
  }
  ClusterSpec spec;
  spec.machines = machines;
  for (const JsonValue& entry : demand->array) {
    if (!entry.is_object()) {
      Reject("lc_demand entries must be objects");
    }
    RejectUnknownKeys(entry, {"app", "count", "load"}, "lc_demand");
    LcGroupDemand group;
    const std::string app = entry.StringOr("app", "");
    if (!ParseLcAppKindName(app, &group.app)) {
      Reject("lc_demand: unknown app \"" + app + "\"");
    }
    group.count = static_cast<int>(entry.IntOr("count", 1));
    group.load = entry.NumberOr("load", group.load);
    spec.lc_demand.push_back(group);
  }
  if (const JsonValue* backlog = body.Find("be_backlog")) {
    if (!backlog->is_array()) {
      Reject("\"be_backlog\" must be an array");
    }
    for (const JsonValue& entry : backlog->array) {
      if (!entry.is_object()) {
        Reject("be_backlog entries must be objects");
      }
      RejectUnknownKeys(entry, {"be", "weight"}, "be_backlog");
      BeBacklogShare share;
      const std::string be = entry.StringOr("be", "");
      if (!ParseBeJobKindName(be, &share.be)) {
        Reject("be_backlog: unknown be \"" + be + "\"");
      }
      share.weight = entry.NumberOr("weight", share.weight);
      spec.be_backlog.push_back(share);
    }
  }
  return spec;
}

ClusterRunRequest ParseCluster(const JsonValue& body) {
  RejectUnknownKeys(body,
                    {"kind", "machines", "synthetic", "synthetic_seed",
                     "lc_demand", "be_backlog", "policy", "controller", "seed",
                     "warmup_s", "measure_s", "epochs", "epoch_load_scale",
                     "faults", "supervisor", "hardening", "label",
                     "include_groups"},
                    "cluster");
  ClusterRunRequest request;
  request.spec = ParseClusterSpec(body);
  request.policy = body.StringOr("policy", request.policy);
  const std::string controller = body.StringOr("controller", "");
  if (!controller.empty() &&
      !ParseControllerKindName(controller, &request.controller)) {
    Reject("unknown controller \"" + controller + "\"");
  }
  request.seed = static_cast<uint64_t>(body.IntOr("seed", 11));
  request.warmup_s = body.NumberOr("warmup_s", request.warmup_s);
  request.measure_s = body.NumberOr("measure_s", request.measure_s);
  request.epochs = static_cast<int>(body.IntOr("epochs", request.epochs));
  request.label = body.StringOr("label", "");
  if (const JsonValue* scales = body.Find("epoch_load_scale")) {
    if (!scales->is_array()) {
      Reject("\"epoch_load_scale\" must be an array of numbers");
    }
    for (const JsonValue& entry : scales->array) {
      if (!entry.is_number()) {
        Reject("\"epoch_load_scale\" must be an array of numbers");
      }
      request.epoch_load_scale.push_back(entry.number);
    }
  }
  if (const JsonValue* hardening = body.Find("hardening")) {
    request.hardening = ParseHardening(*hardening);
  }
  if (const JsonValue* faults = body.Find("faults")) {
    request.faults = ParseFaults(*faults, "cluster");
  }
  if (const JsonValue* supervisor = body.Find("supervisor")) {
    if (supervisor->is_bool()) {
      request.supervisor.enabled = supervisor->boolean;
    } else if (supervisor->is_object()) {
      RejectUnknownKeys(*supervisor,
                        {"enabled", "migration_budget",
                         "readmission_backoff_s", "degraded_dead_fraction"},
                        "supervisor");
      request.supervisor.enabled = supervisor->BoolOr("enabled", true);
      if (const JsonValue* budget = supervisor->Find("migration_budget")) {
        if (!budget->is_number()) {
          Reject("supervisor: \"migration_budget\" must be a number");
        }
        request.supervisor.migration_budget = static_cast<int>(budget->number);
      }
      request.supervisor.readmission_backoff_s = supervisor->NumberOr(
          "readmission_backoff_s", request.supervisor.readmission_backoff_s);
      request.supervisor.degraded_dead_fraction = supervisor->NumberOr(
          "degraded_dead_fraction", request.supervisor.degraded_dead_fraction);
    } else {
      Reject("\"supervisor\" must be a bool or an object");
    }
  }
  return request;
}

}  // namespace

bool ParseLcAppKindName(const std::string& name, LcAppKind* out) {
  const std::string wanted = Normalize(name);
  for (LcAppKind kind : AllLcAppKinds()) {
    if (Normalize(LcAppKindName(kind)) == wanted) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseBeJobKindName(const std::string& name, BeJobKind* out) {
  const std::string wanted = Normalize(name);
  for (BeJobKind kind : AllBeJobKinds()) {
    if (Normalize(BeJobKindName(kind)) == wanted) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseControllerKindName(const std::string& name, ControllerKind* out) {
  const std::string wanted = Normalize(name);
  for (ControllerKind kind :
       {ControllerKind::kNone, ControllerKind::kRhythm, ControllerKind::kHeracles}) {
    if (Normalize(ControllerKindName(kind)) == wanted) {
      *out = kind;
      return true;
    }
  }
  return false;
}

WhatIfQuery ParseWhatIfQuery(const JsonValue& body) {
  if (!body.is_object()) {
    Reject("body must be a JSON object");
  }
  WhatIfQuery query;
  const std::string kind = Normalize(body.StringOr("kind", "trial"));
  if (kind == "trial") {
    query.kind = WhatIfQuery::Kind::kTrial;
    query.trial = ParseTrial(body);
  } else if (kind == "cluster") {
    query.kind = WhatIfQuery::Kind::kCluster;
    query.cluster = ParseCluster(body);
    query.include_groups = body.BoolOr("include_groups", false);
  } else {
    Reject("\"kind\" must be \"trial\" or \"cluster\"");
  }
  return query;
}

std::string RunSummaryJson(const RunSummary& summary) {
  JsonWriter w;
  w.BeginObject()
      .Key("emu").Number(summary.emu)
      .Key("lc_throughput").Number(summary.lc_throughput)
      .Key("be_throughput").Number(summary.be_throughput)
      .Key("cpu_util").Number(summary.cpu_util)
      .Key("membw_util").Number(summary.membw_util)
      .Key("worst_tail_ms").Number(summary.worst_tail_ms)
      .Key("worst_tail_ratio").Number(summary.worst_tail_ratio)
      .Key("sla_violations").UInt(summary.sla_violations)
      .Key("be_kills").UInt(summary.be_kills)
      .Key("crashes").UInt(summary.crashes)
      .Key("crash_be_losses").UInt(summary.crash_be_losses)
      .Key("be_withdrawals").UInt(summary.be_withdrawals)
      .Key("stale_ticks").UInt(summary.stale_ticks)
      .Key("failed_actuations").UInt(summary.failed_actuations)
      .Key("backoff_holds").UInt(summary.backoff_holds)
      .Key("jitter_holds").UInt(summary.jitter_holds)
      .Key("oscillation_trips").UInt(summary.oscillation_trips)
      .Key("slack_violation_ticks").UInt(summary.slack_violation_ticks)
      .Key("recovery_s").Number(summary.recovery_s)
      .Key("recovered").Bool(summary.recovered)
      .Key("invariant_violations_total").UInt(summary.invariant_violations_total)
      .Key("pods").BeginArray();
  for (const PodSummary& pod : summary.pods) {
    w.BeginObject()
        .Key("be_throughput").Number(pod.be_throughput)
        .Key("cpu_util").Number(pod.cpu_util)
        .Key("membw_util").Number(pod.membw_util)
        .Key("be_instances").Number(pod.be_instances)
        .EndObject();
  }
  w.EndArray().EndObject();
  return std::move(w).str();
}

std::string ClusterSummaryJson(const ClusterSummary& summary,
                               bool include_groups) {
  JsonWriter w;
  w.BeginObject()
      .Key("policy").String(summary.policy)
      .Key("machines").Int(summary.machines)
      .Key("machines_used").Int(summary.machines_used)
      .Key("epochs").Int(summary.epochs)
      .Key("groups_total").Int(summary.groups_total)
      .Key("groups_placed").Int(summary.groups_placed)
      .Key("groups_unplaced").Int(summary.groups_unplaced)
      .Key("solo_groups").Int(summary.solo_groups)
      .Key("emu").Number(summary.emu)
      .Key("lc_throughput").Number(summary.lc_throughput)
      .Key("be_throughput").Number(summary.be_throughput)
      .Key("cpu_util").Number(summary.cpu_util)
      .Key("membw_util").Number(summary.membw_util)
      .Key("sla_violations").UInt(summary.sla_violations)
      .Key("be_kills").UInt(summary.be_kills)
      .Key("slo_violation_rate").Number(summary.slo_violation_rate)
      .Key("worst_tail_ratio").Number(summary.worst_tail_ratio)
      .Key("placement_churn").Int(summary.placement_churn)
      .Key("machines_failed").Int(summary.machines_failed)
      .Key("machines_restarted").Int(summary.machines_restarted)
      .Key("machines_down_end").Int(summary.machines_down_end)
      .Key("groups_disrupted").Int(summary.groups_disrupted)
      .Key("groups_failed_over").Int(summary.groups_failed_over)
      .Key("groups_lost").Int(summary.groups_lost)
      .Key("pods_migrated").Int(summary.pods_migrated)
      .Key("down_group_seconds").Number(summary.down_group_seconds)
      .Key("worst_failover_latency_s").Number(summary.worst_failover_latency_s)
      .Key("degraded_barriers").Int(summary.degraded_barriers)
      .Key("cluster_invariant_violations_total")
      .UInt(summary.cluster_invariant_violations_total)
      .Key("per_app").BeginArray();
  for (const AppClusterStats& app : summary.per_app) {
    w.BeginObject()
        .Key("app").String(LcAppKindName(app.app))
        .Key("trials").Int(app.trials)
        .Key("unplaced").Int(app.unplaced)
        .Key("emu").Number(app.emu)
        .Key("lc_throughput").Number(app.lc_throughput)
        .Key("sla_violations").UInt(app.sla_violations)
        .Key("slo_violation_rate").Number(app.slo_violation_rate)
        .Key("worst_tail_ratio").Number(app.worst_tail_ratio)
        .EndObject();
  }
  w.EndArray();
  if (include_groups) {
    w.Key("groups").BeginArray();
    for (const GroupOutcome& group : summary.groups) {
      w.BeginObject()
          .Key("epoch").Int(group.epoch)
          .Key("group").Int(group.group)
          .Key("app").String(LcAppKindName(group.app))
          .Key("placed").Bool(group.placed)
          .Key("solo").Bool(group.run_solo)
          .Key("first_machine").Int(group.first_machine)
          .Key("pods").Int(group.pods)
          .Key("load").Number(group.load)
          .Key("score").Number(group.score)
          .Key("incarnation").Int(group.incarnation)
          .Key("start_s").Number(group.start_s)
          .Key("served_measure_s").Number(group.served_measure_s)
          .Key("disrupted").Bool(group.disrupted)
          .Key("emu").Number(group.summary.emu);
      if (group.placed && !group.run_solo) {
        w.Key("be").String(BeJobKindName(group.be));
      }
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return std::move(w).str();
}

std::string WhatIfResponseJson(const WhatIfQuery& query,
                               const RunSummary& summary) {
  JsonWriter w;
  w.BeginObject()
      .Key("kind").String("trial")
      .Key("app").String(LcAppKindName(query.trial.app))
      .Key("be").String(BeJobKindName(query.trial.be))
      .Key("controller").String(ControllerKindName(query.trial.controller))
      .Key("seed").UInt(query.trial.seed)
      .Key("warmup_s").Number(query.trial.warmup_s)
      .Key("measure_s").Number(query.trial.measure_s);
  if (!query.trial.label.empty()) {
    w.Key("label").String(query.trial.label);
  }
  w.Key("summary").Raw(RunSummaryJson(summary)).EndObject();
  return std::move(w).str();
}

std::string WhatIfResponseJson(const WhatIfQuery& query,
                               const ClusterSummary& summary) {
  JsonWriter w;
  w.BeginObject()
      .Key("kind").String("cluster")
      .Key("policy").String(query.cluster.policy)
      .Key("controller").String(ControllerKindName(query.cluster.controller))
      .Key("seed").UInt(query.cluster.seed)
      .Key("epochs").Int(query.cluster.epochs)
      .Key("warmup_s").Number(query.cluster.warmup_s)
      .Key("measure_s").Number(query.cluster.measure_s);
  if (!query.cluster.label.empty()) {
    w.Key("label").String(query.cluster.label);
  }
  w.Key("summary")
      .Raw(ClusterSummaryJson(summary, query.include_groups))
      .EndObject();
  return std::move(w).str();
}

std::string PlacementsResponseJson(const JsonValue& body) {
  if (!body.is_object()) {
    Reject("body must be a JSON object");
  }
  RejectUnknownKeys(body,
                    {"machines", "synthetic", "synthetic_seed", "lc_demand",
                     "be_backlog", "seed", "policies", "load_scale", "epoch"},
                    "placements");
  const ClusterSpec spec = ParseClusterSpec(body);
  const uint64_t seed = static_cast<uint64_t>(body.IntOr("seed", 11));
  const double load_scale = body.NumberOr("load_scale", 1.0);
  const int epoch = static_cast<int>(body.IntOr("epoch", 0));

  std::vector<std::string> policies = PlacementPolicyNames();
  if (const JsonValue* names = body.Find("policies")) {
    if (!names->is_array() || names->array.empty()) {
      Reject("\"policies\" must be a non-empty array of names");
    }
    policies.clear();
    for (const JsonValue& entry : names->array) {
      if (!entry.is_string()) {
        Reject("\"policies\" must be a non-empty array of names");
      }
      policies.push_back(entry.string);
    }
  }

  // The same view the cluster engine builds for an epoch (loads scaled,
  // quota expanded), with models cached per app.
  ClusterView view;
  view.spec = &spec;
  view.epoch = epoch;
  view.load_scale = load_scale;
  view.pending = ExpandGroups(spec);
  for (PendingGroup& group : view.pending) {
    group.load = std::clamp(group.load * load_scale, 0.0, 1.0);
  }
  view.be_quota = ExpandBeQuota(spec, static_cast<int>(view.pending.size()));
  auto models = std::make_shared<std::map<LcAppKind, AppPlacementModel>>();
  view.model = [models](LcAppKind app) -> const AppPlacementModel& {
    auto found = models->find(app);
    if (found == models->end()) {
      found = models->emplace(app, DefaultPlacementModel(app)).first;
    }
    return found->second;
  };

  JsonWriter w;
  w.BeginObject()
      .Key("machines").Int(spec.machines)
      .Key("groups").Int(spec.TotalGroups())
      .Key("pods").Int(spec.TotalPods())
      .Key("seed").UInt(seed)
      .Key("load_scale").Number(load_scale)
      .Key("policies").BeginArray();
  for (const std::string& name : policies) {
    std::unique_ptr<PlacementPolicy> policy = MakePlacementPolicy(name, seed);
    policy->OnTick(view);
    const std::vector<PlacementDecision> decisions = policy->Decide(view);
    if (decisions.size() != view.pending.size()) {
      Reject("policy \"" + name + "\" returned " +
             std::to_string(decisions.size()) + " decisions for " +
             std::to_string(view.pending.size()) + " groups");
    }
    // Fault-free first-fit is the plain cursor allocation — the exact
    // machines the cluster engine would hand these decisions.
    int cursor = 0;
    int placed = 0;
    JsonWriter decisions_json;
    decisions_json.BeginArray();
    for (const PlacementDecision& decision : decisions) {
      if (decision.group < 0 ||
          decision.group >= static_cast<int>(view.pending.size())) {
        Reject("policy \"" + name + "\" decided an unknown group");
      }
      const PendingGroup& group = view.pending[static_cast<size_t>(decision.group)];
      const bool fits = cursor + group.pods <= spec.machines;
      decisions_json.BeginObject()
          .Key("group").Int(group.group)
          .Key("app").String(LcAppKindName(group.app))
          .Key("pods").Int(group.pods)
          .Key("load").Number(group.load)
          .Key("solo").Bool(decision.run_solo)
          .Key("score").Number(decision.score)
          .Key("placed").Bool(fits)
          .Key("first_machine").Int(fits ? cursor : -1);
      if (!decision.run_solo) {
        decisions_json.Key("be").String(BeJobKindName(decision.be));
      }
      decisions_json.EndObject();
      if (fits) {
        cursor += group.pods;
        ++placed;
      }
    }
    decisions_json.EndArray();
    w.BeginObject()
        .Key("policy").String(name)
        .Key("groups_placed").Int(placed)
        .Key("machines_used").Int(cursor)
        .Key("decisions").Raw(decisions_json.str())
        .EndObject();
  }
  w.EndArray().EndObject();
  return std::move(w).str();
}

}  // namespace rhythm
