// JSON body codec for the serving daemon: a small recursive-descent parser
// producing a JsonValue tree. Strict where it matters for a network-facing
// endpoint — rejects trailing garbage, unterminated literals, invalid
// numbers (NaN/Inf/hex), bad escapes, and nesting past a fixed depth cap so
// hostile bodies cannot overflow the stack. Writing goes through
// src/common/json.h (JsonWriter), shared with the obs exporters.

#ifndef RHYTHM_SRC_SERVE_JSON_H_
#define RHYTHM_SRC_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rhythm {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys are rejected at parse time.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  // Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed member accessors with defaults — the idiom request translation
  // uses for optional fields. A present member of the wrong type is NOT
  // forgiven; callers that care use Find() + RequireX below.
  double NumberOr(const std::string& key, double fallback) const;
  int64_t IntOr(const std::string& key, int64_t fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;
};

// Deepest container nesting the parser accepts (arrays + objects combined).
inline constexpr int kMaxJsonDepth = 64;

// Parses `text` as one JSON document. Returns true and fills `out` on
// success; false with a position-stamped message in `error` otherwise.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace rhythm

#endif  // RHYTHM_SRC_SERVE_JSON_H_
