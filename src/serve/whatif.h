// What-if query translation: JSON bodies in, RunRequest/ClusterRunRequest
// out, summaries back as JSON. This is the seam that makes served results
// provably equal to batch results — the daemon's HTTP handler and the
// `rhythmd --oneshot` batch path call exactly these functions, and every
// double is rendered with the shared %.17g writer (src/common/json.h), so a
// served body and the equivalent batch run's body are byte-identical at the
// same seed.
//
// Schema violations throw std::invalid_argument with a human-readable
// message; the daemon maps them to 422 responses.

#ifndef RHYTHM_SRC_SERVE_WHATIF_H_
#define RHYTHM_SRC_SERVE_WHATIF_H_

#include <string>

#include "src/place/cluster_engine.h"
#include "src/runner/run_request.h"
#include "src/serve/json.h"

namespace rhythm {

// One parsed /v1/whatif body: either a single co-location trial or a full
// cluster evaluation ("kind": "trial" | "cluster", default trial).
struct WhatIfQuery {
  enum class Kind { kTrial, kCluster };
  Kind kind = Kind::kTrial;
  RunRequest trial;
  ClusterRunRequest cluster;
  // Cluster responses include the per-group outcome list only on request
  // ("include_groups": true) — large clusters make it big.
  bool include_groups = false;
};

// Catalog-name lookup, normalized (case-insensitive, punctuation ignored):
// "e-commerce", "Ecommerce" and "E-COMMERCE" all name LcAppKind::kEcommerce.
bool ParseLcAppKindName(const std::string& name, LcAppKind* out);
bool ParseBeJobKindName(const std::string& name, BeJobKind* out);
bool ParseControllerKindName(const std::string& name, ControllerKind* out);

// Parses a /v1/whatif body (already JSON-decoded).
WhatIfQuery ParseWhatIfQuery(const JsonValue& body);

// Summary rendering (pure, %.17g doubles).
std::string RunSummaryJson(const RunSummary& summary);
std::string ClusterSummaryJson(const ClusterSummary& summary, bool include_groups);

// Full response bodies: the echoed request header + the summary.
std::string WhatIfResponseJson(const WhatIfQuery& query, const RunSummary& summary);
std::string WhatIfResponseJson(const WhatIfQuery& query,
                               const ClusterSummary& summary);

// /v1/placements: evaluates registered placement policies on the posted
// spec — placement decisions only, no trials, so it answers in microseconds.
// Body: {"machines", "synthetic"|"lc_demand"+"be_backlog", "seed",
// "policies": [names], "load_scale", "epoch"}. Returns the response JSON.
std::string PlacementsResponseJson(const JsonValue& body);

}  // namespace rhythm

#endif  // RHYTHM_SRC_SERVE_WHATIF_H_
