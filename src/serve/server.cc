#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rhythm {
namespace {

// Writes the whole buffer, riding out EINTR and partial writes. Best-effort:
// a peer that hangs up mid-response just loses the tail.
void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void SetRecvTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::HttpServer(ServerOptions options) : options_(std::move(options)) {
  if (options_.threads < 1) {
    options_.threads = 1;
  }
  if (options_.queue_depth < 1) {
    options_.queue_depth = 1;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& path,
                        HttpHandler handler) {
  routes_[path][method] = std::move(handler);
}

bool HttpServer::Start(std::string* error) {
  const auto fail = [this, error](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return fail("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind(" + options_.host + ":" + std::to_string(options_.port) + ")");
  }
  if (::listen(listen_fd_, options_.queue_depth) != 0) {
    return fail("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_ = true;
  // Closing the listener unblocks accept(). The acceptor is joined BEFORE
  // the workers are released: once it is gone no new connection can slip
  // into the queue after the last worker decided the queue was drained.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed (Stop) or fatal — either way, stop accepting.
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetRecvTimeout(fd, options_.idle_timeout_s);

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() < static_cast<size_t>(options_.queue_depth)) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      ++accepted_;
      queue_cv_.notify_one();
    } else {
      // Admission limit: shed load with an immediate 503 instead of letting
      // the backlog grow without bound.
      ++rejected_;
      HttpResponse overloaded = HttpError(503, "server overloaded, retry later");
      overloaded.close = true;
      WriteAll(fd, RenderHttpResponse(overloaded, /*keep_alive=*/false));
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty() || stopping_; });
      if (pending_.empty()) {
        return;  // stopping and fully drained.
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  HttpRequestParser parser(options_.limits);
  char buffer[8192];
  bool alive = true;
  while (alive) {
    // Drain every already-buffered (pipelined) request before reading more.
    for (;;) {
      HttpRequest request;
      const HttpRequestParser::Status status = parser.Next(&request);
      if (status == HttpRequestParser::Status::kNeedMore) {
        break;
      }
      if (status == HttpRequestParser::Status::kError) {
        HttpResponse response = HttpError(parser.error_status(), parser.error());
        response.close = true;
        WriteAll(fd, RenderHttpResponse(response, /*keep_alive=*/false));
        alive = false;
        break;
      }
      const HttpResponse response = Route(request);
      ++served_;
      const bool keep = request.keep_alive && !response.close;
      WriteAll(fd, RenderHttpResponse(response, keep));
      if (!keep) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      parser.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // Peer closed, errored, or sat idle past the receive timeout. During a
    // drain the timeout doubles as the keep-alive grace period.
    break;
  }
  ::close(fd);
}

HttpResponse HttpServer::Route(const HttpRequest& request) {
  const auto by_path = routes_.find(request.Path());
  if (by_path == routes_.end()) {
    return HttpError(404, "no such endpoint: " + request.Path());
  }
  const auto by_method = by_path->second.find(request.method);
  if (by_method == by_path->second.end()) {
    return HttpError(405, request.method + " not supported on " + request.Path());
  }
  try {
    return by_method->second(request);
  } catch (const std::exception& error) {
    return HttpError(500, error.what());
  } catch (...) {
    return HttpError(500, "unhandled handler exception");
  }
}

}  // namespace rhythm
