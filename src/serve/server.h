// HttpServer: a dependency-free HTTP/1.1 server over POSIX sockets — one
// acceptor thread feeding a bounded connection queue drained by a worker
// threadpool. The shape that transfers to any serving stack:
//
//   * Admission control — when the queue is full the acceptor answers 503
//     immediately and closes, so overload degrades into fast rejections
//     instead of unbounded queueing (rejections are counted).
//   * Keep-alive + pipelining — a worker owns a connection until it goes
//     idle, errors, or asks to close; the incremental parser hands over
//     back-to-back requests without waiting for separate reads.
//   * Graceful drain — Stop() closes the listener, lets workers finish
//     queued and in-flight requests, then joins every thread. In-flight
//     queries are never cut off mid-response.
//
// Handlers run on worker threads and must be thread-safe; the server itself
// never interprets bodies. Routing is exact-match on (method, path) with
// automatic 404/405 answers.

#ifndef RHYTHM_SRC_SERVE_SERVER_H_
#define RHYTHM_SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/http.h"

namespace rhythm {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;        // 0: kernel-assigned ephemeral port (see port()).
  int threads = 4;     // worker threads.
  int queue_depth = 64;  // accepted-but-unserved connection cap (admission).
  HttpLimits limits;
  // Per-read timeout on idle keep-alive connections; bounds how long drain
  // can wait on a silent peer.
  double idle_timeout_s = 5.0;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  explicit HttpServer(ServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact (method, path) matches. Must be called
  // before Start().
  void Handle(const std::string& method, const std::string& path,
              HttpHandler handler);

  // Binds, listens and spawns the acceptor + workers. False with a
  // diagnostic in `error` when the socket setup fails.
  bool Start(std::string* error);

  // Graceful drain: stop accepting, serve everything queued and in-flight,
  // join all threads. Idempotent.
  void Stop();

  // The bound port (meaningful after Start(); equals options.port unless it
  // was 0).
  int port() const { return port_; }
  bool running() const { return running_; }

  // Lifetime counters (monotone, thread-safe).
  uint64_t connections_accepted() const { return accepted_; }
  uint64_t connections_rejected() const { return rejected_; }
  uint64_t requests_served() const { return served_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  HttpResponse Route(const HttpRequest& request);

  ServerOptions options_;
  std::map<std::string, std::map<std::string, HttpHandler>> routes_;  // path -> method.

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted connection fds awaiting a worker.

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SERVE_SERVER_H_
