// RhythmDaemon: the long-lived serving process behind `rhythmd`. It wires
// the HTTP server to the what-if evaluator and keeps the only state a
// serving instance accumulates:
//
//   * a warm threshold store — per-app ServpodThresholds copied out of
//     CachedAppThresholds the first time an app is served (or prewarmed at
//     startup), so a snapshot can carry the expensive one-time
//     characterization across restarts;
//   * audit counters — a monotone query sequence number plus per-endpoint
//     served/error counts, persisted with the snapshot so a restored daemon
//     keeps numbering where it left off;
//   * latency histograms — per-endpoint P² p50/p95/p99 under /metrics.
//
// Endpoints: POST /v1/whatif, GET|POST /v1/placements, GET /metrics
// (Prometheus text), GET /healthz, POST /v1/snapshot, POST /v1/restore.
//
// Determinism: a served /v1/whatif body is byte-identical to what
// EvalWhatIfJson returns for the same body in batch mode (`rhythmd
// --oneshot`) — both paths run the same parse -> Run()/RunCluster -> render
// pipeline, and nothing time- or instance-dependent leaks into response
// bodies (no Date headers, no timestamps; wall time appears only under
// /metrics).

#ifndef RHYTHM_SRC_SERVE_DAEMON_H_
#define RHYTHM_SRC_SERVE_DAEMON_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/p2_quantile.h"
#include "src/control/thresholds.h"
#include "src/runner/runner.h"
#include "src/serve/server.h"
#include "src/serve/whatif.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

// Mutex-guarded per-app threshold copies. Get() falls through to the
// process-wide CachedAppThresholds (deriving on first use) and memoizes the
// pod vector here; Put() injects restored values so a snapshot-warmed daemon
// serves trials without re-deriving.
class ThresholdStore {
 public:
  std::vector<ServpodThresholds> Get(LcAppKind app);
  void Put(LcAppKind app, std::vector<ServpodThresholds> pods);
  // Stable (enum-ordered) copy of everything stored, for snapshots.
  std::vector<std::pair<LcAppKind, std::vector<ServpodThresholds>>> All() const;

 private:
  mutable std::mutex mutex_;
  std::map<LcAppKind, std::vector<ServpodThresholds>> store_;
};

struct WhatIfEvalOptions {
  RunnerOptions runner;
  // When set, trial queries that name no explicit thresholds are filled from
  // the store (same values CachedAppThresholds would supply — results stay
  // bit-identical to a store-less run).
  ThresholdStore* warm = nullptr;
  // When non-empty, the query runs observed and its Recording is exported
  // here as a JSONL audit record. Recording is RNG-neutral: the response
  // body is unchanged.
  std::string audit_jsonl;
};

// The shared batch/served evaluation path: JSON body in, response JSON out.
// Throws std::invalid_argument on malformed input — messages starting
// "json:" are syntax errors (HTTP 400), the rest are schema errors (422).
std::string EvalWhatIfJson(const std::string& body,
                           const WhatIfEvalOptions& options);

struct DaemonOptions {
  ServerOptions server;
  RunnerOptions runner;
  // Default snapshot file for /v1/snapshot and /v1/restore bodies that name
  // no "path". Empty: those endpoints require an explicit path.
  std::string snapshot_path;
  // Directory for per-query audit recordings (whatif-<seq>.jsonl). Empty:
  // auditing off.
  std::string audit_dir;
  // Apps whose thresholds are derived (or disk-cache-loaded) before the
  // server opens its port, so first queries don't pay characterization.
  std::vector<LcAppKind> prewarm;
};

class RhythmDaemon {
 public:
  explicit RhythmDaemon(DaemonOptions options);
  ~RhythmDaemon();

  RhythmDaemon(const RhythmDaemon&) = delete;
  RhythmDaemon& operator=(const RhythmDaemon&) = delete;

  // Prewarms thresholds, registers every route and starts the server.
  bool Start(std::string* error);
  // Graceful drain (delegates to HttpServer::Stop); idempotent.
  void Stop();

  int port() const { return server_.port(); }
  const HttpServer& server() const { return server_; }
  ThresholdStore& warm() { return warm_; }
  uint64_t audit_seq() const;

  // Daemon state to/from a JSON file via stage + rename (a concurrent reader
  // sees the old snapshot or the new one, never a torn write). Also used by
  // the --snapshot/--restore flags, so they work without HTTP round trips.
  bool SaveSnapshot(const std::string& path, std::string* error);
  bool RestoreSnapshot(const std::string& path, std::string* error);

  // The /metrics body: Prometheus text exposition.
  std::string MetricsText() const;

 private:
  struct EndpointStats {
    uint64_t served = 0;  // 2xx responses.
    uint64_t errors = 0;  // 4xx/5xx responses.
    // Streaming latency quantiles in milliseconds (P²; O(1) memory).
    P2Quantile p50{0.50};
    P2Quantile p95{0.95};
    P2Quantile p99{0.99};

    EndpointStats() = default;
  };

  // Wraps `handler` with latency/outcome accounting under `endpoint`.
  HttpHandler Instrument(const std::string& endpoint,
                         HttpHandler handler);

  HttpResponse HandleWhatIf(const HttpRequest& request);
  HttpResponse HandlePlacements(const HttpRequest& request);
  HttpResponse HandleSnapshot(const HttpRequest& request);
  HttpResponse HandleRestore(const HttpRequest& request);

  std::string SnapshotJson() const;

  DaemonOptions options_;
  HttpServer server_;
  ThresholdStore warm_;

  mutable std::mutex mutex_;                    // guards stats_ + audit_seq_.
  std::map<std::string, EndpointStats> stats_;  // keyed by endpoint name.
  uint64_t audit_seq_ = 0;

  std::chrono::steady_clock::time_point started_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SERVE_DAEMON_H_
