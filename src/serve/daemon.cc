#include "src/serve/daemon.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/cluster/app_thresholds.h"
#include "src/common/json.h"
#include "src/place/cluster_engine.h"
#include "src/serve/json.h"

namespace rhythm {
namespace {

// Schema problems are the client's fault; "json:"-prefixed messages are
// syntax errors (400), everything else a well-formed-but-invalid body (422).
int StatusForInvalidArgument(const std::string& what) {
  return what.rfind("json:", 0) == 0 ? 400 : 422;
}

JsonValue ParseBodyOrThrow(const std::string& body) {
  JsonValue doc;
  std::string error;
  // An empty body means "all defaults" for endpoints that allow it.
  if (body.empty()) {
    doc.type = JsonValue::Type::kObject;
    return doc;
  }
  if (!ParseJson(body, &doc, &error)) {
    throw std::invalid_argument(error);
  }
  return doc;
}

}  // namespace

// -- ThresholdStore ----------------------------------------------------------

std::vector<ServpodThresholds> ThresholdStore::Get(LcAppKind app) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = store_.find(app);
    if (found != store_.end()) {
      return found->second;
    }
  }
  // Derive (or disk-cache-load) outside the lock: characterization is the
  // slow path and CachedAppThresholds is itself thread-safe.
  const std::vector<ServpodThresholds> pods = CachedAppThresholds(app).pods;
  std::lock_guard<std::mutex> lock(mutex_);
  store_.emplace(app, pods);
  return pods;
}

void ThresholdStore::Put(LcAppKind app, std::vector<ServpodThresholds> pods) {
  std::lock_guard<std::mutex> lock(mutex_);
  store_[app] = std::move(pods);
}

std::vector<std::pair<LcAppKind, std::vector<ServpodThresholds>>>
ThresholdStore::All() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {store_.begin(), store_.end()};
}

// -- Shared evaluation path --------------------------------------------------

std::string EvalWhatIfJson(const std::string& body,
                           const WhatIfEvalOptions& options) {
  const JsonValue doc = ParseBodyOrThrow(body);
  WhatIfQuery query = ParseWhatIfQuery(doc);
  if (query.kind == WhatIfQuery::Kind::kTrial) {
    if (query.trial.thresholds.empty() && options.warm != nullptr) {
      // Same values Run() would pull from CachedAppThresholds — filling them
      // here only skips the lookup, the summary stays bit-identical.
      query.trial.thresholds = options.warm->Get(query.trial.app);
    }
    if (!options.audit_jsonl.empty()) {
      query.trial.obs.enabled = true;
      query.trial.obs.export_jsonl = options.audit_jsonl;
    }
    const RunSummary summary = Run(query.trial);
    return WhatIfResponseJson(query, summary);
  }
  if (!options.audit_jsonl.empty()) {
    query.cluster.obs.enabled = true;
    query.cluster.obs.export_jsonl = options.audit_jsonl;
  }
  const ClusterSummary summary = RunCluster(query.cluster, options.runner);
  return WhatIfResponseJson(query, summary);
}

// -- RhythmDaemon ------------------------------------------------------------

RhythmDaemon::RhythmDaemon(DaemonOptions options)
    : options_(std::move(options)), server_(options_.server) {}

RhythmDaemon::~RhythmDaemon() { Stop(); }

bool RhythmDaemon::Start(std::string* error) {
  for (LcAppKind app : options_.prewarm) {
    warm_.Get(app);
  }

  server_.Handle("GET", "/healthz",
                 Instrument("healthz", [](const HttpRequest&) {
                   HttpResponse response;
                   response.body = "{\"status\":\"ok\"}";
                   return response;
                 }));
  server_.Handle("GET", "/metrics",
                 Instrument("metrics", [this](const HttpRequest&) {
                   HttpResponse response;
                   response.content_type = "text/plain; version=0.0.4";
                   response.body = MetricsText();
                   return response;
                 }));
  server_.Handle("POST", "/v1/whatif",
                 Instrument("whatif", [this](const HttpRequest& request) {
                   return HandleWhatIf(request);
                 }));
  const HttpHandler placements =
      Instrument("placements", [this](const HttpRequest& request) {
        return HandlePlacements(request);
      });
  server_.Handle("GET", "/v1/placements", placements);
  server_.Handle("POST", "/v1/placements", placements);
  server_.Handle("POST", "/v1/snapshot",
                 Instrument("snapshot", [this](const HttpRequest& request) {
                   return HandleSnapshot(request);
                 }));
  server_.Handle("POST", "/v1/restore",
                 Instrument("restore", [this](const HttpRequest& request) {
                   return HandleRestore(request);
                 }));

  started_ = std::chrono::steady_clock::now();
  return server_.Start(error);
}

void RhythmDaemon::Stop() { server_.Stop(); }

uint64_t RhythmDaemon::audit_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return audit_seq_;
}

HttpHandler RhythmDaemon::Instrument(const std::string& endpoint,
                                     HttpHandler handler) {
  return [this, endpoint, handler = std::move(handler)](
             const HttpRequest& request) {
    const auto begin = std::chrono::steady_clock::now();
    HttpResponse response;
    try {
      response = handler(request);
    } catch (const std::invalid_argument& error) {
      response = HttpError(StatusForInvalidArgument(error.what()), error.what());
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - begin)
            .count();
    std::lock_guard<std::mutex> lock(mutex_);
    EndpointStats& stats = stats_[endpoint];
    if (response.status < 400) {
      ++stats.served;
    } else {
      ++stats.errors;
    }
    stats.p50.Add(latency_ms);
    stats.p95.Add(latency_ms);
    stats.p99.Add(latency_ms);
    return response;
  };
}

HttpResponse RhythmDaemon::HandleWhatIf(const HttpRequest& request) {
  WhatIfEvalOptions eval;
  eval.runner = options_.runner;
  eval.warm = &warm_;
  if (!options_.audit_dir.empty()) {
    uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seq = ++audit_seq_;
    }
    eval.audit_jsonl =
        options_.audit_dir + "/whatif-" + std::to_string(seq) + ".jsonl";
  }
  HttpResponse response;
  response.body = EvalWhatIfJson(request.body, eval);
  return response;
}

HttpResponse RhythmDaemon::HandlePlacements(const HttpRequest& request) {
  const JsonValue doc = ParseBodyOrThrow(request.body);
  HttpResponse response;
  response.body = PlacementsResponseJson(doc);
  return response;
}

HttpResponse RhythmDaemon::HandleSnapshot(const HttpRequest& request) {
  const JsonValue doc = ParseBodyOrThrow(request.body);
  const std::string path = doc.StringOr("path", options_.snapshot_path);
  if (path.empty()) {
    throw std::invalid_argument(
        "snapshot: no \"path\" in body and no --snapshot default");
  }
  std::string error;
  if (!SaveSnapshot(path, &error)) {
    return HttpError(500, error);
  }
  JsonWriter w;
  w.BeginObject()
      .Key("path").String(path)
      .Key("apps").Int(static_cast<int64_t>(warm_.All().size()))
      .Key("audit_seq").UInt(audit_seq())
      .EndObject();
  HttpResponse response;
  response.body = std::move(w).str();
  return response;
}

HttpResponse RhythmDaemon::HandleRestore(const HttpRequest& request) {
  const JsonValue doc = ParseBodyOrThrow(request.body);
  const std::string path = doc.StringOr("path", options_.snapshot_path);
  if (path.empty()) {
    throw std::invalid_argument(
        "restore: no \"path\" in body and no --snapshot default");
  }
  std::string error;
  if (!RestoreSnapshot(path, &error)) {
    return HttpError(422, error);
  }
  JsonWriter w;
  w.BeginObject()
      .Key("path").String(path)
      .Key("apps").Int(static_cast<int64_t>(warm_.All().size()))
      .Key("audit_seq").UInt(audit_seq())
      .EndObject();
  HttpResponse response;
  response.body = std::move(w).str();
  return response;
}

std::string RhythmDaemon::SnapshotJson() const {
  JsonWriter w;
  w.BeginObject().Key("version").Int(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    w.Key("audit_seq").UInt(audit_seq_);
    w.Key("endpoints").BeginArray();
    for (const auto& [endpoint, stats] : stats_) {
      w.BeginObject()
          .Key("endpoint").String(endpoint)
          .Key("served").UInt(stats.served)
          .Key("errors").UInt(stats.errors)
          .EndObject();
    }
    w.EndArray();
  }
  w.Key("apps").BeginArray();
  for (const auto& [app, pods] : warm_.All()) {
    w.BeginObject().Key("app").String(LcAppKindName(app)).Key("pods").BeginArray();
    for (const ServpodThresholds& pod : pods) {
      w.BeginObject()
          .Key("loadlimit").Number(pod.loadlimit)
          .Key("slacklimit").Number(pod.slacklimit)
          .EndObject();
    }
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  return std::move(w).str();
}

bool RhythmDaemon::SaveSnapshot(const std::string& path, std::string* error) {
  const std::string staged = path + ".tmp";
  {
    std::ofstream out(staged, std::ios::trunc);
    if (!out) {
      if (error != nullptr) {
        *error = "snapshot: cannot open " + staged;
      }
      return false;
    }
    out << SnapshotJson() << "\n";
    if (!out.good()) {
      if (error != nullptr) {
        *error = "snapshot: write to " + staged + " failed";
      }
      std::remove(staged.c_str());
      return false;
    }
  }
  if (std::rename(staged.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "snapshot: rename " + staged + " -> " + path + " failed";
    }
    std::remove(staged.c_str());
    return false;
  }
  return true;
}

bool RhythmDaemon::RestoreSnapshot(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "restore: cannot open " + path;
    }
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  JsonValue doc;
  std::string parse_error;
  if (!ParseJson(buffer.str(), &doc, &parse_error) || !doc.is_object()) {
    if (error != nullptr) {
      *error = "restore: " + path + ": " + parse_error;
    }
    return false;
  }
  if (doc.IntOr("version", 0) != 1) {
    if (error != nullptr) {
      *error = "restore: " + path + ": unsupported snapshot version";
    }
    return false;
  }

  // Validate everything before mutating any state: a bad snapshot must not
  // half-restore the daemon.
  std::vector<std::pair<LcAppKind, std::vector<ServpodThresholds>>> apps;
  if (const JsonValue* entries = doc.Find("apps")) {
    if (!entries->is_array()) {
      if (error != nullptr) {
        *error = "restore: \"apps\" must be an array";
      }
      return false;
    }
    for (const JsonValue& entry : entries->array) {
      LcAppKind app = LcAppKind::kEcommerce;
      if (!entry.is_object() ||
          !ParseLcAppKindName(entry.StringOr("app", ""), &app)) {
        if (error != nullptr) {
          *error = "restore: bad app entry in " + path;
        }
        return false;
      }
      std::vector<ServpodThresholds> pods;
      const JsonValue* pod_entries = entry.Find("pods");
      if (pod_entries == nullptr || !pod_entries->is_array()) {
        if (error != nullptr) {
          *error = "restore: app entry without \"pods\" in " + path;
        }
        return false;
      }
      for (const JsonValue& pod_entry : pod_entries->array) {
        ServpodThresholds pod;
        pod.loadlimit = pod_entry.NumberOr("loadlimit", -1.0);
        pod.slacklimit = pod_entry.NumberOr("slacklimit", -1.0);
        if (pod.loadlimit < 0.0 || pod.slacklimit < 0.0) {
          if (error != nullptr) {
            *error = "restore: bad threshold entry in " + path;
          }
          return false;
        }
        pods.push_back(pod);
      }
      apps.emplace_back(app, std::move(pods));
    }
  }

  for (auto& [app, pods] : apps) {
    warm_.Put(app, std::move(pods));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t restored_seq =
        static_cast<uint64_t>(doc.IntOr("audit_seq", 0));
    // Never rewind the live sequence: restoring an old snapshot must not
    // make the daemon overwrite audit records it already wrote.
    if (restored_seq > audit_seq_) {
      audit_seq_ = restored_seq;
    }
    if (const JsonValue* endpoints = doc.Find("endpoints")) {
      if (endpoints->is_array()) {
        for (const JsonValue& entry : endpoints->array) {
          if (!entry.is_object()) {
            continue;
          }
          EndpointStats& stats = stats_[entry.StringOr("endpoint", "?")];
          stats.served += static_cast<uint64_t>(entry.IntOr("served", 0));
          stats.errors += static_cast<uint64_t>(entry.IntOr("errors", 0));
        }
      }
    }
  }
  return true;
}

std::string RhythmDaemon::MetricsText() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  std::string out;
  out += "# HELP rhythmd_uptime_seconds Seconds since the daemon started.\n";
  out += "# TYPE rhythmd_uptime_seconds gauge\n";
  out += "rhythmd_uptime_seconds " + JsonNum(uptime_s) + "\n";

  out += "# HELP rhythmd_connections_accepted_total Connections admitted.\n";
  out += "# TYPE rhythmd_connections_accepted_total counter\n";
  out += "rhythmd_connections_accepted_total " +
         std::to_string(server_.connections_accepted()) + "\n";
  out += "# HELP rhythmd_connections_rejected_total Connections shed with 503 "
         "at the admission limit.\n";
  out += "# TYPE rhythmd_connections_rejected_total counter\n";
  out += "rhythmd_connections_rejected_total " +
         std::to_string(server_.connections_rejected()) + "\n";
  out += "# HELP rhythmd_requests_served_total Requests routed to a handler.\n";
  out += "# TYPE rhythmd_requests_served_total counter\n";
  out += "rhythmd_requests_served_total " +
         std::to_string(server_.requests_served()) + "\n";

  std::lock_guard<std::mutex> lock(mutex_);
  out += "# HELP rhythmd_queries_served_total 2xx responses per endpoint.\n";
  out += "# TYPE rhythmd_queries_served_total counter\n";
  for (const auto& [endpoint, stats] : stats_) {
    out += "rhythmd_queries_served_total{endpoint=\"" + endpoint + "\"} " +
           std::to_string(stats.served) + "\n";
  }
  out += "# HELP rhythmd_queries_rejected_total 4xx/5xx responses per "
         "endpoint.\n";
  out += "# TYPE rhythmd_queries_rejected_total counter\n";
  for (const auto& [endpoint, stats] : stats_) {
    out += "rhythmd_queries_rejected_total{endpoint=\"" + endpoint + "\"} " +
           std::to_string(stats.errors) + "\n";
  }
  out += "# HELP rhythmd_request_latency_ms Handler latency quantiles "
         "(streaming P2 estimates).\n";
  out += "# TYPE rhythmd_request_latency_ms summary\n";
  for (const auto& [endpoint, stats] : stats_) {
    out += "rhythmd_request_latency_ms{endpoint=\"" + endpoint +
           "\",quantile=\"0.5\"} " + JsonNum(stats.p50.Value()) + "\n";
    out += "rhythmd_request_latency_ms{endpoint=\"" + endpoint +
           "\",quantile=\"0.95\"} " + JsonNum(stats.p95.Value()) + "\n";
    out += "rhythmd_request_latency_ms{endpoint=\"" + endpoint +
           "\",quantile=\"0.99\"} " + JsonNum(stats.p99.Value()) + "\n";
    out += "rhythmd_request_latency_ms_count{endpoint=\"" + endpoint + "\"} " +
           std::to_string(stats.p50.count()) + "\n";
  }
  out += "# HELP rhythmd_audit_seq Last audit sequence number issued.\n";
  out += "# TYPE rhythmd_audit_seq gauge\n";
  out += "rhythmd_audit_seq " + std::to_string(audit_seq_) + "\n";
  return out;
}

}  // namespace rhythm
