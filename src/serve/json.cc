#include "src/serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace rhythm {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number : fallback;
}

int64_t JsonValue::IntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number()
             ? static_cast<int64_t>(value->number)
             : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_bool() ? value->boolean : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipSpace();
    if (at_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "json: " + what + " at byte " + std::to_string(at_);
    }
    return false;
  }

  void SkipSpace() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++at_;
    }
  }

  bool Literal(const char* word) {
    const size_t length = std::strlen(word);
    if (text_.compare(at_, length, word) != 0) {
      return Fail(std::string("expected '") + word + "'");
    }
    at_ += length;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) {
      return Fail("nesting deeper than " + std::to_string(kMaxJsonDepth));
    }
    if (at_ >= text_.size()) {
      return Fail("unexpected end of document");
    }
    switch (text_[at_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++at_;  // '{'
    SkipSpace();
    if (at_ < text_.size() && text_[at_] == '}') {
      ++at_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (at_ >= text_.size() || text_[at_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      for (const auto& [existing, value] : out->object) {
        (void)value;
        if (existing == key) {
          return Fail("duplicate object key '" + key + "'");
        }
      }
      SkipSpace();
      if (at_ >= text_.size() || text_[at_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++at_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (at_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == '}') {
        ++at_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++at_;  // '['
    SkipSpace();
    if (at_ < text_.size() && text_[at_] == ']') {
      ++at_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue element;
      if (!ParseValue(&element, depth + 1)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (at_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == ']') {
        ++at_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++at_;  // opening quote.
    out->clear();
    while (at_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[at_]);
      if (c == '"') {
        ++at_;
        return true;
      }
      if (c < 0x20) {
        return Fail("raw control byte in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++at_;
        continue;
      }
      if (++at_ >= text_.size()) {
        break;
      }
      const char esc = text_[at_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (at_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          at_ += 4;
          // UTF-8-encode the code point (surrogates pass through as their
          // raw value; the obs exporters' writer only emits \u00xx).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  // Strict JSON number grammar, then strtod over the validated span — so
  // "0x10", "1.", ".5", "+1", "inf" and "nan" are all rejected.
  bool ParseNumber(JsonValue* out) {
    const size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') {
      ++at_;
    }
    if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
      return Fail("invalid value");
    }
    if (text_[at_] == '0') {
      ++at_;  // leading zero may not be followed by more digits.
    } else {
      while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    if (at_ < text_.size() && text_[at_] == '.') {
      ++at_;
      if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        return Fail("digit required after decimal point");
      }
      while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      ++at_;
      if (at_ < text_.size() && (text_[at_] == '+' || text_[at_] == '-')) {
        ++at_;
      }
      if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        return Fail("digit required in exponent");
      }
      while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    const std::string span = text_.substr(start, at_ - start);
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(span.c_str(), nullptr);
    if (!std::isfinite(out->number)) {
      return Fail("number out of range");
    }
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t at_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  *out = JsonValue{};
  Parser parser(text, error);
  return parser.Parse(out);
}

}  // namespace rhythm
