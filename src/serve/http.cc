#include "src/serve/http.h"

#include <algorithm>
#include <cctype>

#include "src/common/json.h"

namespace rhythm {
namespace {

bool IsTokenChar(unsigned char c) {
  if (std::isalnum(c)) {
    return true;
  }
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string Lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

// Strict non-negative decimal; rejects signs, spaces and trailing junk so a
// smuggled "Content-Length: 5 5" or "+5" cannot desynchronize the framing.
bool ParseContentLength(const std::string& text, size_t* out) {
  if (text.empty() || text.size() > 15) {
    return false;
  }
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::Header(const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) {
      return &value;
    }
  }
  return nullptr;
}

std::string HttpRequest::Path() const {
  const size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

HttpRequestParser::Status HttpRequestParser::Poison(int status,
                                                    const std::string& what) {
  error_status_ = status;
  error_ = what;
  buffer_.clear();
  return Status::kError;
}

HttpRequestParser::Status HttpRequestParser::Next(HttpRequest* out) {
  if (error_status_ != 0) {
    return Status::kError;
  }

  const size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return Poison(431, "header section exceeds " +
                             std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return Status::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return Poison(431, "header section exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
  }

  HttpRequest request;

  // Request line.
  const size_t line_end = buffer_.find("\r\n");
  const std::string line = buffer_.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    return Poison(400, "malformed request line");
  }
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = line.substr(sp2 + 1);
  if (request.method.empty() ||
      !std::all_of(request.method.begin(), request.method.end(),
                   [](char c) { return IsTokenChar(static_cast<unsigned char>(c)); })) {
    return Poison(400, "malformed method token");
  }
  if (request.target.empty() || request.target[0] != '/' ||
      request.target.find_first_of(" \t") != std::string::npos) {
    return Poison(400, "malformed request target");
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Poison(505, "unsupported protocol version");
  }

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < head_end) {
    size_t field_end = buffer_.find("\r\n", cursor);
    if (field_end > head_end) {
      field_end = head_end;
    }
    const std::string field = buffer_.substr(cursor, field_end - cursor);
    cursor = field_end + 2;
    const size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Poison(400, "malformed header field");
    }
    const std::string name = field.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(),
                     [](char c) { return IsTokenChar(static_cast<unsigned char>(c)); })) {
      return Poison(400, "malformed header name");
    }
    request.headers.emplace_back(Lower(name), Trim(field.substr(colon + 1)));
  }

  // Body framing. Chunked bodies are not served here: answering 501 is the
  // safe refusal (parsing them badly is how smuggling bugs happen).
  if (const std::string* te = request.Header("transfer-encoding")) {
    (void)te;
    return Poison(501, "transfer-encoding not supported");
  }
  size_t content_length = 0;
  bool have_length = false;
  for (const auto& [name, value] : request.headers) {
    if (name != "content-length") {
      continue;
    }
    size_t parsed = 0;
    if (!ParseContentLength(value, &parsed)) {
      return Poison(400, "malformed content-length");
    }
    if (have_length && parsed != content_length) {
      return Poison(400, "conflicting content-length headers");
    }
    content_length = parsed;
    have_length = true;
  }
  if (content_length > limits_.max_body_bytes) {
    return Poison(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                           " bytes");
  }

  const size_t body_begin = head_end + 4;
  if (buffer_.size() - body_begin < content_length) {
    if (buffer_.size() > limits_.max_header_bytes + limits_.max_body_bytes) {
      return Poison(413, "buffered request exceeds limits");
    }
    return Status::kNeedMore;
  }
  request.body = buffer_.substr(body_begin, content_length);
  buffer_.erase(0, body_begin + content_length);

  // Persistence: HTTP/1.1 defaults to keep-alive, 1.0 to close.
  request.keep_alive = request.version == "HTTP/1.1";
  if (const std::string* connection = request.Header("connection")) {
    const std::string value = Lower(*connection);
    if (value == "close") {
      request.keep_alive = false;
    } else if (value == "keep-alive") {
      request.keep_alive = true;
    }
  }

  *out = std::move(request);
  return Status::kRequest;
}

HttpResponse HttpError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  JsonWriter body;
  body.BeginObject().Key("error").String(message).EndObject();
  response.body = std::move(body).str();
  return response;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Status";
  }
}

std::string RenderHttpResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive && !response.close ? "Connection: keep-alive\r\n"
                                       : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace rhythm
