// Read-only observation hooks into a running Deployment.
//
// The deployment invokes these at the boundaries of its accounting and
// controller ticks and on crash/reboot edges. Observers must treat the
// deployment as const and draw no randomness: an attached observer may never
// perturb the simulation (the golden bit-identity test runs with the
// invariant monitor attached to prove exactly that).
//
// Header-only interface so src/cluster can call through it without linking
// against the verify library that implements the concrete monitors.

#ifndef RHYTHM_SRC_VERIFY_DEPLOYMENT_OBSERVER_H_
#define RHYTHM_SRC_VERIFY_DEPLOYMENT_OBSERVER_H_

#include <vector>

#include "src/control/machine_agent.h"

namespace rhythm {

class Deployment;

class DeploymentObserver {
 public:
  virtual ~DeploymentObserver() = default;

  // After the accounting task has published telemetry, advanced BE progress
  // and sampled every per-pod series for this instant.
  virtual void AfterAccountingTick(const Deployment& deployment) { (void)deployment; }

  // Immediately before agent `pod` consumes `sample` this controller tick.
  // Offline pods are skipped by the controller loop, so this firing is
  // itself an assertable event ("no actuation lands on a crashed machine").
  virtual void BeforeAgentTick(const Deployment& deployment, int pod,
                               const MachineAgent::TelemetrySample& sample) {
    (void)deployment;
    (void)pod;
    (void)sample;
  }

  // After every online agent acted this controller tick.
  virtual void AfterControllerTick(const Deployment& deployment) { (void)deployment; }

  // Crash/reboot edges, fired after the deployment finished its own handling
  // (BE teardown / re-admission unblocking).
  virtual void OnPodCrash(const Deployment& deployment, int pod) {
    (void)deployment;
    (void)pod;
  }
  virtual void OnPodReboot(const Deployment& deployment, int pod) {
    (void)deployment;
    (void)pod;
  }
};

// Fans every hook out to several observers in attachment order, so a run can
// carry the invariant monitor and a flight recorder at once through the
// single DeploymentConfig::observer slot. Observers must outlive the chain.
class DeploymentObserverChain final : public DeploymentObserver {
 public:
  void Add(DeploymentObserver* observer) {
    if (observer != nullptr) {
      observers_.push_back(observer);
    }
  }
  bool empty() const { return observers_.empty(); }
  size_t size() const { return observers_.size(); }

  void AfterAccountingTick(const Deployment& deployment) override {
    for (DeploymentObserver* observer : observers_) {
      observer->AfterAccountingTick(deployment);
    }
  }
  void BeforeAgentTick(const Deployment& deployment, int pod,
                       const MachineAgent::TelemetrySample& sample) override {
    for (DeploymentObserver* observer : observers_) {
      observer->BeforeAgentTick(deployment, pod, sample);
    }
  }
  void AfterControllerTick(const Deployment& deployment) override {
    for (DeploymentObserver* observer : observers_) {
      observer->AfterControllerTick(deployment);
    }
  }
  void OnPodCrash(const Deployment& deployment, int pod) override {
    for (DeploymentObserver* observer : observers_) {
      observer->OnPodCrash(deployment, pod);
    }
  }
  void OnPodReboot(const Deployment& deployment, int pod) override {
    for (DeploymentObserver* observer : observers_) {
      observer->OnPodReboot(deployment, pod);
    }
  }

 private:
  std::vector<DeploymentObserver*> observers_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_DEPLOYMENT_OBSERVER_H_
