#include "src/verify/cluster_fuzzer.h"

#include <chrono>
#include <memory>
#include <utility>

namespace rhythm {

ClusterRunRequest ClusterFuzzTrialRequest(const ClusterFuzzOptions& options,
                                          int index) {
  const uint64_t schedule_seed =
      DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index));
  const uint64_t run_seed =
      DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index) + 1);

  // Machine-loss-only chaos: a default-constructed config already has every
  // per-deployment rate we don't want... except the flat-trial defaults, so
  // zero them explicitly — a cluster request rejects per-deployment kinds.
  ChaosConfig chaos;
  chaos.duration_s =
      options.epochs * (options.warmup_s + options.measure_s);
  chaos.expected_crashes = 0.0;
  chaos.expected_telemetry_dropouts = 0.0;
  chaos.expected_actuation_windows = 0.0;
  chaos.expected_be_failures = 0.0;
  chaos.expected_admission_holds = 0.0;
  chaos.expected_load_spikes = 0.0;
  chaos.machine_count = options.machines;
  chaos.expected_machine_failures = options.expected_machine_failures;
  chaos.expected_machine_restarts = options.expected_machine_restarts;
  chaos.restart_min_down_s = options.restart_min_down_s;
  chaos.restart_max_down_s = options.restart_max_down_s;

  ClusterRunRequest request;
  request.spec = SyntheticClusterSpec(options.machines, run_seed);
  request.policy = options.policy;
  request.seed = run_seed;
  request.warmup_s = options.warmup_s;
  request.measure_s = options.measure_s;
  request.epochs = options.epochs;
  request.faults = std::make_shared<FaultSchedule>(
      RandomFaultSchedule(chaos, schedule_seed));
  request.supervisor.enabled = options.supervisor;
  request.supervisor.migration_budget = options.migration_budget;
  request.supervisor.degraded_dead_fraction = options.degraded_dead_fraction;
  request.verify = options.verify;
  request.verify.mode = InvariantMode::kCollect;
  request.label = "cluster-fuzz#" + std::to_string(index) +
                  " sched_seed=" + std::to_string(schedule_seed) +
                  " run_seed=" + std::to_string(run_seed);
  return request;
}

ClusterFuzzReport FuzzClusterChaos(const ClusterFuzzOptions& options) {
  ClusterFuzzReport report;
  if (options.trials <= 0) {
    return report;
  }
  const RunnerOptions runner{.shards = options.shards};
  const auto started = std::chrono::steady_clock::now();

  for (int trial = 0; trial < options.trials; ++trial) {
    if (options.wall_clock_budget_s > 0.0 && trial > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= options.wall_clock_budget_s) {
        report.budget_exhausted = true;
        break;
      }
    }
    const ClusterRunRequest request = ClusterFuzzTrialRequest(options, trial);
    const ClusterSummary summary = RunCluster(request, runner);
    ++report.trials_run;

    uint64_t total = summary.cluster_invariant_violations_total;
    std::vector<InvariantViolation> violations =
        summary.cluster_invariant_violations;
    for (const GroupOutcome& outcome : summary.groups) {
      total += outcome.summary.invariant_violations_total;
      violations.insert(violations.end(),
                        outcome.summary.invariant_violations.begin(),
                        outcome.summary.invariant_violations.end());
    }
    if (total == 0) {
      continue;
    }
    ++report.violating_trials;
    ClusterFuzzFinding finding;
    finding.trial = trial;
    finding.schedule_seed =
        DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial));
    finding.run_seed =
        DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial) + 1);
    finding.schedule = *request.faults;
    finding.violations = std::move(violations);
    finding.violations_total = total;
    report.findings.push_back(std::move(finding));
    if (options.fail_fast) {
      break;
    }
  }
  return report;
}

}  // namespace rhythm
