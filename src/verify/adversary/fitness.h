// Attack fitness: SLO damage per unit of BE throughput given up.
//
// An attack that merely switches the BEs off trivially protects the LC —
// zero damage AND zero BE work is not a weakness, it is the controller doing
// its job. The interesting adversaries are the ones that hurt the LC *while
// the cluster still believes it is harvesting BE throughput*, so fitness
// divides the damage an attack inflicts by the BE throughput it sacrificed
// relative to the same trial without the attack:
//
//   damage  = slack_violation_ticks + kTailOverrunWeight * max(0, ratio - 1)
//   cost    = max(0, baseline_be_throughput - attack_be_throughput)
//   fitness = damage / (kCostEpsilon + cost)
//
// kCostEpsilon keeps zero-cost attacks finite while still rewarding them
// ~20x over attacks that burn a full unit of BE throughput.

#ifndef RHYTHM_SRC_VERIFY_ADVERSARY_FITNESS_H_
#define RHYTHM_SRC_VERIFY_ADVERSARY_FITNESS_H_

#include "src/cluster/metrics.h"

namespace rhythm {

inline constexpr double kTailOverrunWeight = 20.0;
inline constexpr double kCostEpsilon = 0.05;

// SLO damage of one run: accounting ticks spent with negative slack plus a
// weighted penalty for how far past the SLA the worst tail went.
double AttackDamage(const RunSummary& summary);

// BE throughput the attack gave up versus its no-fault baseline (floored at
// zero: an attack that somehow *raises* BE throughput costs nothing).
double AttackCost(const RunSummary& attack, const RunSummary& baseline);

// Damage per unit of throughput given up; see the header comment.
double AttackFitness(const RunSummary& attack, const RunSummary& baseline);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_ADVERSARY_FITNESS_H_
