// Adversarial genome: a fixed-width vector of genes in [0, 1] that decodes
// into one complete attack scenario against the controller — which BE
// workload to co-locate (a catalog kind or a custom pressure mix), where to
// place flash-crowd bursts relative to the diurnal load, when the cluster
// withdraws and re-admits BE work (kBeAdmissionHold), and when telemetry
// freezes or actuations drop. Decoding is a pure function of (genome,
// AdversaryConfig): equal inputs produce byte-identical RunRequests, which
// is what makes the whole search replayable bit-for-bit.
//
// Gene layout (kSize = 24, all in [0, 1]):
//   g[0]       BE selector: < 0.5 decodes g[1..4] into a custom spec via
//              MakeAdversarialBeSpec; >= 0.5 picks an evaluation-catalog kind.
//   g[1..4]    BE pressure vector (cpu, llc, dram, net).
//   g[5..13]   three flash-crowd bursts x (phase, amplitude, duration).
//   g[14..17]  two cluster admission holds x (phase, duration), applied to
//              every pod so release is synchronized — the re-admission edge.
//   g[18..20]  one telemetry freeze (phase, duration, pod selector).
//   g[21..23]  one actuation-drop window (phase, duration, probability).

#ifndef RHYTHM_SRC_VERIFY_ADVERSARY_GENOME_H_
#define RHYTHM_SRC_VERIFY_ADVERSARY_GENOME_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/runner/run_request.h"

namespace rhythm {

struct AdversaryGenome {
  static constexpr int kSize = 24;
  std::array<double, kSize> genes{};

  bool operator==(const AdversaryGenome& other) const { return genes == other.genes; }
};

// The fixed (non-evolved) frame every candidate runs in.
struct AdversaryConfig {
  LcAppKind app = LcAppKind::kEcommerce;
  ControllerKind controller = ControllerKind::kRhythm;
  uint64_t run_seed = 11;
  double warmup_s = 20.0;
  double measure_s = 300.0;
  // Diurnal envelope the bursts ride on (DiurnalTrace over warmup+measure).
  double diurnal_min = 0.25;
  double diurnal_max = 0.8;
  // Controller fail-safes candidates are evaluated against (off = attack the
  // baseline controller; on = measure how much the hardening recovers).
  ControlHardening hardening;
};

// Uniform-random genome from the stream (every gene one NextDouble draw).
AdversaryGenome RandomGenome(Rng& rng);

// Deterministic weakness-class archetypes seeded into the search's initial
// population (the GA refines or discards them like any other member):
//   0  synchronized re-admission under a load ramp — a cluster admission
//      hold whose release coincides with a flash-crowd burst;
//   1  pressure oscillation — an aggressive custom BE mix with no fault
//      events at all, driving grow/cut flapping at the controller tick.
inline constexpr int kArchetypeCount = 2;
AdversaryGenome ArchetypeGenome(int index);

// Uniform crossover: each gene from either parent with probability 1/2.
AdversaryGenome CrossoverGenomes(const AdversaryGenome& a, const AdversaryGenome& b, Rng& rng);

// Gaussian mutation: each gene perturbed with probability `rate` by
// Normal(0, sigma), clamped back into [0, 1].
AdversaryGenome MutateGenome(const AdversaryGenome& genome, double rate, double sigma, Rng& rng);

// Decodes the genome into the runnable attack trial: diurnal profile,
// BE spec (catalog or custom), fault schedule (bursts, admission holds,
// telemetry freeze, actuation drops), seed and windows from the config.
RunRequest DecodeGenome(const AdversaryGenome& genome, const AdversaryConfig& config);

// The same trial with the fault schedule removed — the no-attack baseline
// whose BE throughput anchors the fitness cost term.
RunRequest DecodeBaseline(const AdversaryGenome& genome, const AdversaryConfig& config);

// Compact `g0=...;g1=...` rendering (%.17g) for logs and BENCH artifacts.
std::string GenomeToString(const AdversaryGenome& genome);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_ADVERSARY_GENOME_H_
