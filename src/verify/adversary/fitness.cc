#include "src/verify/adversary/fitness.h"

#include <algorithm>

namespace rhythm {

double AttackDamage(const RunSummary& summary) {
  return static_cast<double>(summary.slack_violation_ticks) +
         kTailOverrunWeight * std::max(0.0, summary.worst_tail_ratio - 1.0);
}

double AttackCost(const RunSummary& attack, const RunSummary& baseline) {
  return std::max(0.0, baseline.be_throughput - attack.be_throughput);
}

double AttackFitness(const RunSummary& attack, const RunSummary& baseline) {
  return AttackDamage(attack) / (kCostEpsilon + AttackCost(attack, baseline));
}

}  // namespace rhythm
