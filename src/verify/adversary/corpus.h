// Attack corpus: turns search champions into minimized, checked-in repro
// files. Each attack is shrunk with ddmin + value shrinking under a
// damage-retention predicate (the smaller schedule must keep at least a
// configured fraction of the original SLO damage), classified into a
// weakness class by which fault ingredients survived minimization, and
// serialized as a ChaosRepro carrying %.17g-exact replay expectations that
// the corpus test (tests/fault/repro_corpus_test.cc) asserts bit-for-bit.

#ifndef RHYTHM_SRC_VERIFY_ADVERSARY_CORPUS_H_
#define RHYTHM_SRC_VERIFY_ADVERSARY_CORPUS_H_

#include <string>

#include "src/verify/adversary/search.h"
#include "src/verify/repro_io.h"
#include "src/verify/schedule_minimizer.h"

namespace rhythm {

struct AttackCorpusOptions {
  // A minimized candidate must retain at least this fraction of the original
  // attack's damage to count as "the same attack, smaller".
  double keep_damage_fraction = 0.6;
  // Replay budget for the minimizer (each candidate is one full run).
  int max_candidates = 200;
};

struct AttackReproResult {
  ChaosRepro repro;          // minimized schedule + context + expectations.
  MinimizeResult minimize;   // ddmin bookkeeping (events before/after, ...).
  std::string weakness_class;
  double original_damage = 0.0;
  double minimized_damage = 0.0;
};

// Which weakness the surviving (minimized) ingredients demonstrate. The
// classes drive which hardening fix (ControlHardening) is expected to blunt
// the attack; DESIGN.md §11 holds the catalogue.
std::string ClassifyWeakness(const FaultSchedule& schedule);

// Minimizes `candidate` (as evaluated under `config`) and packages it as a
// replayable repro with expectations stamped from a final verification run.
// Throws std::invalid_argument when the candidate inflicted no damage.
AttackReproResult MinimizeAttack(const AdversaryCandidate& candidate,
                                 const AdversaryConfig& config,
                                 const AttackCorpusOptions& options = {});

// Replays a repro file's request and compares the summary against the
// file's expectations with exact equality. Returns an empty string on
// success, else a description of the first mismatch (with expected/actual
// rendered %.17g). Repros without expectations fail — corpus files must pin
// their outcome.
std::string VerifyReproExpectations(const ChaosRepro& repro);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_ADVERSARY_CORPUS_H_
