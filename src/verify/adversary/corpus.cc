#include "src/verify/adversary/corpus.h"

#include <cstdio>
#include <stdexcept>

#include "src/verify/adversary/fitness.h"

namespace rhythm {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string ClassifyWeakness(const FaultSchedule& schedule) {
  const bool holds = schedule.HasKind(FaultKind::kBeAdmissionHold);
  const bool spikes = schedule.HasKind(FaultKind::kLoadSpike);
  if (holds && spikes) {
    return "readmission-load-ramp";  // hold release synchronized with a ramp.
  }
  if (holds) {
    return "synchronized-readmission";
  }
  if (schedule.HasKind(FaultKind::kTelemetryFreeze)) {
    return "poisoned-telemetry";
  }
  if (schedule.HasKind(FaultKind::kActuationDrop)) {
    return "actuation-loss";
  }
  if (spikes) {
    return "burst-alignment";
  }
  return "pressure-only";  // the BE mix alone does the damage.
}

AttackReproResult MinimizeAttack(const AdversaryCandidate& candidate,
                                 const AdversaryConfig& config,
                                 const AttackCorpusOptions& options) {
  if (candidate.damage <= 0.0) {
    throw std::invalid_argument("MinimizeAttack: the candidate inflicted no damage");
  }

  // Rebuild the exact evaluated trial, then express it as a repro so the
  // minimizer probes in precisely the environment the corpus test replays.
  const AdversaryConfig derived =
      [&] {
        AdversaryConfig c = config;
        c.run_seed = DeriveTrialSeed(config.run_seed, candidate.evaluation_index);
        return c;
      }();
  const RunRequest evaluated = DecodeGenome(candidate.genome, derived);

  AttackReproResult result;
  result.original_damage = candidate.damage;
  result.repro.app = derived.app;
  result.repro.controller = derived.controller;
  result.repro.run_seed = derived.run_seed;
  result.repro.warmup_s = derived.warmup_s;
  result.repro.measure_s = derived.measure_s;
  result.repro.has_diurnal = true;
  result.repro.diurnal_min = derived.diurnal_min;
  result.repro.diurnal_max = derived.diurnal_max;
  result.repro.hardening = derived.hardening;
  if (evaluated.custom_be != nullptr) {
    result.repro.has_pressure = true;
    result.repro.pressure = evaluated.custom_be->pressure;
  } else {
    result.repro.be = evaluated.be;
  }
  result.repro.schedule = *evaluated.faults;

  // Schedule-free attacks (the BE mix alone does the damage) have nothing to
  // ddmin — they skip straight to the expectation stamp.
  if (!result.repro.schedule.events.empty()) {
    const double damage_floor = options.keep_damage_fraction * candidate.damage;
    MinimizeOptions minimize_options;
    minimize_options.max_candidates = options.max_candidates;
    result.minimize = MinimizeScheduleWith(
        ReproToRequest(result.repro),
        [damage_floor](const RunSummary& summary) {
          return AttackDamage(summary) >= damage_floor;
        },
        minimize_options);
    result.repro.schedule = result.minimize.schedule;
  }
  result.weakness_class = ClassifyWeakness(result.repro.schedule);

  // Stamp the expectations from one verification replay of the minimized
  // repro — the numbers the corpus test will hold every future build to.
  const RunSummary final_summary = Run(ReproToRequest(result.repro));
  result.minimized_damage = AttackDamage(final_summary);
  result.repro.has_expectations = true;
  result.repro.expect_slack_ticks = final_summary.slack_violation_ticks;
  result.repro.expect_worst_tail_ratio = final_summary.worst_tail_ratio;
  result.repro.expect_be_throughput = final_summary.be_throughput;
  return result;
}

std::string VerifyReproExpectations(const ChaosRepro& repro) {
  if (!repro.has_expectations) {
    return "repro carries no expect_* directives; corpus files must pin their outcome";
  }
  const RunSummary summary = Run(ReproToRequest(repro));
  if (summary.slack_violation_ticks != repro.expect_slack_ticks) {
    return "slack_violation_ticks mismatch: expected " +
           std::to_string(repro.expect_slack_ticks) + ", got " +
           std::to_string(summary.slack_violation_ticks);
  }
  if (summary.worst_tail_ratio != repro.expect_worst_tail_ratio) {
    return "worst_tail_ratio mismatch: expected " + Num(repro.expect_worst_tail_ratio) +
           ", got " + Num(summary.worst_tail_ratio);
  }
  if (summary.be_throughput != repro.expect_be_throughput) {
    return "be_throughput mismatch: expected " + Num(repro.expect_be_throughput) + ", got " +
           Num(summary.be_throughput);
  }
  return std::string();
}

}  // namespace rhythm
