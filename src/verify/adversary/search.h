// Seeded adversarial search over attack genomes: a small generational GA
// (elitism + tournament selection + uniform crossover + gaussian mutation)
// followed by an optional coordinate hill-climb of the champion.
//
// Determinism contract: the search result is a pure function of
// AdversarySearchOptions. All GA randomness flows through one Rng seeded
// with options.seed on the calling thread; candidate trials run through
// ParallelRunner, whose results come back in plan order at any worker
// count; and every candidate's run seed is DeriveTrialSeed(run_seed,
// evaluation index), so any single candidate can be replayed outside the
// search from its index alone. The only nondeterministic input — wall-clock
// time — is consulted solely at generation boundaries as a safety cap;
// searches that finish inside the budget are bit-identical to unbudgeted
// ones. The deterministic stopping rule is the fitness plateau.

#ifndef RHYTHM_SRC_VERIFY_ADVERSARY_SEARCH_H_
#define RHYTHM_SRC_VERIFY_ADVERSARY_SEARCH_H_

#include <cstdint>
#include <vector>

#include "src/cluster/metrics.h"
#include "src/obs/metrics_registry.h"
#include "src/verify/adversary/genome.h"

namespace rhythm {

struct AdversarySearchOptions {
  AdversaryConfig config;
  // GA shape. Budget flags shared with tools/chaos_fuzz: --generations,
  // --population, --wall-clock-budget-s map straight onto these.
  int population = 12;
  int generations = 6;
  uint64_t seed = 1;  // GA randomness; config.run_seed seeds the trials.
  int elitism = 2;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.2;
  double mutation_sigma = 0.15;
  // Coordinate hill-climb steps applied to the GA champion (0 = skip).
  int hill_climb_steps = 0;
  // Deterministic early stop: quit after this many generations without the
  // best fitness improving.
  int plateau_generations = 3;
  // Safety cap, seconds of wall clock; 0 = unlimited. Checked only at
  // generation boundaries (see the determinism contract above).
  double wall_clock_budget_s = 0.0;
  int jobs = 0;  // ParallelRunner workers; <= 0 means auto.
  int hall_of_fame = 6;  // distinct top candidates to retain.
};

// One evaluated attack: genome, its decoded trial's summary, and the fitness
// decomposition against the matching no-fault baseline.
struct AdversaryCandidate {
  AdversaryGenome genome;
  uint64_t evaluation_index = 0;  // DeriveTrialSeed index of its run seed.
  double fitness = 0.0;
  double damage = 0.0;
  double cost = 0.0;
  double baseline_be_throughput = 0.0;
  RunSummary attack;
};

struct AdversaryGenerationStats {
  int generation = 0;   // hill-climb phases report generations past the GA.
  double best_fitness = 0.0;        // best seen so far (monotone).
  double generation_best = 0.0;     // best within this generation.
  double generation_mean = 0.0;
  uint64_t evaluations = 0;         // cumulative candidate evaluations.
};

struct AdversarySearchResult {
  AdversaryCandidate best;
  // Top distinct candidates, fitness-descending — the minimization corpus
  // draws from these so one dominant genome cannot crowd out a second
  // weakness class.
  std::vector<AdversaryCandidate> hall_of_fame;
  std::vector<AdversaryGenerationStats> generations;
  uint64_t evaluations = 0;
  bool stopped_on_plateau = false;
  bool budget_exhausted = false;
};

// Runs the search. When `metrics` is non-null, per-generation progress is
// published through it (adversary/best_fitness, adversary/generation_best,
// adversary/generation_mean gauges and the adversary/evaluations counter,
// snapshotted once per generation) so obs_query can summarize a search run.
AdversarySearchResult AdversarySearch(const AdversarySearchOptions& options,
                                      MetricsRegistry* metrics = nullptr);

// Replays one candidate exactly as the search evaluated it: decode, derive
// the run seed from the evaluation index, run attack + baseline, recompute
// the fitness decomposition. The bit-reproducibility test pins this against
// the search's own records.
AdversaryCandidate ReplayCandidate(const AdversaryGenome& genome, uint64_t evaluation_index,
                                   const AdversaryConfig& config);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_ADVERSARY_SEARCH_H_
