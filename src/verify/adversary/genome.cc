#include "src/verify/adversary/genome.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "src/bemodel/be_job_spec.h"
#include "src/workload/app_catalog.h"
#include "src/workload/load_profile.h"

namespace rhythm {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// A feature gene below this leaves its event out of the schedule, so the
// search can switch attack ingredients off entirely (and ddmin agrees with
// it later about which events never mattered).
constexpr double kFeatureOffBelow = 0.1;

// Event windows start inside [warmup, warmup + 0.9 * measure] so every
// window both begins and substantially overlaps the measured interval.
double PhaseToStart(double phase, const AdversaryConfig& config) {
  return config.warmup_s + Clamp01(phase) * 0.9 * config.measure_s;
}

}  // namespace

AdversaryGenome RandomGenome(Rng& rng) {
  AdversaryGenome genome;
  for (double& gene : genome.genes) {
    gene = rng.NextDouble();
  }
  return genome;
}

AdversaryGenome ArchetypeGenome(int index) {
  AdversaryGenome genome;  // all genes 0: every optional feature off.
  auto& g = genome.genes;
  switch (index % kArchetypeCount) {
    case 0:
      // Synchronized re-admission under a load ramp: a heavy custom BE mix,
      // one cluster-wide admission hold over [101 s, 134 s] (phase 0.3,
      // duration gene 0.5 under the default 20+300 s windows), and a burst
      // whose onset lands on the release edge (phase 0.4222 -> 134 s). The
      // burst is deliberately modest — the damage should come from every pod
      // re-admitting its BE at the same instant into rising load.
      g[0] = 0.0;                               // custom pressure spec...
      g[1] = 0.8; g[2] = 0.8; g[3] = 0.9; g[4] = 0.2;
      g[5] = 0.4222; g[6] = 0.3; g[7] = 0.4;    // burst 1 at the release edge.
      g[14] = 0.3; g[15] = 0.5;                 // cluster hold, 33 s.
      break;
    case 1:
      // Pressure oscillation: no fault events — the attack is the workload
      // itself. A cache/bandwidth-hostile BE keeps yanking the slack across
      // the band edges, so the controller flips grow <-> cut at its own tick
      // frequency; the oscillation guard exists for exactly this.
      g[0] = 0.0;
      g[1] = 0.6; g[2] = 1.0; g[3] = 1.0; g[4] = 0.0;
      break;
  }
  return genome;
}

AdversaryGenome CrossoverGenomes(const AdversaryGenome& a, const AdversaryGenome& b, Rng& rng) {
  AdversaryGenome child;
  for (int i = 0; i < AdversaryGenome::kSize; ++i) {
    child.genes[i] = rng.Bernoulli(0.5) ? a.genes[i] : b.genes[i];
  }
  return child;
}

AdversaryGenome MutateGenome(const AdversaryGenome& genome, double rate, double sigma,
                             Rng& rng) {
  AdversaryGenome mutated = genome;
  for (double& gene : mutated.genes) {
    // Fixed draw count per gene keeps the stream layout independent of which
    // genes mutate (cheap insurance for reproducibility reasoning).
    const bool hit = rng.Bernoulli(rate);
    const double offset = rng.Normal(0.0, sigma);
    if (hit) {
      gene = Clamp01(gene + offset);
    }
  }
  return mutated;
}

RunRequest DecodeGenome(const AdversaryGenome& genome, const AdversaryConfig& config) {
  const auto& g = genome.genes;
  RunRequest request = DecodeBaseline(genome, config);
  request.label = "adversary-attack";

  const int pods = MakeApp(config.app).pod_count();
  auto schedule = std::make_shared<FaultSchedule>();

  // Three flash-crowd bursts riding the diurnal envelope (g[5..13]).
  for (int burst = 0; burst < 3; ++burst) {
    const double phase = g[5 + 3 * burst];
    const double amplitude = Clamp01(g[6 + 3 * burst]);
    const double duration = Clamp01(g[7 + 3 * burst]);
    if (amplitude < kFeatureOffBelow) {
      continue;
    }
    schedule->Add(FaultEvent{.kind = FaultKind::kLoadSpike,
                             .pod = 0,
                             .start_s = PhaseToStart(phase, config),
                             .duration_s = 10.0 + 50.0 * duration,
                             .magnitude = 0.1 + 0.4 * amplitude});
  }

  // Two cluster-wide admission holds (g[14..17]): the same window on every
  // pod, so the release edge re-admits the whole cluster at one instant.
  for (int hold = 0; hold < 2; ++hold) {
    const double phase = g[14 + 2 * hold];
    const double duration = Clamp01(g[15 + 2 * hold]);
    if (duration < kFeatureOffBelow) {
      continue;
    }
    const double start = PhaseToStart(phase, config);
    for (int pod = 0; pod < pods; ++pod) {
      schedule->Add(FaultEvent{.kind = FaultKind::kBeAdmissionHold,
                               .pod = pod,
                               .start_s = start,
                               .duration_s = 6.0 + 54.0 * duration});
    }
  }

  // One telemetry freeze on a selected pod (g[18..20]).
  if (Clamp01(g[19]) >= kFeatureOffBelow) {
    const int pod = std::min(pods - 1, static_cast<int>(Clamp01(g[20]) * pods));
    schedule->Add(FaultEvent{.kind = FaultKind::kTelemetryFreeze,
                             .pod = pod,
                             .start_s = PhaseToStart(g[18], config),
                             .duration_s = 10.0 + 40.0 * Clamp01(g[19])});
  }

  // One cluster-wide actuation-drop window (g[21..23]).
  if (Clamp01(g[22]) >= kFeatureOffBelow) {
    const double start = PhaseToStart(g[21], config);
    const double duration = 10.0 + 40.0 * Clamp01(g[22]);
    const double probability = 0.3 + 0.7 * Clamp01(g[23]);
    for (int pod = 0; pod < pods; ++pod) {
      schedule->Add(FaultEvent{.kind = FaultKind::kActuationDrop,
                               .pod = pod,
                               .start_s = start,
                               .duration_s = duration,
                               .magnitude = probability});
    }
  }

  request.faults = std::move(schedule);
  return request;
}

RunRequest DecodeBaseline(const AdversaryGenome& genome, const AdversaryConfig& config) {
  const auto& g = genome.genes;
  RunRequest request;
  request.app = config.app;
  request.controller = config.controller;
  request.seed = config.run_seed;
  request.warmup_s = config.warmup_s;
  request.measure_s = config.measure_s;
  request.hardening = config.hardening;
  request.profile = std::make_shared<DiurnalTrace>(config.warmup_s + config.measure_s,
                                                   config.diurnal_min, config.diurnal_max);
  if (g[0] < 0.5) {
    request.custom_be = std::make_shared<BeJobSpec>(MakeAdversarialBeSpec(ResourceVector{
        .cpu = Clamp01(g[1]), .llc = Clamp01(g[2]), .dram = Clamp01(g[3]),
        .net = Clamp01(g[4])}));
  } else {
    const auto& kinds = EvaluationBeJobKinds();
    const int index = std::min(static_cast<int>(kinds.size()) - 1,
                               static_cast<int>((g[0] - 0.5) * 2.0 * kinds.size()));
    request.be = kinds[index];
  }
  request.label = "adversary-baseline";
  return request;
}

std::string GenomeToString(const AdversaryGenome& genome) {
  std::ostringstream out;
  for (int i = 0; i < AdversaryGenome::kSize; ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", genome.genes[i]);
    out << (i == 0 ? "" : ";") << buffer;
  }
  return out.str();
}

}  // namespace rhythm
