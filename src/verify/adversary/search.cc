#include "src/verify/adversary/search.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/runner/runner.h"
#include "src/verify/adversary/fitness.h"

namespace rhythm {

namespace {

AdversaryConfig WithDerivedSeed(const AdversaryConfig& config, uint64_t evaluation_index) {
  AdversaryConfig derived = config;
  derived.run_seed = DeriveTrialSeed(config.run_seed, evaluation_index);
  return derived;
}

AdversaryCandidate MakeCandidate(const AdversaryGenome& genome, uint64_t evaluation_index,
                                 const RunSummary& attack, const RunSummary& baseline) {
  AdversaryCandidate candidate;
  candidate.genome = genome;
  candidate.evaluation_index = evaluation_index;
  candidate.damage = AttackDamage(attack);
  candidate.cost = AttackCost(attack, baseline);
  candidate.fitness = AttackFitness(attack, baseline);
  candidate.baseline_be_throughput = baseline.be_throughput;
  candidate.attack = attack;
  return candidate;
}

// Evaluates a batch of genomes through one RunPlan (attack and baseline
// interleaved). ParallelRunner returns results in plan order at any worker
// count, which is the whole batch's determinism story.
std::vector<AdversaryCandidate> EvaluateBatch(const std::vector<AdversaryGenome>& genomes,
                                              const AdversarySearchOptions& options,
                                              uint64_t* next_evaluation_index) {
  RunPlan plan;
  std::vector<uint64_t> indices;
  indices.reserve(genomes.size());
  for (const AdversaryGenome& genome : genomes) {
    const uint64_t index = (*next_evaluation_index)++;
    indices.push_back(index);
    const AdversaryConfig config = WithDerivedSeed(options.config, index);
    plan.Add(DecodeGenome(genome, config));
    plan.Add(DecodeBaseline(genome, config));
  }
  const ParallelRunner runner(RunnerOptions{.jobs = options.jobs});
  const std::vector<RunSummary> results = runner.RunAll(plan);
  std::vector<AdversaryCandidate> candidates;
  candidates.reserve(genomes.size());
  for (size_t i = 0; i < genomes.size(); ++i) {
    candidates.push_back(
        MakeCandidate(genomes[i], indices[i], results[2 * i], results[2 * i + 1]));
  }
  return candidates;
}

// Fitness-descending, ties broken toward the earlier evaluation — a total
// order independent of evaluation concurrency.
bool Better(const AdversaryCandidate& a, const AdversaryCandidate& b) {
  if (a.fitness != b.fitness) {
    return a.fitness > b.fitness;
  }
  return a.evaluation_index < b.evaluation_index;
}

void AdmitToHallOfFame(std::vector<AdversaryCandidate>& hall, const AdversaryCandidate& entry,
                       int capacity) {
  for (const AdversaryCandidate& held : hall) {
    if (held.genome == entry.genome) {
      return;  // elitism re-evaluates champions; keep the first sighting.
    }
  }
  hall.push_back(entry);
  std::sort(hall.begin(), hall.end(), Better);
  if (static_cast<int>(hall.size()) > capacity) {
    hall.resize(capacity);
  }
}

}  // namespace

AdversaryCandidate ReplayCandidate(const AdversaryGenome& genome, uint64_t evaluation_index,
                                   const AdversaryConfig& config) {
  const AdversaryConfig derived = WithDerivedSeed(config, evaluation_index);
  const RunSummary attack = Run(DecodeGenome(genome, derived));
  const RunSummary baseline = Run(DecodeBaseline(genome, derived));
  return MakeCandidate(genome, evaluation_index, attack, baseline);
}

AdversarySearchResult AdversarySearch(const AdversarySearchOptions& options,
                                      MetricsRegistry* metrics) {
  if (options.population < 2) {
    throw std::invalid_argument("AdversarySearch: population must be >= 2");
  }
  if (options.generations < 1) {
    throw std::invalid_argument("AdversarySearch: generations must be >= 1");
  }
  const int elitism = std::min(options.elitism, options.population);
  const int tournament = std::max(1, options.tournament);

  MetricsRegistry::MetricId best_id = 0, gen_best_id = 0, gen_mean_id = 0, evals_id = 0;
  if (metrics != nullptr) {
    best_id = metrics->Gauge("adversary/best_fitness");
    gen_best_id = metrics->Gauge("adversary/generation_best");
    gen_mean_id = metrics->Gauge("adversary/generation_mean");
    evals_id = metrics->Counter("adversary/evaluations");
  }

  const auto started = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (options.wall_clock_budget_s <= 0.0) {
      return false;
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - started;
    return elapsed.count() >= options.wall_clock_budget_s;
  };

  Rng master(options.seed);
  uint64_t next_evaluation_index = 0;

  // Generation 0: the known weakness-class archetypes first (so every search
  // probes the catalogued failure modes), uniform-random genomes after. The
  // GA treats archetypes like any other member — refine them or discard them.
  std::vector<AdversaryGenome> population;
  population.reserve(options.population);
  for (int i = 0; i < options.population; ++i) {
    population.push_back(i < kArchetypeCount && options.population > kArchetypeCount
                             ? ArchetypeGenome(i)
                             : RandomGenome(master));
  }

  AdversarySearchResult result;
  std::vector<AdversaryCandidate> evaluated;
  int stale_generations = 0;

  const auto record_generation = [&](int generation,
                                     const std::vector<AdversaryCandidate>& batch) {
    AdversaryGenerationStats stats;
    stats.generation = generation;
    double sum = 0.0;
    double batch_best = 0.0;
    for (const AdversaryCandidate& candidate : batch) {
      sum += candidate.fitness;
      batch_best = std::max(batch_best, candidate.fitness);
    }
    stats.generation_best = batch_best;
    stats.generation_mean = batch.empty() ? 0.0 : sum / static_cast<double>(batch.size());
    stats.best_fitness = result.best.fitness;
    stats.evaluations = next_evaluation_index;
    result.generations.push_back(stats);
    if (metrics != nullptr) {
      metrics->Set(best_id, stats.best_fitness);
      metrics->Set(gen_best_id, stats.generation_best);
      metrics->Set(gen_mean_id, stats.generation_mean);
      metrics->SetTotal(evals_id, static_cast<double>(stats.evaluations));
      metrics->Snapshot(static_cast<double>(generation));
    }
  };

  for (int generation = 0; generation < options.generations; ++generation) {
    evaluated = EvaluateBatch(population, options, &next_evaluation_index);

    bool improved = false;
    for (const AdversaryCandidate& candidate : evaluated) {
      if (result.evaluations == 0 && candidate.evaluation_index == 0) {
        result.best = candidate;  // seed the incumbent with the first candidate.
      }
      if (Better(candidate, result.best)) {
        result.best = candidate;
        improved = true;
      }
      AdmitToHallOfFame(result.hall_of_fame, candidate, options.hall_of_fame);
      ++result.evaluations;
    }
    record_generation(generation, evaluated);

    stale_generations = improved ? 0 : stale_generations + 1;
    if (options.plateau_generations > 0 && stale_generations >= options.plateau_generations) {
      result.stopped_on_plateau = true;
      break;
    }
    if (over_budget()) {
      result.budget_exhausted = true;
      break;
    }
    if (generation + 1 >= options.generations) {
      break;  // no need to breed a population that will never run.
    }

    // Next generation: elites survive verbatim; the rest come from
    // tournament-selected parents, crossed over and mutated.
    std::vector<AdversaryCandidate> ranked = evaluated;
    std::sort(ranked.begin(), ranked.end(), Better);
    std::vector<AdversaryGenome> next;
    next.reserve(options.population);
    for (int i = 0; i < elitism; ++i) {
      next.push_back(ranked[i].genome);
    }
    const auto select = [&]() -> const AdversaryGenome& {
      const AdversaryCandidate* winner = nullptr;
      for (int round = 0; round < tournament; ++round) {
        const AdversaryCandidate& contender =
            evaluated[master.UniformInt(evaluated.size())];
        if (winner == nullptr || Better(contender, *winner)) {
          winner = &contender;
        }
      }
      return winner->genome;
    };
    while (static_cast<int>(next.size()) < options.population) {
      const AdversaryGenome& a = select();
      const AdversaryGenome& b = select();
      AdversaryGenome child =
          master.Bernoulli(options.crossover_rate) ? CrossoverGenomes(a, b, master) : a;
      next.push_back(
          MutateGenome(child, options.mutation_rate, options.mutation_sigma, master));
    }
    population = std::move(next);
  }

  // Coordinate hill-climb of the champion: one gene per step, accept on
  // strict improvement. Draws are taken unconditionally so the master stream
  // position after step k never depends on which steps were accepted.
  if (options.hill_climb_steps > 0 && !result.budget_exhausted) {
    double climb_best = result.best.fitness;
    double climb_sum = 0.0;
    int climb_evals = 0;
    for (int step = 0; step < options.hill_climb_steps; ++step) {
      if (over_budget()) {
        result.budget_exhausted = true;
        break;
      }
      const int gene = step % AdversaryGenome::kSize;
      const double direction = master.Bernoulli(0.5) ? 1.0 : -1.0;
      const double magnitude = master.Uniform(0.02, 0.25);
      AdversaryGenome candidate_genome = result.best.genome;
      candidate_genome.genes[gene] = std::min(
          1.0, std::max(0.0, candidate_genome.genes[gene] + direction * magnitude));
      if (candidate_genome == result.best.genome) {
        continue;  // clamped into a no-op; skip the two runs.
      }
      const std::vector<AdversaryCandidate> batch =
          EvaluateBatch({candidate_genome}, options, &next_evaluation_index);
      const AdversaryCandidate& candidate = batch.front();
      ++result.evaluations;
      ++climb_evals;
      climb_sum += candidate.fitness;
      climb_best = std::max(climb_best, candidate.fitness);
      AdmitToHallOfFame(result.hall_of_fame, candidate, options.hall_of_fame);
      if (Better(candidate, result.best)) {
        result.best = candidate;
      }
    }
    if (climb_evals > 0) {
      AdversaryGenerationStats stats;
      stats.generation = static_cast<int>(result.generations.size());
      stats.generation_best = climb_best;
      stats.generation_mean = climb_sum / climb_evals;
      stats.best_fitness = result.best.fitness;
      stats.evaluations = next_evaluation_index;
      result.generations.push_back(stats);
      if (metrics != nullptr) {
        metrics->Set(best_id, stats.best_fitness);
        metrics->Set(gen_best_id, stats.generation_best);
        metrics->Set(gen_mean_id, stats.generation_mean);
        metrics->SetTotal(evals_id, static_cast<double>(stats.evaluations));
        metrics->Snapshot(static_cast<double>(stats.generation));
      }
    }
  }

  return result;
}

}  // namespace rhythm
