// Chaos fuzzer: sweeps seeded random fault schedules through full runs with
// the invariant monitor attached (collect mode) and reports every trial that
// breached an invariant, keyed by the (config, seed) pair that reproduces it.
//
// Determinism contract: trial `i` of a sweep is a pure function of
// (FuzzOptions, i) — the schedule comes from
// RandomFaultSchedule(chaos, DeriveTrialSeed(seed, 2i)) and the run seed is
// DeriveTrialSeed(seed, 2i+1) — so any finding replays exactly from its
// trial index alone, on any machine, with any worker count. The minimizer
// and the checked-in repro files both lean on FuzzTrialRequest() for this.

#ifndef RHYTHM_SRC_VERIFY_CHAOS_FUZZER_H_
#define RHYTHM_SRC_VERIFY_CHAOS_FUZZER_H_

#include <cstdint>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/runner/runner.h"
#include "src/verify/invariant_types.h"

namespace rhythm {

struct FuzzOptions {
  int trials = 200;
  uint64_t seed = 1;
  int jobs = 0;  // ParallelRunner worker count; <= 0 means auto.
  // Stop launching new trials once a violating one is found (the sweep still
  // reports it). false scans every trial regardless.
  bool fail_fast = true;

  // Budget knobs shared with the adversarial search (tools/chaos_fuzz and
  // tools/adversary_search take the same --generations / --population /
  // --wall-clock-budget-s flags). When both generations and population are
  // positive they override `trials` (= generations * population) and set the
  // chunk width to one generation. A positive wall-clock budget stops
  // launching new chunks once exceeded; like fail-fast it is checked only at
  // chunk boundaries, so every trial that does run is bit-identical to the
  // unbudgeted sweep — the deterministic early-stop is fail-fast, the clock
  // is a safety cap.
  int generations = 0;
  int population = 0;
  double wall_clock_budget_s = 0.0;

  // Trial shape. Apps rotate round-robin through the whole catalog so every
  // trial mix exercises each pod topology; the chaos knobs are shared, with
  // pod_count overridden per app.
  double load = 0.6;
  BeJobKind be = BeJobKind::kWordcount;
  ControllerKind controller = ControllerKind::kRhythm;
  double warmup_s = 20.0;
  // Long enough past the chaos window for live.recovery to be judged with
  // the default 120 s horizon (chaos duration 240 s + horizon + slop).
  double measure_s = 420.0;
  ChaosConfig chaos{.duration_s = 240.0};

  // Monitor knobs for each trial. The mode is forced to kCollect inside the
  // sweep — fail-fast there would abort mid-run and lose the violation list;
  // `fail_fast` above governs the sweep instead.
  InvariantOptions verify;
};

// One violating trial: everything needed to replay or minimize it.
struct FuzzFinding {
  int trial = -1;
  LcAppKind app = LcAppKind::kEcommerce;
  uint64_t schedule_seed = 0;
  uint64_t run_seed = 0;
  FaultSchedule schedule;
  std::vector<InvariantViolation> violations;
  uint64_t violations_total = 0;
};

struct FuzzReport {
  int trials_run = 0;
  int violating_trials = 0;
  std::vector<FuzzFinding> findings;  // in trial order; first is the repro seed.
  bool budget_exhausted = false;      // wall clock stopped the sweep early.
  bool clean() const { return violating_trials == 0; }
};

// The exact request sweep trial `index` executes (schedule drawn, seeds
// derived, monitor in collect mode). Exposed so findings can be replayed and
// minimized outside the sweep.
RunRequest FuzzTrialRequest(const FuzzOptions& options, int index);

// Runs the sweep. Trials execute in parallel chunks; with fail_fast, no new
// chunk starts once a violation has been seen.
FuzzReport FuzzChaos(const FuzzOptions& options);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_CHAOS_FUZZER_H_
