// Runtime invariant monitor: a DeploymentObserver that checks machine-level
// safety invariants at every simulated accounting/controller instant.
//
// The catalogue (full statements in DESIGN.md §9):
//   res.cores   — core conservation: free >= 0 and the allocator's BE share
//                 equals the sum held by BE instances (no cpuset overlap).
//   res.llc     — LLC-way conservation and the CAT floor: the LC always keeps
//                 at least its reserved ways.
//   res.mem     — BE memory accounting matches the instances; free >= 0.
//   res.membw   — bandwidth demands are finite and non-negative.
//   tele.finite — no NaN / negative tail, load or age in published telemetry
//                 or in the sample handed to MachineAgent::Tick.
//   ctrl.offline— a crashed machine hosts no BE instances, reports no BE
//                 activity and its agent never acts (stats frozen); the
//                 controller loop never ticks an offline agent.
//   ctrl.suspend— SuspendBE semantics: when every instance is suspended the
//                 runtime burns no cores and demands no bandwidth.
//   syn.tail-   — synthetic tripwire on the sampled tail (disabled by
//   tripwire      default); the deterministic target for fuzz/minimize demos.
//   live.recovery — bounded recovery: once the run extends a horizon past the
//                 last fault window, crash dents healed, slack went positive
//                 and (if BEs ran before the faults) BE work was re-admitted.
//
// The monitor is strictly read-only and draws no randomness: attaching it in
// kCollect mode leaves a run bit-identical (the golden bit-identity test
// asserts this). kFailFast throws InvariantViolationError from inside the
// offending tick, which aborts the simulation at the first breach.

#ifndef RHYTHM_SRC_VERIFY_INVARIANT_MONITOR_H_
#define RHYTHM_SRC_VERIFY_INVARIANT_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/control/machine_agent.h"
#include "src/verify/deployment_observer.h"
#include "src/verify/invariant_types.h"

namespace rhythm {

class Deployment;

// Thrown in kFailFast mode; carries the violation that tripped it.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(InvariantViolation violation);
  const InvariantViolation& violation() const { return violation_; }

 private:
  InvariantViolation violation_;
};

class InvariantMonitor : public DeploymentObserver {
 public:
  // First-occurrence records kept per distinct (id, machine); repeats of an
  // already-recorded breach only bump the total counter so a persistently
  // violated invariant cannot flood memory on a long run.
  static constexpr size_t kMaxStoredViolations = 100;

  explicit InvariantMonitor(const InvariantOptions& options);

  // DeploymentObserver hooks (read-only checks, see the catalogue above).
  void AfterAccountingTick(const Deployment& deployment) override;
  void BeforeAgentTick(const Deployment& deployment, int pod,
                       const MachineAgent::TelemetrySample& sample) override;
  void AfterControllerTick(const Deployment& deployment) override;
  void OnPodCrash(const Deployment& deployment, int pod) override;
  void OnPodReboot(const Deployment& deployment, int pod) override;

  // End-of-run liveness check ("live.recovery"). Call once after the last
  // RunFor; in kFailFast mode this may throw like any other check.
  void Finalize(const Deployment& deployment);

  // Recorded first occurrences (capped) and the uncapped breach count.
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  uint64_t total_violations() const { return total_; }
  bool clean() const { return total_ == 0; }

  const InvariantOptions& options() const { return options_; }

 private:
  // Records (or in kFailFast mode, throws) one breach.
  void Report(double time_s, int machine, const char* id, std::string detail);
  bool AlreadyRecorded(const char* id, int machine) const;

  // Per-instant sweeps, shared by the accounting and controller hooks.
  void CheckMachineResources(const Deployment& deployment, double now);
  void CheckOfflinePods(const Deployment& deployment, double now);
  void CheckSuspendSemantics(const Deployment& deployment, double now);
  void CheckTelemetry(const Deployment& deployment, double now);

  void EnsureInitialized(const Deployment& deployment);

  InvariantOptions options_;
  std::vector<InvariantViolation> violations_;
  uint64_t total_ = 0;

  struct PodState {
    bool offline = false;
    // Agent actuation counters snapshotted at the crash edge; they must not
    // move while the machine is down ("ctrl.offline").
    MachineAgent::Stats frozen_stats;
    bool frozen_valid = false;
  };
  std::vector<PodState> pods_;
  bool initialized_ = false;
  // Fault-window bounds from the deployment's schedule (for live.recovery)
  // and whether BE work was ever observed before the first fault.
  double first_fault_start_s_ = 0.0;
  double last_fault_end_s_ = 0.0;
  bool has_faults_ = false;
  bool be_before_faults_ = false;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_INVARIANT_MONITOR_H_
