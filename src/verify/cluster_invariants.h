// Cluster-scope invariants for the failure-domain layer (DESIGN.md §14).
//
// The per-trial InvariantMonitor watches one deployment from the inside;
// machine loss and failover are decided *between* trials, on the cluster
// engine's coordinating thread, so their invariants live here. The checker
// keeps its own shadow liveness state and validates every transition the
// engine enacts against it — a checker that trusted the engine's roster
// would only ever confirm the roster agrees with itself.
//
// Catalogue additions (ids follow the DESIGN.md §9 dotted scheme):
//   fail.latency      a machine loss was enacted more than
//                     failover_latency_bound_s after its scheduled start — the
//                     barrier-driven supervisor slept through its window.
//   fail.dead-assign  a running group's machine range intersects a dead
//                     machine after a barrier settled.
//   fail.rejoin       a rejoin was enacted on a machine the shadow state says
//                     is alive, or at a time not after its loss (monotone
//                     rejoin legality).
//   fail.conserve     epoch-end conservation: disrupted incarnations !=
//                     failovers started + groups lost.
//
// Like the monitor, the checker is passive and draws no randomness; kCollect
// records, kFailFast throws InvariantViolationError at the first breach.

#ifndef RHYTHM_SRC_VERIFY_CLUSTER_INVARIANTS_H_
#define RHYTHM_SRC_VERIFY_CLUSTER_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/verify/invariant_types.h"

namespace rhythm {

class ClusterInvariantChecker {
 public:
  // Matches InvariantMonitor: first occurrence kept per (id, machine),
  // repeats only bump the total.
  static constexpr size_t kMaxStoredViolations = 100;

  ClusterInvariantChecker(const InvariantOptions& options, int machines);

  bool armed() const { return options_.mode != InvariantMode::kOff; }

  // A loss transition the engine just enacted. `scheduled_s` is the fault
  // event's start_s; `time_s` the barrier's cluster time.
  void OnLossEnacted(double time_s, int machine, double scheduled_s);

  // A rejoin transition the engine just enacted.
  void OnRejoinEnacted(double time_s, int machine);

  // Post-barrier assignment audit: every running group's machine range
  // [first, first + pods) must avoid machines the shadow state holds dead.
  void CheckAssignments(double time_s,
                        const std::vector<std::pair<int, int>>& live_ranges);

  // Epoch-end conservation: every disrupted incarnation must be accounted as
  // exactly one failover or one lost group.
  void CheckConservation(double time_s, int epoch, int disrupted,
                         int failed_over, int lost);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  uint64_t total_violations() const { return total_; }

 private:
  void Report(double time_s, int machine, const char* id, std::string detail);
  bool AlreadyRecorded(const char* id, int machine) const;

  InvariantOptions options_;
  // Shadow liveness: < 0 alive, else the cluster time the machine went down.
  std::vector<double> down_since_;
  std::vector<InvariantViolation> violations_;
  uint64_t total_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_CLUSTER_INVARIANTS_H_
