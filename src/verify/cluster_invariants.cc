#include "src/verify/cluster_invariants.h"

#include <string>

#include "src/verify/invariant_monitor.h"

namespace rhythm {

ClusterInvariantChecker::ClusterInvariantChecker(const InvariantOptions& options,
                                                int machines)
    : options_(options), down_since_(static_cast<size_t>(machines), -1.0) {}

bool ClusterInvariantChecker::AlreadyRecorded(const char* id, int machine) const {
  for (const InvariantViolation& violation : violations_) {
    if (violation.machine == machine && violation.id == id) {
      return true;
    }
  }
  return false;
}

void ClusterInvariantChecker::Report(double time_s, int machine, const char* id,
                                     std::string detail) {
  ++total_;
  if (!AlreadyRecorded(id, machine) && violations_.size() < kMaxStoredViolations) {
    violations_.push_back(InvariantViolation{time_s, machine, id, detail});
  }
  if (options_.mode == InvariantMode::kFailFast) {
    throw InvariantViolationError(InvariantViolation{time_s, machine, id, std::move(detail)});
  }
}

void ClusterInvariantChecker::OnLossEnacted(double time_s, int machine,
                                            double scheduled_s) {
  if (!armed()) {
    return;
  }
  const double latency = time_s - scheduled_s;
  if (latency > options_.failover_latency_bound_s) {
    Report(time_s, machine, "fail.latency",
           "loss scheduled at " + std::to_string(scheduled_s) + "s enacted at " +
               std::to_string(time_s) + "s (latency " + std::to_string(latency) +
               "s > bound " + std::to_string(options_.failover_latency_bound_s) + "s)");
  }
  if (machine >= 0 && machine < static_cast<int>(down_since_.size())) {
    down_since_[static_cast<size_t>(machine)] = time_s;
  }
}

void ClusterInvariantChecker::OnRejoinEnacted(double time_s, int machine) {
  if (!armed()) {
    return;
  }
  if (machine < 0 || machine >= static_cast<int>(down_since_.size())) {
    Report(time_s, machine, "fail.rejoin",
           "rejoin enacted for out-of-roster machine " + std::to_string(machine));
    return;
  }
  const double down_since = down_since_[static_cast<size_t>(machine)];
  if (down_since < 0.0) {
    Report(time_s, machine, "fail.rejoin",
           "rejoin enacted while the machine is alive");
    return;
  }
  if (time_s <= down_since) {
    Report(time_s, machine, "fail.rejoin",
           "rejoin at " + std::to_string(time_s) + "s is not after the loss at " +
               std::to_string(down_since) + "s");
    return;
  }
  down_since_[static_cast<size_t>(machine)] = -1.0;
}

void ClusterInvariantChecker::CheckAssignments(
    double time_s, const std::vector<std::pair<int, int>>& live_ranges) {
  if (!armed()) {
    return;
  }
  for (const auto& [first, pods] : live_ranges) {
    for (int m = first; m < first + pods; ++m) {
      if (m >= 0 && m < static_cast<int>(down_since_.size()) &&
          down_since_[static_cast<size_t>(m)] >= 0.0) {
        Report(time_s, m, "fail.dead-assign",
               "group range [" + std::to_string(first) + ", " +
                   std::to_string(first + pods) + ") runs on machine " +
                   std::to_string(m) + ", dead since " +
                   std::to_string(down_since_[static_cast<size_t>(m)]) + "s");
        break;  // one report per group range is enough.
      }
    }
  }
}

void ClusterInvariantChecker::CheckConservation(double time_s, int epoch,
                                                int disrupted, int failed_over,
                                                int lost) {
  if (!armed()) {
    return;
  }
  if (disrupted != failed_over + lost) {
    Report(time_s, -1, "fail.conserve",
           "epoch " + std::to_string(epoch) + ": " + std::to_string(disrupted) +
               " disrupted incarnations but " + std::to_string(failed_over) +
               " failovers + " + std::to_string(lost) + " lost");
  }
}

}  // namespace rhythm
