#include "src/verify/invariant_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/cluster/deployment.h"

namespace rhythm {

namespace {

// Slop for double-precision resource accounting (memory GB sums).
constexpr double kGbTolerance = 1e-6;

bool FiniteNonNegative(double value) { return std::isfinite(value) && value >= 0.0; }

std::string Fmt(const char* format, double a, double b = 0.0) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, a, b);
  return buffer;
}

double SumInstanceMemoryGb(const BeRuntime& be) {
  double total = 0.0;
  for (const BeInstance& inst : be.instances()) {
    total += inst.memory_gb;
  }
  return total;
}

}  // namespace

InvariantViolationError::InvariantViolationError(InvariantViolation violation)
    : std::runtime_error("invariant " + violation.id + " violated at t=" +
                         std::to_string(violation.time_s) +
                         (violation.machine >= 0
                              ? " machine " + std::to_string(violation.machine)
                              : std::string()) +
                         ": " + violation.detail),
      violation_(std::move(violation)) {}

InvariantMonitor::InvariantMonitor(const InvariantOptions& options) : options_(options) {}

bool InvariantMonitor::AlreadyRecorded(const char* id, int machine) const {
  for (const InvariantViolation& v : violations_) {
    if (v.machine == machine && v.id == id) {
      return true;
    }
  }
  return false;
}

void InvariantMonitor::Report(double time_s, int machine, const char* id, std::string detail) {
  ++total_;
  InvariantViolation violation{time_s, machine, id, std::move(detail)};
  if (options_.mode == InvariantMode::kFailFast) {
    throw InvariantViolationError(std::move(violation));
  }
  if (violations_.size() < kMaxStoredViolations && !AlreadyRecorded(id, machine)) {
    violations_.push_back(std::move(violation));
  }
}

void InvariantMonitor::EnsureInitialized(const Deployment& deployment) {
  if (initialized_) {
    return;
  }
  initialized_ = true;
  pods_.resize(static_cast<size_t>(deployment.pod_count()));
  const FaultSchedule* schedule = deployment.fault_schedule();
  if (schedule != nullptr && !schedule->events.empty()) {
    has_faults_ = true;
    first_fault_start_s_ = schedule->events.front().start_s;
    last_fault_end_s_ = 0.0;
    for (const FaultEvent& event : schedule->events) {
      first_fault_start_s_ = std::min(first_fault_start_s_, event.start_s);
      last_fault_end_s_ = std::max(last_fault_end_s_, event.start_s + event.duration_s);
    }
  }
}

void InvariantMonitor::CheckMachineResources(const Deployment& deployment, double now) {
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    const Machine& machine = deployment.machine(pod);
    const BeRuntime* be = deployment.be(pod);

    // res.cores — conservation and no cpuset overlap: the allocator's BE
    // share is exactly the cores the instances hold, and nothing is
    // over-committed past the machine's core count.
    const CoreAllocator& cores = machine.cores();
    if (cores.free_cores() < 0 || cores.be_cores() < 0) {
      Report(now, pod, "res.cores",
             Fmt("core allocator over-committed: free=%.0f be=%.0f",
                 static_cast<double>(cores.free_cores()), static_cast<double>(cores.be_cores())));
    }
    if (be != nullptr && be->TotalCoresHeld() != cores.be_cores()) {
      Report(now, pod, "res.cores",
             Fmt("BE instances hold %.0f cores but allocator granted %.0f",
                 static_cast<double>(be->TotalCoresHeld()),
                 static_cast<double>(cores.be_cores())));
    }

    // res.llc — way conservation and the CAT floor for the LC.
    const CatAllocator& cat = machine.cat();
    if (cat.be_ways() < 0 || cat.lc_ways() < machine.lc_reservation().min_llc_ways) {
      Report(now, pod, "res.llc",
             Fmt("LLC partition breached the LC floor: lc_ways=%.0f floor=%.0f",
                 static_cast<double>(cat.lc_ways()),
                 static_cast<double>(machine.lc_reservation().min_llc_ways)));
    }
    if (be != nullptr && be->TotalWaysHeld() != cat.be_ways()) {
      Report(now, pod, "res.llc",
             Fmt("BE instances hold %.0f ways but allocator granted %.0f",
                 static_cast<double>(be->TotalWaysHeld()), static_cast<double>(cat.be_ways())));
    }

    // res.mem — the BE memory book matches the instances; nothing negative.
    const MemoryAllocator& memory = machine.memory();
    if (memory.free_gb() < -kGbTolerance || memory.be_gb() < -kGbTolerance) {
      Report(now, pod, "res.mem",
             Fmt("memory over-committed: free=%.3f GB be=%.3f GB", memory.free_gb(),
                 memory.be_gb()));
    }
    if (be != nullptr) {
      const double held = SumInstanceMemoryGb(*be);
      if (std::fabs(held - memory.be_gb()) > kGbTolerance) {
        Report(now, pod, "res.mem",
               Fmt("BE instances hold %.6f GB but allocator granted %.6f GB", held,
                   memory.be_gb()));
      }
    }

    // res.membw — demand accounting stays finite and non-negative (the
    // saturation model divides by capacity; a NaN here poisons every tail).
    const MembwAccountant& membw = machine.membw();
    if (!FiniteNonNegative(membw.lc_demand_gbs()) || !FiniteNonNegative(membw.be_demand_gbs())) {
      Report(now, pod, "res.membw",
             Fmt("bandwidth demand not finite/non-negative: lc=%g be=%g", membw.lc_demand_gbs(),
                 membw.be_demand_gbs()));
    }
  }
}

void InvariantMonitor::CheckOfflinePods(const Deployment& deployment, double now) {
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    if (deployment.PodOnline(pod)) {
      continue;
    }
    const BeRuntime* be = deployment.be(pod);
    if (be != nullptr && be->instance_count() != 0) {
      Report(now, pod, "ctrl.offline",
             Fmt("%.0f BE instances alive on a crashed machine",
                 static_cast<double>(be->instance_count())));
    }
    const Machine& machine = deployment.machine(pod);
    if (machine.lc_busy_cores() != 0.0 || machine.be_busy_cores() != 0.0) {
      Report(now, pod, "ctrl.offline",
             Fmt("crashed machine reports activity: lc=%.3f be=%.3f cores",
                 machine.lc_busy_cores(), machine.be_busy_cores()));
    }
    // The agent died with its machine: its actuation counters must not move
    // until the reboot edge.
    const PodState& state = pods_[static_cast<size_t>(pod)];
    const MachineAgent* agent = deployment.agent(pod);
    if (agent != nullptr && state.frozen_valid) {
      const MachineAgent::Stats& s = agent->stats();
      const MachineAgent::Stats& f = state.frozen_stats;
      if (s.ticks != f.ticks || s.grows != f.grows || s.cuts != f.cuts ||
          s.suspends != f.suspends || s.stops != f.stops || s.be_kills != f.be_kills) {
        Report(now, pod, "ctrl.offline",
               Fmt("agent acted while its machine was down (ticks %.0f -> %.0f)",
                   static_cast<double>(f.ticks), static_cast<double>(s.ticks)));
      }
    }
  }
}

void InvariantMonitor::CheckSuspendSemantics(const Deployment& deployment, double now) {
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    const BeRuntime* be = deployment.be(pod);
    if (be == nullptr || be->instance_count() == 0 || !be->all_suspended()) {
      continue;
    }
    if (be->BusyCores() != 0.0 || be->MembwDemand() != 0.0) {
      Report(now, pod, "ctrl.suspend",
             Fmt("suspended runtime still active: busy=%.3f cores, membw=%.3f GB/s",
                 be->BusyCores(), be->MembwDemand()));
    }
  }
}

void InvariantMonitor::CheckTelemetry(const Deployment& deployment, double now) {
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    const Deployment::PodTelemetry& telemetry = deployment.published_telemetry(pod);
    if (!FiniteNonNegative(telemetry.tail_ms)) {
      Report(now, pod, "tele.finite", Fmt("published tail is %g ms", telemetry.tail_ms));
    }
    if (!std::isfinite(telemetry.sampled_at) || telemetry.sampled_at > now + 1e-9) {
      Report(now, pod, "tele.finite",
             Fmt("published sample timestamped %.3f in the future of t=%.3f",
                 telemetry.sampled_at, now));
    }
  }
  if (!deployment.tail_series().empty()) {
    const double tail = deployment.tail_series().points().back().value;
    if (!FiniteNonNegative(tail)) {
      Report(now, -1, "tele.finite", Fmt("sampled tail series holds %g ms", tail));
    } else if (tail > options_.synthetic_tail_tripwire_ms) {
      Report(now, -1, "syn.tail-tripwire",
             Fmt("sampled tail %.3f ms exceeds the %.3f ms tripwire", tail,
                 options_.synthetic_tail_tripwire_ms));
    }
  }
}

void InvariantMonitor::AfterAccountingTick(const Deployment& deployment) {
  EnsureInitialized(deployment);
  const double now = deployment.sim().Now();
  if (has_faults_ && !be_before_faults_ && now < first_fault_start_s_) {
    for (int pod = 0; pod < deployment.pod_count() && !be_before_faults_; ++pod) {
      const BeRuntime* be = deployment.be(pod);
      be_before_faults_ = be != nullptr && be->instance_count() > 0;
    }
  }
  CheckMachineResources(deployment, now);
  CheckOfflinePods(deployment, now);
  CheckSuspendSemantics(deployment, now);
  CheckTelemetry(deployment, now);
}

void InvariantMonitor::BeforeAgentTick(const Deployment& deployment, int pod,
                                       const MachineAgent::TelemetrySample& sample) {
  EnsureInitialized(deployment);
  const double now = deployment.sim().Now();
  // The controller loop skips crashed machines; an agent tick on one means a
  // command is about to land on hardware that is not there.
  if (!deployment.PodOnline(pod)) {
    Report(now, pod, "ctrl.offline", "controller ticked an agent whose machine is down");
  }
  if (!FiniteNonNegative(sample.load) || !FiniteNonNegative(sample.tail_ms) ||
      !FiniteNonNegative(sample.tail_age_s) || !FiniteNonNegative(sample.lc_utilization)) {
    Report(now, pod, "tele.finite",
           Fmt("agent input not finite/non-negative: load=%g tail=%g ms", sample.load,
               sample.tail_ms));
  }
}

void InvariantMonitor::AfterControllerTick(const Deployment& deployment) {
  EnsureInitialized(deployment);
  const double now = deployment.sim().Now();
  // Actuations and scheduler dispatch just ran: re-sweep the resource books
  // and suspend semantics at the same instant.
  CheckMachineResources(deployment, now);
  CheckOfflinePods(deployment, now);
  CheckSuspendSemantics(deployment, now);
}

void InvariantMonitor::OnPodCrash(const Deployment& deployment, int pod) {
  EnsureInitialized(deployment);
  const double now = deployment.sim().Now();
  PodState& state = pods_[static_cast<size_t>(pod)];
  state.offline = true;
  const MachineAgent* agent = deployment.agent(pod);
  if (agent != nullptr) {
    state.frozen_stats = agent->stats();
    state.frozen_valid = true;
  }
  // The deployment tears BEs down before notifying: the pod must already be
  // clean at the crash edge.
  const BeRuntime* be = deployment.be(pod);
  if (be != nullptr && be->instance_count() != 0) {
    Report(now, pod, "ctrl.offline",
           Fmt("%.0f BE instances survived the crash teardown",
               static_cast<double>(be->instance_count())));
  }
}

void InvariantMonitor::OnPodReboot(const Deployment& deployment, int pod) {
  EnsureInitialized(deployment);
  PodState& state = pods_[static_cast<size_t>(pod)];
  state.offline = false;
  state.frozen_valid = false;
}

void InvariantMonitor::Finalize(const Deployment& deployment) {
  EnsureInitialized(deployment);
  if (!has_faults_) {
    return;
  }
  const double now = deployment.sim().Now();
  const double horizon = options_.recovery_horizon_s;
  if (now < last_fault_end_s_ + horizon) {
    return;  // the run ended inside the grace window; liveness not judgeable.
  }
  const double window_start = now - horizon;
  if (!deployment.recovered()) {
    Report(now, -1, "live.recovery",
           Fmt("a crash dent was still unhealed %.0f s after the last fault window",
               now - last_fault_end_s_));
  }
  bool positive_slack = false;
  for (const TimeSeries::Point& point : deployment.slack_series().points()) {
    if (point.time >= window_start && point.value > 0.0) {
      positive_slack = true;
      break;
    }
  }
  if (!positive_slack) {
    Report(now, -1, "live.recovery",
           Fmt("no positive-slack accounting tick in the final %.0f s horizon", horizon));
  }
  if (be_before_faults_) {
    bool be_readmitted = false;
    for (int pod = 0; pod < deployment.pod_count() && !be_readmitted; ++pod) {
      const BeRuntime* be = deployment.be(pod);
      if (be != nullptr && be->instance_count() > 0) {
        be_readmitted = true;
        break;
      }
      for (const TimeSeries::Point& point : deployment.pod_series(pod).be_instances.points()) {
        if (point.time >= window_start && point.value > 0.0) {
          be_readmitted = true;
          break;
        }
      }
    }
    if (!be_readmitted) {
      Report(now, -1, "live.recovery",
             Fmt("BE work ran before the faults but none was re-admitted in the final %.0f s",
                 horizon));
    }
  }
}

}  // namespace rhythm
