// Chaos repro files: a minimized failing schedule plus the trial context
// needed to replay it — app, BE kind, controller, run seed, load, windows
// and monitor knobs. Layered on the fault-schedule text format: the trial
// context rides in `#! key value` directive lines, which the plain schedule
// parser skips as comments, so a repro file is also a valid FaultSchedule
// file. Example:
//
//   # rhythm-fault-schedule v1
//   #! app 0
//   #! be 6
//   #! controller 1
//   #! run_seed 1234
//   #! load 0.6
//   #! warmup_s 20
//   #! measure_s 420
//   #! tripwire_ms 40
//   PodCrash 1 30 20 0.3
//
// Files under tests/fault/repros/ are replayed by chaos_repro_test: each
// must still trigger its violation, pinning every fuzz-found bug forever.

#ifndef RHYTHM_SRC_VERIFY_REPRO_IO_H_
#define RHYTHM_SRC_VERIFY_REPRO_IO_H_

#include <cstdint>
#include <limits>
#include <string>

#include "src/fault/fault_schedule.h"
#include "src/runner/run_request.h"

namespace rhythm {

struct ChaosRepro {
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kWordcount;
  ControllerKind controller = ControllerKind::kRhythm;
  uint64_t run_seed = 1;
  double load = 0.6;
  double warmup_s = 20.0;
  double measure_s = 420.0;
  // Monitor knobs the violation was found under.
  double tripwire_ms = std::numeric_limits<double>::infinity();
  double recovery_horizon_s = 120.0;
  FaultSchedule schedule;
};

// The runnable trial: monitor attached in collect mode with the repro's
// knobs, schedule owned by the request.
RunRequest ReproToRequest(const ChaosRepro& repro);

// Builds a repro from a violating request (inverse of ReproToRequest).
ChaosRepro ReproFromRequest(const RunRequest& request);

std::string ChaosReproToText(const ChaosRepro& repro);
// Throws std::invalid_argument on malformed directives or schedule lines.
ChaosRepro ChaosReproFromText(const std::string& text);

void SaveChaosRepro(const ChaosRepro& repro, const std::string& path);
ChaosRepro LoadChaosRepro(const std::string& path);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_REPRO_IO_H_
