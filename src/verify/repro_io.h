// Chaos repro files: a minimized failing schedule plus the trial context
// needed to replay it — app, BE kind, controller, run seed, load, windows
// and monitor knobs. Layered on the fault-schedule text format: the trial
// context rides in `#! key value` directive lines, which the plain schedule
// parser skips as comments, so a repro file is also a valid FaultSchedule
// file. Example:
//
//   # rhythm-fault-schedule v1
//   #! app 0
//   #! be 6
//   #! controller 1
//   #! run_seed 1234
//   #! load 0.6
//   #! warmup_s 20
//   #! measure_s 420
//   #! tripwire_ms 40
//   PodCrash 1 30 20 0.3
//
// Files under tests/fault/repros/ are replayed by chaos_repro_test: each
// must still trigger its violation, pinning every fuzz-found bug forever.

#ifndef RHYTHM_SRC_VERIFY_REPRO_IO_H_
#define RHYTHM_SRC_VERIFY_REPRO_IO_H_

#include <cstdint>
#include <limits>
#include <string>

#include "src/fault/fault_schedule.h"
#include "src/runner/run_request.h"

namespace rhythm {

struct ChaosRepro {
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kWordcount;
  ControllerKind controller = ControllerKind::kRhythm;
  uint64_t run_seed = 1;
  double load = 0.6;
  double warmup_s = 20.0;
  double measure_s = 420.0;
  // Monitor knobs the violation was found under.
  double tripwire_ms = std::numeric_limits<double>::infinity();
  double recovery_horizon_s = 120.0;

  // -- Adversarial-trial context (all optional; absent directives leave the
  //    plain chaos-repro behaviour untouched) --------------------------------

  // `#! diurnal <min> <max>`: drive the run with a DiurnalTrace over
  // warmup_s + measure_s instead of the constant `load`.
  bool has_diurnal = false;
  double diurnal_min = 0.25;
  double diurnal_max = 0.95;
  // `#! pressure <cpu> <llc> <dram> <net>`: run a custom adversarial BE spec
  // decoded from this vector instead of the catalog kind `be`.
  bool has_pressure = false;
  ResourceVector pressure;
  // `#! harden_jitter 1` / `#! harden_osc 1`: replay against the hardened
  // controller (before/after comparisons keep two copies of one file).
  ControlHardening hardening;
  // `#! expect_slack_ticks N`, `#! expect_worst_tail_ratio X`,
  // `#! expect_be_throughput X`: the summary the attack produced when it was
  // minted, %.17g-exact. The corpus replay test asserts exact equality — the
  // bit-reproducibility contract for checked-in attacks.
  bool has_expectations = false;
  uint64_t expect_slack_ticks = 0;
  double expect_worst_tail_ratio = 0.0;
  double expect_be_throughput = 0.0;

  FaultSchedule schedule;
};

// The runnable trial: monitor attached in collect mode with the repro's
// knobs, schedule owned by the request.
RunRequest ReproToRequest(const ChaosRepro& repro);

// Builds a repro from a violating request (inverse of ReproToRequest).
ChaosRepro ReproFromRequest(const RunRequest& request);

std::string ChaosReproToText(const ChaosRepro& repro);
// Throws std::invalid_argument on malformed directives or schedule lines.
ChaosRepro ChaosReproFromText(const std::string& text);

void SaveChaosRepro(const ChaosRepro& repro, const std::string& path);
ChaosRepro LoadChaosRepro(const std::string& path);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_REPRO_IO_H_
