#include "src/verify/repro_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "src/bemodel/be_job_spec.h"
#include "src/fault/fault_schedule_io.h"
#include "src/workload/load_profile.h"

namespace rhythm {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

int ParseEnumInt(const std::string& value, int limit, const char* key) {
  std::istringstream in(value);
  int parsed = -1;
  if (!(in >> parsed) || parsed < 0 || parsed >= limit) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' out of range: " + value);
  }
  return parsed;
}

double ParseDouble(const std::string& value, const char* key) {
  std::istringstream in(value);
  double parsed = 0.0;
  if (!(in >> parsed)) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' is not a number: " + value);
  }
  return parsed;
}

uint64_t ParseU64(const std::string& value, const char* key) {
  std::istringstream in(value);
  uint64_t parsed = 0;
  if (!(in >> parsed)) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' is not an unsigned integer: " + value);
  }
  return parsed;
}

}  // namespace

RunRequest ReproToRequest(const ChaosRepro& repro) {
  RunRequest request;
  request.app = repro.app;
  request.be = repro.be;
  request.controller = repro.controller;
  request.seed = repro.run_seed;
  request.load = repro.load;
  request.warmup_s = repro.warmup_s;
  request.measure_s = repro.measure_s;
  request.faults = std::make_shared<FaultSchedule>(repro.schedule);
  if (repro.has_diurnal) {
    request.profile = std::make_shared<DiurnalTrace>(repro.warmup_s + repro.measure_s,
                                                     repro.diurnal_min, repro.diurnal_max);
  }
  if (repro.has_pressure) {
    request.custom_be = std::make_shared<BeJobSpec>(MakeAdversarialBeSpec(repro.pressure));
  }
  request.hardening = repro.hardening;
  request.verify.mode = InvariantMode::kCollect;
  request.verify.synthetic_tail_tripwire_ms = repro.tripwire_ms;
  request.verify.recovery_horizon_s = repro.recovery_horizon_s;
  request.label = std::string("repro ") + LcAppKindName(repro.app) +
                  " seed=" + std::to_string(repro.run_seed);
  return request;
}

ChaosRepro ReproFromRequest(const RunRequest& request) {
  if (request.faults == nullptr) {
    throw std::invalid_argument("ReproFromRequest: the request carries no fault schedule");
  }
  ChaosRepro repro;
  repro.app = request.app;
  repro.be = request.be;
  repro.controller = request.controller;
  repro.run_seed = request.seed;
  repro.load = request.load;
  repro.warmup_s = request.warmup_s;
  repro.measure_s = request.measure_s;
  repro.tripwire_ms = request.verify.synthetic_tail_tripwire_ms;
  repro.recovery_horizon_s = request.verify.recovery_horizon_s;
  repro.hardening = request.hardening;
  if (request.custom_be != nullptr) {
    repro.has_pressure = true;
    repro.pressure = request.custom_be->pressure;
  }
  // A diurnal profile cannot be recovered from the abstract LoadProfile*;
  // callers that drove the run with one set has_diurnal themselves (the
  // adversary corpus does).
  repro.schedule = *request.faults;
  return repro;
}

std::string ChaosReproToText(const ChaosRepro& repro) {
  std::ostringstream out;
  out << "# rhythm-fault-schedule v1\n";
  out << "# chaos repro: " << LcAppKindName(repro.app) << " + " << BeJobKindName(repro.be)
      << " under " << ControllerKindName(repro.controller) << "\n";
  out << "#! app " << static_cast<int>(repro.app) << "\n";
  out << "#! be " << static_cast<int>(repro.be) << "\n";
  out << "#! controller " << static_cast<int>(repro.controller) << "\n";
  out << "#! run_seed " << repro.run_seed << "\n";
  out << "#! load " << Num(repro.load) << "\n";
  out << "#! warmup_s " << Num(repro.warmup_s) << "\n";
  out << "#! measure_s " << Num(repro.measure_s) << "\n";
  // An infinite tripwire (monitor default) is expressed by omission — stream
  // round-trips of "inf" are not portable.
  if (std::isfinite(repro.tripwire_ms)) {
    out << "#! tripwire_ms " << Num(repro.tripwire_ms) << "\n";
  }
  out << "#! recovery_horizon_s " << Num(repro.recovery_horizon_s) << "\n";
  if (repro.has_diurnal) {
    out << "#! diurnal " << Num(repro.diurnal_min) << ' ' << Num(repro.diurnal_max) << "\n";
  }
  if (repro.has_pressure) {
    out << "#! pressure " << Num(repro.pressure.cpu) << ' ' << Num(repro.pressure.llc) << ' '
        << Num(repro.pressure.dram) << ' ' << Num(repro.pressure.net) << "\n";
  }
  if (repro.hardening.readmission_jitter) {
    out << "#! harden_jitter 1\n";
  }
  if (repro.hardening.oscillation_guard) {
    out << "#! harden_osc 1\n";
  }
  if (repro.has_expectations) {
    out << "#! expect_slack_ticks " << repro.expect_slack_ticks << "\n";
    out << "#! expect_worst_tail_ratio " << Num(repro.expect_worst_tail_ratio) << "\n";
    out << "#! expect_be_throughput " << Num(repro.expect_be_throughput) << "\n";
  }
  out << "# kind pod start_s duration_s magnitude\n";
  for (const FaultEvent& event : repro.schedule.events) {
    out << FaultKindName(event.kind) << ' ' << event.pod << ' ' << Num(event.start_s) << ' '
        << Num(event.duration_s) << ' ' << Num(event.magnitude) << '\n';
  }
  return out.str();
}

ChaosRepro ChaosReproFromText(const std::string& text) {
  ChaosRepro repro;
  // Event lines first (the schedule parser skips every '#' line, directives
  // included), then the directives layered on top.
  repro.schedule = FaultScheduleFromText(text);

  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line.compare(first, 2, "#!") != 0) {
      continue;
    }
    std::istringstream fields(line.substr(first + 2));
    std::string key, value;
    if (!(fields >> key >> value)) {
      throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                  " is not '#! key value': " + line);
    }
    if (key == "app") {
      repro.app = static_cast<LcAppKind>(ParseEnumInt(value, 6, "app"));
    } else if (key == "be") {
      repro.be = static_cast<BeJobKind>(ParseEnumInt(value, 9, "be"));
    } else if (key == "controller") {
      repro.controller = static_cast<ControllerKind>(ParseEnumInt(value, 3, "controller"));
    } else if (key == "run_seed") {
      repro.run_seed = ParseU64(value, "run_seed");
    } else if (key == "load") {
      repro.load = ParseDouble(value, "load");
    } else if (key == "warmup_s") {
      repro.warmup_s = ParseDouble(value, "warmup_s");
    } else if (key == "measure_s") {
      repro.measure_s = ParseDouble(value, "measure_s");
    } else if (key == "tripwire_ms") {
      repro.tripwire_ms = ParseDouble(value, "tripwire_ms");
    } else if (key == "recovery_horizon_s") {
      repro.recovery_horizon_s = ParseDouble(value, "recovery_horizon_s");
    } else if (key == "diurnal") {
      std::string max_value;
      if (!(fields >> max_value)) {
        throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                    " needs '#! diurnal <min> <max>'");
      }
      repro.has_diurnal = true;
      repro.diurnal_min = ParseDouble(value, "diurnal");
      repro.diurnal_max = ParseDouble(max_value, "diurnal");
    } else if (key == "pressure") {
      std::string llc, dram, net;
      if (!(fields >> llc >> dram >> net)) {
        throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                    " needs '#! pressure <cpu> <llc> <dram> <net>'");
      }
      repro.has_pressure = true;
      repro.pressure.cpu = ParseDouble(value, "pressure");
      repro.pressure.llc = ParseDouble(llc, "pressure");
      repro.pressure.dram = ParseDouble(dram, "pressure");
      repro.pressure.net = ParseDouble(net, "pressure");
    } else if (key == "harden_jitter") {
      repro.hardening.readmission_jitter = ParseEnumInt(value, 2, "harden_jitter") != 0;
    } else if (key == "harden_osc") {
      repro.hardening.oscillation_guard = ParseEnumInt(value, 2, "harden_osc") != 0;
    } else if (key == "expect_slack_ticks") {
      repro.has_expectations = true;
      repro.expect_slack_ticks = ParseU64(value, "expect_slack_ticks");
    } else if (key == "expect_worst_tail_ratio") {
      repro.has_expectations = true;
      repro.expect_worst_tail_ratio = ParseDouble(value, "expect_worst_tail_ratio");
    } else if (key == "expect_be_throughput") {
      repro.has_expectations = true;
      repro.expect_be_throughput = ParseDouble(value, "expect_be_throughput");
    } else {
      throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                  " has unknown directive '" + key + "'");
    }
  }
  return repro;
}

void SaveChaosRepro(const ChaosRepro& repro, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveChaosRepro: cannot open " + path);
  }
  out << ChaosReproToText(repro);
  if (!out.flush()) {
    throw std::runtime_error("SaveChaosRepro: write failed for " + path);
  }
}

ChaosRepro LoadChaosRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadChaosRepro: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ChaosReproFromText(text.str());
}

}  // namespace rhythm
