#include "src/verify/repro_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "src/fault/fault_schedule_io.h"

namespace rhythm {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

int ParseEnumInt(const std::string& value, int limit, const char* key) {
  std::istringstream in(value);
  int parsed = -1;
  if (!(in >> parsed) || parsed < 0 || parsed >= limit) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' out of range: " + value);
  }
  return parsed;
}

double ParseDouble(const std::string& value, const char* key) {
  std::istringstream in(value);
  double parsed = 0.0;
  if (!(in >> parsed)) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' is not a number: " + value);
  }
  return parsed;
}

uint64_t ParseU64(const std::string& value, const char* key) {
  std::istringstream in(value);
  uint64_t parsed = 0;
  if (!(in >> parsed)) {
    throw std::invalid_argument("ChaosRepro: directive '" + std::string(key) +
                                "' is not an unsigned integer: " + value);
  }
  return parsed;
}

}  // namespace

RunRequest ReproToRequest(const ChaosRepro& repro) {
  RunRequest request;
  request.app = repro.app;
  request.be = repro.be;
  request.controller = repro.controller;
  request.seed = repro.run_seed;
  request.load = repro.load;
  request.warmup_s = repro.warmup_s;
  request.measure_s = repro.measure_s;
  request.faults = std::make_shared<FaultSchedule>(repro.schedule);
  request.verify.mode = InvariantMode::kCollect;
  request.verify.synthetic_tail_tripwire_ms = repro.tripwire_ms;
  request.verify.recovery_horizon_s = repro.recovery_horizon_s;
  request.label = std::string("repro ") + LcAppKindName(repro.app) +
                  " seed=" + std::to_string(repro.run_seed);
  return request;
}

ChaosRepro ReproFromRequest(const RunRequest& request) {
  if (request.faults == nullptr) {
    throw std::invalid_argument("ReproFromRequest: the request carries no fault schedule");
  }
  ChaosRepro repro;
  repro.app = request.app;
  repro.be = request.be;
  repro.controller = request.controller;
  repro.run_seed = request.seed;
  repro.load = request.load;
  repro.warmup_s = request.warmup_s;
  repro.measure_s = request.measure_s;
  repro.tripwire_ms = request.verify.synthetic_tail_tripwire_ms;
  repro.recovery_horizon_s = request.verify.recovery_horizon_s;
  repro.schedule = *request.faults;
  return repro;
}

std::string ChaosReproToText(const ChaosRepro& repro) {
  std::ostringstream out;
  out << "# rhythm-fault-schedule v1\n";
  out << "# chaos repro: " << LcAppKindName(repro.app) << " + " << BeJobKindName(repro.be)
      << " under " << ControllerKindName(repro.controller) << "\n";
  out << "#! app " << static_cast<int>(repro.app) << "\n";
  out << "#! be " << static_cast<int>(repro.be) << "\n";
  out << "#! controller " << static_cast<int>(repro.controller) << "\n";
  out << "#! run_seed " << repro.run_seed << "\n";
  out << "#! load " << Num(repro.load) << "\n";
  out << "#! warmup_s " << Num(repro.warmup_s) << "\n";
  out << "#! measure_s " << Num(repro.measure_s) << "\n";
  // An infinite tripwire (monitor default) is expressed by omission — stream
  // round-trips of "inf" are not portable.
  if (std::isfinite(repro.tripwire_ms)) {
    out << "#! tripwire_ms " << Num(repro.tripwire_ms) << "\n";
  }
  out << "#! recovery_horizon_s " << Num(repro.recovery_horizon_s) << "\n";
  out << "# kind pod start_s duration_s magnitude\n";
  for (const FaultEvent& event : repro.schedule.events) {
    out << FaultKindName(event.kind) << ' ' << event.pod << ' ' << Num(event.start_s) << ' '
        << Num(event.duration_s) << ' ' << Num(event.magnitude) << '\n';
  }
  return out.str();
}

ChaosRepro ChaosReproFromText(const std::string& text) {
  ChaosRepro repro;
  // Event lines first (the schedule parser skips every '#' line, directives
  // included), then the directives layered on top.
  repro.schedule = FaultScheduleFromText(text);

  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line.compare(first, 2, "#!") != 0) {
      continue;
    }
    std::istringstream fields(line.substr(first + 2));
    std::string key, value;
    if (!(fields >> key >> value)) {
      throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                  " is not '#! key value': " + line);
    }
    if (key == "app") {
      repro.app = static_cast<LcAppKind>(ParseEnumInt(value, 6, "app"));
    } else if (key == "be") {
      repro.be = static_cast<BeJobKind>(ParseEnumInt(value, 9, "be"));
    } else if (key == "controller") {
      repro.controller = static_cast<ControllerKind>(ParseEnumInt(value, 3, "controller"));
    } else if (key == "run_seed") {
      repro.run_seed = ParseU64(value, "run_seed");
    } else if (key == "load") {
      repro.load = ParseDouble(value, "load");
    } else if (key == "warmup_s") {
      repro.warmup_s = ParseDouble(value, "warmup_s");
    } else if (key == "measure_s") {
      repro.measure_s = ParseDouble(value, "measure_s");
    } else if (key == "tripwire_ms") {
      repro.tripwire_ms = ParseDouble(value, "tripwire_ms");
    } else if (key == "recovery_horizon_s") {
      repro.recovery_horizon_s = ParseDouble(value, "recovery_horizon_s");
    } else {
      throw std::invalid_argument("ChaosRepro: line " + std::to_string(line_number) +
                                  " has unknown directive '" + key + "'");
    }
  }
  return repro;
}

void SaveChaosRepro(const ChaosRepro& repro, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveChaosRepro: cannot open " + path);
  }
  out << ChaosReproToText(repro);
  if (!out.flush()) {
    throw std::runtime_error("SaveChaosRepro: write failed for " + path);
  }
}

ChaosRepro LoadChaosRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadChaosRepro: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ChaosReproFromText(text.str());
}

}  // namespace rhythm
