#include "src/verify/schedule_minimizer.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace rhythm {

namespace {

// Replays one candidate event list through the full run and reports whether
// the invariant monitor still fires. Counts candidates against the budget;
// an exhausted budget answers "clean" so the search settles on its current
// best instead of exploring further.
class Probe {
 public:
  Probe(const RunRequest& base, SchedulePredicate keep, int budget)
      : base_(base), keep_(std::move(keep)), budget_(budget) {
    base_.verify.mode = InvariantMode::kCollect;
  }

  bool Violates(const std::vector<FaultEvent>& events) {
    if (tried_ >= budget_) {
      return false;
    }
    ++tried_;
    RunRequest candidate = base_;
    auto schedule = std::make_shared<FaultSchedule>();
    schedule->events = events;
    candidate.faults = std::move(schedule);
    const RunSummary summary = Run(candidate);
    if (keep_(summary)) {
      last_violations_ = summary.invariant_violations;
      return true;
    }
    return false;
  }

  int tried() const { return tried_; }
  const std::vector<InvariantViolation>& last_violations() const { return last_violations_; }

 private:
  RunRequest base_;
  SchedulePredicate keep_;
  int budget_;
  int tried_ = 0;
  std::vector<InvariantViolation> last_violations_;
};

// Classic ddmin restricted to complement removal: repeatedly partition the
// event list into n chunks and keep any complement that still fails,
// refining the granularity until single-event removal no longer helps.
std::vector<FaultEvent> DdminEvents(std::vector<FaultEvent> events, Probe& probe) {
  size_t n = 2;
  while (events.size() >= 2 && n <= events.size()) {
    const size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < events.size(); start += chunk) {
      std::vector<FaultEvent> complement;
      complement.reserve(events.size());
      for (size_t i = 0; i < events.size(); ++i) {
        if (i < start || i >= start + chunk) {
          complement.push_back(events[i]);
        }
      }
      if (complement.empty()) {
        continue;
      }
      if (probe.Violates(complement)) {
        events = std::move(complement);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= events.size()) {
        break;
      }
      n = std::min(events.size(), n * 2);
    }
  }
  return events;
}

// Halves one double field toward zero while the failure persists.
void ShrinkField(std::vector<FaultEvent>& events, size_t index, double FaultEvent::* field,
                 double floor, Probe& probe) {
  for (;;) {
    const double current = events[index].*field;
    const double halved = current / 2.0;
    if (current - halved < floor) {
      return;
    }
    std::vector<FaultEvent> candidate = events;
    candidate[index].*field = halved;
    if (!probe.Violates(candidate)) {
      return;
    }
    events = std::move(candidate);
  }
}

}  // namespace

MinimizeResult MinimizeSchedule(const RunRequest& request, const MinimizeOptions& options) {
  return MinimizeScheduleWith(
      request,
      [](const RunSummary& summary) { return summary.invariant_violations_total > 0; },
      options);
}

MinimizeResult MinimizeScheduleWith(const RunRequest& request, const SchedulePredicate& keep,
                                    const MinimizeOptions& options) {
  if (request.faults == nullptr || request.faults->empty()) {
    throw std::invalid_argument("MinimizeSchedule: the request carries no fault schedule");
  }
  Probe probe(request, keep, options.max_candidates);
  std::vector<FaultEvent> events = request.faults->events;
  if (!probe.Violates(events)) {
    throw std::invalid_argument(
        "MinimizeSchedule: the request does not reproduce the failure predicate");
  }

  MinimizeResult result;
  result.events_before = static_cast<int>(events.size());

  events = DdminEvents(std::move(events), probe);
  for (size_t i = 0; i < events.size(); ++i) {
    ShrinkField(events, i, &FaultEvent::duration_s, options.shrink_floor, probe);
    ShrinkField(events, i, &FaultEvent::magnitude, options.shrink_floor, probe);
  }

  result.events_after = static_cast<int>(events.size());
  result.candidates_tried = probe.tried();
  result.violations = probe.last_violations();
  result.schedule.events = std::move(events);
  return result;
}

}  // namespace rhythm
