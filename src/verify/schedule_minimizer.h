// Automatic failing-schedule minimization (delta debugging).
//
// Given a trial whose fault schedule provokes an invariant violation, shrink
// the schedule while the violation persists:
//   1. ddmin over the event list — repeatedly drop complements at
//      progressively finer granularity until no single removal keeps the
//      failure (a 1-minimal event set);
//   2. value shrinking — halve each surviving event's duration and magnitude
//      toward zero while the violation still reproduces, so the repro
//      documents the smallest perturbation that matters.
//
// Every candidate is evaluated by replaying the full run with the monitor in
// collect mode; determinism of the runner makes the predicate stable, so the
// search needs no retries.

#ifndef RHYTHM_SRC_VERIFY_SCHEDULE_MINIMIZER_H_
#define RHYTHM_SRC_VERIFY_SCHEDULE_MINIMIZER_H_

#include <functional>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/runner/runner.h"
#include "src/verify/invariant_types.h"

namespace rhythm {

struct MinimizeOptions {
  // Cap on candidate runs across both phases; the search returns the best
  // schedule found so far when the budget runs out. Each candidate replays
  // one full trial, so this bounds wall-clock.
  int max_candidates = 256;
  // Value shrinking stops once a halved duration/magnitude would change the
  // event by less than this (absolute).
  double shrink_floor = 0.01;
};

struct MinimizeResult {
  FaultSchedule schedule;  // minimal schedule that still violates.
  int events_before = 0;
  int events_after = 0;
  int candidates_tried = 0;
  // Violations recorded by the final replay of the minimal schedule.
  std::vector<InvariantViolation> violations;
};

// Minimizes `request.faults`. The request must reproduce a violation as
// given (the monitor mode is forced to kCollect for the search); throws
// std::invalid_argument when the initial replay is already clean.
MinimizeResult MinimizeSchedule(const RunRequest& request, const MinimizeOptions& options = {});

// Generalized minimization: the caller supplies the failure predicate. A
// candidate schedule is kept when `keep(summary)` is true for its replay;
// the adversarial search uses a damage-retention predicate ("the shrunken
// attack still inflicts >= X% of the original SLO damage") where the
// invariant monitor has nothing to say. Throws std::invalid_argument when
// the initial replay does not satisfy the predicate.
using SchedulePredicate = std::function<bool(const RunSummary&)>;
MinimizeResult MinimizeScheduleWith(const RunRequest& request, const SchedulePredicate& keep,
                                    const MinimizeOptions& options = {});

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_SCHEDULE_MINIMIZER_H_
