// Plain value types shared by the invariant monitor and everything that
// surfaces its findings (RunSummary, the chaos fuzzer, the minimizer, repro
// files). Header-only and dependency-free so lower layers (src/cluster) can
// carry these records without linking against the verify library.

#ifndef RHYTHM_SRC_VERIFY_INVARIANT_TYPES_H_
#define RHYTHM_SRC_VERIFY_INVARIANT_TYPES_H_

#include <limits>
#include <string>

namespace rhythm {

// One observed breach of a machine-level safety invariant. `id` is a stable
// dotted identifier from the catalogue in DESIGN.md §9 (e.g. "res.cores",
// "ctrl.offline", "live.recovery"); `detail` is human-readable context with
// the observed values.
struct InvariantViolation {
  double time_s = 0.0;
  int machine = -1;  // pod index; -1 for deployment-wide invariants.
  std::string id;
  std::string detail;
};

enum class InvariantMode {
  kOff,       // no monitor attached (the default; zero overhead).
  kCollect,   // record every violation, never interfere with the run.
  kFailFast,  // throw InvariantViolationError at the first violation.
};

// Per-run monitor configuration, carried by RunRequest. Plain data: copying
// a request copies these knobs.
struct InvariantOptions {
  InvariantMode mode = InvariantMode::kOff;

  // Bounded-recovery liveness ("live.recovery"): once the run extends at
  // least this far past the end of the last fault window, the final horizon
  // must contain a positive-slack accounting tick, every crash dent must
  // have healed, and (when BEs were admitted before the faults) BE work must
  // have been re-admitted.
  double recovery_horizon_s = 120.0;

  // Synthetic tripwire ("syn.tail-tripwire"): fires whenever the sampled
  // tail exceeds this many milliseconds. Infinite (the default) disables it.
  // This is not a safety invariant of the system — it exists to give the
  // fuzz -> minimize -> repro pipeline a deterministic target in tests,
  // demos and checked-in regression schedules.
  double synthetic_tail_tripwire_ms = std::numeric_limits<double>::infinity();

  // Cluster-scope failover latency bound ("fail.latency", checked by the
  // cluster engine, not the per-trial monitor): a machine loss must be
  // enacted — victims killed, failover planned — within this many seconds of
  // the schedule's start_s. The conservative-window barrier quantizes
  // enactment to one tick window (2 s), so the default leaves headroom for
  // coarser future windows while still catching a supervisor that sleeps
  // through barriers.
  double failover_latency_bound_s = 10.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_INVARIANT_TYPES_H_
