#include "src/verify/chaos_fuzzer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

namespace rhythm {

namespace {

constexpr LcAppKind kAppRotation[] = {LcAppKind::kEcommerce,      LcAppKind::kRedis,
                                      LcAppKind::kSolr,           LcAppKind::kElasticsearch,
                                      LcAppKind::kElgg,           LcAppKind::kSnms};
constexpr int kAppRotationSize = static_cast<int>(sizeof(kAppRotation) / sizeof(kAppRotation[0]));

}  // namespace

RunRequest FuzzTrialRequest(const FuzzOptions& options, int index) {
  const LcAppKind app = kAppRotation[index % kAppRotationSize];
  const uint64_t schedule_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index));
  const uint64_t run_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index) + 1);

  ChaosConfig chaos = options.chaos;
  chaos.pod_count = MakeApp(app).pod_count();

  RunRequest request;
  request.app = app;
  request.be = options.be;
  request.controller = options.controller;
  request.seed = run_seed;
  request.load = options.load;
  request.warmup_s = options.warmup_s;
  request.measure_s = options.measure_s;
  request.faults = std::make_shared<FaultSchedule>(RandomFaultSchedule(chaos, schedule_seed));
  request.verify = options.verify;
  request.verify.mode = InvariantMode::kCollect;
  request.label = "fuzz#" + std::to_string(index) + " " + LcAppKindName(app) +
                  " sched_seed=" + std::to_string(schedule_seed) +
                  " run_seed=" + std::to_string(run_seed);
  return request;
}

FuzzReport FuzzChaos(const FuzzOptions& options) {
  FuzzReport report;
  const bool generational = options.generations > 0 && options.population > 0;
  const int trials = generational ? options.generations * options.population : options.trials;
  if (trials <= 0) {
    return report;
  }

  const ParallelRunner runner(RunnerOptions{.jobs = options.jobs});
  // Chunked execution: full parallelism inside a chunk, a fail-fast (and
  // wall-clock) decision point between chunks. Generational budgets make the
  // chunk one generation wide so the two tools pace identically.
  const int chunk_size = generational ? options.population : std::max(1, runner.jobs());
  const auto started = std::chrono::steady_clock::now();

  for (int begin = 0; begin < trials; begin += chunk_size) {
    if (options.wall_clock_budget_s > 0.0 && begin > 0) {
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= options.wall_clock_budget_s) {
        report.budget_exhausted = true;
        break;
      }
    }
    const int end = std::min(trials, begin + chunk_size);
    RunPlan plan;
    for (int trial = begin; trial < end; ++trial) {
      plan.Add(FuzzTrialRequest(options, trial));
    }
    const std::vector<RunSummary> summaries = runner.RunAll(plan);
    for (int trial = begin; trial < end; ++trial) {
      ++report.trials_run;
      const RunSummary& summary = summaries[static_cast<size_t>(trial - begin)];
      if (summary.invariant_violations_total == 0) {
        continue;
      }
      ++report.violating_trials;
      FuzzFinding finding;
      finding.trial = trial;
      finding.app = kAppRotation[trial % kAppRotationSize];
      finding.schedule_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial));
      finding.run_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial) + 1);
      finding.schedule = *plan.requests[static_cast<size_t>(trial - begin)].faults;
      finding.violations = summary.invariant_violations;
      finding.violations_total = summary.invariant_violations_total;
      report.findings.push_back(std::move(finding));
    }
    if (options.fail_fast && report.violating_trials > 0) {
      break;
    }
  }
  return report;
}

}  // namespace rhythm
