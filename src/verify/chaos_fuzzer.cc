#include "src/verify/chaos_fuzzer.h"

#include <algorithm>
#include <memory>
#include <string>

namespace rhythm {

namespace {

constexpr LcAppKind kAppRotation[] = {LcAppKind::kEcommerce,      LcAppKind::kRedis,
                                      LcAppKind::kSolr,           LcAppKind::kElasticsearch,
                                      LcAppKind::kElgg,           LcAppKind::kSnms};
constexpr int kAppRotationSize = static_cast<int>(sizeof(kAppRotation) / sizeof(kAppRotation[0]));

}  // namespace

RunRequest FuzzTrialRequest(const FuzzOptions& options, int index) {
  const LcAppKind app = kAppRotation[index % kAppRotationSize];
  const uint64_t schedule_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index));
  const uint64_t run_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(index) + 1);

  ChaosConfig chaos = options.chaos;
  chaos.pod_count = MakeApp(app).pod_count();

  RunRequest request;
  request.app = app;
  request.be = options.be;
  request.controller = options.controller;
  request.seed = run_seed;
  request.load = options.load;
  request.warmup_s = options.warmup_s;
  request.measure_s = options.measure_s;
  request.faults = std::make_shared<FaultSchedule>(RandomFaultSchedule(chaos, schedule_seed));
  request.verify = options.verify;
  request.verify.mode = InvariantMode::kCollect;
  request.label = "fuzz#" + std::to_string(index) + " " + LcAppKindName(app) +
                  " sched_seed=" + std::to_string(schedule_seed) +
                  " run_seed=" + std::to_string(run_seed);
  return request;
}

FuzzReport FuzzChaos(const FuzzOptions& options) {
  FuzzReport report;
  if (options.trials <= 0) {
    return report;
  }

  const ParallelRunner runner(RunnerOptions{.jobs = options.jobs});
  // Chunked execution: full parallelism inside a chunk, a fail-fast decision
  // point between chunks.
  const int chunk_size = std::max(1, runner.jobs());

  for (int begin = 0; begin < options.trials; begin += chunk_size) {
    const int end = std::min(options.trials, begin + chunk_size);
    RunPlan plan;
    for (int trial = begin; trial < end; ++trial) {
      plan.Add(FuzzTrialRequest(options, trial));
    }
    const std::vector<RunSummary> summaries = runner.RunAll(plan);
    for (int trial = begin; trial < end; ++trial) {
      ++report.trials_run;
      const RunSummary& summary = summaries[static_cast<size_t>(trial - begin)];
      if (summary.invariant_violations_total == 0) {
        continue;
      }
      ++report.violating_trials;
      FuzzFinding finding;
      finding.trial = trial;
      finding.app = kAppRotation[trial % kAppRotationSize];
      finding.schedule_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial));
      finding.run_seed = DeriveTrialSeed(options.seed, 2 * static_cast<uint64_t>(trial) + 1);
      finding.schedule = *plan.requests[static_cast<size_t>(trial - begin)].faults;
      finding.violations = summary.invariant_violations;
      finding.violations_total = summary.invariant_violations_total;
      report.findings.push_back(std::move(finding));
    }
    if (options.fail_fast && report.violating_trials > 0) {
      break;
    }
  }
  return report;
}

}  // namespace rhythm
