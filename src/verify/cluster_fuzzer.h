// Cluster chaos fuzzer: sweeps seeded random machine-loss schedules through
// full cluster runs (DESIGN.md §14) with the cluster invariant checker and
// the per-trial monitors armed in collect mode, and reports every run that
// breached an invariant, keyed by the (options, index) pair that reproduces
// it — the cluster-scope sibling of FuzzChaos in chaos_fuzzer.h.
//
// Determinism contract mirrors the flat fuzzer: sweep trial `i` is a pure
// function of (ClusterFuzzOptions, i). The machine-loss schedule comes from
// RandomFaultSchedule(chaos, DeriveTrialSeed(seed, 2i)) with every
// per-deployment rate zeroed (a cluster request accepts only machine-scope
// kinds), the cluster seed is DeriveTrialSeed(seed, 2i+1), and the run is
// bit-identical at any RHYTHM_SHARDS value — so a finding replays exactly
// from its trial index alone.
//
// Layering: fuzzing a cluster needs RunCluster (src/place), which sits above
// the verify library, so this implementation compiles into rhythm_place —
// the same arrangement as src/control/cluster_supervisor.cc.

#ifndef RHYTHM_SRC_VERIFY_CLUSTER_FUZZER_H_
#define RHYTHM_SRC_VERIFY_CLUSTER_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/place/cluster_engine.h"

namespace rhythm {

struct ClusterFuzzOptions {
  int trials = 25;
  uint64_t seed = 1;
  int shards = 0;  // engine shard count; <= 0 means auto (RHYTHM_SHARDS).
  // Stop launching new trials once a violating one is found (the sweep still
  // reports it). false scans every trial regardless.
  bool fail_fast = true;
  // Stops launching new trials once exceeded (checked between trials, so
  // every trial that runs is bit-identical to the unbudgeted sweep).
  double wall_clock_budget_s = 0.0;

  // Cluster shape per trial. Small on purpose: the fuzzer's job is hitting
  // failover corner cases (overlapping losses, restart races, budget
  // exhaustion, degraded flips), not datacenter scale.
  int machines = 48;
  int epochs = 2;
  std::string policy = kPolicyRhythmAware;
  double warmup_s = 6.0;
  double measure_s = 30.0;
  bool supervisor = true;         // exercise failover; false fuzzes bare loss.
  int migration_budget = 1 << 30;  // forwarded to SupervisorOptions.
  double degraded_dead_fraction = 0.5;

  // Machine-loss chaos knobs. duration_s is ignored (the sweep uses the full
  // cluster horizon: epochs * (warmup + measure)); machine_count is forced to
  // `machines`; every per-deployment rate is zeroed before drawing.
  double expected_machine_failures = 3.0;
  double expected_machine_restarts = 2.0;
  double restart_min_down_s = 10.0;
  double restart_max_down_s = 40.0;

  // Invariant knobs shared by the cluster checker and every group trial. The
  // mode is forced to kCollect inside the sweep.
  InvariantOptions verify;
};

// One violating cluster run: everything needed to replay it.
struct ClusterFuzzFinding {
  int trial = -1;
  uint64_t schedule_seed = 0;
  uint64_t run_seed = 0;
  FaultSchedule schedule;
  // Cluster-scope violations first, then any group-trial violations, in
  // (epoch, group, incarnation) order.
  std::vector<InvariantViolation> violations;
  uint64_t violations_total = 0;
};

struct ClusterFuzzReport {
  int trials_run = 0;
  int violating_trials = 0;
  std::vector<ClusterFuzzFinding> findings;  // in trial order.
  bool budget_exhausted = false;
  bool clean() const { return violating_trials == 0; }
};

// The exact request sweep trial `index` executes (schedule drawn, seeds
// derived, checker in collect mode). Exposed so findings replay outside the
// sweep.
ClusterRunRequest ClusterFuzzTrialRequest(const ClusterFuzzOptions& options,
                                          int index);

// Runs the sweep serially (each trial already fans out across the shard
// pool); with fail_fast, no new trial starts once a violation has been seen.
ClusterFuzzReport FuzzClusterChaos(const ClusterFuzzOptions& options);

}  // namespace rhythm

#endif  // RHYTHM_SRC_VERIFY_CLUSTER_FUZZER_H_
