#include "src/resources/membw_accountant.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

MembwAccountant::MembwAccountant(double capacity_gbs) : capacity_(capacity_gbs) {
  RHYTHM_CHECK(capacity_gbs > 0.0);
}

void MembwAccountant::SetLcDemand(double gbs) { lc_demand_ = std::max(gbs, 0.0); }

void MembwAccountant::SetBeDemand(double gbs) { be_demand_ = std::max(gbs, 0.0); }

double MembwAccountant::total_delivered_gbs() const {
  return std::min(lc_demand_ + be_demand_, capacity_);
}

double MembwAccountant::utilization() const { return total_delivered_gbs() / capacity_; }

double MembwAccountant::saturation() const {
  return std::max(0.0, (lc_demand_ + be_demand_ - capacity_) / capacity_);
}

double MembwAccountant::be_grant_fraction() const {
  if (be_demand_ <= 0.0) {
    return 1.0;
  }
  const double total = lc_demand_ + be_demand_;
  if (total <= capacity_) {
    return 1.0;
  }
  return capacity_ / total;
}

}  // namespace rhythm
