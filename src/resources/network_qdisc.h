// qdisc-style NIC bandwidth partitioning.
//
// The network subcontroller continuously measures LC traffic B_LC and
// allocates B_link - 1.2 * B_LC to BE jobs (paper §3.5.2). The 20% headroom
// absorbs LC bursts. BE traffic beyond its allocation is shaped (dropped
// from the BE's point of view: its effective rate is capped).

#ifndef RHYTHM_SRC_RESOURCES_NETWORK_QDISC_H_
#define RHYTHM_SRC_RESOURCES_NETWORK_QDISC_H_

namespace rhythm {

class NetworkQdisc {
 public:
  explicit NetworkQdisc(double link_gbps);

  // Updates the measured LC traffic and recomputes the BE allocation.
  void SetLcTraffic(double gbps);

  // BE offered load; delivered BE traffic is min(offered, allocation).
  void SetBeOffered(double gbps);

  double link_gbps() const { return link_; }
  double lc_traffic_gbps() const { return lc_traffic_; }
  double be_allocation_gbps() const { return be_allocation_; }
  double be_delivered_gbps() const;

  // Contention seen by the LC side: nonzero only when BE offered traffic
  // exceeds its allocation *and* total traffic approaches the link rate.
  double lc_contention() const;

  double utilization() const;

 private:
  double link_;
  double lc_traffic_ = 0.0;
  double be_offered_ = 0.0;
  double be_allocation_ = 0.0;

  void Recompute();
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_NETWORK_QDISC_H_
