#include "src/resources/core_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

CoreAllocator::CoreAllocator(int total_cores, int lc_reserved_cores)
    : total_(total_cores), lc_reserved_(lc_reserved_cores) {
  RHYTHM_CHECK(total_cores > 0);
  RHYTHM_CHECK(lc_reserved_cores >= 0 && lc_reserved_cores <= total_cores);
}

int CoreAllocator::AllocateBeCores(int n) {
  const int granted = std::clamp(n, 0, free_cores());
  be_ += granted;
  return granted;
}

int CoreAllocator::ReleaseBeCores(int n) {
  const int released = std::clamp(n, 0, be_);
  be_ -= released;
  return released;
}

void CoreAllocator::ReleaseAllBeCores() { be_ = 0; }

}  // namespace rhythm
