// Memory-bandwidth accounting.
//
// There is no commodity hardware partitioning for DRAM bandwidth on the
// paper's testbed; contention arises whenever combined LC + BE demand
// approaches the channel peak. The accountant tracks both demands and
// derives utilization and an over-subscription ("saturation") signal that
// the interference model turns into LC slowdown.

#ifndef RHYTHM_SRC_RESOURCES_MEMBW_ACCOUNTANT_H_
#define RHYTHM_SRC_RESOURCES_MEMBW_ACCOUNTANT_H_

namespace rhythm {

class MembwAccountant {
 public:
  explicit MembwAccountant(double capacity_gbs);

  void SetLcDemand(double gbs);
  void SetBeDemand(double gbs);

  double capacity_gbs() const { return capacity_; }
  double lc_demand_gbs() const { return lc_demand_; }
  double be_demand_gbs() const { return be_demand_; }

  // Delivered bandwidth is capped at capacity; when oversubscribed, both
  // sides are throttled proportionally to demand.
  double total_delivered_gbs() const;
  double utilization() const;  // delivered / capacity, in [0, 1].

  // Oversubscription ratio: max(0, (lc + be - capacity) / capacity).
  double saturation() const;

  // Fraction of its demand the BE side actually receives, in [0, 1].
  double be_grant_fraction() const;

 private:
  double capacity_;
  double lc_demand_ = 0.0;
  double be_demand_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_MEMBW_ACCOUNTANT_H_
