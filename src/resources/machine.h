// A physical machine: the composition of all isolation mechanisms plus
// utilization accounting. One Servpod of the LC workload plus any number of
// BE job instances run on each machine; the subcontrollers manipulate the
// partitions held here.

#ifndef RHYTHM_SRC_RESOURCES_MACHINE_H_
#define RHYTHM_SRC_RESOURCES_MACHINE_H_

#include <string>

#include "src/resources/cat_allocator.h"
#include "src/resources/core_allocator.h"
#include "src/resources/machine_spec.h"
#include "src/resources/membw_accountant.h"
#include "src/resources/memory_allocator.h"
#include "src/resources/network_qdisc.h"
#include "src/resources/power_model.h"

namespace rhythm {

// Resources reserved for the LC container on a machine (the container's
// configured capacity from Table 1's deployment).
struct LcReservation {
  int cores = 20;
  int min_llc_ways = 4;   // CAT floor that can never be given to BEs.
  double memory_gb = 32.0;
};

class Machine {
 public:
  Machine(std::string name, const MachineSpec& spec, const LcReservation& reservation);

  const std::string& name() const { return name_; }
  const MachineSpec& spec() const { return spec_; }
  const LcReservation& lc_reservation() const { return reservation_; }

  CoreAllocator& cores() { return cores_; }
  const CoreAllocator& cores() const { return cores_; }
  CatAllocator& cat() { return cat_; }
  const CatAllocator& cat() const { return cat_; }
  MembwAccountant& membw() { return membw_; }
  const MembwAccountant& membw() const { return membw_; }
  MemoryAllocator& memory() { return memory_; }
  const MemoryAllocator& memory() const { return memory_; }
  NetworkQdisc& network() { return network_; }
  const NetworkQdisc& network() const { return network_; }
  PowerModel& power() { return power_; }
  const PowerModel& power() const { return power_; }

  // LC-side activity, fed by the workload model each accounting tick.
  void SetLcActivity(double busy_cores, double membw_gbs, double net_gbps);
  double lc_busy_cores() const { return lc_busy_cores_; }

  // BE-side activity, fed by the BE runtime each accounting tick.
  void SetBeActivity(double busy_cores, double membw_gbs, double net_gbps);
  double be_busy_cores() const { return be_busy_cores_; }

  // Whole-machine CPU utilization in [0, 1]: busy cores / total cores.
  double CpuUtilization() const;

  // Memory-bandwidth utilization in [0, 1].
  double MembwUtilization() const { return membw_.utilization(); }

 private:
  std::string name_;
  MachineSpec spec_;
  LcReservation reservation_;
  CoreAllocator cores_;
  CatAllocator cat_;
  MembwAccountant membw_;
  MemoryAllocator memory_;
  NetworkQdisc network_;
  PowerModel power_;
  double lc_busy_cores_ = 0.0;
  double be_busy_cores_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_MACHINE_H_
