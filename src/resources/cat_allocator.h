// Intel CAT (Cache Allocation Technology) model.
//
// CAT partitions the shared L3 into ways. Rhythm gives the LC workload a
// protected partition and hands ways to BE jobs in 10%-of-LLC steps
// (2 ways of 20 here). Ways granted to BEs shrink the LC's effective cache,
// which is what the interference model consumes.

#ifndef RHYTHM_SRC_RESOURCES_CAT_ALLOCATOR_H_
#define RHYTHM_SRC_RESOURCES_CAT_ALLOCATOR_H_

namespace rhythm {

class CatAllocator {
 public:
  // `lc_min_ways` ways can never be taken from the LC partition.
  CatAllocator(int total_ways, int lc_min_ways);

  // Moves up to `n` ways from the LC partition to the BE partition;
  // returns the number actually moved.
  int AllocateBeWays(int n);

  // Returns up to `n` ways from BE back to LC; returns the number moved.
  int ReleaseBeWays(int n);

  void ReleaseAllBeWays();

  int total_ways() const { return total_; }
  int lc_ways() const { return total_ - be_; }
  int be_ways() const { return be_; }
  // Fraction of the LLC currently protected for the LC workload.
  double lc_fraction() const { return static_cast<double>(lc_ways()) / total_; }

 private:
  int total_;
  int lc_min_;
  int be_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_CAT_ALLOCATOR_H_
