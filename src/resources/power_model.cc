#include "src/resources/power_model.h"

#include <algorithm>
#include <cmath>

namespace rhythm {

PowerModel::PowerModel(const MachineSpec& spec)
    : spec_(spec), lc_freq_(spec.base_freq_ghz), be_freq_(spec.base_freq_ghz) {}

void PowerModel::SetActivity(int lc_active_cores, double lc_intensity, int be_active_cores,
                             double be_intensity) {
  lc_active_ = std::max(lc_active_cores, 0);
  be_active_ = std::max(be_active_cores, 0);
  lc_intensity_ = std::clamp(lc_intensity, 0.0, 1.0);
  be_intensity_ = std::clamp(be_intensity, 0.0, 1.0);
}

void PowerModel::SetBeFrequency(double ghz) {
  be_freq_ = std::clamp(ghz, spec_.min_freq_ghz, spec_.base_freq_ghz);
}

void PowerModel::SetLcFrequency(double ghz) {
  lc_freq_ = std::clamp(ghz, spec_.min_freq_ghz, spec_.base_freq_ghz);
}

double PowerModel::CoreDynamicWatts(double freq_ghz) const {
  // Calibrated so a fully busy machine at base frequency reaches TDP:
  // idle + total_cores * k * base^2 == tdp.
  const double base = spec_.base_freq_ghz;
  const double k = (spec_.tdp_watts - spec_.idle_watts) / (spec_.total_cores * base * base);
  return k * freq_ghz * freq_ghz;
}

double PowerModel::PackagePowerWatts() const {
  const double lc = lc_active_ * lc_intensity_ * CoreDynamicWatts(lc_freq_);
  const double be = be_active_ * be_intensity_ * CoreDynamicWatts(be_freq_);
  return spec_.idle_watts + lc + be;
}

double PowerModel::TdpFraction() const { return PackagePowerWatts() / spec_.tdp_watts; }

double PowerModel::LcSpeedFactor() const { return lc_freq_ / spec_.base_freq_ghz; }

double PowerModel::BeSpeedFactor() const { return be_freq_ / spec_.base_freq_ghz; }

}  // namespace rhythm
