#include "src/resources/cat_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

CatAllocator::CatAllocator(int total_ways, int lc_min_ways) : total_(total_ways), lc_min_(lc_min_ways) {
  RHYTHM_CHECK(total_ways > 0);
  RHYTHM_CHECK(lc_min_ways >= 0 && lc_min_ways <= total_ways);
}

int CatAllocator::AllocateBeWays(int n) {
  const int available = total_ - lc_min_ - be_;
  const int granted = std::clamp(n, 0, available);
  be_ += granted;
  return granted;
}

int CatAllocator::ReleaseBeWays(int n) {
  const int released = std::clamp(n, 0, be_);
  be_ -= released;
  return released;
}

void CatAllocator::ReleaseAllBeWays() { be_ = 0; }

}  // namespace rhythm
