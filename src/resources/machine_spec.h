// Static description of a physical machine, mirroring the paper's testbed:
// one socket's worth of a quad-socket Intel Xeon E7-4820 v4 (per-socket view,
// since the paper pins each Servpod and its BEs to one socket): 40 logical
// cores per machine, 20 MB of L3 (modelled as 20 CAT ways of 1 MB), 64 GB of
// DRAM per socket, and a 10 Gbps NIC.

#ifndef RHYTHM_SRC_RESOURCES_MACHINE_SPEC_H_
#define RHYTHM_SRC_RESOURCES_MACHINE_SPEC_H_

namespace rhythm {

struct MachineSpec {
  int total_cores = 40;
  int llc_ways = 20;             // Intel CAT partitions; 1 way == 1 MB here.
  double llc_mb = 20.0;          // shared L3 capacity.
  double dram_bw_gbs = 60.0;     // peak memory bandwidth, GB/s.
  double dram_gb = 64.0;         // DRAM capacity.
  double nic_gbps = 10.0;        // NIC line rate.
  double tdp_watts = 115.0;      // thermal design power (RAPL budget).
  double idle_watts = 35.0;      // package idle power.
  double base_freq_ghz = 2.0;    // nominal frequency.
  double min_freq_ghz = 1.0;     // DVFS floor.
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_MACHINE_SPEC_H_
