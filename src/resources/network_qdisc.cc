#include "src/resources/network_qdisc.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

NetworkQdisc::NetworkQdisc(double link_gbps) : link_(link_gbps) {
  RHYTHM_CHECK(link_gbps > 0.0);
  Recompute();
}

void NetworkQdisc::SetLcTraffic(double gbps) {
  lc_traffic_ = std::max(gbps, 0.0);
  Recompute();
}

void NetworkQdisc::SetBeOffered(double gbps) { be_offered_ = std::max(gbps, 0.0); }

void NetworkQdisc::Recompute() {
  be_allocation_ = std::max(0.0, link_ - 1.2 * lc_traffic_);
}

double NetworkQdisc::be_delivered_gbps() const { return std::min(be_offered_, be_allocation_); }

double NetworkQdisc::lc_contention() const {
  // Shaping protects the LC up to the 20% headroom; contention leaks in only
  // when the link is nearly full of LC+BE traffic (switch buffers, NIC
  // queues). Model this as the squeeze of the remaining headroom.
  const double total = lc_traffic_ + be_delivered_gbps();
  const double pressure = total / link_;
  return std::max(0.0, (pressure - 0.8) / 0.2);
}

double NetworkQdisc::utilization() const {
  return std::min(1.0, (lc_traffic_ + be_delivered_gbps()) / link_);
}

}  // namespace rhythm
