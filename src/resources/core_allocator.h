// cpuset-style core partitioning between the LC Servpod and BE jobs.
//
// The paper binds LC and BE jobs to disjoint physical cores via cpuset
// cgroups. We model the machine's cores as a counted partition: a fixed
// reservation for the LC container plus a growable BE pool. The identity of
// individual cores does not matter for the interference model, only the
// counts and the fact that the sets are disjoint.

#ifndef RHYTHM_SRC_RESOURCES_CORE_ALLOCATOR_H_
#define RHYTHM_SRC_RESOURCES_CORE_ALLOCATOR_H_

namespace rhythm {

class CoreAllocator {
 public:
  CoreAllocator(int total_cores, int lc_reserved_cores);

  // Attempts to move `n` cores from the free pool to the BE partition.
  // Returns the number actually granted (may be less than requested).
  int AllocateBeCores(int n);

  // Returns `n` BE cores to the free pool; returns the number released.
  int ReleaseBeCores(int n);

  // Releases every BE core (StopBE).
  void ReleaseAllBeCores();

  int total_cores() const { return total_; }
  int lc_cores() const { return lc_reserved_; }
  int be_cores() const { return be_; }
  int free_cores() const { return total_ - lc_reserved_ - be_; }

 private:
  int total_;
  int lc_reserved_;
  int be_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_CORE_ALLOCATOR_H_
