// DRAM-capacity partitioning between the LC container and BE jobs.
// BE jobs start with 2 GB and are grown or cut in 100 MB steps by the memory
// subcontroller (paper §3.5.2). SuspendBE keeps BE memory resident;
// StopBE releases it.

#ifndef RHYTHM_SRC_RESOURCES_MEMORY_ALLOCATOR_H_
#define RHYTHM_SRC_RESOURCES_MEMORY_ALLOCATOR_H_

namespace rhythm {

class MemoryAllocator {
 public:
  MemoryAllocator(double total_gb, double lc_reserved_gb);

  // Attempts to allocate `gb` to the BE partition; returns the GB granted.
  double AllocateBeGb(double gb);

  // Returns up to `gb` from the BE partition; returns the GB released.
  double ReleaseBeGb(double gb);

  void ReleaseAllBeGb();

  double total_gb() const { return total_; }
  double lc_reserved_gb() const { return lc_reserved_; }
  double be_gb() const { return be_; }
  double free_gb() const { return total_ - lc_reserved_ - be_; }
  double utilization() const { return (lc_reserved_ + be_) / total_; }

 private:
  double total_;
  double lc_reserved_;
  double be_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_MEMORY_ALLOCATOR_H_
