// RAPL-style power accounting plus DVFS control.
//
// Package power is modelled as idle power plus a per-active-core dynamic
// term that scales ~quadratically with frequency (P ~ C V^2 f with V ~ f).
// The frequency subcontroller reads power via this model (as it would via
// RAPL MSRs) and lowers the BE cores' frequency in 100 MHz steps when power
// exceeds 80% of TDP (paper §3.5.2).

#ifndef RHYTHM_SRC_RESOURCES_POWER_MODEL_H_
#define RHYTHM_SRC_RESOURCES_POWER_MODEL_H_

#include "src/resources/machine_spec.h"

namespace rhythm {

class PowerModel {
 public:
  explicit PowerModel(const MachineSpec& spec);

  // Activity inputs: how many cores are busy on each side and how hard.
  // `lc_intensity` / `be_intensity` are in [0, 1].
  void SetActivity(int lc_active_cores, double lc_intensity, int be_active_cores,
                   double be_intensity);

  // DVFS knobs. Frequencies are clamped to [min_freq, base_freq].
  void SetBeFrequency(double ghz);
  void SetLcFrequency(double ghz);

  double be_frequency_ghz() const { return be_freq_; }
  double lc_frequency_ghz() const { return lc_freq_; }

  // Measured package power in watts (the RAPL reading).
  double PackagePowerWatts() const;

  // Power as a fraction of TDP.
  double TdpFraction() const;

  // Relative speed of a core at frequency f versus base frequency.
  double LcSpeedFactor() const;
  double BeSpeedFactor() const;

  const MachineSpec& spec() const { return spec_; }

 private:
  MachineSpec spec_;
  double lc_freq_;
  double be_freq_;
  int lc_active_ = 0;
  int be_active_ = 0;
  double lc_intensity_ = 0.0;
  double be_intensity_ = 0.0;

  double CoreDynamicWatts(double freq_ghz) const;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RESOURCES_POWER_MODEL_H_
