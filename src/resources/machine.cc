#include "src/resources/machine.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace rhythm {

Machine::Machine(std::string name, const MachineSpec& spec, const LcReservation& reservation)
    : name_(std::move(name)),
      spec_(spec),
      reservation_(reservation),
      cores_(spec.total_cores, reservation.cores),
      cat_(spec.llc_ways, reservation.min_llc_ways),
      membw_(spec.dram_bw_gbs),
      memory_(spec.dram_gb, reservation.memory_gb),
      network_(spec.nic_gbps),
      power_(spec) {}

void Machine::SetLcActivity(double busy_cores, double membw_gbs, double net_gbps) {
  lc_busy_cores_ = std::clamp(busy_cores, 0.0, static_cast<double>(reservation_.cores));
  membw_.SetLcDemand(membw_gbs);
  network_.SetLcTraffic(net_gbps);
  const int active = static_cast<int>(std::ceil(lc_busy_cores_));
  const double intensity = active > 0 ? lc_busy_cores_ / active : 0.0;
  power_.SetActivity(active, intensity, static_cast<int>(std::ceil(be_busy_cores_)),
                     be_busy_cores_ > 0.0
                         ? be_busy_cores_ / std::ceil(std::max(be_busy_cores_, 1.0))
                         : 0.0);
}

void Machine::SetBeActivity(double busy_cores, double membw_gbs, double net_gbps) {
  be_busy_cores_ = std::clamp(busy_cores, 0.0, static_cast<double>(cores_.be_cores()));
  membw_.SetBeDemand(membw_gbs);
  network_.SetBeOffered(net_gbps);
  const int lc_active = static_cast<int>(std::ceil(lc_busy_cores_));
  const int be_active = static_cast<int>(std::ceil(be_busy_cores_));
  power_.SetActivity(lc_active, lc_active > 0 ? lc_busy_cores_ / lc_active : 0.0, be_active,
                     be_active > 0 ? be_busy_cores_ / be_active : 0.0);
}

double Machine::CpuUtilization() const {
  return std::min(1.0, (lc_busy_cores_ + be_busy_cores_) / spec_.total_cores);
}

}  // namespace rhythm
