#include "src/resources/memory_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

MemoryAllocator::MemoryAllocator(double total_gb, double lc_reserved_gb)
    : total_(total_gb), lc_reserved_(lc_reserved_gb) {
  RHYTHM_CHECK(total_gb > 0.0);
  RHYTHM_CHECK(lc_reserved_gb >= 0.0 && lc_reserved_gb <= total_gb);
}

double MemoryAllocator::AllocateBeGb(double gb) {
  const double granted = std::clamp(gb, 0.0, free_gb());
  be_ += granted;
  return granted;
}

double MemoryAllocator::ReleaseBeGb(double gb) {
  const double released = std::clamp(gb, 0.0, be_);
  be_ -= released;
  return released;
}

void MemoryAllocator::ReleaseAllBeGb() { be_ = 0.0; }

}  // namespace rhythm
