// In-memory kernel-event log: the capture buffer the SystemTap-based tool
// fills in the real system.

#ifndef RHYTHM_SRC_TRACE_EVENT_LOG_H_
#define RHYTHM_SRC_TRACE_EVENT_LOG_H_

#include <vector>

#include "src/trace/events.h"

namespace rhythm {

class EventLog : public EventSink {
 public:
  void Record(const KernelEvent& event) override { events_.push_back(event); }

  const std::vector<KernelEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }
  size_t size() const { return events_.size(); }

 private:
  std::vector<KernelEvent> events_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_EVENT_LOG_H_
