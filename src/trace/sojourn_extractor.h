// Sojourn-time extraction from kernel events (paper §3.3).
//
// A Servpod's sojourn for one visit is the local processing time: the gaps
// between each inbound event (ACCEPT/RECV) and the next outbound event
// (SEND/CLOSE) on the same context. Under nonblocking threads or persistent
// TCP connections the per-visit pairing can mismatch, but the *sum* of
// outbound timestamps minus the sum of inbound timestamps per pod is
// invariant under any pairing permutation — which is exactly why the paper's
// contribution analyzer consumes mean sojourn times (Equations 1-3). The
// aggregate extractor below computes that invariant directly.

#ifndef RHYTHM_SRC_TRACE_SOJOURN_EXTRACTOR_H_
#define RHYTHM_SRC_TRACE_SOJOURN_EXTRACTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/trace/events.h"

namespace rhythm {

// Identifies which Servpod an LC event belongs to, and filters noise.
struct TracerConfig {
  uint32_t program_base = 100;  // LC programs are [base, base + num_pods).
  int num_pods = 0;
  uint16_t server_port_base = 8000;  // pod i listens on base + i.
};

// Pod index for the event, or -1 when the event belongs to an unrelated
// process (noise to be filtered by the context identifier).
int PodOfEvent(const KernelEvent& event, const TracerConfig& config);

struct SojournSummary {
  // Mean local sojourn per visit, seconds, per pod.
  std::vector<double> mean_sojourn_s;
  // Number of visits observed per pod.
  std::vector<uint64_t> visits;
  // Number of requests (ACCEPT events at the entry pod).
  uint64_t requests = 0;
  // Events discarded by the context-identifier noise filter.
  uint64_t noise_filtered = 0;
};

// Aggregate, pairing-mismatch-immune extraction: per pod,
//   mean = (sum outbound timestamps - sum inbound timestamps) / visits.
SojournSummary ExtractMeanSojourns(std::span<const KernelEvent> events,
                                   const TracerConfig& config);

// Order-based per-visit pairing: within each context identifier, each
// inbound event is matched to the next outbound event by timestamp order.
// Exact in blocking mode; subject to the mismatches discussed in §3.3 under
// nonblocking threads — returned values are per-visit sojourns whose *mean*
// equals the aggregate extraction regardless.
std::vector<std::vector<double>> ExtractPairedSojourns(std::span<const KernelEvent> events,
                                                       const TracerConfig& config);

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_SOJOURN_EXTRACTOR_H_
