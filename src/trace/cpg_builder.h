// Causal path graph (CPG) construction (paper §3.3, Figure 4).
//
// The CPG is a DAG whose vertices are the filtered kernel events and whose
// edges are causal relations of two kinds:
//   * intra-Servpod: an inbound event (ACCEPT/RECV) happens-before the next
//     outbound event (SEND/CLOSE) sharing the same context identifier
//     <hostIP, programName, processID, threadID>;
//   * inter-Servpod: a SEND happens-before the RECV at the neighbour pod
//     carrying the same message identifier
//     <senderIP, senderPort, receiverIP, receiverPort, messageSize>.
// A request's CPG is everything reachable from its ACCEPT event.

#ifndef RHYTHM_SRC_TRACE_CPG_BUILDER_H_
#define RHYTHM_SRC_TRACE_CPG_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/trace/events.h"
#include "src/trace/sojourn_extractor.h"

namespace rhythm {

enum class CpgEdgeKind { kContext, kMessage };

struct CpgEdge {
  int from = 0;  // index into CpgResult::events.
  int to = 0;
  CpgEdgeKind kind = CpgEdgeKind::kContext;
};

// One request's causal path graph.
struct Cpg {
  std::vector<int> event_indices;  // indices into CpgResult::events, in time order.
  double start_time = 0.0;         // ACCEPT timestamp.
  double end_time = 0.0;           // latest reachable event (CLOSE in a clean trace).

  double LatencySeconds() const { return end_time - start_time; }
};

struct CpgResult {
  std::vector<KernelEvent> events;  // filtered LC events, sorted by time.
  std::vector<CpgEdge> edges;
  std::vector<Cpg> requests;        // one entry per ACCEPT event.
  uint64_t noise_filtered = 0;
  uint64_t unmatched_sends = 0;     // SENDs with no matching RECV observed.
};

CpgResult BuildCpgs(std::span<const KernelEvent> raw_events, const TracerConfig& config);

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_CPG_BUILDER_H_
