// Request path classification.
//
// §3.3: "user requests may be processed by different paths of the service
// call". Given the per-request causal path graphs, this classifier groups
// requests by the set of Servpods their CPG visits — exposing the service's
// path mix (e.g. cache-hit requests that never reach the database tier) and
// per-path latency statistics.

#ifndef RHYTHM_SRC_TRACE_PATH_CLASSIFIER_H_
#define RHYTHM_SRC_TRACE_PATH_CLASSIFIER_H_

#include <cstdint>
#include <vector>

#include "src/trace/cpg_builder.h"

namespace rhythm {

struct PathClass {
  std::vector<int> pods;        // sorted, distinct Servpods on the path.
  uint64_t requests = 0;
  double mean_latency_s = 0.0;  // mean end-to-end latency of the class.
  double max_latency_s = 0.0;
};

// Groups the CPG result's requests into path classes, most frequent first.
std::vector<PathClass> ClassifyPaths(const CpgResult& result, const TracerConfig& config);

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_PATH_CLASSIFIER_H_
