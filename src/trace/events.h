// Kernel-event records captured by the request tracer.
//
// The paper's tracer records four system-call events per Servpod via
// SystemTap: syscall_accept (ACCEPT), tcp_rcvmsg (RECV), tcp_sendmsg (SEND)
// and syscall_close (CLOSE). Each event carries a context identifier
// <hostIP, programName, processID, threadID> used for intra-Servpod
// causality and a message identifier <senderIP, senderPort, receiverIP,
// receiverPort, messageSize> used for inter-Servpod causality (§3.3).

#ifndef RHYTHM_SRC_TRACE_EVENTS_H_
#define RHYTHM_SRC_TRACE_EVENTS_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace rhythm {

enum class EventType { kAccept, kRecv, kSend, kClose };

const char* EventTypeName(EventType type);

// <hostIP, programName, processID, threadID>. Host and program are interned
// as integers for compactness; the mapping to names lives in the workload
// catalog.
struct ContextId {
  uint32_t host_ip = 0;
  uint32_t program = 0;
  uint32_t process_id = 0;
  uint32_t thread_id = 0;

  friend bool operator==(const ContextId&, const ContextId&) = default;
  friend auto operator<=>(const ContextId&, const ContextId&) = default;
};

// <senderIP, senderPort, receiverIP, receiverPort, messageSize>.
struct MessageId {
  uint32_t sender_ip = 0;
  uint16_t sender_port = 0;
  uint32_t receiver_ip = 0;
  uint16_t receiver_port = 0;
  uint32_t message_size = 0;

  friend bool operator==(const MessageId&, const MessageId&) = default;
  friend auto operator<=>(const MessageId&, const MessageId&) = default;
};

struct KernelEvent {
  EventType type = EventType::kRecv;
  double timestamp = 0.0;  // seconds.
  ContextId context;
  MessageId message;
};

// Destination for events produced by a Servpod host (one sink per machine in
// the real system; one per experiment here).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Record(const KernelEvent& event) = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_EVENTS_H_
