#include "src/trace/events.h"

namespace rhythm {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kAccept:
      return "ACCEPT";
    case EventType::kRecv:
      return "RECV";
    case EventType::kSend:
      return "SEND";
    case EventType::kClose:
      return "CLOSE";
  }
  return "?";
}

}  // namespace rhythm
