#include "src/trace/sojourn_extractor.h"

#include <algorithm>
#include <map>

namespace rhythm {

namespace {

bool IsInbound(EventType type) {
  return type == EventType::kAccept || type == EventType::kRecv;
}

}  // namespace

int PodOfEvent(const KernelEvent& event, const TracerConfig& config) {
  const uint32_t program = event.context.program;
  if (program < config.program_base ||
      program >= config.program_base + static_cast<uint32_t>(config.num_pods)) {
    return -1;
  }
  return static_cast<int>(program - config.program_base);
}

SojournSummary ExtractMeanSojourns(std::span<const KernelEvent> events,
                                   const TracerConfig& config) {
  SojournSummary summary;
  summary.mean_sojourn_s.assign(config.num_pods, 0.0);
  summary.visits.assign(config.num_pods, 0);
  std::vector<double> net_time(config.num_pods, 0.0);

  for (const KernelEvent& event : events) {
    const int pod = PodOfEvent(event, config);
    if (pod < 0) {
      ++summary.noise_filtered;
      continue;
    }
    if (IsInbound(event.type)) {
      net_time[pod] -= event.timestamp;
      // A visit begins when the pod's server port receives a request (as
      // opposed to receiving a downstream reply on an ephemeral port).
      if (event.message.receiver_port ==
          static_cast<uint16_t>(config.server_port_base + pod)) {
        ++summary.visits[pod];
      }
      if (event.type == EventType::kAccept && pod >= 0) {
        ++summary.requests;
      }
    } else {
      net_time[pod] += event.timestamp;
    }
  }
  for (int pod = 0; pod < config.num_pods; ++pod) {
    if (summary.visits[pod] > 0) {
      summary.mean_sojourn_s[pod] =
          net_time[pod] / static_cast<double>(summary.visits[pod]);
    }
  }
  return summary;
}

std::vector<std::vector<double>> ExtractPairedSojourns(std::span<const KernelEvent> events,
                                                       const TracerConfig& config) {
  std::vector<std::vector<double>> sojourns(config.num_pods);

  // Sort a copy by timestamp (capture order in the real tool).
  std::vector<KernelEvent> sorted(events.begin(), events.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const KernelEvent& a, const KernelEvent& b) {
                     return a.timestamp < b.timestamp;
                   });

  // Per-context queue of pending inbound timestamps: each outbound event is
  // paired with the oldest pending inbound on the same context identifier.
  std::map<ContextId, std::vector<double>> pending;
  for (const KernelEvent& event : sorted) {
    const int pod = PodOfEvent(event, config);
    if (pod < 0) {
      continue;
    }
    if (IsInbound(event.type)) {
      pending[event.context].push_back(event.timestamp);
    } else {
      auto it = pending.find(event.context);
      if (it == pending.end() || it->second.empty()) {
        continue;  // unmatched outbound (e.g. truncated capture window).
      }
      const double in_time = it->second.front();
      it->second.erase(it->second.begin());
      sojourns[pod].push_back(event.timestamp - in_time);
    }
  }
  return sojourns;
}

}  // namespace rhythm
