#include "src/trace/path_classifier.h"

#include <algorithm>
#include <map>

namespace rhythm {

std::vector<PathClass> ClassifyPaths(const CpgResult& result, const TracerConfig& config) {
  std::map<std::vector<int>, PathClass> classes;
  for (const Cpg& cpg : result.requests) {
    std::vector<int> pods;
    for (int index : cpg.event_indices) {
      const int pod = PodOfEvent(result.events[index], config);
      if (pod >= 0) {
        pods.push_back(pod);
      }
    }
    std::sort(pods.begin(), pods.end());
    pods.erase(std::unique(pods.begin(), pods.end()), pods.end());

    PathClass& cls = classes[pods];
    cls.pods = pods;
    const double latency = cpg.LatencySeconds();
    // Streaming mean update.
    cls.mean_latency_s += (latency - cls.mean_latency_s) / static_cast<double>(cls.requests + 1);
    cls.max_latency_s = std::max(cls.max_latency_s, latency);
    ++cls.requests;
  }
  std::vector<PathClass> out;
  out.reserve(classes.size());
  for (auto& [pods, cls] : classes) {
    out.push_back(std::move(cls));
  }
  std::sort(out.begin(), out.end(),
            [](const PathClass& a, const PathClass& b) { return a.requests > b.requests; });
  return out;
}

}  // namespace rhythm
