#include "src/trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace rhythm {

namespace {

constexpr char kHeader[] = "rhythm-trace v1";

int TypeCode(EventType type) { return static_cast<int>(type); }

bool TypeFromCode(int code, EventType* out) {
  if (code < 0 || code > 3) {
    return false;
  }
  *out = static_cast<EventType>(code);
  return true;
}

}  // namespace

bool WriteTraceFile(const std::string& path, std::span<const KernelEvent> events) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  bool ok = std::fprintf(file, "%s\n", kHeader) > 0;
  for (const KernelEvent& event : events) {
    if (!ok) {
      break;
    }
    ok = std::fprintf(file, "%d,%.9f,%u,%u,%u,%u,%u,%u,%u,%u,%u\n", TypeCode(event.type),
                      event.timestamp, event.context.host_ip, event.context.program,
                      event.context.process_id, event.context.thread_id,
                      event.message.sender_ip, event.message.sender_port,
                      event.message.receiver_ip, event.message.receiver_port,
                      event.message.message_size) > 0;
  }
  return std::fclose(file) == 0 && ok;
}

bool ReadTraceFile(const std::string& path, std::vector<KernelEvent>* events) {
  events->clear();
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return false;
  }
  char line[256];
  if (std::fgets(line, sizeof(line), file) == nullptr ||
      std::strncmp(line, kHeader, std::strlen(kHeader)) != 0) {
    std::fclose(file);
    return false;
  }
  bool ok = true;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    int type_code = 0;
    double timestamp = 0.0;
    unsigned host = 0;
    unsigned program = 0;
    unsigned pid = 0;
    unsigned tid = 0;
    unsigned sip = 0;
    unsigned sport = 0;
    unsigned rip = 0;
    unsigned rport = 0;
    unsigned size = 0;
    const int fields =
        std::sscanf(line, "%d,%lf,%u,%u,%u,%u,%u,%u,%u,%u,%u", &type_code, &timestamp, &host,
                    &program, &pid, &tid, &sip, &sport, &rip, &rport, &size);
    EventType type;
    if (fields != 11 || !TypeFromCode(type_code, &type) || sport > 65535 || rport > 65535) {
      ok = false;
      break;
    }
    events->push_back(KernelEvent{
        .type = type,
        .timestamp = timestamp,
        .context = ContextId{host, program, pid, tid},
        .message = MessageId{sip, static_cast<uint16_t>(sport), rip,
                             static_cast<uint16_t>(rport), size},
    });
  }
  std::fclose(file);
  return ok;
}

}  // namespace rhythm
