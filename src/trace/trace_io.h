// Kernel-event trace serialization: a versioned CSV format so captured
// traces can be archived and analyzed offline (the real tool dumps
// SystemTap output to files the same way).
//
// Format: a header line `rhythm-trace v1`, then one event per line:
//   type,timestamp,host_ip,program,process_id,thread_id,
//   sender_ip,sender_port,receiver_ip,receiver_port,message_size

#ifndef RHYTHM_SRC_TRACE_TRACE_IO_H_
#define RHYTHM_SRC_TRACE_TRACE_IO_H_

#include <span>
#include <string>
#include <vector>

#include "src/trace/events.h"

namespace rhythm {

// Writes the events to `path`; returns false on I/O failure.
bool WriteTraceFile(const std::string& path, std::span<const KernelEvent> events);

// Reads a trace written by WriteTraceFile. Returns false on I/O failure, a
// bad header, or a malformed record; on success `events` holds the full
// trace in file order.
bool ReadTraceFile(const std::string& path, std::vector<KernelEvent>* events);

}  // namespace rhythm

#endif  // RHYTHM_SRC_TRACE_TRACE_IO_H_
