#include "src/trace/cpg_builder.h"

#include <algorithm>
#include <map>
#include <queue>

namespace rhythm {

namespace {

bool IsInbound(EventType type) {
  return type == EventType::kAccept || type == EventType::kRecv;
}

}  // namespace

CpgResult BuildCpgs(std::span<const KernelEvent> raw_events, const TracerConfig& config) {
  CpgResult result;

  // 1. Filter by context identifier (drop unrelated processes) and sort by
  //    capture timestamp.
  for (const KernelEvent& event : raw_events) {
    if (PodOfEvent(event, config) < 0) {
      ++result.noise_filtered;
      continue;
    }
    result.events.push_back(event);
  }
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const KernelEvent& a, const KernelEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  const int n = static_cast<int>(result.events.size());

  std::vector<std::vector<int>> successors(n);
  auto add_edge = [&](int from, int to, CpgEdgeKind kind) {
    result.edges.push_back(CpgEdge{from, to, kind});
    successors[from].push_back(to);
  };

  // 2. Intra-Servpod causality: within a context identifier, each inbound
  //    event happens-before every subsequent outbound event until the next
  //    inbound; order-based pairing as §3.3 describes.
  {
    std::map<ContextId, std::vector<int>> pending_inbound;
    for (int i = 0; i < n; ++i) {
      const KernelEvent& event = result.events[i];
      auto& queue = pending_inbound[event.context];
      if (IsInbound(event.type)) {
        queue.push_back(i);
      } else if (!queue.empty()) {
        add_edge(queue.front(), i, CpgEdgeKind::kContext);
        queue.erase(queue.begin());
        // The outbound event re-arms the context: subsequent inbound events
        // continue the same visit chain (RECV of a child's reply pairs with
        // the next SEND).
      }
    }
  }

  // 3. Inter-Servpod causality: SEND happens-before the first later
  //    ACCEPT/RECV with the same message identifier on another pod.
  {
    std::map<MessageId, std::vector<int>> pending_sends;
    for (int i = 0; i < n; ++i) {
      const KernelEvent& event = result.events[i];
      if (!IsInbound(event.type)) {
        pending_sends[event.message].push_back(i);
      } else {
        auto it = pending_sends.find(event.message);
        if (it != pending_sends.end() && !it->second.empty()) {
          add_edge(it->second.front(), i, CpgEdgeKind::kMessage);
          it->second.erase(it->second.begin());
        }
      }
    }
    for (const auto& [msg, sends] : pending_sends) {
      result.unmatched_sends += sends.size();
    }
  }

  // 4. One CPG per ACCEPT: everything reachable through causal edges.
  for (int i = 0; i < n; ++i) {
    if (result.events[i].type != EventType::kAccept) {
      continue;
    }
    Cpg cpg;
    cpg.start_time = result.events[i].timestamp;
    cpg.end_time = cpg.start_time;
    std::vector<bool> seen(n, false);
    std::queue<int> frontier;
    frontier.push(i);
    seen[i] = true;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      cpg.event_indices.push_back(v);
      cpg.end_time = std::max(cpg.end_time, result.events[v].timestamp);
      for (int succ : successors[v]) {
        if (!seen[succ]) {
          seen[succ] = true;
          frontier.push(succ);
        }
      }
    }
    std::sort(cpg.event_indices.begin(), cpg.event_indices.end());
    result.requests.push_back(std::move(cpg));
  }
  return result;
}

}  // namespace rhythm
