#include "src/bemodel/be_job_spec.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace rhythm {

namespace {

std::vector<BeJobSpec> BuildCatalog() {
  std::vector<BeJobSpec> catalog;

  // CPU-stress: saturates cores from the same socket; little cache or
  // bandwidth footprint. The paper finds it the *least* disruptive stressor
  // because cpuset isolation already separates cores (§2: +113% Master,
  // +22% Slave at worst).
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kCpuStress,
      .name = "CPU-stress",
      .pressure = {.cpu = 1.0, .llc = 0.05, .dram = 0.05, .net = 0.0, .freq = 0.0},
      .cores_demand = 4.0,
      .llc_ways_demand = 1,
      .membw_demand_gbs = 1.0,
      .net_demand_gbps = 0.0,
      .memory_gb = 2.0,
      .solo_duration_s = 120.0,
      .cpu_intensity = 1.0,
  });

  // stream-llc (iBench): thrashes the shared L3. "big" saturates the whole
  // LLC; "small" occupies half (§2).
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kStreamLlcBig,
      .name = "stream-llc(big)",
      .pressure = {.cpu = 0.15, .llc = 1.0, .dram = 0.35, .net = 0.0, .freq = 0.0},
      .cores_demand = 2.0,
      .llc_ways_demand = 20,
      .membw_demand_gbs = 18.0,
      .net_demand_gbps = 0.0,
      .memory_gb = 4.0,
      .solo_duration_s = 90.0,
      .cpu_intensity = 0.9,
  });
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kStreamLlcSmall,
      .name = "stream-llc(small)",
      .pressure = {.cpu = 0.1, .llc = 0.5, .dram = 0.2, .net = 0.0, .freq = 0.0},
      .cores_demand = 2.0,
      .llc_ways_demand = 10,
      .membw_demand_gbs = 9.0,
      .net_demand_gbps = 0.0,
      .memory_gb = 2.0,
      .solo_duration_s = 90.0,
      .cpu_intensity = 0.9,
  });

  // stream-dram (iBench): saturates memory bandwidth.
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kStreamDramBig,
      .name = "stream-dram(big)",
      .pressure = {.cpu = 0.15, .llc = 0.25, .dram = 1.0, .net = 0.0, .freq = 0.0},
      .cores_demand = 4.0,
      .llc_ways_demand = 4,
      .membw_demand_gbs = 55.0,
      .net_demand_gbps = 0.0,
      .memory_gb = 8.0,
      .solo_duration_s = 90.0,
      .cpu_intensity = 0.85,
  });
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kStreamDramSmall,
      .name = "stream-dram(small)",
      .pressure = {.cpu = 0.1, .llc = 0.15, .dram = 0.5, .net = 0.0, .freq = 0.0},
      .cores_demand = 2.0,
      .llc_ways_demand = 2,
      .membw_demand_gbs = 27.0,
      .net_demand_gbps = 0.0,
      .memory_gb = 4.0,
      .solo_duration_s = 90.0,
      .cpu_intensity = 0.85,
  });

  // iperf: network stress.
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kIperf,
      .name = "iperf",
      .pressure = {.cpu = 0.1, .llc = 0.05, .dram = 0.1, .net = 1.0, .freq = 0.0},
      .cores_demand = 1.0,
      .llc_ways_demand = 1,
      .membw_demand_gbs = 2.0,
      .net_demand_gbps = 9.0,
      .memory_gb = 0.5,
      .solo_duration_s = 60.0,
      .cpu_intensity = 0.4,
  });

  // Wordcount (big-data analytics): mixed CPU + heavy IO/memory bandwidth.
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kWordcount,
      .name = "wordcount",
      .pressure = {.cpu = 0.7, .llc = 0.60, .dram = 0.90, .net = 0.15, .freq = 0.0},
      .cores_demand = 6.0,
      .llc_ways_demand = 4,
      .membw_demand_gbs = 22.0,
      .net_demand_gbps = 0.6,
      .memory_gb = 8.0,
      .solo_duration_s = 150.0,
      .cpu_intensity = 0.8,
      .mixed = true,
  });

  // ImageClassify (CycleGAN inference): compute heavy with moderate cache
  // and bandwidth pressure.
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kImageClassify,
      .name = "imageClassify",
      .pressure = {.cpu = 0.85, .llc = 0.70, .dram = 0.65, .net = 0.05, .freq = 0.0},
      .cores_demand = 8.0,
      .llc_ways_demand = 5,
      .membw_demand_gbs = 16.0,
      .net_demand_gbps = 0.2,
      .memory_gb = 6.0,
      .solo_duration_s = 140.0,
      .cpu_intensity = 0.95,
      .mixed = true,
  });

  // LSTM training on TensorFlow: heavy CPU consumption (paper §5.2.1: >70%
  // CPU utilization) with sustained bandwidth demand.
  catalog.push_back(BeJobSpec{
      .kind = BeJobKind::kLstm,
      .name = "LSTM",
      .pressure = {.cpu = 0.95, .llc = 0.65, .dram = 0.80, .net = 0.05, .freq = 0.0},
      .cores_demand = 10.0,
      .llc_ways_demand = 4,
      .membw_demand_gbs = 14.0,
      .net_demand_gbps = 0.2,
      .memory_gb = 10.0,
      .solo_duration_s = 180.0,
      .cpu_intensity = 0.95,
      .mixed = true,
  });

  return catalog;
}

const std::vector<BeJobSpec>& Catalog() {
  static const std::vector<BeJobSpec>* catalog = new std::vector<BeJobSpec>(BuildCatalog());
  return *catalog;
}

}  // namespace

const BeJobSpec& GetBeJobSpec(BeJobKind kind) {
  for (const BeJobSpec& spec : Catalog()) {
    if (spec.kind == kind) {
      return spec;
    }
  }
  RHYTHM_CHECK(false);
  return Catalog().front();
}

const std::vector<BeJobKind>& AllBeJobKinds() {
  static const std::vector<BeJobKind>* kinds = new std::vector<BeJobKind>{
      BeJobKind::kCpuStress,      BeJobKind::kStreamLlcBig,  BeJobKind::kStreamLlcSmall,
      BeJobKind::kStreamDramBig,  BeJobKind::kStreamDramSmall, BeJobKind::kIperf,
      BeJobKind::kWordcount,      BeJobKind::kImageClassify, BeJobKind::kLstm,
  };
  return *kinds;
}

const std::vector<BeJobKind>& EvaluationBeJobKinds() {
  static const std::vector<BeJobKind>* kinds = new std::vector<BeJobKind>{
      BeJobKind::kStreamLlcBig, BeJobKind::kStreamDramBig, BeJobKind::kCpuStress,
      BeJobKind::kLstm,         BeJobKind::kImageClassify, BeJobKind::kWordcount,
  };
  return *kinds;
}

const char* BeJobKindName(BeJobKind kind) { return GetBeJobSpec(kind).name.c_str(); }

BeJobSpec MakeAdversarialBeSpec(const ResourceVector& pressure) {
  const auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  const double cpu = clamp01(pressure.cpu);
  const double llc = clamp01(pressure.llc);
  const double dram = clamp01(pressure.dram);
  const double net = clamp01(pressure.net);
  BeJobSpec spec;
  // The kind tags the instance records; everything behavioural reads the
  // spec itself (BeRuntime::spec()), so any catalog kind works as the tag.
  spec.kind = BeJobKind::kCpuStress;
  spec.name = "adversarial";
  spec.pressure = {.cpu = cpu, .llc = llc, .dram = dram, .net = net, .freq = 0.0};
  // Demands interpolate across the catalog's ranges so the decoded job both
  // exerts the pressure and competes for the matching allocation.
  spec.cores_demand = 1.0 + 9.0 * cpu;
  spec.llc_ways_demand = 1 + static_cast<int>(19.0 * llc);
  spec.membw_demand_gbs = 1.0 + 54.0 * dram;
  spec.net_demand_gbps = 9.0 * net;
  spec.memory_gb = 2.0 + 8.0 * dram;
  spec.solo_duration_s = 120.0;
  spec.cpu_intensity = 0.4 + 0.6 * cpu;
  spec.mixed = false;
  return spec;
}

int SoloInstanceCount(const BeJobSpec& job, const MachineSpec& machine) {
  const double by_cores = machine.total_cores / job.cores_demand;
  const double by_membw = machine.dram_bw_gbs / std::max(job.membw_demand_gbs, 0.1);
  const double by_memory = machine.dram_gb / std::max(job.memory_gb, 0.1);
  const double by_net = job.net_demand_gbps > 0.0
                            ? machine.nic_gbps / job.net_demand_gbps
                            : by_cores;
  const double fit = std::min({by_cores, by_membw, by_memory, by_net});
  return std::max(1, static_cast<int>(fit));
}

double SoloRatePerHour(const BeJobSpec& job, const MachineSpec& machine) {
  return SoloInstanceCount(job, machine) * 3600.0 / job.solo_duration_s;
}

}  // namespace rhythm
