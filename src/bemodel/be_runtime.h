// Per-machine BE job runtime.
//
// Holds the BE job instances co-located with one Servpod, tracks their
// resource allocations (granted through the machine's isolation mechanisms)
// and advances their progress. The subcontrollers drive the five controller
// actions against this runtime; the interference model reads the aggregate
// pressure the running instances exert.

#ifndef RHYTHM_SRC_BEMODEL_BE_RUNTIME_H_
#define RHYTHM_SRC_BEMODEL_BE_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/bemodel/be_job_spec.h"
#include "src/resources/machine.h"
#include "src/scheduler/be_backlog.h"

namespace rhythm {

// One running (or suspended) BE job instance and its current allocation.
struct BeInstance {
  BeJobKind kind;
  int cores = 0;
  int llc_ways = 0;
  double memory_gb = 0.0;
  bool suspended = false;
  // True when the cluster backlog has no job for this instance; it holds its
  // allocation but makes no progress and exerts no pressure.
  bool idle = false;
  double progress = 0.0;  // fraction of the current job completed, [0, 1).
};

class BeRuntime {
 public:
  // The runtime launches instances of a single BE kind (the evaluation
  // co-locates one BE workload type per experiment).
  BeRuntime(Machine* machine, BeJobKind kind);

  // Runs instances of a custom (non-catalog) spec — the adversarial search's
  // decoded genomes. `spec.kind` still tags the instance records.
  BeRuntime(Machine* machine, const BeJobSpec& spec);

  // Attaches a cluster job backlog (paper §4 scheduler integration). When
  // set, instances pull jobs from it: a drained queue idles instances until
  // work arrives. Without a backlog, jobs are always available (the §5
  // evaluation assumption). The backlog must outlive the runtime.
  void SetBacklog(BeBacklog* backlog) { backlog_ = backlog; }

  // When false, the machine may not create instances on its own (the
  // cluster scheduler admits them via AdmitInstance); local resource growth
  // of existing instances is unaffected.
  void set_self_launch_allowed(bool allowed) { self_launch_allowed_ = allowed; }
  bool self_launch_allowed() const { return self_launch_allowed_; }

  // Fault hook (fault-injection layer): when set and it returns true for an
  // op ("grow", "cut", "suspend"), the command is silently lost — the call
  // pretends success but changes nothing, as a dropped IPC to the machine
  // daemon would. The controller detects the lie by verifying observable
  // state and retries.
  using ActuationGate = std::function<bool(const char* op)>;
  void SetActuationGate(ActuationGate gate) { actuation_gate_ = std::move(gate); }

  // Machine-down hook: while blocked, no instance can be created (neither
  // self-launched nor scheduler-admitted).
  void set_admission_blocked(bool blocked) { admission_blocked_ = blocked; }
  bool admission_blocked() const { return admission_blocked_; }

  // -- Controller actions (paper §3.5.2) ------------------------------------

  // Starts one new instance configured with 1 core, 10% of the LLC and 2 GB
  // of memory. Fails (returns false) if the machine cannot grant the cores,
  // or when self-launching is disabled (scheduler-admitted deployments).
  bool LaunchInstance();

  // Scheduler admission path: creates an instance regardless of the
  // self-launch setting.
  bool AdmitInstance();

  // AllowBEGrowth step: gives one under-provisioned instance +1 core and
  // +10% LLC, or launches a new instance when all existing ones are at full
  // demand. Returns false when no resources could be granted.
  bool Grow();

  // Grows a specific instance by one step (no new-instance fallback); used
  // by characterization runs that provision an instance to full demand.
  bool GrowInstance(int index);

  // CutBE step: takes 1 core and 10% LLC from the richest instance.
  // Returns false when BEs hold nothing more to release.
  bool Cut();

  // Memory subcontroller steps (100 MB granularity, §3.5.2).
  bool GrowMemoryStep();
  bool CutMemoryStep();

  // SuspendBE: pauses every instance; memory stays resident.
  void SuspendAll();

  // Resumes every suspended instance.
  void ResumeAll();

  // StopBE: kills all instances, releasing every resource. Returns the
  // number of instances killed. Never gated: a kill is forced through the
  // kernel, not asked of the job.
  int StopAll();

  // Fault-injection path: one instance dies on its own (OOM, segfault,
  // preemption) — resources free up, in-flight work is forfeited, and the
  // controller only notices through accounting. Returns false when there was
  // no instance to kill.
  bool FailOneInstance();

  // -- Simulation ------------------------------------------------------------

  // Advances all instances by dt seconds; jobs that finish restart
  // immediately (the BE queue is never empty) and bump the completion count.
  void Step(double dt);

  // -- Accounting ------------------------------------------------------------

  int instance_count() const { return static_cast<int>(instances_.size()); }
  int running_count() const;
  bool all_suspended() const;
  uint64_t completions() const { return completions_; }
  // Work completed in units of whole jobs, including the fractional progress
  // of in-flight instances. Short measurement windows use this for
  // throughput so a half-finished batch job is not counted as zero.
  double progress_units() const { return progress_units_; }
  BeJobKind kind() const { return kind_; }
  // The spec instances run under — the catalog entry for `kind()`, unless
  // the runtime was built from a custom spec. Throughput normalization and
  // the interference model must read this, never re-look-up the catalog.
  const BeJobSpec& spec() const { return spec_; }
  const std::vector<BeInstance>& instances() const { return instances_; }

  // Core-seconds per second currently burned by BE instances.
  double BusyCores() const;
  // Memory bandwidth currently demanded (GB/s).
  double MembwDemand() const;
  // Offered network traffic (Gbps).
  double NetOffered() const;
  // Aggregate pressure exerted on each shared resource, each axis clamped
  // to [0, 1]; consumed by the interference model.
  ResourceVector ExertedPressure() const;

  // Execution speed of one instance relative to a fully-resourced solo run,
  // in [0, 1]. Exposed for tests.
  double InstanceSpeed(const BeInstance& inst) const;

  // Completion rate since `elapsed_hours` began, normalized to the solo-run
  // rate on this machine class (the paper's "BE Throughput").
  double NormalizedThroughput(double elapsed_hours) const;

  // Total cores/ways currently held across the instances.
  int TotalCoresHeld() const;
  int TotalWaysHeld() const;

  // Memory bandwidth one core-step of growth would add (GB/s): the DRAM
  // subcontroller checks this against the channel's headroom before allowing
  // growth, as Heracles' bandwidth controller does.
  double GrowthMembwStepGbs() const;

  // Pushes BE activity into the machine's accountants. Call once per tick
  // after Step().
  void PublishActivity();

 private:
  Machine* machine_;
  BeJobKind kind_;
  BeJobSpec spec_;
  BeBacklog* backlog_ = nullptr;
  bool self_launch_allowed_ = true;
  bool admission_blocked_ = false;
  ActuationGate actuation_gate_;
  std::vector<BeInstance> instances_;
  uint64_t completions_ = 0;
  double progress_units_ = 0.0;

  // 10% of the LLC in CAT ways (>= 1).
  int LlcStepWays() const;

  // True when the actuation gate swallows `op`.
  bool ActuationLost(const char* op);

  // Releases one instance's resources and forfeits its in-flight work.
  void ReleaseInstance(const BeInstance& inst);
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_BEMODEL_BE_RUNTIME_H_
