// Best-effort (BE) job models.
//
// The paper uses seven BE workloads (Table 1): four synthetic stressors that
// pressure one resource (CPU-stress, stream-llc, stream-dram, iperf) and
// three real mixed workloads (Wordcount, ImageClassify on CycleGAN, LSTM on
// TensorFlow). §2 additionally splits the stream benchmarks into big/small
// intensity levels. Each job is modelled by (a) the pressure it exerts on
// each shared resource when running full speed, (b) the resources it needs
// to run full speed, and (c) its solo completion time, which normalizes BE
// throughput.

#ifndef RHYTHM_SRC_BEMODEL_BE_JOB_SPEC_H_
#define RHYTHM_SRC_BEMODEL_BE_JOB_SPEC_H_

#include <string>
#include <vector>

#include "src/resources/machine_spec.h"

namespace rhythm {

enum class BeJobKind {
  kCpuStress,
  kStreamLlcBig,
  kStreamLlcSmall,
  kStreamDramBig,
  kStreamDramSmall,
  kIperf,
  kWordcount,
  kImageClassify,
  kLstm,
};

// Shared-resource dimensions a BE can pressure / an LC component can be
// sensitive to. "Frequency" captures DVFS-induced slowdown.
struct ResourceVector {
  double cpu = 0.0;   // core/SMT and scheduler pressure within the socket.
  double llc = 0.0;   // last-level-cache thrashing intensity.
  double dram = 0.0;  // memory-bandwidth pressure.
  double net = 0.0;   // NIC pressure.
  double freq = 0.0;  // sensitivity to frequency reduction (LC side only).
};

struct BeJobSpec {
  BeJobKind kind;
  std::string name;
  // Pressure exerted per running instance at full allocation, each in [0,1].
  ResourceVector pressure;
  // Resources one instance wants in order to run at full speed.
  double cores_demand = 1.0;
  int llc_ways_demand = 1;
  double membw_demand_gbs = 1.0;
  double net_demand_gbps = 0.0;
  double memory_gb = 2.0;
  // Wall-clock seconds one job takes when fully resourced.
  double solo_duration_s = 60.0;
  // Fraction of its allocated core time the job actually burns (CPU-bound
  // jobs ~1.0; IO-heavy jobs less).
  double cpu_intensity = 1.0;
  bool mixed = false;  // true for the three "normal" application BEs.
};

// Catalog lookups.
const BeJobSpec& GetBeJobSpec(BeJobKind kind);
const std::vector<BeJobKind>& AllBeJobKinds();
// The six BEs used in the evaluation grids (Figures 9-15): stream-llc,
// stream-dram (big variants), CPU-stress, LSTM, imageClassify, wordcount.
const std::vector<BeJobKind>& EvaluationBeJobKinds();
const char* BeJobKindName(BeJobKind kind);

// Builds a synthetic BE spec from a raw pressure vector (each axis clamped
// to [0, 1]). The adversarial search (src/verify/adversary) decodes genome
// genes into one of these so it can explore pressure mixes the Table-1
// catalog never exercises. Deterministic: equal vectors yield equal specs.
// Resource demands scale with the pressure on each axis so an instance that
// claims to thrash a resource also asks the machine for it.
BeJobSpec MakeAdversarialBeSpec(const ResourceVector& pressure);

// Number of instances of this job that fit on an idle machine, and the
// corresponding solo completion rate (jobs/hour); used to normalize the
// BE-throughput metric (paper §5.1, EMU definition).
int SoloInstanceCount(const BeJobSpec& job, const MachineSpec& machine);
double SoloRatePerHour(const BeJobSpec& job, const MachineSpec& machine);

}  // namespace rhythm

#endif  // RHYTHM_SRC_BEMODEL_BE_JOB_SPEC_H_
