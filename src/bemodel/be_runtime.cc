#include "src/bemodel/be_runtime.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace rhythm {

BeRuntime::BeRuntime(Machine* machine, BeJobKind kind)
    : machine_(machine), kind_(kind), spec_(GetBeJobSpec(kind)) {
  RHYTHM_CHECK(machine != nullptr);
}

BeRuntime::BeRuntime(Machine* machine, const BeJobSpec& spec)
    : machine_(machine), kind_(spec.kind), spec_(spec) {
  RHYTHM_CHECK(machine != nullptr);
}

int BeRuntime::LlcStepWays() const {
  return std::max(1, machine_->spec().llc_ways / 10);
}

bool BeRuntime::ActuationLost(const char* op) {
  return actuation_gate_ && actuation_gate_(op);
}

bool BeRuntime::LaunchInstance() {
  if (!self_launch_allowed_) {
    return false;
  }
  return AdmitInstance();
}

bool BeRuntime::AdmitInstance() {
  if (admission_blocked_) {
    return false;
  }
  if (machine_->cores().AllocateBeCores(1) != 1) {
    return false;
  }
  BeInstance inst;
  inst.kind = kind_;
  inst.cores = 1;
  inst.llc_ways = machine_->cat().AllocateBeWays(LlcStepWays());
  inst.memory_gb = machine_->memory().AllocateBeGb(2.0);
  // With a cluster backlog attached, the instance needs a first job.
  inst.idle = backlog_ != nullptr && !backlog_->TryTakeJob();
  instances_.push_back(inst);
  return true;
}

bool BeRuntime::Grow() {
  if (ActuationLost("grow")) {
    return true;  // the command vanished; the caller believes it landed.
  }
  // Prefer feeding the instance that is furthest below its core demand.
  int neediest = -1;
  double worst_ratio = 1.0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const double ratio = instances_[i].cores / spec_.cores_demand;
    if (ratio < worst_ratio) {
      worst_ratio = ratio;
      neediest = static_cast<int>(i);
    }
  }
  if (neediest >= 0 && GrowInstance(neediest)) {
    return true;
  }
  // Every instance is at its core demand (or nothing could be granted to the
  // hungriest one): try a fresh instance.
  return LaunchInstance();
}

bool BeRuntime::GrowInstance(int index) {
  if (index < 0 || index >= static_cast<int>(instances_.size())) {
    return false;
  }
  BeInstance& inst = instances_[static_cast<size_t>(index)];
  bool grew = false;
  if (inst.cores < static_cast<int>(spec_.cores_demand) &&
      machine_->cores().AllocateBeCores(1) == 1) {
    inst.cores += 1;
    grew = true;
  }
  if (inst.llc_ways < spec_.llc_ways_demand) {
    const int ways = machine_->cat().AllocateBeWays(
        std::min(LlcStepWays(), spec_.llc_ways_demand - inst.llc_ways));
    if (ways > 0) {
      inst.llc_ways += ways;
      grew = true;
    }
  }
  return grew;
}

bool BeRuntime::Cut() {
  if (ActuationLost("cut")) {
    return true;  // the command vanished; the caller believes it landed.
  }
  // Take from the richest instance first.
  BeInstance* richest = nullptr;
  for (BeInstance& inst : instances_) {
    if (richest == nullptr || inst.cores > richest->cores) {
      richest = &inst;
    }
  }
  if (richest == nullptr) {
    return false;
  }
  bool cut = false;
  if (richest->cores > 0) {
    machine_->cores().ReleaseBeCores(1);
    richest->cores -= 1;
    cut = true;
  }
  if (richest->llc_ways > 0) {
    const int step = std::min(LlcStepWays(), richest->llc_ways);
    machine_->cat().ReleaseBeWays(step);
    richest->llc_ways -= step;
    cut = true;
  }
  return cut;
}

bool BeRuntime::GrowMemoryStep() {
  constexpr double kStepGb = 0.1;
  for (BeInstance& inst : instances_) {
    if (inst.memory_gb + kStepGb <= spec_.memory_gb) {
      const double granted = machine_->memory().AllocateBeGb(kStepGb);
      if (granted > 0.0) {
        inst.memory_gb += granted;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool BeRuntime::CutMemoryStep() {
  constexpr double kStepGb = 0.1;
  // Cut from the instance holding the most memory, but never below the 2 GB
  // launch allocation (cutting resident pages would kill the job).
  BeInstance* richest = nullptr;
  for (BeInstance& inst : instances_) {
    if (inst.memory_gb > 2.0 && (richest == nullptr || inst.memory_gb > richest->memory_gb)) {
      richest = &inst;
    }
  }
  if (richest == nullptr) {
    return false;
  }
  const double step = std::min(kStepGb, richest->memory_gb - 2.0);
  machine_->memory().ReleaseBeGb(step);
  richest->memory_gb -= step;
  return true;
}

void BeRuntime::SuspendAll() {
  if (ActuationLost("suspend")) {
    return;
  }
  for (BeInstance& inst : instances_) {
    inst.suspended = true;
  }
}

void BeRuntime::ResumeAll() {
  for (BeInstance& inst : instances_) {
    inst.suspended = false;
  }
}

void BeRuntime::ReleaseInstance(const BeInstance& inst) {
  machine_->cores().ReleaseBeCores(inst.cores);
  machine_->cat().ReleaseBeWays(inst.llc_ways);
  machine_->memory().ReleaseBeGb(inst.memory_gb);
  // A killed batch job forfeits its in-flight work (the paper's BE
  // throughput counts jobs *successfully finished*).
  progress_units_ -= inst.progress;
}

int BeRuntime::StopAll() {
  const int killed = static_cast<int>(instances_.size());
  for (BeInstance& inst : instances_) {
    ReleaseInstance(inst);
  }
  instances_.clear();
  return killed;
}

bool BeRuntime::FailOneInstance() {
  if (instances_.empty()) {
    return false;
  }
  ReleaseInstance(instances_.back());
  instances_.pop_back();
  return true;
}

double BeRuntime::InstanceSpeed(const BeInstance& inst) const {
  if (inst.suspended || inst.idle || inst.cores == 0) {
    return 0.0;
  }
  const double core_ratio = std::min(1.0, inst.cores / spec_.cores_demand);
  const double llc_ratio =
      std::min(1.0, static_cast<double>(std::max(inst.llc_ways, 1)) /
                        std::max(spec_.llc_ways_demand, 1));
  // Under-provisioned memory costs spills/page churn but is sub-linear, as
  // is cache starvation (a stream kernel still streams with fewer ways, it
  // just misses more).
  const double mem_ratio =
      0.7 + 0.3 * std::min(1.0, inst.memory_gb / std::max(spec_.memory_gb, 0.1));
  const double cache_factor = 0.5 + 0.5 * llc_ratio;
  const double membw_factor = machine_->membw().be_grant_fraction();
  double net_factor = 1.0;
  if (spec_.net_demand_gbps > 0.0) {
    const double offered = NetOffered();
    if (offered > 0.0) {
      // Shaping ratio against the *current* qdisc allocation (the published
      // offered value may lag by one accounting tick).
      net_factor = std::min(1.0, machine_->network().be_allocation_gbps() / offered);
    }
  }
  const double freq_factor = machine_->power().BeSpeedFactor();
  return core_ratio * cache_factor * std::min({mem_ratio, membw_factor, net_factor}) *
         freq_factor;
}

void BeRuntime::Step(double dt) {
  for (BeInstance& inst : instances_) {
    // Idle instances poll the backlog for new work.
    if (inst.idle && backlog_ != nullptr && backlog_->TryTakeJob()) {
      inst.idle = false;
    }
    const double speed = InstanceSpeed(inst);
    if (speed <= 0.0) {
      continue;
    }
    const double delta = dt * speed / spec_.solo_duration_s;
    inst.progress += delta;
    progress_units_ += delta;
    while (inst.progress >= 1.0) {
      inst.progress -= 1.0;
      ++completions_;
      if (backlog_ != nullptr && !backlog_->TryTakeJob()) {
        // Queue drained: park the instance and drop the overshoot into the
        // next (nonexistent) job.
        progress_units_ -= inst.progress;
        inst.progress = 0.0;
        inst.idle = true;
        break;
      }
    }
  }
}

int BeRuntime::running_count() const {
  int n = 0;
  for (const BeInstance& inst : instances_) {
    if (!inst.suspended && !inst.idle && inst.cores > 0) {
      ++n;
    }
  }
  return n;
}

bool BeRuntime::all_suspended() const {
  if (instances_.empty()) {
    return true;
  }
  return std::all_of(instances_.begin(), instances_.end(),
                     [](const BeInstance& i) { return i.suspended; });
}

double BeRuntime::BusyCores() const {
  double busy = 0.0;
  for (const BeInstance& inst : instances_) {
    busy += inst.cores * spec_.cpu_intensity * (InstanceSpeed(inst) > 0.0 ? 1.0 : 0.0);
  }
  return busy;
}

double BeRuntime::MembwDemand() const {
  double demand = 0.0;
  for (const BeInstance& inst : instances_) {
    if (inst.suspended || inst.idle || inst.cores == 0) {
      continue;
    }
    demand += spec_.membw_demand_gbs * std::min(1.0, inst.cores / spec_.cores_demand);
  }
  return demand;
}

double BeRuntime::NetOffered() const {
  double offered = 0.0;
  for (const BeInstance& inst : instances_) {
    if (inst.suspended || inst.idle || inst.cores == 0) {
      continue;
    }
    offered += spec_.net_demand_gbps;
  }
  return offered;
}

ResourceVector BeRuntime::ExertedPressure() const {
  ResourceVector sum;
  for (const BeInstance& inst : instances_) {
    if (inst.suspended || inst.idle || inst.cores == 0) {
      continue;
    }
    const double scale = std::min(1.0, inst.cores / spec_.cores_demand);
    sum.cpu += spec_.pressure.cpu * scale;
    sum.llc += spec_.pressure.llc * scale;
    sum.dram += spec_.pressure.dram * scale;
    sum.net += spec_.pressure.net * scale;
  }
  sum.cpu = std::min(sum.cpu, 1.0);
  sum.llc = std::min(sum.llc, 1.0);
  sum.dram = std::min(sum.dram, 1.0);
  sum.net = std::min(sum.net, 1.0);
  return sum;
}

double BeRuntime::NormalizedThroughput(double elapsed_hours) const {
  if (elapsed_hours <= 0.0) {
    return 0.0;
  }
  const double rate = progress_units_ / elapsed_hours;
  return rate / SoloRatePerHour(spec_, machine_->spec());
}

int BeRuntime::TotalCoresHeld() const {
  int total = 0;
  for (const BeInstance& inst : instances_) {
    total += inst.cores;
  }
  return total;
}

double BeRuntime::GrowthMembwStepGbs() const {
  return spec_.membw_demand_gbs / std::max(spec_.cores_demand, 1.0);
}

int BeRuntime::TotalWaysHeld() const {
  int total = 0;
  for (const BeInstance& inst : instances_) {
    total += inst.llc_ways;
  }
  return total;
}

void BeRuntime::PublishActivity() {
  machine_->SetBeActivity(BusyCores(), MembwDemand(), NetOffered());
}

}  // namespace rhythm
