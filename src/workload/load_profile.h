// Request-load profiles: constant loads for the §5.2 grids and a synthetic
// diurnal trace standing in for the ClarkNet production trace (§5.3), which
// the paper scales from five days down to six hours while preserving the
// 24-hour periodicity and fluctuation pattern.

#ifndef RHYTHM_SRC_WORKLOAD_LOAD_PROFILE_H_
#define RHYTHM_SRC_WORKLOAD_LOAD_PROFILE_H_

namespace rhythm {

class LoadProfile {
 public:
  virtual ~LoadProfile() = default;
  // Offered load at simulated time t, as a fraction of MaxLoad in [0, 1].
  virtual double LoadAt(double t) const = 0;
};

class ConstantLoad : public LoadProfile {
 public:
  explicit ConstantLoad(double fraction) : fraction_(fraction) {}
  double LoadAt(double /*t*/) const override { return fraction_; }

 private:
  double fraction_;
};

// ClarkNet-like diurnal web trace: a dominant daily cycle with a weaker
// second harmonic (morning/evening peaks) and small deterministic jitter.
// Five simulated "days" are compressed into the configured duration.
class DiurnalTrace : public LoadProfile {
 public:
  // total_duration: seconds over which kDays days are replayed.
  // min/max load: trough and peak load fractions.
  DiurnalTrace(double total_duration, double min_load, double max_load);

  double LoadAt(double t) const override;

  double day_length() const { return day_length_; }
  static constexpr int kDays = 5;

 private:
  double day_length_;
  double min_load_;
  double max_load_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_LOAD_PROFILE_H_
