#include "src/workload/trace_file_profile.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace rhythm {

namespace {
constexpr char kHeader[] = "rhythm-load v1";
}  // namespace

bool TraceFileProfile::Load(const std::string& path, double duration_s) {
  points_.clear();
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return false;
  }
  char line[128];
  if (std::fgets(line, sizeof(line), file) == nullptr ||
      std::strncmp(line, kHeader, std::strlen(kHeader)) != 0) {
    std::fclose(file);
    return false;
  }
  bool ok = true;
  double last_time = -1.0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    double time = 0.0;
    double load = 0.0;
    if (std::sscanf(line, "%lf,%lf", &time, &load) != 2 || time < last_time) {
      ok = false;
      break;
    }
    last_time = time;
    points_.push_back(Point{time, std::clamp(load, 0.0, 1.0)});
  }
  std::fclose(file);
  if (!ok || points_.empty()) {
    points_.clear();
    return false;
  }
  if (duration_s > 0.0 && points_.back().time > 0.0) {
    const double scale = duration_s / points_.back().time;
    for (Point& point : points_) {
      point.time *= scale;
    }
  }
  return true;
}

void TraceFileProfile::AddPoint(double time_s, double load) {
  points_.push_back(Point{time_s, std::clamp(load, 0.0, 1.0)});
}

double TraceFileProfile::LoadAt(double t) const {
  if (points_.empty()) {
    return 0.0;
  }
  if (t <= points_.front().time) {
    return points_.front().load;
  }
  if (t >= points_.back().time) {
    return points_.back().load;
  }
  // Binary search for the segment containing t, then interpolate.
  const auto after = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const Point& point) { return value < point.time; });
  const Point& hi = *after;
  const Point& lo = *(after - 1);
  if (hi.time <= lo.time) {
    return lo.load;
  }
  const double alpha = (t - lo.time) / (hi.time - lo.time);
  return lo.load + alpha * (hi.load - lo.load);
}

bool TraceFileProfile::Save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  bool ok = std::fprintf(file, "%s\n", kHeader) > 0;
  for (const Point& point : points_) {
    if (!ok) {
      break;
    }
    ok = std::fprintf(file, "%.6f,%.6f\n", point.time, point.load) > 0;
  }
  return std::fclose(file) == 0 && ok;
}

}  // namespace rhythm
