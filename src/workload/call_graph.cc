#include "src/workload/call_graph.h"

#include <algorithm>

namespace rhythm {

void AccumulateVisits(const CallNode& node, std::vector<double>& visits) {
  if (node.component >= 0 && node.component < static_cast<int>(visits.size())) {
    visits[node.component] += 1.0;
  }
  for (const CallNode& child : node.children) {
    AccumulateVisits(child, visits);
  }
}

double CriticalPathValue(const CallNode& node, const std::vector<double>& component_value) {
  double own = component_value[node.component];
  if (node.children.empty()) {
    return own;
  }
  if (node.parallel_children) {
    double best = 0.0;
    for (const CallNode& child : node.children) {
      best = std::max(best, CriticalPathValue(child, component_value));
    }
    return own + best;
  }
  double sum = 0.0;
  for (const CallNode& child : node.children) {
    sum += CriticalPathValue(child, component_value);
  }
  return own + sum;
}

double LongestPathThrough(const CallNode& node, int pod,
                          const std::vector<double>& component_value) {
  const double own = component_value[node.component];
  if (node.component == pod) {
    // From here any continuation counts; take the critical path below.
    return CriticalPathValue(node, component_value);
  }
  if (node.children.empty()) {
    return 0.0;
  }
  if (node.parallel_children) {
    // The branch containing the pod determines the path; siblings do not
    // stack (they run concurrently).
    double best = 0.0;
    for (const CallNode& child : node.children) {
      const double through = LongestPathThrough(child, pod, component_value);
      if (through > 0.0) {
        best = std::max(best, own + through);
      }
    }
    return best;
  }
  // Sequential children: the pod's branch plus every sibling contributes.
  double through_child = 0.0;
  double sum_others = 0.0;
  bool found = false;
  for (const CallNode& child : node.children) {
    const double through = LongestPathThrough(child, pod, component_value);
    if (through > 0.0 && !found) {
      through_child = through;
      found = true;
    } else {
      sum_others += CriticalPathValue(child, component_value);
    }
  }
  if (!found) {
    return 0.0;
  }
  return own + through_child + sum_others;
}

}  // namespace rhythm
