// Catalog of the six LC applications evaluated in the paper (Table 1):
//
//   E-commerce (TPC-W): HAProxy -> Tomcat -> Amoeba -> MySQL, 1300 QPS,
//     SLA 250 ms, 16 containers.
//   Redis (fan-out key-value store): Master -> {Slave, Slave}, 86 kQPS,
//     SLA 1.15 ms, 18 containers.
//   Solr (search): Apache+Solr, Zookeeper, 400 QPS, SLA 350 ms.
//   Elasticsearch (index engine): Index, Kibana, 750 QPS, SLA 200 ms.
//   Elgg (social network): Nginx+PHP-FPM, Memcached, MySQL, 200 QPS,
//     SLA 320 ms.
//   SNMS (DeathStarBench social-network microservices): mediaservice (13
//     microservices), frontend (3), userservice (14), grouped into three
//     Servpods as in §5.3.2; 1500 QPS, SLA 380 ms.
//
// Each component is one Servpod deployed on its own machine. Model
// parameters (service times, variance shapes, sensitivities) are calibrated
// so the solo-run 99th percentile approaches the SLA at MaxLoad and the
// interference ordering matches the paper's §2 characterization.

#ifndef RHYTHM_SRC_WORKLOAD_APP_CATALOG_H_
#define RHYTHM_SRC_WORKLOAD_APP_CATALOG_H_

#include <string>
#include <vector>

#include "src/workload/call_graph.h"
#include "src/workload/component.h"

namespace rhythm {

enum class LcAppKind { kEcommerce, kRedis, kSolr, kElasticsearch, kElgg, kSnms };

struct AppSpec {
  LcAppKind kind;
  std::string name;
  double maxload_qps = 1000.0;
  double sla_ms = 250.0;
  int containers = 8;
  // Simulated request rate at 100% load. High-QPS services are thinned (the
  // latency model depends on the load *fraction*, so a sampled stream gives
  // identical statistics at a fraction of the event cost).
  double sim_qps_cap = 1300.0;
  std::vector<ComponentSpec> components;  // one entry per Servpod.
  CallNode call_root;
  // Optional request-class mix (§3.3: "user requests may be processed by
  // different paths of the service call"): when non-empty, each request
  // follows one of these weighted call trees instead of call_root. Weights
  // need not sum to 1; they are normalized.
  std::vector<std::pair<double, CallNode>> request_mix;
  bool builtin_tracing = false;  // SNMS ships jaeger; no Rhythm tracer needed.

  int pod_count() const { return static_cast<int>(components.size()); }
  // Mean visits per request for each component (weighted over the request
  // mix when one is configured).
  std::vector<double> VisitCounts() const;
  int PodIndex(const std::string& component_name) const;
};

AppSpec MakeApp(LcAppKind kind);

// E-commerce with a page-cache request mix: `hit_fraction` of requests are
// served by HAProxy -> Tomcat alone (cached page), the rest walk the full
// chain to MySQL. Used by the path-classification example and tests; the
// evaluation figures use the single-path MakeApp catalog.
AppSpec MakeEcommerceWithCacheMix(double hit_fraction);

const std::vector<LcAppKind>& AllLcAppKinds();
const char* LcAppKindName(LcAppKind kind);

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_APP_CATALOG_H_
