#include "src/workload/component.h"

#include <algorithm>
#include <cmath>

namespace rhythm {

double ErlangC(int c, double a) {
  if (c <= 0) {
    return 1.0;
  }
  if (a <= 0.0) {
    return 0.0;
  }
  const double rho = a / c;
  if (rho >= 1.0) {
    return 1.0;
  }
  // Iterative Erlang-B, then convert to Erlang-C; numerically stable for the
  // small server counts used here.
  double b = 1.0;
  for (int k = 1; k <= c; ++k) {
    b = a * b / (k + a * b);
  }
  return b / (1.0 - rho + rho * b);
}

double ComponentModel::EffectiveServiceMs(double load, double inflation) const {
  const double dilation = 1.0 + spec_.load_slope * std::pow(std::max(load, 0.0), spec_.load_power);
  return spec_.base_service_ms * dilation * std::max(inflation, 1.0);
}

double ComponentModel::Utilization(double lambda_rps, double load, double inflation) const {
  const double service_s = EffectiveServiceMs(load, inflation) / 1000.0;
  return lambda_rps * service_s / std::max(spec_.workers, 1);
}

double ComponentModel::ExpectedWaitMs(double lambda_rps, double load, double inflation) const {
  const int c = std::max(spec_.workers, 1);
  const double service_ms = EffectiveServiceMs(load, inflation);
  const double service_s = service_ms / 1000.0;
  const double a = lambda_rps * service_s;  // offered load in erlangs.
  const double rho = a / c;
  // Keep the analytic branch slightly below saturation and blend into a
  // linear overload ramp: an unbounded Erlang-C mean would make single
  // latency draws infinite, whereas a real system sheds the excess into a
  // queue that grows for the duration of the burst.
  constexpr double kSoftCap = 0.98;
  if (rho < kSoftCap) {
    const double pw = ErlangC(c, a);
    return pw * service_ms / (c * (1.0 - rho));
  }
  // Value at the cap plus a steep linear penalty past it.
  const double a_cap = kSoftCap * c;
  const double pw = ErlangC(c, a_cap);
  const double wait_cap = pw * service_ms / (c * (1.0 - kSoftCap));
  const double excess = rho - kSoftCap;
  return wait_cap + excess * 40.0 * service_ms;
}

ComponentModel::LocalParams ComponentModel::ComputeLocalParams(double lambda_rps, double load,
                                                               double inflation) const {
  LocalParams params;
  params.sigma_eff =
      spec_.sigma * (1.0 + spec_.sigma_slope * std::pow(std::max(load, 0.0), spec_.sigma_power));
  params.eff_service_ms = EffectiveServiceMs(load, inflation);
  params.mean_wait_ms = ExpectedWaitMs(lambda_rps, load, inflation);
  return params;
}

double ComponentModel::SampleWithParams(const LocalParams& params, Rng& rng) {
  const double service = rng.LognormalMean(params.eff_service_ms, params.sigma_eff);
  const double wait = params.mean_wait_ms > 0.0 ? rng.Exponential(params.mean_wait_ms) : 0.0;
  return service + wait;
}

double ComponentModel::SampleLocalMs(double lambda_rps, double load, double inflation,
                                     Rng& rng) const {
  return SampleWithParams(ComputeLocalParams(lambda_rps, load, inflation), rng);
}

double ComponentModel::BusyCores(double lambda_rps, double load, double inflation) const {
  const double in_service = lambda_rps * EffectiveServiceMs(load, inflation) / 1000.0;
  const double scale = spec_.peak_busy_cores / std::max(spec_.workers, 1);
  return std::min(in_service, static_cast<double>(spec_.workers)) * scale;
}

}  // namespace rhythm
