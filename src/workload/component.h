// LC service components and their latency model.
//
// Each component is modelled as an M/M/c-like station: a request's local
// time is a lognormal service draw plus an Erlang-C queueing-wait draw whose
// mean depends on the component's utilization. Interference enters by
// dilating the service time, which in turn raises utilization, so a machine
// under heavy BE pressure sees both slower service *and* nonlinearly growing
// queueing delay — the mechanism behind the paper's Figure 2 blow-ups.

#ifndef RHYTHM_SRC_WORKLOAD_COMPONENT_H_
#define RHYTHM_SRC_WORKLOAD_COMPONENT_H_

#include <string>

#include "src/bemodel/be_job_spec.h"
#include "src/common/rng.h"

namespace rhythm {

struct ComponentSpec {
  std::string name;
  // Mean service time of one request at this component, milliseconds,
  // excluding queueing and downstream calls.
  double base_service_ms = 10.0;
  // Lognormal shape of the service distribution (tail heaviness). MySQL-like
  // components have high sigma; Amoeba/Zookeeper-like proxies are near
  // deterministic.
  double sigma = 0.3;
  // Load-dependent service dilation: effective mean service time is
  //   base_service_ms * (1 + load_slope * load^load_power)
  // capturing, e.g., buffer-pool and lock contention in a database that a
  // front-end proxy does not exhibit (Figure 6a's MySQL knee).
  double load_slope = 0.0;
  double load_power = 2.0;
  // Load-dependent variance growth: effective sigma is
  //   sigma * (1 + sigma_slope * load^sigma_power)
  // sigma_power places the fluctuation knee (Figure 8: the CoV stays flat
  // and then rises sharply — at 76% of MaxLoad for MySQL, 87% for Tomcat).
  double sigma_slope = 0.0;
  double sigma_power = 2.0;
  // Worker threads / connections servicing requests in parallel.
  int workers = 8;
  // Mean number of visits a single request makes to this component.
  double visits_per_request = 1.0;
  // Interference sensitivity on each shared-resource axis (paper §2's
  // characterization). freq covers DVFS sensitivity.
  ResourceVector sensitivity;
  // LC footprint at 100% load, for machine accounting.
  double peak_busy_cores = 8.0;
  double peak_membw_gbs = 8.0;
  double peak_net_gbps = 0.5;
};

// Stateless latency math for one component. All methods are pure given the
// inputs so the model is trivially testable.
class ComponentModel {
 public:
  explicit ComponentModel(const ComponentSpec& spec) : spec_(spec) {}

  const ComponentSpec& spec() const { return spec_; }

  // Effective mean service time (ms) at load fraction `load` (in [0,1])
  // under interference dilation `inflation` (>= 1).
  double EffectiveServiceMs(double load, double inflation) const;

  // Utilization of the station: lambda (req/s into this component) times the
  // effective mean service time, divided by worker count. Values >= 1 mean
  // overload.
  double Utilization(double lambda_rps, double load, double inflation) const;

  // Expected queueing wait (ms) for an M/M/c station via the Erlang-C
  // formula, with a graceful overload branch: past saturation the wait grows
  // linearly in the excess arrival rate (bounded by the measurement window
  // in practice).
  double ExpectedWaitMs(double lambda_rps, double load, double inflation) const;

  // The deterministic inputs of a local-time draw: everything SampleLocalMs
  // derives from (lambda, load, inflation) before touching the RNG. Pure, so
  // callers on the per-request fast path may cache one per component and
  // recompute only when an input changes — the Erlang-C iteration and pow()
  // calls drop out of the per-request cost while every drawn sample stays
  // bit-identical.
  struct LocalParams {
    double eff_service_ms = 0.0;
    double sigma_eff = 0.0;
    double mean_wait_ms = 0.0;
  };
  LocalParams ComputeLocalParams(double lambda_rps, double load, double inflation) const;

  // The stochastic half of SampleLocalMs: one lognormal service draw plus an
  // exponential wait draw (skipped when the mean wait is zero, matching the
  // uncached draw sequence).
  static double SampleWithParams(const LocalParams& params, Rng& rng);

  // Samples a request's local time (ms): lognormal service draw dilated by
  // `inflation`, plus an exponential wait draw with the Erlang-C mean.
  // Equivalent to SampleWithParams(ComputeLocalParams(...), rng).
  double SampleLocalMs(double lambda_rps, double load, double inflation, Rng& rng) const;

  // Mean busy cores at the given load (Little's law, capped by workers),
  // used for CPU-utilization accounting.
  double BusyCores(double lambda_rps, double load, double inflation) const;

 private:
  ComponentSpec spec_;
};

// Erlang-C probability that an arrival waits, for `c` servers at offered
// load `a` (= lambda * service_time). Exposed for tests.
double ErlangC(int c, double a);

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_COMPONENT_H_
