// Load profiles replayed from trace files — the path the paper's ClarkNet
// experiment takes (§5.3 scales five days of an archived web trace to six
// hours while keeping its fluctuation pattern).
//
// Format: a header line `rhythm-load v1`, then `time_s,load_fraction` rows
// in increasing time. Replay interpolates linearly between rows, clamps load
// to [0, 1], and can time-scale the trace (the paper's 5-days-to-6-hours
// compression) via `duration_s`.

#ifndef RHYTHM_SRC_WORKLOAD_TRACE_FILE_PROFILE_H_
#define RHYTHM_SRC_WORKLOAD_TRACE_FILE_PROFILE_H_

#include <string>
#include <vector>

#include "src/workload/load_profile.h"

namespace rhythm {

class TraceFileProfile : public LoadProfile {
 public:
  // Builds an empty (zero-load) profile; call Load() or set points directly.
  TraceFileProfile() = default;

  // Loads a trace file and rescales its time axis to `duration_s`
  // (0 keeps the original timestamps). Returns false on I/O or parse error.
  bool Load(const std::string& path, double duration_s = 0.0);

  // Programmatic construction (points must be in increasing time).
  void AddPoint(double time_s, double load);

  double LoadAt(double t) const override;

  size_t size() const { return points_.size(); }
  double duration() const { return points_.empty() ? 0.0 : points_.back().time; }

  // Writes the profile to a trace file (the generator side).
  bool Save(const std::string& path) const;

 private:
  struct Point {
    double time;
    double load;
  };
  std::vector<Point> points_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_TRACE_FILE_PROFILE_H_
