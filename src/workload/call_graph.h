// Service call structure of an LC workload.
//
// The LC service is a DAG of components (paper §3.1). A request enters at
// the root and walks the tree synchronously: at each node the component does
// local "down" work, invokes its children (sequentially, or in parallel for
// fan-out), then does local "up" work before replying. End-to-end latency is
// the root's total; a component's *sojourn* is its local down+up time,
// excluding downstream waits — matching what the tracer's SEND/RECV pairing
// extracts.

#ifndef RHYTHM_SRC_WORKLOAD_CALL_GRAPH_H_
#define RHYTHM_SRC_WORKLOAD_CALL_GRAPH_H_

#include <vector>

namespace rhythm {

struct CallNode {
  int component = 0;                // index into AppSpec::components.
  bool parallel_children = false;   // fan-out: children execute concurrently.
  std::vector<CallNode> children;
};

// Visit counts per component for one request (children of a parallel node
// all execute). Used to derive per-component arrival rates.
void AccumulateVisits(const CallNode& node, std::vector<double>& visits);

// Sum of per-component values along the longest (critical) root-to-leaf
// accumulation: with sequential children all children contribute; with
// parallel children only the max child branch contributes.
double CriticalPathValue(const CallNode& node, const std::vector<double>& component_value);

// For Servpod `pod`: the total value of the longest path that passes through
// `pod` (used by the paper's Eq. 5 fan-out scaling alpha_i). Returns 0 when
// no path visits the pod.
double LongestPathThrough(const CallNode& node, int pod, const std::vector<double>& component_value);

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_CALL_GRAPH_H_
