// Runtime model of a deployed LC service.
//
// Generates an open-loop Poisson request stream at the profile's load,
// walks each request through the call graph sampling per-Servpod local
// times, and tracks the end-to-end tail latency over a sliding window.
// When an EventSink is attached it synthesizes the kernel events
// (ACCEPT/RECV/SEND/CLOSE with context and message identifiers) the request
// tracer consumes, including unrelated-process noise.
//
// Interference enters through an inflation provider: a callable returning
// the current service-time dilation factor for each Servpod, wired to the
// interference model by the cluster (identity during solo runs).

#ifndef RHYTHM_SRC_WORKLOAD_LC_SERVICE_H_
#define RHYTHM_SRC_WORKLOAD_LC_SERVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/p2_quantile.h"
#include "src/common/percentile_window.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"
#include "src/trace/events.h"
#include "src/workload/app_catalog.h"
#include "src/workload/load_profile.h"

namespace rhythm {

class LcService {
 public:
  struct Config {
    uint64_t seed = 42;
    bool record_sojourns = false;
    EventSink* sink = nullptr;        // kernel-event emission when non-null.
    double tail_window_s = 20.0;      // sliding window for tail queries.
    // Optional chunk recycler for the tail window (must outlive the
    // service); lets pooled deployments reuse window buffers across epochs.
    ChunkPool* chunk_pool = nullptr;
    double noise_events_per_request = 0.0;  // unrelated-process events.
    // Persistent TCP connections between neighbour pods: inter-pod messages
    // reuse one connection per edge, so concurrent requests share message
    // identifiers (the §3.3 ambiguity the mean-based analyzer tolerates).
    bool persistent_tcp = false;
    // Per-component latency hiccups (GC pauses, compaction stalls, page-cache
    // writeback): short bursts during which a pod's service times dilate.
    // They make the per-second 99th percentile *unstable* — the paper's
    // premise ("the fluctuations constitute the heavy-tail") and the reason
    // riding the SLA edge costs violations. Interval is exponential per pod.
    bool hiccups = true;
    double hiccup_mean_interval_s = 15.0;
    double hiccup_min_duration_s = 0.3;
    double hiccup_max_duration_s = 0.6;
    double hiccup_min_factor = 1.15;
    double hiccup_max_factor = 1.35;
  };

  LcService(Simulator* sim, AppSpec app, const Config& config);

  const AppSpec& app() const { return app_; }

  // The load profile must outlive the service.
  void SetLoadProfile(const LoadProfile* profile) { profile_ = profile; }

  // Per-Servpod service-time inflation (>= 1); identity when unset.
  void SetInflationProvider(std::function<double(int pod)> provider) {
    inflation_ = std::move(provider);
  }

  // Starts the arrival process; requests keep arriving until Stop().
  void Start();
  void Stop();

  // -- Signals consumed by controllers and metrics ---------------------------

  // Offered load fraction right now.
  double CurrentLoad() const;

  // Tail latency (ms) at quantile q over the sliding window.
  double TailLatencyMs(double q = 0.99);

  // Long-horizon 99th percentile (ms) over the service's whole lifetime,
  // tracked with the constant-memory P^2 estimator — the number a day-long
  // production run reports without retaining per-request samples.
  double LifetimeTailLatencyMs() const { return lifetime_p99_.Value(); }

  // True (unthinned) request rate into Servpod `pod` (req/s).
  double PodLambda(int pod) const;

  // Current utilization of Servpod `pod`'s station (>=1 means overload).
  double PodUtilization(int pod) const;

  // LC activity at Servpod `pod` for machine accounting.
  double PodBusyCores(int pod) const;
  double PodMembwGbs(int pod) const;
  double PodNetGbps(int pod) const;

  // Inflation factor currently applied to `pod` (exposed for tests).
  double PodInflation(int pod) const;

  // Hiccup dilation currently active at `pod` (1.0 outside bursts).
  double PodHiccupFactor(int pod) const;

  // -- Profiling --------------------------------------------------------------

  void ResetSojourns();
  const RunningStats& PodSojournStats(int pod) const { return sojourns_[pod]; }
  const RunningStats& LatencyStats() const { return latency_stats_; }
  uint64_t completed_requests() const { return completed_; }

 private:
  // Walks `node` starting at `start`: samples this pod's down/up work and
  // recursively executes children. Returns the node's finish time and adds
  // this pod's local time into `sojourn_acc[pod]`. `in_msg` is the message
  // that delivered the request to this pod (null at the root, where the
  // client connection is synthesized).
  double WalkNode(const CallNode& node, double start, double load,
                  std::vector<double>& sojourn_acc, uint64_t request_id, int parent_pod,
                  const MessageId* in_msg);

  // Message identifier for a hop src->dst; unique per call unless
  // persistent_tcp makes concurrent requests share it.
  MessageId MakeHopMessage(int src_pod, int dst_pod);

  void ScheduleNextArrival();
  void HandleArrival();
  void EmitNoise(double now);
  void ScheduleNextHiccup(int pod);

  uint32_t PodIp(int pod) const { return 0x0a000001u + static_cast<uint32_t>(pod); }
  static constexpr uint32_t kClientIp = 0x0a0000ffu;

  Simulator* sim_;
  AppSpec app_;
  Config config_;
  Rng rng_;
  const LoadProfile* profile_ = nullptr;
  std::function<double(int pod)> inflation_;
  std::vector<double> visits_;
  // One model per Servpod, built once — constructing a ComponentModel copies
  // the spec (including its name string), which the pre-overhaul WalkNode
  // paid per node visit.
  std::vector<ComponentModel> models_;
  // Per-pod memo of the deterministic local-time parameters keyed on the
  // exact (load, inflation, lambda) inputs; recomputed only when the machine
  // state or offered load actually changes (tick granularity), not per
  // request. NaN keys never compare equal, so the first visit always fills.
  struct PodMath {
    double load;
    double inflation;
    double lambda;
    ComponentModel::LocalParams params;
  };
  std::vector<PodMath> pod_math_;
  // Request-mix selection table: weights and stable node pointers flattened
  // from app_.request_mix, plus the total weight summed once at construction
  // (the pre-overhaul arrival path re-summed it per request).
  std::vector<std::pair<double, const CallNode*>> mix_table_;
  double mix_total_weight_ = 0.0;
  // Scratch sojourn accumulator reused across arrivals (zeroed per request)
  // instead of a fresh heap allocation each time.
  std::vector<double> sojourn_scratch_;
  std::vector<double> hiccup_until_;
  std::vector<double> hiccup_factor_;
  std::vector<RunningStats> sojourns_;
  RunningStats latency_stats_;
  P2Quantile lifetime_p99_{0.99};
  PercentileWindow window_;
  bool running_ = false;
  uint64_t completed_ = 0;
  uint64_t next_request_id_ = 1;
  uint16_t next_ephemeral_port_ = 10000;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_WORKLOAD_LC_SERVICE_H_
