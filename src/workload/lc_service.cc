#include "src/workload/lc_service.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace rhythm {

LcService::LcService(Simulator* sim, AppSpec app, const Config& config)
    : sim_(sim),
      app_(std::move(app)),
      config_(config),
      rng_(config.seed),
      window_(config.tail_window_s, config.chunk_pool) {
  RHYTHM_CHECK(sim != nullptr);
  visits_ = app_.VisitCounts();
  sojourns_.resize(app_.components.size());
  hiccup_until_.assign(app_.components.size(), -1.0);
  hiccup_factor_.assign(app_.components.size(), 1.0);
  models_.reserve(app_.components.size());
  for (const ComponentSpec& spec : app_.components) {
    models_.emplace_back(spec);
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  pod_math_.assign(app_.components.size(), PodMath{nan, nan, nan, {}});
  sojourn_scratch_.assign(app_.components.size(), 0.0);
  // The summation order matches the old per-arrival loop, so the Uniform
  // draw's upper bound is the identical double.
  mix_table_.reserve(app_.request_mix.size());
  for (const auto& [weight, node] : app_.request_mix) {
    mix_total_weight_ += weight;
    mix_table_.emplace_back(weight, &node);
  }
}

void LcService::Start() {
  RHYTHM_CHECK(profile_ != nullptr);
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleNextArrival();
  if (config_.hiccups) {
    for (int pod = 0; pod < app_.pod_count(); ++pod) {
      ScheduleNextHiccup(pod);
    }
  }
}

void LcService::ScheduleNextHiccup(int pod) {
  sim_->Schedule(rng_.Exponential(config_.hiccup_mean_interval_s), [this, pod] {
    if (!running_) {
      return;
    }
    hiccup_until_[pod] =
        sim_->Now() +
        rng_.Uniform(config_.hiccup_min_duration_s, config_.hiccup_max_duration_s);
    hiccup_factor_[pod] = rng_.Uniform(config_.hiccup_min_factor, config_.hiccup_max_factor);
    ScheduleNextHiccup(pod);
  });
}

double LcService::PodHiccupFactor(int pod) const {
  return sim_->Now() < hiccup_until_[pod] ? hiccup_factor_[pod] : 1.0;
}

void LcService::Stop() { running_ = false; }

double LcService::CurrentLoad() const {
  return profile_ != nullptr ? std::clamp(profile_->LoadAt(sim_->Now()), 0.0, 1.0) : 0.0;
}

double LcService::TailLatencyMs(double q) { return window_.Quantile(sim_->Now(), q); }

double LcService::PodLambda(int pod) const {
  return CurrentLoad() * app_.maxload_qps * visits_[pod];
}

double LcService::PodInflation(int pod) const {
  return inflation_ ? std::max(1.0, inflation_(pod)) : 1.0;
}

double LcService::PodUtilization(int pod) const {
  return models_[pod].Utilization(PodLambda(pod), CurrentLoad(), PodInflation(pod));
}

double LcService::PodBusyCores(int pod) const {
  return models_[pod].BusyCores(PodLambda(pod), CurrentLoad(), PodInflation(pod));
}

double LcService::PodMembwGbs(int pod) const {
  return app_.components[pod].peak_membw_gbs * CurrentLoad();
}

double LcService::PodNetGbps(int pod) const {
  return app_.components[pod].peak_net_gbps * CurrentLoad();
}

void LcService::ScheduleNextArrival() {
  if (!running_) {
    return;
  }
  const double load = CurrentLoad();
  const double rate = std::max(load * app_.sim_qps_cap, 1e-3);
  sim_->Schedule(rng_.Exponential(1.0 / rate), [this] {
    if (!running_) {
      return;
    }
    HandleArrival();
    ScheduleNextArrival();
  });
}

void LcService::HandleArrival() {
  const double now = sim_->Now();
  const double load = CurrentLoad();
  const uint64_t request_id = next_request_id_++;
  std::vector<double>& sojourn_acc = sojourn_scratch_;
  std::fill(sojourn_acc.begin(), sojourn_acc.end(), 0.0);
  // Pick the request's call path: the single catalog path, or a weighted
  // class from the request mix. The sequential-subtraction walk is kept
  // bit-for-bit (prefix-sum comparisons round differently at the margins);
  // only the total, which the old code re-summed per arrival, is hoisted.
  const CallNode* root = &app_.call_root;
  if (!mix_table_.empty()) {
    double draw = rng_.Uniform(0.0, mix_total_weight_);
    for (const auto& [weight, node] : mix_table_) {
      draw -= weight;
      if (draw <= 0.0) {
        root = node;
        break;
      }
    }
  }
  const double finish = WalkNode(*root, now, load, sojourn_acc, request_id,
                                 /*parent_pod=*/-1, /*in_msg=*/nullptr);
  const double latency_ms = (finish - now) * 1000.0;
  window_.Add(finish, latency_ms);
  latency_stats_.Add(latency_ms);
  lifetime_p99_.Add(latency_ms);
  ++completed_;
  if (config_.record_sojourns) {
    for (size_t i = 0; i < sojourn_acc.size(); ++i) {
      if (sojourn_acc[i] > 0.0) {
        sojourns_[i].Add(sojourn_acc[i] * 1000.0);
      }
    }
  }
  if (config_.sink != nullptr && config_.noise_events_per_request > 0.0) {
    EmitNoise(now);
  }
}

MessageId LcService::MakeHopMessage(int src_pod, int dst_pod) {
  const uint32_t src_ip = src_pod < 0 ? kClientIp : PodIp(src_pod);
  MessageId msg{.sender_ip = src_ip,
                .sender_port = 0,
                .receiver_ip = PodIp(dst_pod),
                .receiver_port = static_cast<uint16_t>(8000 + dst_pod),
                .message_size = 0};
  if (config_.persistent_tcp && src_pod >= 0) {
    // One long-lived connection per edge: every request on this hop shares
    // the identifier (fixed port and size).
    msg.sender_port = static_cast<uint16_t>(20000 + src_pod * 64 + dst_pod);
    msg.message_size = 256;
  } else {
    msg.sender_port = next_ephemeral_port_++;
    if (next_ephemeral_port_ > 60000) {
      next_ephemeral_port_ = 10000;
    }
    msg.message_size = 128u + static_cast<uint32_t>(rng_.UniformInt(512));
  }
  return msg;
}

double LcService::WalkNode(const CallNode& node, double start, double load,
                           std::vector<double>& sojourn_acc, uint64_t request_id,
                           int parent_pod, const MessageId* in_msg) {
  const int pod = node.component;
  // `load` is the arrival's CurrentLoad(): the clock does not advance inside
  // a walk, so re-reading the profile per node (as the pre-overhaul code
  // did) returned the identical value.
  const double lambda = load * app_.maxload_qps * visits_[pod];
  const double inflation = PodInflation(pod);
  PodMath& math = pod_math_[pod];
  if (math.load != load || math.inflation != inflation || math.lambda != lambda) {
    math.params = models_[pod].ComputeLocalParams(lambda, load, inflation);
    math.load = load;
    math.inflation = inflation;
    math.lambda = lambda;
  }
  // A hiccup stalls requests in flight (GC pause, compaction): it dilates
  // the sampled local time directly rather than the station's equilibrium
  // (a sub-second burst does not move the queueing operating point).
  const double local_ms =
      ComponentModel::SampleWithParams(math.params, rng_) * PodHiccupFactor(pod);
  const double local_s = local_ms / 1000.0;
  sojourn_acc[pod] += local_s;

  // The local work is split around the downstream calls: request parsing /
  // dispatch before, response assembly after.
  const double down_s = 0.45 * local_s;
  const double up_s = local_s - down_s;

  EventSink* sink = config_.sink;
  ContextId ctx;
  MessageId request_msg;
  if (sink != nullptr) {
    ctx = ContextId{.host_ip = PodIp(pod),
                    .program = 100u + static_cast<uint32_t>(pod),
                    .process_id = 1000u + static_cast<uint32_t>(pod),
                    // One worker thread per in-flight request in blocking
                    // mode; the id ties the pod's RECV/SEND pairs together.
                    .thread_id = static_cast<uint32_t>(request_id % 64)};
    request_msg = in_msg != nullptr ? *in_msg : MakeHopMessage(-1, pod);
    sink->Record(KernelEvent{.type = parent_pod < 0 ? EventType::kAccept : EventType::kRecv,
                             .timestamp = start,
                             .context = ctx,
                             .message = request_msg});
  }

  // Recurses into `child` with matched SEND/RECV event pairs on both sides
  // of each hop (same message identifier, as a shared TCP connection gives).
  auto call_child = [&](const CallNode& child, double at) -> double {
    MessageId down_msg;
    if (sink != nullptr) {
      down_msg = MakeHopMessage(pod, child.component);
      sink->Record(KernelEvent{
          .type = EventType::kSend, .timestamp = at, .context = ctx, .message = down_msg});
    }
    const double child_end = WalkNode(child, at, load, sojourn_acc, request_id, pod,
                                      sink != nullptr ? &down_msg : nullptr);
    if (sink != nullptr) {
      // The child's reply travels back on the reversed connection tuple.
      const MessageId up_msg{.sender_ip = down_msg.receiver_ip,
                             .sender_port = down_msg.receiver_port,
                             .receiver_ip = down_msg.sender_ip,
                             .receiver_port = down_msg.sender_port,
                             .message_size = down_msg.message_size + 1};
      sink->Record(KernelEvent{
          .type = EventType::kRecv, .timestamp = child_end, .context = ctx, .message = up_msg});
    }
    return child_end;
  };

  double children_end = start + down_s;
  if (!node.children.empty()) {
    if (node.parallel_children) {
      double max_end = children_end;
      for (const CallNode& child : node.children) {
        max_end = std::max(max_end, call_child(child, children_end));
      }
      children_end = max_end;
    } else {
      for (const CallNode& child : node.children) {
        children_end = call_child(child, children_end);
      }
    }
  }

  const double finish = children_end + up_s;
  if (sink != nullptr) {
    // Reply to the caller: reversed connection tuple of the request message
    // (the child-side SEND the parent's RECV above pairs with).
    const MessageId reply{.sender_ip = request_msg.receiver_ip,
                          .sender_port = request_msg.receiver_port,
                          .receiver_ip = request_msg.sender_ip,
                          .receiver_port = request_msg.sender_port,
                          .message_size = request_msg.message_size + 1};
    sink->Record(KernelEvent{.type = parent_pod < 0 ? EventType::kClose : EventType::kSend,
                             .timestamp = finish,
                             .context = ctx,
                             .message = reply});
  }
  return finish;
}

void LcService::EmitNoise(double now) {
  const uint64_t n = rng_.Poisson(config_.noise_events_per_request);
  for (uint64_t i = 0; i < n; ++i) {
    const int pod = static_cast<int>(rng_.UniformInt(app_.components.size()));
    // Unrelated program on the same host: must be filtered out by the
    // tracer's context-identifier check.
    config_.sink->Record(KernelEvent{
        .type = rng_.Bernoulli(0.5) ? EventType::kRecv : EventType::kSend,
        .timestamp = now + rng_.Uniform(0.0, 0.005),
        .context = ContextId{.host_ip = PodIp(pod),
                             .program = 999,
                             .process_id = 9990u + static_cast<uint32_t>(rng_.UniformInt(8)),
                             .thread_id = static_cast<uint32_t>(rng_.UniformInt(16))},
        .message = MessageId{.sender_ip = PodIp(pod),
                             .sender_port = static_cast<uint16_t>(40000 + rng_.UniformInt(1000)),
                             .receiver_ip = 0x0b000001u,
                             .receiver_port = 443,
                             .message_size = static_cast<uint32_t>(rng_.UniformInt(4096))}});
  }
}

void LcService::ResetSojourns() {
  for (RunningStats& s : sojourns_) {
    s.Reset();
  }
  latency_stats_.Reset();
}

}  // namespace rhythm
