#include "src/workload/load_profile.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace rhythm {

DiurnalTrace::DiurnalTrace(double total_duration, double min_load, double max_load)
    : day_length_(total_duration / kDays), min_load_(min_load), max_load_(max_load) {
  RHYTHM_CHECK(total_duration > 0.0);
  RHYTHM_CHECK(min_load >= 0.0 && max_load <= 1.0 && min_load <= max_load);
}

double DiurnalTrace::LoadAt(double t) const {
  const double phase = 2.0 * M_PI * t / day_length_;
  // Primary daily swing, trough at t=0 ("midnight").
  double shape = 0.5 - 0.5 * std::cos(phase);
  // Second harmonic sharpens the midday peak and adds an evening shoulder.
  shape += 0.12 * std::sin(2.0 * phase + 0.7);
  // Deterministic small-scale jitter (no RNG so profiles are pure functions).
  shape += 0.04 * std::sin(17.0 * phase + 1.3) + 0.03 * std::sin(41.0 * phase);
  shape = std::clamp(shape, 0.0, 1.0);
  return min_load_ + (max_load_ - min_load_) * shape;
}

}  // namespace rhythm
