#include "src/workload/app_catalog.h"

#include "src/common/logging.h"

namespace rhythm {

std::vector<double> AppSpec::VisitCounts() const {
  std::vector<double> visits(components.size(), 0.0);
  if (request_mix.empty()) {
    AccumulateVisits(call_root, visits);
    return visits;
  }
  double total_weight = 0.0;
  for (const auto& [weight, root] : request_mix) {
    total_weight += weight;
  }
  for (const auto& [weight, root] : request_mix) {
    std::vector<double> class_visits(components.size(), 0.0);
    AccumulateVisits(root, class_visits);
    for (size_t pod = 0; pod < visits.size(); ++pod) {
      visits[pod] += class_visits[pod] * weight / total_weight;
    }
  }
  return visits;
}

int AppSpec::PodIndex(const std::string& component_name) const {
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i].name == component_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// Calibration notes: worker counts are sized so the bottleneck pod runs at
// ~0.90 utilization at MaxLoad *including* the load-dependent service
// dilation, which places the solo-run 99th percentile just below the SLA at
// MaxLoad (the paper's SLA definition) while leaving the overload knee for
// interference to trigger.

AppSpec MakeEcommerce() {
  AppSpec app;
  app.kind = LcAppKind::kEcommerce;
  app.name = "E-commerce";
  app.maxload_qps = 1300.0;
  app.sla_ms = 250.0;
  app.containers = 16;
  app.sim_qps_cap = 1300.0;

  // HAProxy: tiny mean, relatively large variance (paper §3.4: <5% of overall
  // latency but >20% of the variance share). Network-facing.
  app.components.push_back(ComponentSpec{
      .name = "Haproxy",
      .base_service_ms = 1.2,
      .sigma = 0.85,
      .sigma_slope = 0.80,
      .sigma_power = 24.0,
      .workers = 4,
      .sensitivity = {.cpu = 0.30, .llc = 0.20, .dram = 0.15, .net = 0.85, .freq = 0.30},
      .peak_busy_cores = 3.0,
      .peak_membw_gbs = 2.0,
      .peak_net_gbps = 3.0,
  });
  // Tomcat: the big application tier; strongly frequency-sensitive (Fig 2b's
  // DVFS group) and moderately cache-sensitive.
  app.components.push_back(ComponentSpec{
      .name = "Tomcat",
      .base_service_ms = 30.0,
      .sigma = 0.30,
      .load_slope = 0.25,
      .load_power = 2.0,
      .sigma_slope = 2.50,
      .sigma_power = 28.0,
      .workers = 75,
      .sensitivity = {.cpu = 0.50, .llc = 0.50, .dram = 0.35, .net = 0.20, .freq = 1.10},
      .peak_busy_cores = 16.0,
      .peak_membw_gbs = 8.0,
      .peak_net_gbps = 1.0,
  });
  // Amoeba (DB proxy): small and very stable — the smallest CoV of the four
  // (Fig 6b).
  app.components.push_back(ComponentSpec{
      .name = "Amoeba",
      .base_service_ms = 3.3,
      .sigma = 0.12,
      .sigma_slope = 1.50,
      .sigma_power = 16.0,
      .workers = 9,
      .sensitivity = {.cpu = 0.20, .llc = 0.15, .dram = 0.10, .net = 0.30, .freq = 0.20},
      .peak_busy_cores = 3.0,
      .peak_membw_gbs = 2.0,
      .peak_net_gbps = 1.0,
  });
  // MySQL: smaller mean than Tomcat at low load but the steepest load growth
  // and the largest variance; most sensitive to DRAM-bandwidth and LLC
  // pressure (Fig 2b: 435.8% / 35x differences vs Tomcat).
  app.components.push_back(ComponentSpec{
      .name = "MySQL",
      .base_service_ms = 22.0,
      .sigma = 0.45,
      .load_slope = 2.20,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 101,
      .sensitivity = {.cpu = 0.70, .llc = 1.40, .dram = 1.90, .net = 0.90, .freq = 0.45},
      .peak_busy_cores = 14.0,
      .peak_membw_gbs = 14.0,
      .peak_net_gbps = 0.8,
  });

  // Chain: client -> Haproxy -> Tomcat -> Amoeba -> MySQL.
  app.call_root = CallNode{
      .component = 0,
      .children = {CallNode{
          .component = 1,
          .children = {CallNode{
              .component = 2,
              .children = {CallNode{.component = 3}},
          }},
      }},
  };
  return app;
}

AppSpec MakeRedis() {
  AppSpec app;
  app.kind = LcAppKind::kRedis;
  app.name = "Redis";
  app.maxload_qps = 86000.0;
  app.sla_ms = 1.15;
  app.containers = 18;
  app.sim_qps_cap = 4000.0;  // thinned; statistics depend on load fraction.

  // Master: distributes requests and operates on data; relies on LLC, memory
  // and network bandwidth (Fig 2a: up to 28x more sensitive than Slave under
  // stream-llc(big)).
  app.components.push_back(ComponentSpec{
      .name = "Master",
      .base_service_ms = 0.17,
      .sigma = 0.35,
      .load_slope = 1.30,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 38,
      .sensitivity = {.cpu = 0.95, .llc = 1.70, .dram = 1.50, .net = 1.20, .freq = 0.60},
      .peak_busy_cores = 12.0,
      .peak_membw_gbs = 20.0,
      .peak_net_gbps = 4.0,
  });
  // Slave: replica serving reads; markedly less sensitive (loadlimit 0.91).
  app.components.push_back(ComponentSpec{
      .name = "Slave",
      .base_service_ms = 0.15,
      .sigma = 0.28,
      .load_slope = 0.15,
      .load_power = 2.0,
      .sigma_slope = 2.00,
      .sigma_power = 32.0,
      .workers = 58,
      .sensitivity = {.cpu = 0.22, .llc = 0.35, .dram = 0.40, .net = 0.35, .freq = 0.35},
      .peak_busy_cores = 10.0,
      .peak_membw_gbs = 16.0,
      .peak_net_gbps = 3.0,
  });

  // Fan-out: Master dispatches to two Slave shards in parallel.
  app.call_root = CallNode{
      .component = 0,
      .parallel_children = true,
      .children = {CallNode{.component = 1}, CallNode{.component = 1}},
  };
  return app;
}

AppSpec MakeSolr() {
  AppSpec app;
  app.kind = LcAppKind::kSolr;
  app.name = "Solr";
  app.maxload_qps = 400.0;
  app.sla_ms = 350.0;
  app.containers = 15;
  app.sim_qps_cap = 400.0;

  app.components.push_back(ComponentSpec{
      .name = "Apache+Solr",
      .base_service_ms = 49.0,
      .sigma = 0.45,
      .load_slope = 1.00,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 44,
      .sensitivity = {.cpu = 0.75, .llc = 1.10, .dram = 1.20, .net = 0.50, .freq = 0.80},
      .peak_busy_cores = 16.0,
      .peak_membw_gbs = 16.0,
      .peak_net_gbps = 1.2,
  });
  // Zookeeper: coordination only — tiny, stable, extremely tolerant
  // (loadlimit 0.93, slacklimit 0.035; the most BE-friendly pod in Fig 9).
  app.components.push_back(ComponentSpec{
      .name = "Zookeeper",
      .base_service_ms = 2.4,
      .sigma = 0.10,
      .sigma_slope = 4.00,
      .sigma_power = 36.0,
      .workers = 4,
      .sensitivity = {.cpu = 0.10, .llc = 0.10, .dram = 0.06, .net = 0.12, .freq = 0.10},
      .peak_busy_cores = 2.0,
      .peak_membw_gbs = 1.0,
      .peak_net_gbps = 0.3,
  });

  app.call_root = CallNode{
      .component = 0,
      .children = {CallNode{.component = 1}},
  };
  return app;
}

AppSpec MakeElasticsearch() {
  AppSpec app;
  app.kind = LcAppKind::kElasticsearch;
  app.name = "Elasticsearch";
  app.maxload_qps = 750.0;
  app.sla_ms = 200.0;
  app.containers = 12;
  app.sim_qps_cap = 750.0;

  app.components.push_back(ComponentSpec{
      .name = "Index",
      .base_service_ms = 26.0,
      .sigma = 0.45,
      .load_slope = 1.00,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 44,
      .sensitivity = {.cpu = 0.70, .llc = 1.20, .dram = 1.50, .net = 0.60, .freq = 0.70},
      .peak_busy_cores = 16.0,
      .peak_membw_gbs = 18.0,
      .peak_net_gbps = 1.0,
  });
  // Kibana: dashboard frontend; moderate tolerance (loadlimit 0.90).
  app.components.push_back(ComponentSpec{
      .name = "Kibana",
      .base_service_ms = 13.0,
      .sigma = 0.28,
      .load_slope = 0.15,
      .sigma_slope = 2.00,
      .sigma_power = 32.0,
      .workers = 20,
      .sensitivity = {.cpu = 0.30, .llc = 0.30, .dram = 0.25, .net = 0.30, .freq = 0.35},
      .peak_busy_cores = 6.0,
      .peak_membw_gbs = 4.0,
      .peak_net_gbps = 0.8,
  });

  app.call_root = CallNode{
      .component = 1,
      .children = {CallNode{.component = 0}},
  };
  return app;
}

AppSpec MakeElgg() {
  AppSpec app;
  app.kind = LcAppKind::kElgg;
  app.name = "Elgg";
  app.maxload_qps = 200.0;
  app.sla_ms = 320.0;
  app.containers = 8;
  app.sim_qps_cap = 200.0;

  app.components.push_back(ComponentSpec{
      .name = "Nginx+PHP-FPM",
      .base_service_ms = 56.0,
      .sigma = 0.35,
      .load_slope = 0.30,
      .sigma_slope = 1.50,
      .sigma_power = 24.0,
      .workers = 17,
      .sensitivity = {.cpu = 0.65, .llc = 0.60, .dram = 0.50, .net = 0.45, .freq = 0.90},
      .peak_busy_cores = 14.0,
      .peak_membw_gbs = 8.0,
      .peak_net_gbps = 1.0,
  });
  // Memcached: small and fast, LLC-leaning footprint but small contribution
  // (loadlimit 0.87).
  app.components.push_back(ComponentSpec{
      .name = "Memcached",
      .base_service_ms = 2.0,
      .sigma = 0.24,
      .sigma_slope = 2.50,
      .sigma_power = 32.0,
      .workers = 3,
      .sensitivity = {.cpu = 0.30, .llc = 0.60, .dram = 0.35, .net = 0.50, .freq = 0.25},
      .peak_busy_cores = 3.0,
      .peak_membw_gbs = 6.0,
      .peak_net_gbps = 0.8,
  });
  app.components.push_back(ComponentSpec{
      .name = "MySQL",
      .base_service_ms = 21.0,
      .sigma = 0.42,
      .load_slope = 1.40,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 11,
      .sensitivity = {.cpu = 0.70, .llc = 1.30, .dram = 1.80, .net = 0.80, .freq = 0.45},
      .peak_busy_cores = 10.0,
      .peak_membw_gbs = 12.0,
      .peak_net_gbps = 0.5,
  });

  // Nginx consults Memcached, then MySQL on misses (sequential chain).
  app.call_root = CallNode{
      .component = 0,
      .children = {CallNode{.component = 1}, CallNode{.component = 2}},
  };
  return app;
}

AppSpec MakeSnms() {
  AppSpec app;
  app.kind = LcAppKind::kSnms;
  app.name = "SNMS";
  app.maxload_qps = 1500.0;
  app.sla_ms = 380.0;
  app.containers = 30;
  app.sim_qps_cap = 1500.0;
  app.builtin_tracing = true;  // jaeger provides sojourn times directly.

  // Three Servpods (§5.3.2): contributions come out ~0.14 (frontend),
  // ~0.295 (mediaservice), ~0.565 (userservice).
  app.components.push_back(ComponentSpec{
      .name = "frontend",
      .base_service_ms = 9.4,
      .sigma = 0.30,
      .load_slope = 0.10,
      .sigma_slope = 1.50,
      .sigma_power = 16.0,
      .workers = 23,
      .sensitivity = {.cpu = 0.35, .llc = 0.30, .dram = 0.25, .net = 0.60, .freq = 0.40},
      .peak_busy_cores = 8.0,
      .peak_membw_gbs = 4.0,
      .peak_net_gbps = 1.5,
  });
  app.components.push_back(ComponentSpec{
      .name = "mediaservice",
      .base_service_ms = 35.0,
      .sigma = 0.40,
      .load_slope = 0.80,
      .sigma_slope = 1.50,
      .sigma_power = 16.0,
      .workers = 105,
      .sensitivity = {.cpu = 0.55, .llc = 0.70, .dram = 0.80, .net = 0.50, .freq = 0.55},
      .peak_busy_cores = 14.0,
      .peak_membw_gbs = 12.0,
      .peak_net_gbps = 1.0,
  });
  app.components.push_back(ComponentSpec{
      .name = "userservice",
      .base_service_ms = 41.0,
      .sigma = 0.42,
      .load_slope = 1.20,
      .load_power = 2.2,
      .sigma_slope = 0.60,
      .sigma_power = 8.0,
      .workers = 148,
      .sensitivity = {.cpu = 0.75, .llc = 1.10, .dram = 1.30, .net = 0.70, .freq = 0.65},
      .peak_busy_cores = 16.0,
      .peak_membw_gbs = 14.0,
      .peak_net_gbps = 1.0,
  });

  app.call_root = CallNode{
      .component = 0,
      .children = {CallNode{.component = 1}, CallNode{.component = 2}},
  };
  return app;
}

}  // namespace

AppSpec MakeEcommerceWithCacheMix(double hit_fraction) {
  AppSpec app = MakeEcommerce();
  // Cache hit: HAProxy forwards, Tomcat answers from its page cache.
  const CallNode hit_path{
      .component = 0,
      .children = {CallNode{.component = 1}},
  };
  app.request_mix = {{hit_fraction, hit_path}, {1.0 - hit_fraction, app.call_root}};
  return app;
}

AppSpec MakeApp(LcAppKind kind) {
  switch (kind) {
    case LcAppKind::kEcommerce:
      return MakeEcommerce();
    case LcAppKind::kRedis:
      return MakeRedis();
    case LcAppKind::kSolr:
      return MakeSolr();
    case LcAppKind::kElasticsearch:
      return MakeElasticsearch();
    case LcAppKind::kElgg:
      return MakeElgg();
    case LcAppKind::kSnms:
      return MakeSnms();
  }
  RHYTHM_CHECK(false);
  return MakeEcommerce();
}

const std::vector<LcAppKind>& AllLcAppKinds() {
  static const std::vector<LcAppKind>* kinds = new std::vector<LcAppKind>{
      LcAppKind::kEcommerce, LcAppKind::kRedis,  LcAppKind::kSolr,
      LcAppKind::kElasticsearch, LcAppKind::kElgg, LcAppKind::kSnms,
  };
  return *kinds;
}

const char* LcAppKindName(LcAppKind kind) {
  switch (kind) {
    case LcAppKind::kEcommerce:
      return "E-commerce";
    case LcAppKind::kRedis:
      return "Redis";
    case LcAppKind::kSolr:
      return "Solr";
    case LcAppKind::kElasticsearch:
      return "Elasticsearch";
    case LcAppKind::kElgg:
      return "Elgg";
    case LcAppKind::kSnms:
      return "SNMS";
  }
  return "?";
}

}  // namespace rhythm
