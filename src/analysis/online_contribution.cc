#include "src/analysis/online_contribution.h"

#include <utility>

#include "src/common/logging.h"

namespace rhythm {

OnlineContributionAnalyzer::OnlineContributionAnalyzer(int pods, CallNode call_root,
                                                       size_t max_windows)
    : pods_(pods), call_root_(std::move(call_root)), max_windows_(max_windows) {
  RHYTHM_CHECK(pods > 0);
  pod_means_.resize(static_cast<size_t>(pods));
}

void OnlineContributionAnalyzer::AddWindow(std::span<const double> pod_mean_ms,
                                           double tail_ms) {
  RHYTHM_CHECK(static_cast<int>(pod_mean_ms.size()) == pods_);
  for (int pod = 0; pod < pods_; ++pod) {
    pod_means_[pod].push_back(pod_mean_ms[pod]);
  }
  tails_.push_back(tail_ms);
  if (max_windows_ > 0 && tails_.size() > max_windows_) {
    for (auto& series : pod_means_) {
      series.pop_front();
    }
    tails_.pop_front();
  }
}

std::vector<PodContribution> OnlineContributionAnalyzer::Estimate() const {
  ProfileMatrix matrix;
  matrix.pod_sojourn_ms.resize(static_cast<size_t>(pods_));
  for (int pod = 0; pod < pods_; ++pod) {
    matrix.pod_sojourn_ms[pod].assign(pod_means_[pod].begin(), pod_means_[pod].end());
  }
  matrix.tail_ms.assign(tails_.begin(), tails_.end());
  if (matrix.tail_ms.empty()) {
    return std::vector<PodContribution>(static_cast<size_t>(pods_));
  }
  return AnalyzeContributions(matrix, call_root_);
}

}  // namespace rhythm
