// Contribution analyzer (paper §3.4).
//
// From the solo-run profile — mean sojourn time of each Servpod at m load
// levels plus the overall tail latency at each level — derives each pod's
// contribution to the tail latency:
//
//   P_i   = T̄_i / Σ_k T̄_k                       (Eq. 1: sojourn weight)
//   ρ_i   = Pearson(T_i[load], T_tail[load])     (Eq. 2: correlation)
//   V_i   = (1/T̄_i) sqrt( Σ_j (T_i^j - T̄_i)² / (m(m-1)) )   (Eq. 3)
//   C_i   = α_i · ρ_i · P_i · V_i                (Eq. 4/5)
//
// α_i is the fan-out discount: 1 for pods on the request's critical path;
// otherwise the ratio of the longest path through pod i to the critical
// path (Eq. 5).

#ifndef RHYTHM_SRC_ANALYSIS_CONTRIBUTION_H_
#define RHYTHM_SRC_ANALYSIS_CONTRIBUTION_H_

#include <vector>

#include "src/workload/call_graph.h"

namespace rhythm {

struct ProfileMatrix {
  // pod_sojourn_ms[pod][level]: mean sojourn (ms) of pod at each load level.
  std::vector<std::vector<double>> pod_sojourn_ms;
  // tail_ms[level]: overall tail latency (e.g. 99th) at each load level.
  std::vector<double> tail_ms;
  // load_levels[level]: load fraction of each level (for reporting).
  std::vector<double> load_levels;
};

struct PodContribution {
  double mean_sojourn_ms = 0.0;  // T̄_i across levels.
  double weight_p = 0.0;         // Eq. 1.
  double correlation_rho = 0.0;  // Eq. 2.
  double varcoef_v = 0.0;        // Eq. 3.
  double alpha = 1.0;            // Eq. 5 fan-out scale.
  double contribution = 0.0;     // Eq. 4/5 product.
};

// Analyzes the profile; `call_root` (with one value per pod = mean sojourn)
// determines the critical-path alphas. Negative correlations are clamped to
// zero: a pod anticorrelated with the tail cannot be driving it.
std::vector<PodContribution> AnalyzeContributions(const ProfileMatrix& profile,
                                                  const CallNode& call_root);

// Contributions normalized to sum to 1 (the controller's step sizes are
// built from these).
std::vector<double> NormalizedContributions(const std::vector<PodContribution>& pods);

}  // namespace rhythm

#endif  // RHYTHM_SRC_ANALYSIS_CONTRIBUTION_H_
