// Online contribution analysis (the alternative §3.2 discusses).
//
// Rhythm chooses *offline* profiling because an online exploration "may take
// a very long time until collecting sufficient data". This estimator
// implements that online path for comparison and for long-running
// deployments where the workload drifts: it ingests per-window observations
// (mean sojourn per Servpod + overall tail latency, e.g. once per minute
// from the live tracer) and maintains the Eq. 1-5 contribution estimates
// over the most recent windows.

#ifndef RHYTHM_SRC_ANALYSIS_ONLINE_CONTRIBUTION_H_
#define RHYTHM_SRC_ANALYSIS_ONLINE_CONTRIBUTION_H_

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "src/analysis/contribution.h"

namespace rhythm {

class OnlineContributionAnalyzer {
 public:
  // `max_windows` bounds memory and makes the estimate track drift: the
  // oldest window is evicted once the horizon is full (0 = unbounded).
  OnlineContributionAnalyzer(int pods, CallNode call_root, size_t max_windows = 0);

  // One observation window: the mean sojourn of each pod (ms) and the
  // overall tail latency (ms) measured during it.
  void AddWindow(std::span<const double> pod_mean_ms, double tail_ms);

  // Contribution estimates over the retained windows (Eq. 1-5). Requires at
  // least two windows for a meaningful variance/correlation; with fewer it
  // returns weights-only estimates (rho and V zero).
  std::vector<PodContribution> Estimate() const;

  size_t windows() const { return tails_.size(); }
  int pods() const { return pods_; }

 private:
  int pods_;
  CallNode call_root_;
  size_t max_windows_;
  std::vector<std::deque<double>> pod_means_;  // [pod][window]
  std::deque<double> tails_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_ANALYSIS_ONLINE_CONTRIBUTION_H_
