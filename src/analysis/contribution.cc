#include "src/analysis/contribution.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace rhythm {

std::vector<PodContribution> AnalyzeContributions(const ProfileMatrix& profile,
                                                  const CallNode& call_root) {
  const size_t n = profile.pod_sojourn_ms.size();
  RHYTHM_CHECK(n > 0);
  std::vector<PodContribution> pods(n);

  // T̄_i over load levels, and the total across pods for Eq. 1.
  double total_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pods[i].mean_sojourn_ms = Mean(profile.pod_sojourn_ms[i]);
    total_mean += pods[i].mean_sojourn_ms;
  }

  // Fan-out alphas from the critical path, valuing each pod by its mean
  // sojourn.
  std::vector<double> pod_values(n);
  for (size_t i = 0; i < n; ++i) {
    pod_values[i] = pods[i].mean_sojourn_ms;
  }
  const double critical = CriticalPathValue(call_root, pod_values);

  for (size_t i = 0; i < n; ++i) {
    PodContribution& pod = pods[i];
    pod.weight_p = total_mean > 0.0 ? pod.mean_sojourn_ms / total_mean : 0.0;
    pod.correlation_rho =
        std::max(0.0, PearsonCorrelation(profile.pod_sojourn_ms[i], profile.tail_ms));
    pod.varcoef_v = NormalizedCovEq3(profile.pod_sojourn_ms[i]);
    if (critical > 0.0) {
      const double through = LongestPathThrough(call_root, static_cast<int>(i), pod_values);
      pod.alpha = through > 0.0 ? std::min(1.0, through / critical) : 1.0;
    }
    pod.contribution = pod.alpha * pod.correlation_rho * pod.weight_p * pod.varcoef_v;
  }
  return pods;
}

std::vector<double> NormalizedContributions(const std::vector<PodContribution>& pods) {
  double total = 0.0;
  for (const PodContribution& pod : pods) {
    total += pod.contribution;
  }
  std::vector<double> normalized(pods.size(), 0.0);
  if (total <= 0.0) {
    // Degenerate profile: fall back to uniform weights.
    std::fill(normalized.begin(), normalized.end(), 1.0 / std::max<size_t>(pods.size(), 1));
    return normalized;
  }
  for (size_t i = 0; i < pods.size(); ++i) {
    normalized[i] = pods[i].contribution / total;
  }
  return normalized;
}

}  // namespace rhythm
