// Trial: one RunRequest playing out step by step. Run() (src/runner/runner.h)
// is exactly `Trial t(request, hooks); t.Start(); t.AdvanceTo(t.end_time());
// return t.Finish();` — the partitioned cluster engine uses the same object
// but interleaves AdvanceTo calls across many trials, advancing each group's
// deployment window by window between shard barriers. Because both paths run
// the identical construction/advance/summarize code and Simulator::RunUntil
// clamps the clock to the requested horizon, a trial advanced in any number
// of windows is bit-identical to one advanced in a single call.
//
// Lifetime: the request (and anything it shares — profiles, schedules,
// custom BE specs) must outlive the trial. An optional SimArena lends the
// trial a reusable simulator and tail-window chunk pool (the engine's
// per-slot memory bound); the arena must outlive the trial and may be reused
// by the next trial after this one is destroyed.

#ifndef RHYTHM_SRC_RUNNER_TRIAL_H_
#define RHYTHM_SRC_RUNNER_TRIAL_H_

#include <memory>

#include "src/cluster/metrics.h"
#include "src/runner/run_request.h"
#include "src/runner/runner.h"
#include "src/sim/sim_arena.h"

namespace rhythm {

class FlightRecorder;
class InvariantMonitor;
class SpikedLoadProfile;

class Trial {
 public:
  // Validates the request (std::invalid_argument on a malformed one) and
  // builds the deployment, monitor and recorder. Nothing runs yet.
  explicit Trial(const RunRequest& request, TrialHooks hooks = {},
                 SimArena* arena = nullptr);
  ~Trial();

  Trial(const Trial&) = delete;
  Trial& operator=(const Trial&) = delete;

  // Starts the arrival process and periodic tasks; fires the after_start
  // hook. Must be called once, before AdvanceTo/Finish.
  void Start();

  // Advances the deployment's local clock to `time_s`, clamped to
  // [now, end_time()]. Crossing the warmup boundary snapshots the
  // measurement baselines (t0, kill/violation counters) at exactly
  // warmup_s, regardless of how the caller's windows align with it.
  void AdvanceTo(double time_s);

  // The trial's local end of time: warmup_s + measure_s.
  double end_time() const { return end_time_; }
  double now() const;
  bool started() const { return started_; }

  // Advances to end_time() if not there yet, finalizes the invariant
  // monitor (which may throw in fail-fast mode), summarizes the
  // measurement window, writes any obs exports and fires the remaining
  // hooks. Must be called at most once.
  RunSummary Finish();

  // Summarizes [warmup boundary, now) without advancing, finalizing the
  // monitor or exporting — the harvest path for a trial killed mid-run (the
  // cluster engine uses it when machine loss disrupts a group). Collected
  // invariant violations are included; a trial killed before its warmup
  // boundary returns a default summary (it never measured). The trial stays
  // usable afterwards, though the engine destroys it right away.
  RunSummary Harvest() const;

  bool measuring() const { return measuring_; }

  const RunRequest& request() const { return request_; }
  Deployment& deployment() { return *deployment_; }
  const Deployment& deployment() const { return *deployment_; }

 private:
  const RunRequest& request_;
  TrialHooks hooks_;
  double end_time_ = 0.0;

  std::unique_ptr<InvariantMonitor> monitor_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<DeploymentObserverChain> observer_chain_;
  std::unique_ptr<ConstantLoad> constant_;
  std::unique_ptr<SpikedLoadProfile> spiked_;
  const LoadProfile* profile_ = nullptr;
  std::unique_ptr<Deployment> deployment_;

  bool started_ = false;
  bool finished_ = false;
  // Measurement-window baselines, captured when the clock first reaches
  // warmup_s.
  bool measuring_ = false;
  double t0_ = 0.0;
  uint64_t kills_before_ = 0;
  uint64_t violations_before_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RUNNER_TRIAL_H_
