#include "src/runner/run_request.h"

#include "src/common/rng.h"

namespace rhythm {

uint64_t DeriveTrialSeed(uint64_t base_seed, uint64_t index) {
  // Element `index` of the SplitMix64 stream seeded at base_seed; computed
  // directly from the stream's fixed increment so derivation is O(1).
  SplitMix64 sm(base_seed + index * 0x9e3779b97f4a7c15ULL);
  return sm.Next();
}

void RunPlan::AddTrials(const RunRequest& prototype, int count, uint64_t base_seed) {
  for (int i = 0; i < count; ++i) {
    RunRequest request = prototype;
    request.seed = DeriveTrialSeed(base_seed, static_cast<uint64_t>(i));
    requests.push_back(std::move(request));
  }
}

}  // namespace rhythm
