// Declarative experiment descriptions: RunRequest captures everything one
// co-location trial needs (app x BE x controller x thresholds x seed x load
// or profile x fault schedule x windows) as a self-contained value, and a
// RunPlan is an ordered batch of them. Because a request owns (or shares)
// its load profile and fault schedule, a plan can be built up front and
// executed later on any thread — the seam the parallel runner, grid benches
// and future sharding/grid-search layers all build on.

#ifndef RHYTHM_SRC_RUNNER_RUN_REQUEST_H_
#define RHYTHM_SRC_RUNNER_RUN_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/deployment.h"
#include "src/control/thresholds.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/recording.h"
#include "src/verify/invariant_types.h"
#include "src/workload/app_catalog.h"
#include "src/workload/load_profile.h"

namespace rhythm {

// One co-location trial. Plain data: copying a request copies the
// description, not any running state, and shared profiles/schedules are
// immutable so concurrent trials may alias them freely.
struct RunRequest {
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kCpuStress;
  // Optional non-catalog BE spec, shared by the request like profiles and
  // schedules are. When set, `be` is ignored and every pod's runtime runs
  // this spec — how adversarial-search candidates reach the simulator.
  std::shared_ptr<const BeJobSpec> custom_be;
  ControllerKind controller = ControllerKind::kRhythm;
  // Rhythm's per-pod thresholds; taken from CachedAppThresholds when empty.
  std::vector<ServpodThresholds> thresholds;
  // Opt-in controller fail-safes (src/control); default off keeps runs
  // bit-identical to the unhardened controller.
  ControlHardening hardening;
  uint64_t seed = 11;
  double warmup_s = 20.0;
  double measure_s = 120.0;
  // Offered load: a constant fraction of MaxLoad, unless `profile` is set,
  // in which case the profile drives the run and `load` is ignored.
  double load = 0.45;
  std::shared_ptr<const LoadProfile> profile;
  // Optional fault schedule, owned by the request. The runner applies
  // kLoadSpike events automatically by wrapping the load profile in a
  // SpikedLoadProfile — callers no longer wrap by hand.
  std::shared_ptr<const FaultSchedule> faults;
  // Invariant monitoring (src/verify). kOff (the default) attaches nothing;
  // kCollect records violations into RunSummary::invariant_violations;
  // kFailFast makes Run() throw InvariantViolationError at the first breach.
  // The monitor is read-only and draws no randomness, so enabling it leaves
  // the summary metrics bit-identical.
  InvariantOptions verify;
  // Observability (src/obs). Disabled by default; when enabled, Run()
  // attaches a FlightRecorder (alongside any invariant monitor), hands the
  // finished Recording to TrialHooks::on_recording and writes whatever
  // export paths the options name. The recorder is read-only and draws no
  // randomness, so an observed run stays bit-identical to an unobserved one.
  ObsOptions obs;
  // Free-form tag carried through for the caller's bookkeeping (e.g. which
  // figure cell this trial fills); never interpreted by the runner.
  std::string label;
};

// Seed for trial `index` of a batch keyed by `base_seed`: element `index` of
// the SplitMix64 sequence started at `base_seed`. Stable across runner
// versions and thread counts — replications are reproducible one-by-one.
uint64_t DeriveTrialSeed(uint64_t base_seed, uint64_t index);

// An ordered batch of trials. Execution order is unspecified (the parallel
// runner interleaves trials), but results always come back in plan order.
struct RunPlan {
  std::vector<RunRequest> requests;

  RunRequest& Add(RunRequest request) {
    requests.push_back(std::move(request));
    return requests.back();
  }

  // Adds `count` replications of `prototype` whose seeds are derived from
  // `base_seed` via DeriveTrialSeed(base_seed, 0..count-1).
  void AddTrials(const RunRequest& prototype, int count, uint64_t base_seed);

  size_t size() const { return requests.size(); }
  bool empty() const { return requests.empty(); }
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RUNNER_RUN_REQUEST_H_
