// Experiment execution: Run() plays one RunRequest to completion and a
// ParallelRunner fans a whole RunPlan out across a std::thread pool.
//
// Guarantees:
//   * Determinism — each trial is a pure function of its request, so
//     RunAll() returns bit-identical summaries regardless of the worker
//     count or how trials interleave. Results come back in plan order.
//   * Shared state — trials only share the process-wide threshold cache
//     (CachedAppThresholds, which is thread-safe and derives at most once
//     per app) and immutable profiles/schedules aliased by the requests.
//   * Errors — a malformed request throws std::invalid_argument; RunAll()
//     stops scheduling new trials on the first failure and rethrows the
//     failing trial with the lowest plan index (first-error propagation).
//
// Worker count: RunnerOptions::jobs, else RHYTHM_JOBS, else
// hardware_concurrency (see src/common/env.h).

#ifndef RHYTHM_SRC_RUNNER_RUNNER_H_
#define RHYTHM_SRC_RUNNER_RUNNER_H_

#include <vector>

#include "src/cluster/metrics.h"
#include "src/runner/run_request.h"

namespace rhythm {

// Runs one co-location trial: constant load or profile, optional faults
// (kLoadSpike events are applied by wrapping the profile automatically),
// thresholds from the request or the per-app cache. Thread-safe.
RunSummary Run(const RunRequest& request);

struct RunnerOptions {
  // Worker threads; <= 0 means RHYTHM_JOBS, else hardware_concurrency.
  int jobs = 0;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(const RunnerOptions& options = {});

  // Executes every trial of the plan and returns summaries in plan order.
  // Never spawns more workers than the plan has trials.
  std::vector<RunSummary> RunAll(const RunPlan& plan) const;

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RUNNER_RUNNER_H_
