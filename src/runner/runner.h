// Experiment execution: Run() plays one RunRequest to completion and a
// ParallelRunner fans a whole RunPlan out across a std::thread pool.
//
// Guarantees:
//   * Determinism — each trial is a pure function of its request, so
//     RunAll() returns bit-identical summaries regardless of the worker
//     count or how trials interleave. Results come back in plan order.
//   * Shared state — trials only share the process-wide threshold cache
//     (CachedAppThresholds, which is thread-safe and derives at most once
//     per app) and immutable profiles/schedules aliased by the requests.
//   * Errors — a malformed request throws std::invalid_argument; RunAll()
//     stops scheduling new trials on the first failure and rethrows the
//     failing trial with the lowest plan index (first-error propagation).
//
// Worker count: RunnerOptions::jobs, else RHYTHM_JOBS, else
// hardware_concurrency (see src/common/env.h).

#ifndef RHYTHM_SRC_RUNNER_RUNNER_H_
#define RHYTHM_SRC_RUNNER_RUNNER_H_

#include <functional>
#include <vector>

#include "src/cluster/metrics.h"
#include "src/runner/run_request.h"

namespace rhythm {

// Runs one co-location trial: constant load or profile, optional faults
// (kLoadSpike events are applied by wrapping the profile automatically),
// thresholds from the request or the per-app cache. When the request enables
// invariant monitoring (RunRequest::verify), the monitor rides along and its
// findings land in the summary. Thread-safe.
RunSummary Run(const RunRequest& request);

// Observation hooks into one trial — the seam diagnostics build on instead
// of re-assembling the Deployment setup by hand. `after_start` fires right
// after Deployment::Start (it may mutate, e.g. LaunchBeAtPod for
// uncontrolled co-location runs); `inspect` fires after the measurement
// window on the still-live deployment, alongside the summary about to be
// returned. Either may be empty.
struct TrialHooks {
  std::function<void(Deployment&)> after_start;
  std::function<void(const Deployment&, const RunSummary&)> inspect;
  // Fires after `inspect` when the request enabled observability
  // (RunRequest::obs.enabled), with the trial's finished Recording — events,
  // metric timelines and run metadata. Exports named by the request's
  // ObsOptions are written before this hook runs.
  std::function<void(const Recording&)> on_recording;
};

RunSummary Run(const RunRequest& request, const TrialHooks& hooks);

struct RunnerOptions {
  // Worker threads; <= 0 means RHYTHM_JOBS, else hardware_concurrency.
  int jobs = 0;
  // Machine shards for the partitioned cluster engine (RunClusterPlan):
  // <= 0 means RHYTHM_SHARDS, then the jobs resolution above. Shard count
  // is a performance knob only — cluster results are bit-identical at any
  // value. Ignored by ParallelRunner::RunAll, which shards across trials.
  int shards = 0;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(const RunnerOptions& options = {});

  // Executes every trial of the plan and returns summaries in plan order.
  // Never spawns more workers than the plan has trials.
  std::vector<RunSummary> RunAll(const RunPlan& plan) const;

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_RUNNER_RUNNER_H_
