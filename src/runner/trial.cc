#include "src/runner/trial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/cluster/app_thresholds.h"
#include "src/fault/spiked_load_profile.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/verify/invariant_monitor.h"

namespace rhythm {

namespace {

void Validate(const RunRequest& request) {
  if (request.warmup_s < 0.0 || !std::isfinite(request.warmup_s)) {
    throw std::invalid_argument("RunRequest: warmup_s must be finite and >= 0");
  }
  if (request.measure_s <= 0.0 || !std::isfinite(request.measure_s)) {
    throw std::invalid_argument("RunRequest: measure_s must be finite and > 0");
  }
  if (request.profile == nullptr && (request.load < 0.0 || !std::isfinite(request.load))) {
    throw std::invalid_argument("RunRequest: load must be finite and >= 0");
  }
  if (request.controller == ControllerKind::kRhythm && !request.thresholds.empty()) {
    const int pods = MakeApp(request.app).pod_count();
    if (static_cast<int>(request.thresholds.size()) != pods) {
      throw std::invalid_argument("RunRequest: " + std::string(LcAppKindName(request.app)) +
                                  " has " + std::to_string(pods) + " pods but " +
                                  std::to_string(request.thresholds.size()) +
                                  " thresholds were given");
    }
  }
  // Reject malformed fault events here, with the request's context, rather
  // than letting the FaultInjector throw from deep inside deployment setup.
  if (request.faults != nullptr) {
    const int pods = MakeApp(request.app).pod_count();
    for (const FaultEvent& event : request.faults->events) {
      if (IsClusterScopeFault(event.kind)) {
        throw std::invalid_argument(std::string("RunRequest: ") + FaultKindName(event.kind) +
                                    " is cluster-scope; inject it via a ClusterRunRequest");
      }
      const std::string error = FaultEventError(event, pods);
      if (!error.empty()) {
        throw std::invalid_argument("RunRequest: " + error);
      }
    }
  }
}

}  // namespace

Trial::Trial(const RunRequest& request, TrialHooks hooks, SimArena* arena)
    : request_(request), hooks_(std::move(hooks)) {
  Validate(request_);
  end_time_ = request_.warmup_s + request_.measure_s;

  DeploymentConfig config;
  config.app_kind = request_.app;
  config.be_kind = request_.be;
  config.custom_be = request_.custom_be.get();
  config.controller = request_.controller;
  config.hardening = request_.hardening;
  config.seed = request_.seed;
  config.faults = request_.faults.get();
  config.arena = arena;
  if (request_.controller == ControllerKind::kRhythm) {
    config.thresholds = request_.thresholds.empty()
                            ? CachedAppThresholds(request_.app).pods
                            : request_.thresholds;
  }

  // Invariant monitor and flight recorder, attached as read-only observers
  // when requested; both at once ride through an observer chain (monitor
  // first, preserving its standalone hook order).
  if (request_.verify.mode != InvariantMode::kOff) {
    monitor_ = std::make_unique<InvariantMonitor>(request_.verify);
    config.observer = monitor_.get();
  }
  if (request_.obs.enabled) {
    recorder_ = std::make_unique<FlightRecorder>(request_.obs);
    config.obs_sink = recorder_.get();
    if (monitor_ != nullptr) {
      observer_chain_ = std::make_unique<DeploymentObserverChain>();
      observer_chain_->Add(monitor_.get());
      observer_chain_->Add(recorder_.get());
      config.observer = observer_chain_.get();
    } else {
      config.observer = recorder_.get();
    }
  }

  // Resolve the load profile, layering flash-crowd spikes from the fault
  // schedule on top — previously every caller had to remember this wrap.
  if (request_.profile != nullptr) {
    profile_ = request_.profile.get();
  } else {
    constant_ = std::make_unique<ConstantLoad>(request_.load);
    profile_ = constant_.get();
  }
  if (request_.faults != nullptr && request_.faults->HasKind(FaultKind::kLoadSpike)) {
    spiked_ = std::make_unique<SpikedLoadProfile>(profile_, *request_.faults);
    profile_ = spiked_.get();
  }

  deployment_ = std::make_unique<Deployment>(config);
}

Trial::~Trial() = default;

double Trial::now() const { return deployment_->sim().Now(); }

void Trial::Start() {
  deployment_->Start(profile_);
  if (recorder_ != nullptr) {
    recorder_->ScheduleSnapshots(*deployment_);
  }
  if (hooks_.after_start) {
    hooks_.after_start(*deployment_);
  }
  started_ = true;
  if (request_.warmup_s == 0.0) {
    // A zero warmup measures from the very beginning; events scheduled at
    // t = 0 still belong to the measurement window, exactly as
    // Run()'s RunFor(0.0) boundary behaved.
    AdvanceTo(0.0);
  }
}

void Trial::AdvanceTo(double time_s) {
  const double target = std::min(time_s, end_time_);
  Simulator& sim = deployment_->sim();
  if (!measuring_) {
    if (target < request_.warmup_s) {
      sim.RunUntil(target);
      return;
    }
    // Land exactly on the warmup boundary first, so the baselines are
    // snapshot at the same instant Run()'s RunFor(warmup_s) produced.
    sim.RunUntil(request_.warmup_s);
    t0_ = sim.Now();
    kills_before_ = deployment_->TotalBeKills();
    violations_before_ = deployment_->TotalSlaViolations();
    measuring_ = true;
  }
  if (target > sim.Now()) {
    sim.RunUntil(target);
  }
}

RunSummary Trial::Harvest() const {
  RunSummary summary;
  if (measuring_) {
    const double t1 = deployment_->sim().Now();
    if (t1 > t0_) {
      summary = Summarize(*deployment_, t0_, t1, kills_before_, violations_before_);
    }
  }
  if (monitor_ != nullptr) {
    summary.invariant_violations = monitor_->violations();
    summary.invariant_violations_total = monitor_->total_violations();
  }
  return summary;
}

RunSummary Trial::Finish() {
  AdvanceTo(end_time_);
  finished_ = true;
  const double t1 = deployment_->sim().Now();
  if (monitor_ != nullptr) {
    monitor_->Finalize(*deployment_);  // throws in fail-fast mode on a breach.
  }
  RunSummary summary =
      Summarize(*deployment_, t0_, t1, kills_before_, violations_before_);
  if (monitor_ != nullptr) {
    summary.invariant_violations = monitor_->violations();
    summary.invariant_violations_total = monitor_->total_violations();
  }
  if (hooks_.inspect) {
    hooks_.inspect(*deployment_, summary);
  }
  if (recorder_ != nullptr) {
    RecordingMeta meta;
    meta.app = LcAppKindName(request_.app);
    meta.be = request_.custom_be != nullptr ? request_.custom_be->name
                                            : BeJobKindName(request_.be);
    meta.controller = ControllerKindName(request_.controller);
    meta.seed = request_.seed;
    meta.sla_ms = deployment_->sla_ms();
    meta.controller_period_s = MachineAgent::kPeriodSeconds;
    for (int pod = 0; pod < deployment_->pod_count(); ++pod) {
      meta.pods.push_back(deployment_->app().components[pod].name);
    }
    recorder_->set_meta(meta);
    const Recording recording = recorder_->TakeRecording();
    if (!request_.obs.export_jsonl.empty() &&
        !WriteJsonl(recording, request_.obs.export_jsonl)) {
      throw std::runtime_error("Run: cannot write recording to " +
                               request_.obs.export_jsonl);
    }
    if (!request_.obs.export_perfetto.empty() &&
        !WritePerfettoTrace(recording, request_.obs.export_perfetto)) {
      throw std::runtime_error("Run: cannot write trace to " +
                               request_.obs.export_perfetto);
    }
    if (!request_.obs.export_metrics_csv.empty() &&
        !WriteMetricsCsv(recording, request_.obs.export_metrics_csv)) {
      throw std::runtime_error("Run: cannot write metrics to " +
                               request_.obs.export_metrics_csv);
    }
    if (hooks_.on_recording) {
      hooks_.on_recording(recording);
    }
  }
  return summary;
}

}  // namespace rhythm
