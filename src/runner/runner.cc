#include "src/runner/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <vector>

#include "src/common/env.h"
#include "src/common/shard_pool.h"
#include "src/runner/trial.h"

namespace rhythm {

RunSummary Run(const RunRequest& request) { return Run(request, TrialHooks{}); }

RunSummary Run(const RunRequest& request, const TrialHooks& hooks) {
  // The whole trial lifecycle lives in Trial (src/runner/trial.h) so the
  // partitioned cluster engine can drive the identical code path window by
  // window; this is the single-call form.
  Trial trial(request, hooks);
  trial.Start();
  trial.AdvanceTo(trial.end_time());
  return trial.Finish();
}

ParallelRunner::ParallelRunner(const RunnerOptions& options)
    : jobs_(options.jobs > 0 ? options.jobs : DefaultJobCount()) {}

namespace {

// Trials a worker claims per atomic increment. Plans of a few long trials
// get chunk 1 (maximum balance, identical to pre-chunking claiming);
// thousand-entry plans of tiny group trials get bigger chunks so workers
// are not serialized on the shared counter — with ~8 chunks per worker the
// tail imbalance stays under ~1/8 of a worker's share.
size_t ChunkSizeFor(size_t trials, int workers) {
  const size_t chunk = trials / (static_cast<size_t>(workers) * 8);
  return std::clamp<size_t>(chunk, 1, 32);
}

}  // namespace

std::vector<RunSummary> ParallelRunner::RunAll(const RunPlan& plan) const {
  const size_t trials = plan.size();
  std::vector<RunSummary> results(trials);
  if (trials == 0) {
    return results;
  }

  const int workers = static_cast<int>(std::min<size_t>(jobs_, trials));
  if (workers <= 1) {
    for (size_t i = 0; i < trials; ++i) {
      results[i] = Run(plan.requests[i]);
    }
    return results;
  }

  const size_t chunk = ChunkSizeFor(trials, workers);
  std::atomic<size_t> next{0};
  // Lowest plan index that failed so far; trials past it are not started
  // (those already in flight finish), and its exception is rethrown.
  std::atomic<size_t> first_error{trials};
  std::vector<std::exception_ptr> error_by_trial(trials);

  ShardPool pool(workers);
  pool.RunPhase([&](int) {
    for (;;) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= trials) {
        return;
      }
      const size_t end = std::min(begin + chunk, trials);
      for (size_t i = begin; i < end; ++i) {
        if (i >= first_error.load(std::memory_order_acquire)) {
          return;
        }
        try {
          results[i] = Run(plan.requests[i]);
        } catch (...) {
          error_by_trial[i] = std::current_exception();
          size_t expected = first_error.load(std::memory_order_acquire);
          while (i < expected &&
                 !first_error.compare_exchange_weak(expected, i,
                                                    std::memory_order_acq_rel)) {
          }
        }
      }
    }
  });

  const size_t failed = first_error.load(std::memory_order_acquire);
  if (failed < trials) {
    std::rethrow_exception(error_by_trial[failed]);
  }
  return results;
}

}  // namespace rhythm
