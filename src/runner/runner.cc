#include "src/runner/runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/cluster/app_thresholds.h"
#include "src/common/env.h"
#include "src/fault/spiked_load_profile.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/verify/invariant_monitor.h"

namespace rhythm {

namespace {

void Validate(const RunRequest& request) {
  if (request.warmup_s < 0.0 || !std::isfinite(request.warmup_s)) {
    throw std::invalid_argument("RunRequest: warmup_s must be finite and >= 0");
  }
  if (request.measure_s <= 0.0 || !std::isfinite(request.measure_s)) {
    throw std::invalid_argument("RunRequest: measure_s must be finite and > 0");
  }
  if (request.profile == nullptr && (request.load < 0.0 || !std::isfinite(request.load))) {
    throw std::invalid_argument("RunRequest: load must be finite and >= 0");
  }
  if (request.controller == ControllerKind::kRhythm && !request.thresholds.empty()) {
    const int pods = MakeApp(request.app).pod_count();
    if (static_cast<int>(request.thresholds.size()) != pods) {
      throw std::invalid_argument("RunRequest: " + std::string(LcAppKindName(request.app)) +
                                  " has " + std::to_string(pods) + " pods but " +
                                  std::to_string(request.thresholds.size()) +
                                  " thresholds were given");
    }
  }
  // Reject malformed fault events here, with the request's context, rather
  // than letting the FaultInjector throw from deep inside deployment setup.
  if (request.faults != nullptr) {
    const int pods = MakeApp(request.app).pod_count();
    for (const FaultEvent& event : request.faults->events) {
      const std::string error = FaultEventError(event, pods);
      if (!error.empty()) {
        throw std::invalid_argument("RunRequest: " + error);
      }
    }
  }
}

}  // namespace

RunSummary Run(const RunRequest& request) { return Run(request, TrialHooks{}); }

RunSummary Run(const RunRequest& request, const TrialHooks& hooks) {
  Validate(request);

  DeploymentConfig config;
  config.app_kind = request.app;
  config.be_kind = request.be;
  config.custom_be = request.custom_be.get();
  config.controller = request.controller;
  config.hardening = request.hardening;
  config.seed = request.seed;
  config.faults = request.faults.get();
  if (request.controller == ControllerKind::kRhythm) {
    config.thresholds = request.thresholds.empty() ? CachedAppThresholds(request.app).pods
                                                   : request.thresholds;
  }

  // Invariant monitor and flight recorder, attached as read-only observers
  // when requested; both at once ride through an observer chain (monitor
  // first, preserving its standalone hook order).
  std::unique_ptr<InvariantMonitor> monitor;
  if (request.verify.mode != InvariantMode::kOff) {
    monitor = std::make_unique<InvariantMonitor>(request.verify);
    config.observer = monitor.get();
  }
  std::unique_ptr<FlightRecorder> recorder;
  DeploymentObserverChain observer_chain;
  if (request.obs.enabled) {
    recorder = std::make_unique<FlightRecorder>(request.obs);
    config.obs_sink = recorder.get();
    if (monitor != nullptr) {
      observer_chain.Add(monitor.get());
      observer_chain.Add(recorder.get());
      config.observer = &observer_chain;
    } else {
      config.observer = recorder.get();
    }
  }

  // Resolve the load profile, layering flash-crowd spikes from the fault
  // schedule on top — previously every caller had to remember this wrap.
  const ConstantLoad constant(request.load);
  const LoadProfile* profile =
      request.profile != nullptr ? request.profile.get() : &constant;
  std::unique_ptr<SpikedLoadProfile> spiked;
  if (request.faults != nullptr && request.faults->HasKind(FaultKind::kLoadSpike)) {
    spiked = std::make_unique<SpikedLoadProfile>(profile, *request.faults);
    profile = spiked.get();
  }

  Deployment deployment(config);
  deployment.Start(profile);
  if (recorder != nullptr) {
    recorder->ScheduleSnapshots(deployment);
  }
  if (hooks.after_start) {
    hooks.after_start(deployment);
  }
  deployment.RunFor(request.warmup_s);
  const double t0 = deployment.sim().Now();
  const uint64_t kills_before = deployment.TotalBeKills();
  const uint64_t violations_before = deployment.TotalSlaViolations();
  deployment.RunFor(request.measure_s);
  const double t1 = deployment.sim().Now();
  if (monitor != nullptr) {
    monitor->Finalize(deployment);  // throws in fail-fast mode on a breach.
  }
  RunSummary summary = Summarize(deployment, t0, t1, kills_before, violations_before);
  if (monitor != nullptr) {
    summary.invariant_violations = monitor->violations();
    summary.invariant_violations_total = monitor->total_violations();
  }
  if (hooks.inspect) {
    hooks.inspect(deployment, summary);
  }
  if (recorder != nullptr) {
    RecordingMeta meta;
    meta.app = LcAppKindName(request.app);
    meta.be = request.custom_be != nullptr ? request.custom_be->name
                                           : BeJobKindName(request.be);
    meta.controller = ControllerKindName(request.controller);
    meta.seed = request.seed;
    meta.sla_ms = deployment.sla_ms();
    meta.controller_period_s = MachineAgent::kPeriodSeconds;
    for (int pod = 0; pod < deployment.pod_count(); ++pod) {
      meta.pods.push_back(deployment.app().components[pod].name);
    }
    recorder->set_meta(meta);
    const Recording recording = recorder->TakeRecording();
    if (!request.obs.export_jsonl.empty() &&
        !WriteJsonl(recording, request.obs.export_jsonl)) {
      throw std::runtime_error("Run: cannot write recording to " + request.obs.export_jsonl);
    }
    if (!request.obs.export_perfetto.empty() &&
        !WritePerfettoTrace(recording, request.obs.export_perfetto)) {
      throw std::runtime_error("Run: cannot write trace to " + request.obs.export_perfetto);
    }
    if (!request.obs.export_metrics_csv.empty() &&
        !WriteMetricsCsv(recording, request.obs.export_metrics_csv)) {
      throw std::runtime_error("Run: cannot write metrics to " +
                               request.obs.export_metrics_csv);
    }
    if (hooks.on_recording) {
      hooks.on_recording(recording);
    }
  }
  return summary;
}

ParallelRunner::ParallelRunner(const RunnerOptions& options)
    : jobs_(options.jobs > 0 ? options.jobs : DefaultJobCount()) {}

std::vector<RunSummary> ParallelRunner::RunAll(const RunPlan& plan) const {
  const size_t trials = plan.size();
  std::vector<RunSummary> results(trials);
  if (trials == 0) {
    return results;
  }

  const int workers = static_cast<int>(std::min<size_t>(jobs_, trials));
  if (workers <= 1) {
    for (size_t i = 0; i < trials; ++i) {
      results[i] = Run(plan.requests[i]);
    }
    return results;
  }

  std::atomic<size_t> next{0};
  // Lowest plan index that failed so far; trials past it are not started
  // (those already in flight finish), and its exception is rethrown.
  std::atomic<size_t> first_error{trials};
  std::vector<std::exception_ptr> error_by_trial(trials);

  const auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials || i >= first_error.load(std::memory_order_acquire)) {
        return;
      }
      try {
        results[i] = Run(plan.requests[i]);
      } catch (...) {
        error_by_trial[i] = std::current_exception();
        size_t expected = first_error.load(std::memory_order_acquire);
        while (i < expected &&
               !first_error.compare_exchange_weak(expected, i, std::memory_order_acq_rel)) {
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }

  const size_t failed = first_error.load(std::memory_order_acquire);
  if (failed < trials) {
    std::rethrow_exception(error_by_trial[failed]);
  }
  return results;
}

}  // namespace rhythm
