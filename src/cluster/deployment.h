// Deployment: one LC service spread over its Servpods' machines, plus BE
// runtimes and (optionally) a controller agent per machine — the paper's
// testbed in simulation.
//
// Wiring:
//   * each Servpod gets its own Machine;
//   * the LC service's per-pod inflation is computed by the interference
//     model from that machine's state and its co-located BE runtime;
//   * an accounting task (1 s) publishes LC/BE activity into the machines,
//     advances BE progress and samples metrics;
//   * a controller task (2 s) runs each machine's agent (Rhythm thresholds
//     per pod, Heracles uniform thresholds, or none);
//   * an optional fault schedule (src/fault) injects machine crashes with
//     pod failover, telemetry dropouts, lost actuations and BE-instance
//     deaths; the deployment tracks recovery time to positive slack.
//
// Telemetry path: with a fault schedule attached, agents consume the tail
// sample the accounting task last *published* (with its age), so telemetry
// faults are visible to the stale-signal detector. Without faults the agents
// read the live signal, which keeps healthy runs bit-identical to the
// pre-fault-layer behaviour.

#ifndef RHYTHM_SRC_CLUSTER_DEPLOYMENT_H_
#define RHYTHM_SRC_CLUSTER_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "src/baseline/heracles.h"
#include "src/bemodel/be_runtime.h"
#include "src/common/time_series.h"
#include "src/control/machine_agent.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/interference/interference_model.h"
#include "src/obs/obs_event.h"
#include "src/resources/machine.h"
#include "src/scheduler/be_backlog.h"
#include "src/scheduler/be_scheduler.h"
#include "src/sim/simulator.h"
#include "src/verify/deployment_observer.h"
#include "src/workload/app_catalog.h"
#include "src/workload/lc_service.h"
#include "src/workload/load_profile.h"

namespace rhythm {

struct SimArena;

enum class ControllerKind { kNone, kRhythm, kHeracles };

const char* ControllerKindName(ControllerKind kind);

struct DeploymentConfig {
  LcAppKind app_kind = LcAppKind::kEcommerce;
  BeJobKind be_kind = BeJobKind::kCpuStress;
  // Optional non-catalog BE spec (must outlive the deployment). When set, BE
  // runtimes run this spec and `be_kind` is ignored — the adversarial
  // search's decoded genomes enter the cluster here.
  const BeJobSpec* custom_be = nullptr;
  ControllerKind controller = ControllerKind::kNone;
  // Per-pod thresholds; required when controller == kRhythm. Heracles uses
  // its uniform thresholds regardless.
  std::vector<ServpodThresholds> thresholds;
  // Opt-in controller fail-safes (default off — bit-identical baseline);
  // applied to every machine agent.
  ControlHardening hardening;
  uint64_t seed = 1;
  bool enable_be = true;               // false: solo LC run.
  bool record_sojourns = false;        // per-request sojourn stats.
  EventSink* sink = nullptr;           // kernel-event capture (profiling).
  double noise_events_per_request = 0.0;
  double accounting_period_s = 1.0;
  double tail_window_s = 6.0;  // short window: fresh signal for control.
  MachineSpec machine_spec;            // same hardware on every machine.
  // Cluster scheduler integration (paper §4): when positive, BE jobs arrive
  // into a shared waiting queue at this rate and are dispatched only to
  // machines whose controllers accept BEs; machines may not self-launch.
  // 0 keeps the §5 evaluation setup (jobs always locally available).
  double be_arrival_rate_per_s = 0.0;
  // Optional fault schedule (must outlive the deployment). Load-spike events
  // are not applied here — wrap the profile in a SpikedLoadProfile.
  const FaultSchedule* faults = nullptr;
  // Optional read-only observer (must outlive the deployment), notified at
  // tick boundaries and crash edges — the invariant monitor's hook. An
  // attached observer must never perturb the run (no mutation, no RNG).
  DeploymentObserver* observer = nullptr;
  // Optional observability sink (must outlive the deployment). When set, the
  // deployment distributes it to every instrumented layer — agents,
  // scheduler, fault injector — and emits its own cluster-scope events
  // (accounting SLO violations, crash BE losses). Like the observer, a sink
  // must never perturb the run.
  ObsSink* obs_sink = nullptr;
  // Optional reusable simulation state (src/sim/sim_arena.h, must outlive
  // the deployment). When set, the deployment runs on the arena's simulator
  // (Reset() at construction — bit-identical to a fresh one, but the event
  // queue keeps its capacity) and the LC tail window draws chunk buffers
  // from the arena's pool. The partitioned cluster engine lends one arena
  // per group slot so back-to-back epochs reuse memory instead of
  // reallocating it.
  SimArena* arena = nullptr;
};

// Per-pod metric series sampled by the accounting task.
struct PodSeries {
  TimeSeries cpu_util;
  TimeSeries membw_util;
  TimeSeries be_instances;
  TimeSeries be_cores;
  TimeSeries be_ways;
  TimeSeries be_progress;     // cumulative completed work, in jobs.
  TimeSeries be_throughput;   // windowed normalized throughput estimate.
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config);

  // Starts the LC arrival process, accounting and controller tasks.
  // The profile must outlive the deployment.
  void Start(const LoadProfile* profile);

  // Advances the simulation `seconds` further.
  void RunFor(double seconds);

  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  LcService& service() { return *service_; }
  const AppSpec& app() const { return app_; }
  int pod_count() const { return app_.pod_count(); }

  Machine& machine(int pod) { return *machines_[pod]; }
  const Machine& machine(int pod) const { return *machines_[pod]; }
  BeRuntime* be(int pod) { return be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get(); }
  const BeRuntime* be(int pod) const {
    return be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get();
  }
  MachineAgent* agent(int pod) { return agents_.empty() ? nullptr : agents_[pod].get(); }
  const MachineAgent* agent(int pod) const {
    return agents_.empty() ? nullptr : agents_[pod].get();
  }

  const PodSeries& pod_series(int pod) const { return pod_series_[pod]; }
  const TimeSeries& load_series() const { return load_series_; }
  const TimeSeries& tail_series() const { return tail_series_; }
  const TimeSeries& slack_series() const { return slack_series_; }

  // Uncontrolled co-location (the §2 characterization runs): launches
  // `instances` BE instances at `pod` and grows them until they reach their
  // full resource demand or the machine runs out. Requires enable_be and is
  // meant for controller-free deployments.
  void LaunchBeAtPod(int pod, int instances);

  // Cluster scheduler state (null/empty when be_arrival_rate_per_s == 0).
  BeBacklog& backlog() { return backlog_; }
  const BeScheduler* scheduler() const { return scheduler_.get(); }

  // Sum of BE kills / SLA-violation ticks across agents so far.
  uint64_t TotalBeKills() const;
  uint64_t TotalSlaViolations() const;

  // Hardening counters summed across agents.
  uint64_t TotalStaleTicks() const;
  uint64_t TotalFailedActuations() const;
  uint64_t TotalBackoffHolds() const;
  uint64_t TotalJitterHolds() const;
  uint64_t TotalOscillationTrips() const;

  // Fault state (null without a schedule).
  const FaultInjector* fault() const { return fault_.get(); }
  // The schedule this deployment was configured with (null without faults);
  // observers use it to locate the last fault window for liveness checks.
  const FaultSchedule* fault_schedule() const { return config_.faults; }
  bool PodOnline(int pod) const { return fault_ == nullptr || !fault_->PodOffline(pod); }
  uint64_t crash_count() const { return crash_count_; }
  // BE instances lost to machine crashes / instance failures (not controller
  // kills).
  uint64_t crash_be_losses() const { return crash_be_losses_; }
  uint64_t be_instance_failures() const { return be_instance_failures_; }
  // BE instances withdrawn by kBeAdmissionHold windows (cluster-side
  // preemption, not controller kills and not crash losses).
  uint64_t be_withdrawals() const { return be_withdrawals_; }
  // Accounting ticks observed with negative slack — a violation measure that
  // exists even without controller agents (kNone baselines).
  uint64_t slack_violation_ticks() const { return slack_violation_ticks_; }
  // Worst time from a crash to the next accounting tick with positive slack,
  // counted only once the crash actually dented the slack; 0 when none did.
  // False `recovered` means a dent was still unhealed when the run ended
  // (the elapsed time so far is reported).
  double max_recovery_s() const { return max_recovery_s_; }
  bool recovered() const { return !awaiting_recovery_; }

  double sla_ms() const { return app_.sla_ms; }

  // Tail telemetry as last published per pod (the controller's view; ages
  // during blackouts). Exposed read-only for observers.
  struct PodTelemetry {
    double tail_ms = 0.0;
    double sampled_at = 0.0;
  };
  const PodTelemetry& published_telemetry(int pod) const { return telemetry_[pod]; }

 private:
  void AccountingTick();
  void ControllerTick();
  // Cluster-scope event emission (no-op without an attached sink).
  void EmitObs(ObsKind kind, int machine, uint8_t code, uint8_t detail, double a = 0.0,
               double b = 0.0);
  void OnPodCrash(int pod);
  void OnPodReboot(int pod);
  // The windowed tail, sampled at most once per simulated instant: the
  // accounting tick, controller tick and reboot handler all run at tick
  // timestamps and previously each recomputed the quantile; one sample per
  // instant also guarantees telemetry publication and controller decisions
  // within a tick observe the same value.
  double SampledTailMs();

  DeploymentConfig config_;
  AppSpec app_;
  // The event engine: own_sim_ unless the config lends an arena, in which
  // case sim_ points at the arena's (reset) simulator and own_sim_ stays
  // null.
  std::unique_ptr<Simulator> own_sim_;
  Simulator* sim_ = nullptr;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unique_ptr<LcService> service_;
  std::vector<std::unique_ptr<BeRuntime>> be_runtimes_;
  std::vector<std::unique_ptr<MachineAgent>> agents_;
  BeBacklog backlog_;
  std::unique_ptr<BeScheduler> scheduler_;
  double arrival_accumulator_ = 0.0;
  uint64_t controller_ticks_ = 0;
  // SampledTailMs memo (tail_sampled_at_ is NaN until the first sample).
  double tail_sample_ = 0.0;
  double tail_sampled_at_;
  std::vector<PodSeries> pod_series_;
  TimeSeries load_series_;
  TimeSeries tail_series_;
  TimeSeries slack_series_;
  bool started_ = false;

  // Fault wiring.
  std::unique_ptr<FaultInjector> fault_;
  std::vector<PodTelemetry> telemetry_;
  uint64_t crash_count_ = 0;
  uint64_t crash_be_losses_ = 0;
  uint64_t be_instance_failures_ = 0;
  uint64_t be_withdrawals_ = 0;
  uint64_t slack_violation_ticks_ = 0;
  // Recovery-to-positive-slack tracking for the earliest unhealed crash.
  bool awaiting_recovery_ = false;
  bool recovery_dented_ = false;   // slack has gone negative since the crash.
  double recovery_start_ = 0.0;
  double max_recovery_s_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_DEPLOYMENT_H_
