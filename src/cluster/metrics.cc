#include "src/cluster/metrics.h"

#include <algorithm>

#include "src/bemodel/be_job_spec.h"

namespace rhythm {

RunSummary Summarize(const Deployment& deployment, double t0, double t1,
                     uint64_t kills_before, uint64_t violations_before) {
  RunSummary summary;
  const int pods = deployment.pod_count();
  summary.pods.resize(pods);

  const double hours = std::max((t1 - t0) / 3600.0, 1e-9);

  double be_sum = 0.0;
  double cpu_sum = 0.0;
  double membw_sum = 0.0;
  for (int pod = 0; pod < pods; ++pod) {
    const PodSeries& series = deployment.pod_series(pod);
    PodSummary& out = summary.pods[pod];
    out.cpu_util = series.cpu_util.AverageIn(t0, t1);
    out.membw_util = series.membw_util.AverageIn(t0, t1);
    out.be_instances = series.be_instances.AverageIn(t0, t1);
    const BeRuntime* be = deployment.be(pod);
    if (be != nullptr) {
      const double completed =
          series.be_progress.ValueAt(t1) - series.be_progress.ValueAt(t0);
      const double solo = SoloRatePerHour(be->spec(), deployment.machine(pod).spec());
      out.be_throughput = solo > 0.0 ? (completed / hours) / solo : 0.0;
    }
    be_sum += out.be_throughput;
    cpu_sum += out.cpu_util;
    membw_sum += out.membw_util;
  }

  summary.lc_throughput = deployment.load_series().AverageIn(t0, t1);
  summary.be_throughput = be_sum / pods;
  summary.emu = summary.lc_throughput + summary.be_throughput;
  summary.cpu_util = cpu_sum / pods;
  summary.membw_util = membw_sum / pods;
  summary.worst_tail_ms = deployment.tail_series().MaxIn(t0, t1);
  summary.worst_tail_ratio =
      deployment.sla_ms() > 0.0 ? summary.worst_tail_ms / deployment.sla_ms() : 0.0;
  summary.sla_violations = deployment.TotalSlaViolations() - violations_before;
  summary.be_kills = deployment.TotalBeKills() - kills_before;
  summary.crashes = deployment.crash_count();
  summary.crash_be_losses = deployment.crash_be_losses();
  summary.be_withdrawals = deployment.be_withdrawals();
  summary.stale_ticks = deployment.TotalStaleTicks();
  summary.failed_actuations = deployment.TotalFailedActuations();
  summary.backoff_holds = deployment.TotalBackoffHolds();
  summary.jitter_holds = deployment.TotalJitterHolds();
  summary.oscillation_trips = deployment.TotalOscillationTrips();
  summary.slack_violation_ticks = deployment.slack_violation_ticks();
  summary.recovery_s = deployment.max_recovery_s();
  summary.recovered = deployment.recovered();
  return summary;
}

}  // namespace rhythm
