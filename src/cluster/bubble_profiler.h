// "Bubble pressure" profiling — the *indirect* characterization §3.2
// describes and argues against.
//
// A tunable one-dimensional pressure generator (the bubble) is co-located
// with one Servpod at a time and expanded step by step; the Servpod's
// contribution is defined by the largest bubble it tolerates while the
// service keeps its SLA. The paper's critique: a bubble pressures one
// resource, so a Servpod can look tolerant under an I/O bubble while being
// the top tail-latency contributor under CPU pressure — this profiler exists
// so the ablation bench can demonstrate exactly that inconsistency against
// the direct (sojourn-time) analysis.

#ifndef RHYTHM_SRC_CLUSTER_BUBBLE_PROFILER_H_
#define RHYTHM_SRC_CLUSTER_BUBBLE_PROFILER_H_

#include <vector>

#include "src/bemodel/be_job_spec.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

struct BubbleOptions {
  double load = 0.6;        // LC load during the bubble runs.
  int max_steps = 8;        // bubble sizes probed: 1..max_steps growth steps.
  double warmup_s = 8.0;
  double measure_s = 30.0;
  uint64_t seed = 47;
};

struct BubbleResult {
  // Largest tolerated bubble size per pod (growth steps of the bubble
  // instance; 0 = even the smallest bubble violates the SLA).
  std::vector<int> tolerated_steps;
  // Bubble-derived contribution: pods tolerating small bubbles contribute
  // much; normalized to sum to 1.
  std::vector<double> contribution;
};

// Profiles every Servpod of `app` against a `bubble` stressor kind.
BubbleResult ProfileBubble(LcAppKind app, BeJobKind bubble, const BubbleOptions& options = {});

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_BUBBLE_PROFILER_H_
