// Run summaries over a measurement window: the metrics of the paper's §5.1 —
// BE throughput (normalized to solo-run), CPU utilization, memory-bandwidth
// utilization, EMU (effective machine utilization = LC throughput + BE
// throughput), SLA violations and BE kills.

#ifndef RHYTHM_SRC_CLUSTER_METRICS_H_
#define RHYTHM_SRC_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/cluster/deployment.h"
#include "src/verify/invariant_types.h"

namespace rhythm {

struct PodSummary {
  double be_throughput = 0.0;  // normalized jobs/hour in the window.
  double cpu_util = 0.0;       // mean machine CPU utilization.
  double membw_util = 0.0;     // mean memory-bandwidth utilization.
  double be_instances = 0.0;   // mean co-located instance count.
};

struct RunSummary {
  std::vector<PodSummary> pods;
  double lc_throughput = 0.0;     // mean load fraction in the window.
  double be_throughput = 0.0;     // mean across pods.
  double emu = 0.0;               // lc_throughput + be_throughput.
  double cpu_util = 0.0;          // mean across pods.
  double membw_util = 0.0;        // mean across pods.
  double worst_tail_ms = 0.0;     // max windowed tail latency.
  double worst_tail_ratio = 0.0;  // worst_tail / SLA.
  uint64_t sla_violations = 0;    // controller ticks with negative slack.
  uint64_t be_kills = 0;          // BE instances destroyed by StopBE.

  // Fault / hardening counters (whole run, zero for fault-free runs).
  uint64_t crashes = 0;             // machine crash events fired.
  uint64_t crash_be_losses = 0;     // BE instances lost to crashes/failures.
  uint64_t be_withdrawals = 0;      // instances withdrawn by admission holds.
  uint64_t stale_ticks = 0;         // agent ticks on the fail-safe path.
  uint64_t failed_actuations = 0;   // verification caught a lost command.
  uint64_t backoff_holds = 0;       // growth ticks held by kill backoff.
  uint64_t jitter_holds = 0;        // launches deferred by re-admission jitter.
  uint64_t oscillation_trips = 0;   // oscillation-guard activations.
  uint64_t slack_violation_ticks = 0;  // accounting ticks with negative slack.
  double recovery_s = 0.0;          // worst crash-to-positive-slack time.
  bool recovered = true;            // false: a crash was unhealed at run end.

  // Invariant-monitor findings (empty unless the request attached a monitor;
  // see RunRequest::verify). `invariant_violations` holds the recorded
  // breaches, first-occurrence order; `invariant_violations_total` counts
  // every breach including those past the monitor's storage cap.
  std::vector<InvariantViolation> invariant_violations;
  uint64_t invariant_violations_total = 0;
};

// Summarizes a deployment over [t0, t1]. `kills_before` / `violations_before`
// are counter snapshots taken at t0 so warmup activity is excluded.
RunSummary Summarize(const Deployment& deployment, double t0, double t1,
                     uint64_t kills_before = 0, uint64_t violations_before = 0);

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_METRICS_H_
