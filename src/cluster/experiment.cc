#include "src/cluster/experiment.h"

#include <cstdlib>

namespace rhythm {

namespace {

RunSummary RunWithProfile(const ExperimentConfig& config, const LoadProfile& profile,
                          double measure_s) {
  DeploymentConfig deployment_config;
  deployment_config.app_kind = config.app;
  deployment_config.be_kind = config.be;
  deployment_config.controller = config.controller;
  deployment_config.seed = config.seed;
  deployment_config.faults = config.faults;
  if (config.controller == ControllerKind::kRhythm) {
    deployment_config.thresholds =
        config.thresholds.empty() ? CachedAppThresholds(config.app).pods : config.thresholds;
  }
  Deployment deployment(deployment_config);
  deployment.Start(&profile);
  deployment.RunFor(config.warmup_s);
  const double t0 = deployment.sim().Now();
  const uint64_t kills_before = deployment.TotalBeKills();
  const uint64_t violations_before = deployment.TotalSlaViolations();
  deployment.RunFor(measure_s);
  const double t1 = deployment.sim().Now();
  return Summarize(deployment, t0, t1, kills_before, violations_before);
}

}  // namespace

RunSummary RunColocation(const ExperimentConfig& config, double load) {
  const ConstantLoad profile(load);
  return RunWithProfile(config, profile, config.measure_s);
}

RunSummary RunColocationProfile(const ExperimentConfig& config, const LoadProfile& profile,
                                double duration_s) {
  return RunWithProfile(config, profile, duration_s);
}

bool FastMode() {
  const char* fast = std::getenv("RHYTHM_FAST");
  return fast != nullptr && fast[0] == '1';
}

}  // namespace rhythm
