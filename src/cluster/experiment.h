// Convenience experiment runner: one co-location run (app x BE x controller
// x load profile) -> RunSummary. All evaluation benches are built on this.

#ifndef RHYTHM_SRC_CLUSTER_EXPERIMENT_H_
#define RHYTHM_SRC_CLUSTER_EXPERIMENT_H_

#include <vector>

#include "src/cluster/app_thresholds.h"
#include "src/cluster/deployment.h"
#include "src/cluster/metrics.h"

namespace rhythm {

struct ExperimentConfig {
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kCpuStress;
  ControllerKind controller = ControllerKind::kRhythm;
  // Rhythm's per-pod thresholds; taken from CachedAppThresholds when empty.
  std::vector<ServpodThresholds> thresholds;
  uint64_t seed = 11;
  double warmup_s = 20.0;
  double measure_s = 120.0;
  // Optional fault schedule (must outlive the run). Wrap the load profile in
  // a SpikedLoadProfile yourself if the schedule carries kLoadSpike events.
  const FaultSchedule* faults = nullptr;
};

// Constant-load run.
RunSummary RunColocation(const ExperimentConfig& config, double load);

// Arbitrary profile (production trace); `duration_s` of measurement after
// warmup.
RunSummary RunColocationProfile(const ExperimentConfig& config, const LoadProfile& profile,
                                double duration_s);

// True when the environment requests a fast (CI-scale) run; benches shrink
// their sweeps accordingly. Controlled by RHYTHM_FAST=1.
bool FastMode();

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_EXPERIMENT_H_
