// DEPRECATED compatibility shim. The experiment entry points moved to the
// declarative runner API:
//
//   RunColocation(config, load)                  ->  Run(RunRequest)
//   RunColocationProfile(config, profile, dur)   ->  Run(RunRequest)
//   FastMode()                                   ->  src/common/env.h
//
// See src/runner/runner.h (single-trial Run and the ParallelRunner that
// executes whole RunPlans across a thread pool). The wrappers below keep
// out-of-tree callers compiling; new code should build RunRequests.

#ifndef RHYTHM_SRC_CLUSTER_EXPERIMENT_H_
#define RHYTHM_SRC_CLUSTER_EXPERIMENT_H_

#include <vector>

#include "src/cluster/app_thresholds.h"
#include "src/cluster/deployment.h"
#include "src/cluster/metrics.h"
#include "src/common/env.h"
#include "src/runner/runner.h"

namespace rhythm {

// DEPRECATED: describe trials with RunRequest instead. Unlike RunRequest,
// this struct holds its fault schedule by raw pointer (must outlive the
// run). The forwarding wrappers below route through Run(), so kLoadSpike
// events are applied automatically like everywhere else.
struct ExperimentConfig {
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kCpuStress;
  ControllerKind controller = ControllerKind::kRhythm;
  // Rhythm's per-pod thresholds; taken from CachedAppThresholds when empty.
  std::vector<ServpodThresholds> thresholds;
  uint64_t seed = 11;
  double warmup_s = 20.0;
  double measure_s = 120.0;
  const FaultSchedule* faults = nullptr;
};

inline RunRequest ToRunRequest(const ExperimentConfig& config) {
  RunRequest request;
  request.app = config.app;
  request.be = config.be;
  request.controller = config.controller;
  request.thresholds = config.thresholds;
  request.seed = config.seed;
  request.warmup_s = config.warmup_s;
  request.measure_s = config.measure_s;
  request.faults = UnownedFaults(config.faults);
  return request;
}

// DEPRECATED: use Run(RunRequest). Constant-load run.
inline RunSummary RunColocation(const ExperimentConfig& config, double load) {
  RunRequest request = ToRunRequest(config);
  request.load = load;
  return Run(request);
}

// DEPRECATED: use Run(RunRequest) with an owning profile. Note the profile
// is borrowed here and must outlive the call; `duration_s` of measurement
// after warmup.
inline RunSummary RunColocationProfile(const ExperimentConfig& config,
                                       const LoadProfile& profile, double duration_s) {
  RunRequest request = ToRunRequest(config);
  request.profile = std::shared_ptr<const LoadProfile>(&profile, [](const LoadProfile*) {});
  request.measure_s = duration_s;
  return Run(request);
}

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_EXPERIMENT_H_
