#include "src/cluster/profiler.h"

#include "src/cluster/deployment.h"
#include "src/common/logging.h"
#include "src/trace/event_log.h"
#include "src/trace/sojourn_extractor.h"

namespace rhythm {

std::vector<double> DefaultProfileLevels() {
  std::vector<double> levels;
  for (int pct = 5; pct <= 95; pct += 5) {
    levels.push_back(pct / 100.0);
  }
  return levels;
}

ProfileResult ProfileSolo(LcAppKind app_kind, const std::vector<double>& levels,
                          const ProfileOptions& options) {
  ProfileResult result;
  result.levels = levels;
  const AppSpec app = MakeApp(app_kind);
  const int pods = app.pod_count();
  const bool tracer = options.use_tracer && !app.builtin_tracing;

  result.matrix.pod_sojourn_ms.assign(pods, {});
  result.pod_cov.assign(pods, {});
  result.matrix.load_levels = levels;

  for (size_t level = 0; level < levels.size(); ++level) {
    EventLog log;
    DeploymentConfig config;
    config.app_kind = app_kind;
    config.controller = ControllerKind::kNone;
    config.enable_be = false;
    config.record_sojourns = true;
    config.seed = options.seed + level * 1009;
    config.tail_window_s = options.measure_s;  // tail over the whole window.
    if (tracer) {
      config.sink = &log;
      config.noise_events_per_request = options.noise_events_per_request;
    }
    Deployment deployment(config);
    const ConstantLoad profile(levels[level]);
    deployment.Start(&profile);
    deployment.RunFor(options.warmup_s);
    deployment.service().ResetSojourns();
    log.Clear();
    deployment.RunFor(options.measure_s);

    if (tracer) {
      const TracerConfig tracer_config{.program_base = 100, .num_pods = pods};
      const SojournSummary summary = ExtractMeanSojourns(log.events(), tracer_config);
      for (int pod = 0; pod < pods; ++pod) {
        result.matrix.pod_sojourn_ms[pod].push_back(summary.mean_sojourn_s[pod] * 1000.0);
      }
    } else {
      for (int pod = 0; pod < pods; ++pod) {
        result.matrix.pod_sojourn_ms[pod].push_back(
            deployment.service().PodSojournStats(pod).mean());
      }
    }
    for (int pod = 0; pod < pods; ++pod) {
      result.pod_cov[pod].push_back(deployment.service().PodSojournStats(pod).cov());
    }
    result.matrix.tail_ms.push_back(deployment.service().TailLatencyMs());
    result.requests_profiled += deployment.service().completed_requests();
  }
  return result;
}

}  // namespace rhythm
