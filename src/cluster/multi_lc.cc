#include "src/cluster/multi_lc.h"

#include <algorithm>

#include "src/bemodel/be_job_spec.h"
#include "src/common/logging.h"
#include "src/interference/interference_model.h"

namespace rhythm {

int MultiLcDeployment::PodA(int machine) const {
  return machine < app_a_.pod_count() ? machine : -1;
}

int MultiLcDeployment::PodB(int machine) const {
  return machine < app_b_.pod_count() ? machine : -1;
}

MultiLcDeployment::MultiLcDeployment(const MultiLcConfig& config)
    : config_(config), app_a_(MakeApp(config.app_a)), app_b_(MakeApp(config.app_b)) {
  const int machines = std::max(app_a_.pod_count(), app_b_.pod_count());
  be_progress_.resize(machines);

  // Resolve per-service thresholds.
  std::vector<ServpodThresholds> thresholds_a = config.thresholds_a;
  std::vector<ServpodThresholds> thresholds_b = config.thresholds_b;
  if (config.controller == ControllerKind::kRhythm) {
    if (thresholds_a.empty()) {
      thresholds_a = CachedAppThresholds(config.app_a).pods;
    }
    if (thresholds_b.empty()) {
      thresholds_b = CachedAppThresholds(config.app_b).pods;
    }
  }

  for (int machine = 0; machine < machines; ++machine) {
    // Reserve the combined footprint of both tenants' pods.
    double peak_cores = 0.0;
    if (PodA(machine) >= 0) {
      peak_cores += app_a_.components[PodA(machine)].peak_busy_cores;
    }
    if (PodB(machine) >= 0) {
      peak_cores += app_b_.components[PodB(machine)].peak_busy_cores;
    }
    LcReservation reservation;
    reservation.cores = std::min(3 * config.machine_spec.total_cores / 4,
                                 static_cast<int>(peak_cores) + 4);
    reservation.min_llc_ways = std::max(2, config.machine_spec.llc_ways / 4);
    reservation.memory_gb = config.machine_spec.dram_gb / 2.0;
    machines_.push_back(std::make_unique<Machine>("multi-" + std::to_string(machine),
                                                  config.machine_spec, reservation));
  }

  LcService::Config service_config;
  service_config.seed = config.seed;
  service_a_ = std::make_unique<LcService>(&sim_, app_a_, service_config);
  service_config.seed = config.seed * 31 + 7;
  service_b_ = std::make_unique<LcService>(&sim_, app_b_, service_config);

  for (int machine = 0; machine < machines; ++machine) {
    be_runtimes_.push_back(std::make_unique<BeRuntime>(machines_[machine].get(), config.be));
  }

  if (config.controller != ControllerKind::kNone) {
    for (int machine = 0; machine < machines; ++machine) {
      // Conservative join of the hosted pods' thresholds. The agent's SLA is
      // normalized to 1 because it receives a *normalized* worst-tenant tail.
      ServpodThresholds joined = HeraclesThresholds();
      if (config.controller == ControllerKind::kRhythm) {
        joined = ServpodThresholds{.loadlimit = 1.0, .slacklimit = 0.0};
        if (PodA(machine) >= 0) {
          joined.loadlimit = std::min(joined.loadlimit, thresholds_a[PodA(machine)].loadlimit);
          joined.slacklimit =
              std::max(joined.slacklimit, thresholds_a[PodA(machine)].slacklimit);
        }
        if (PodB(machine) >= 0) {
          joined.loadlimit = std::min(joined.loadlimit, thresholds_b[PodB(machine)].loadlimit);
          joined.slacklimit =
              std::max(joined.slacklimit, thresholds_b[PodB(machine)].slacklimit);
        }
      }
      agents_.push_back(std::make_unique<MachineAgent>(machines_[machine].get(),
                                                       be_runtimes_[machine].get(), joined,
                                                       /*sla_ms=*/1.0, machine));
    }
  }

  service_a_->SetInflationProvider([this](int pod) {
    return InterferenceModel::Inflation(app_a_.components[pod].sensitivity, *machines_[pod],
                                        be_runtimes_[pod].get());
  });
  service_b_->SetInflationProvider([this](int pod) {
    return InterferenceModel::Inflation(app_b_.components[pod].sensitivity, *machines_[pod],
                                        be_runtimes_[pod].get());
  });
}

void MultiLcDeployment::Start(const LoadProfile* profile) {
  RHYTHM_CHECK(!started_);
  started_ = true;
  service_a_->SetLoadProfile(profile);
  service_b_->SetLoadProfile(profile);
  service_a_->Start();
  service_b_->Start();
  sim_.SchedulePeriodic(1.0, 1.0, [this] { AccountingTick(); });
  if (!agents_.empty()) {
    sim_.SchedulePeriodic(MachineAgent::kPeriodSeconds, MachineAgent::kPeriodSeconds,
                          [this] { ControllerTick(); });
  }
}

void MultiLcDeployment::RunFor(double seconds) { sim_.RunUntil(sim_.Now() + seconds); }

void MultiLcDeployment::AccountingTick() {
  const double now = sim_.Now();
  tail_a_.Add(now, service_a_->TailLatencyMs() / app_a_.sla_ms);
  tail_b_.Add(now, service_b_->TailLatencyMs() / app_b_.sla_ms);
  for (int machine = 0; machine < machine_count(); ++machine) {
    double busy = 0.0;
    double membw = 0.0;
    double net = 0.0;
    if (PodA(machine) >= 0) {
      busy += service_a_->PodBusyCores(PodA(machine));
      membw += service_a_->PodMembwGbs(PodA(machine));
      net += service_a_->PodNetGbps(PodA(machine));
    }
    if (PodB(machine) >= 0) {
      busy += service_b_->PodBusyCores(PodB(machine));
      membw += service_b_->PodMembwGbs(PodB(machine));
      net += service_b_->PodNetGbps(PodB(machine));
    }
    machines_[machine]->SetLcActivity(busy, membw, net);
    be_runtimes_[machine]->Step(1.0);
    be_runtimes_[machine]->PublishActivity();
    be_progress_[machine].Add(now, be_runtimes_[machine]->progress_units());
  }
}

void MultiLcDeployment::ControllerTick() {
  // Conservative join of the tenant signals: the scarcest slack and the
  // hottest load drive every machine's decision.
  const double slack_a = TopController::Slack(service_a_->TailLatencyMs(), app_a_.sla_ms);
  const double slack_b = TopController::Slack(service_b_->TailLatencyMs(), app_b_.sla_ms);
  const double joint_slack = std::min(slack_a, slack_b);
  const double joint_load = std::max(service_a_->CurrentLoad(), service_b_->CurrentLoad());
  if (joint_slack < 0.0) {
    ++joint_violations_;
  }
  // The agent's SLA is 1.0, so feed it a synthetic tail of (1 - slack).
  const double joint_tail = 1.0 - joint_slack;
  for (int machine = 0; machine < machine_count(); ++machine) {
    double util = 0.0;
    if (PodA(machine) >= 0) {
      util = std::max(util, service_a_->PodUtilization(PodA(machine)));
    }
    if (PodB(machine) >= 0) {
      util = std::max(util, service_b_->PodUtilization(PodB(machine)));
    }
    agents_[machine]->Tick(joint_load, joint_tail, util);
  }
}

MultiLcSummary MultiLcDeployment::Summarize(double t0, double t1) const {
  MultiLcSummary summary;
  const double hours = std::max((t1 - t0) / 3600.0, 1e-9);
  const BeJobSpec& be_spec = GetBeJobSpec(config_.be);
  double be_sum = 0.0;
  for (int machine = 0; machine < machine_count(); ++machine) {
    const double completed =
        be_progress_[machine].ValueAt(t1) - be_progress_[machine].ValueAt(t0);
    const double solo = SoloRatePerHour(be_spec, machines_[machine]->spec());
    be_sum += solo > 0.0 ? (completed / hours) / solo : 0.0;
  }
  summary.be_throughput = be_sum / machine_count();
  summary.worst_tail_ratio_a = tail_a_.MaxIn(t0, t1);
  summary.worst_tail_ratio_b = tail_b_.MaxIn(t0, t1);
  summary.sla_violations = joint_violations_;
  for (const auto& agent : agents_) {
    summary.be_kills += agent->stats().be_kills;
  }
  return summary;
}

}  // namespace rhythm
