#include "src/cluster/deployment.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

const char* ControllerKindName(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kNone:
      return "none";
    case ControllerKind::kRhythm:
      return "Rhythm";
    case ControllerKind::kHeracles:
      return "Heracles";
  }
  return "?";
}

Deployment::Deployment(const DeploymentConfig& config)
    : config_(config), app_(MakeApp(config.app_kind)) {
  const int pods = app_.pod_count();
  pod_series_.resize(pods);

  for (int pod = 0; pod < pods; ++pod) {
    LcReservation reservation;
    // Reserve the component's peak footprint plus headroom, never more than
    // half the machine (the paper's containers leave room for BEs).
    reservation.cores = std::min(
        config.machine_spec.total_cores / 2,
        static_cast<int>(app_.components[pod].peak_busy_cores) + 4);
    reservation.min_llc_ways = std::max(2, config.machine_spec.llc_ways / 5);
    reservation.memory_gb = config.machine_spec.dram_gb / 2.0;
    machines_.push_back(std::make_unique<Machine>(
        app_.components[pod].name, config.machine_spec, reservation));
  }

  LcService::Config service_config;
  service_config.seed = config.seed;
  service_config.record_sojourns = config.record_sojourns;
  service_config.sink = config.sink;
  service_config.tail_window_s = config.tail_window_s;
  service_config.noise_events_per_request = config.noise_events_per_request;
  service_ = std::make_unique<LcService>(&sim_, app_, service_config);

  if (config.enable_be) {
    for (int pod = 0; pod < pods; ++pod) {
      be_runtimes_.push_back(std::make_unique<BeRuntime>(machines_[pod].get(), config.be_kind));
    }
  }

  if (config.controller != ControllerKind::kNone) {
    RHYTHM_CHECK(config.enable_be);
    for (int pod = 0; pod < pods; ++pod) {
      ServpodThresholds thresholds;
      if (config.controller == ControllerKind::kHeracles) {
        thresholds = HeraclesThresholds();
      } else {
        RHYTHM_CHECK(static_cast<int>(config.thresholds.size()) == pods);
        thresholds = config.thresholds[pod];
      }
      agents_.push_back(std::make_unique<MachineAgent>(machines_[pod].get(),
                                                       be_runtimes_[pod].get(), thresholds,
                                                       app_.sla_ms, pod));
    }
  }

  if (config.be_arrival_rate_per_s > 0.0 && config.enable_be) {
    backlog_.set_infinite(false);
    scheduler_ = std::make_unique<BeScheduler>(&backlog_);
    for (int pod = 0; pod < pods; ++pod) {
      be_runtimes_[pod]->SetBacklog(&backlog_);
      be_runtimes_[pod]->set_self_launch_allowed(false);
      scheduler_->AddMachine(BeScheduler::MachineSlot{
          machines_[pod].get(), be_runtimes_[pod].get(),
          agents_.empty() ? nullptr : agents_[pod].get()});
    }
  }

  // Interference wiring: the LC's inflation at pod i comes from machine i's
  // state and its BE runtime.
  service_->SetInflationProvider([this](int pod) {
    const BeRuntime* be = be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get();
    return InterferenceModel::Inflation(app_.components[pod].sensitivity, *machines_[pod], be);
  });
}

void Deployment::Start(const LoadProfile* profile) {
  RHYTHM_CHECK(!started_);
  started_ = true;
  service_->SetLoadProfile(profile);
  service_->Start();
  sim_.SchedulePeriodic(config_.accounting_period_s, config_.accounting_period_s,
                        [this] { AccountingTick(); });
  if (!agents_.empty()) {
    sim_.SchedulePeriodic(MachineAgent::kPeriodSeconds, MachineAgent::kPeriodSeconds,
                          [this] { ControllerTick(); });
  }
}

void Deployment::RunFor(double seconds) { sim_.RunUntil(sim_.Now() + seconds); }

void Deployment::AccountingTick() {
  const double now = sim_.Now();
  if (scheduler_ != nullptr) {
    // BE job arrivals into the cluster queue.
    arrival_accumulator_ += config_.be_arrival_rate_per_s * config_.accounting_period_s;
    const uint64_t whole = static_cast<uint64_t>(arrival_accumulator_);
    if (whole > 0) {
      backlog_.SubmitJobs(whole);
      arrival_accumulator_ -= static_cast<double>(whole);
    }
    if (agents_.empty()) {
      // No controllers: dispatch freely.
      scheduler_->DispatchRound();
    }
  }
  const double load = service_->CurrentLoad();
  load_series_.Add(now, load);
  const double tail = service_->TailLatencyMs();
  tail_series_.Add(now, tail);
  slack_series_.Add(now, TopController::Slack(tail, app_.sla_ms));

  const double elapsed_hours = now / 3600.0;
  for (int pod = 0; pod < pod_count(); ++pod) {
    Machine& machine = *machines_[pod];
    machine.SetLcActivity(service_->PodBusyCores(pod), service_->PodMembwGbs(pod),
                          service_->PodNetGbps(pod));
    BeRuntime* be = be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get();
    if (be != nullptr) {
      be->Step(config_.accounting_period_s);
      be->PublishActivity();
    }
    PodSeries& series = pod_series_[pod];
    series.cpu_util.Add(now, machine.CpuUtilization());
    series.membw_util.Add(now, machine.MembwUtilization());
    if (be != nullptr) {
      series.be_instances.Add(now, be->instance_count());
      series.be_cores.Add(now, be->TotalCoresHeld());
      series.be_ways.Add(now, be->TotalWaysHeld());
      series.be_progress.Add(now, be->progress_units());
      series.be_throughput.Add(now, be->NormalizedThroughput(elapsed_hours));
    }
  }
}

void Deployment::ControllerTick() {
  const double load = service_->CurrentLoad();
  const double tail = service_->TailLatencyMs();
  for (int pod = 0; pod < pod_count(); ++pod) {
    agents_[pod]->Tick(load, tail, service_->PodUtilization(pod));
  }
  // Dispatch after the fresh decisions, paced like the agents' own growth so
  // admissions cannot outrun the tail window's feedback.
  ++controller_ticks_;
  if (scheduler_ != nullptr && controller_ticks_ % MachineAgent::kGrowthPeriodTicks == 0) {
    scheduler_->DispatchRound();
  }
}

void Deployment::LaunchBeAtPod(int pod, int instances) {
  BeRuntime* be = this->be(pod);
  RHYTHM_CHECK(be != nullptr);
  for (int i = 0; i < instances; ++i) {
    if (!be->LaunchInstance()) {
      break;
    }
    // Grow this instance to its full demand (cores and CAT ways arrive one
    // step at a time).
    const int index = be->instance_count() - 1;
    while (be->GrowInstance(index)) {
    }
    while (be->GrowMemoryStep()) {
    }
  }
  be->PublishActivity();
}

uint64_t Deployment::TotalBeKills() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().be_kills;
  }
  return total;
}

uint64_t Deployment::TotalSlaViolations() const {
  // Violations are counted once per controller tick; with one LC service the
  // agents all observe the same tail, so report the per-pod maximum rather
  // than the sum.
  uint64_t worst = 0;
  for (const auto& agent : agents_) {
    worst = std::max(worst, agent->stats().sla_violations);
  }
  return worst;
}

}  // namespace rhythm
