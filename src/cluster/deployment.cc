#include "src/cluster/deployment.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "src/common/logging.h"
#include "src/sim/sim_arena.h"

namespace rhythm {

const char* ControllerKindName(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kNone:
      return "none";
    case ControllerKind::kRhythm:
      return "Rhythm";
    case ControllerKind::kHeracles:
      return "Heracles";
  }
  return "?";
}

Deployment::Deployment(const DeploymentConfig& config)
    : config_(config),
      app_(MakeApp(config.app_kind)),
      tail_sampled_at_(std::numeric_limits<double>::quiet_NaN()) {
  if (config.arena != nullptr) {
    // A lent arena starts this deployment on a recycled simulator: Reset()
    // makes it observably identical to a fresh one (time 0, empty queue,
    // sequence 0) while keeping its allocations warm across epochs.
    config.arena->Reset();
    sim_ = &config.arena->sim;
  } else {
    own_sim_ = std::make_unique<Simulator>();
    sim_ = own_sim_.get();
  }
  const int pods = app_.pod_count();
  pod_series_.resize(pods);

  for (int pod = 0; pod < pods; ++pod) {
    LcReservation reservation;
    // Reserve the component's peak footprint plus headroom, never more than
    // half the machine (the paper's containers leave room for BEs).
    reservation.cores = std::min(
        config.machine_spec.total_cores / 2,
        static_cast<int>(app_.components[pod].peak_busy_cores) + 4);
    reservation.min_llc_ways = std::max(2, config.machine_spec.llc_ways / 5);
    reservation.memory_gb = config.machine_spec.dram_gb / 2.0;
    machines_.push_back(std::make_unique<Machine>(
        app_.components[pod].name, config.machine_spec, reservation));
  }

  LcService::Config service_config;
  service_config.seed = config.seed;
  service_config.record_sojourns = config.record_sojourns;
  service_config.sink = config.sink;
  service_config.tail_window_s = config.tail_window_s;
  service_config.noise_events_per_request = config.noise_events_per_request;
  service_config.chunk_pool =
      config.arena != nullptr ? &config.arena->chunk_pool : nullptr;
  service_ = std::make_unique<LcService>(sim_, app_, service_config);

  if (config.enable_be) {
    for (int pod = 0; pod < pods; ++pod) {
      be_runtimes_.push_back(
          config.custom_be != nullptr
              ? std::make_unique<BeRuntime>(machines_[pod].get(), *config.custom_be)
              : std::make_unique<BeRuntime>(machines_[pod].get(), config.be_kind));
    }
  }

  if (config.controller != ControllerKind::kNone) {
    RHYTHM_CHECK(config.enable_be);
    for (int pod = 0; pod < pods; ++pod) {
      ServpodThresholds thresholds;
      if (config.controller == ControllerKind::kHeracles) {
        thresholds = HeraclesThresholds();
      } else {
        RHYTHM_CHECK(static_cast<int>(config.thresholds.size()) == pods);
        thresholds = config.thresholds[pod];
      }
      agents_.push_back(std::make_unique<MachineAgent>(machines_[pod].get(),
                                                       be_runtimes_[pod].get(), thresholds,
                                                       app_.sla_ms, pod, config.hardening));
      if (config.obs_sink != nullptr) {
        agents_.back()->AttachObs(config.obs_sink, pod);
      }
    }
  }

  if (config.be_arrival_rate_per_s > 0.0 && config.enable_be) {
    backlog_.set_infinite(false);
    scheduler_ = std::make_unique<BeScheduler>(&backlog_);
    scheduler_->AttachObs(config.obs_sink);
    for (int pod = 0; pod < pods; ++pod) {
      be_runtimes_[pod]->SetBacklog(&backlog_);
      be_runtimes_[pod]->set_self_launch_allowed(false);
      scheduler_->AddMachine(BeScheduler::MachineSlot{
          machines_[pod].get(), be_runtimes_[pod].get(),
          agents_.empty() ? nullptr : agents_[pod].get(), pod});
    }
  }

  // Fault wiring: the injector owns its own RNG stream (derived from the run
  // seed) so fault realizations are deterministic and fault-free runs draw
  // nothing extra.
  telemetry_.resize(pods);
  if (config.faults != nullptr && !config.faults->empty()) {
    const uint64_t fault_seed = config.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
    fault_ = std::make_unique<FaultInjector>(sim_, *config.faults, pods, fault_seed);
    fault_->AttachObs(config.obs_sink);
    fault_->set_crash_handler([this](int pod, bool online) {
      if (online) {
        OnPodReboot(pod);
      } else {
        OnPodCrash(pod);
      }
    });
    fault_->set_admission_hold_handler([this](int pod, bool held) {
      BeRuntime* be = this->be(pod);
      if (be == nullptr) {
        return;
      }
      if (held) {
        // The cluster withdraws BE work: instances stop (in-flight work
        // forfeited), admission closes until the window ends.
        const int lost = be->StopAll();
        be_withdrawals_ += static_cast<uint64_t>(lost);
        be->set_admission_blocked(true);
        be->PublishActivity();
        EmitObs(ObsKind::kBeLifecycle, pod, static_cast<uint8_t>(ObsBeOp::kWithdraw), 0,
                static_cast<double>(lost));
      } else if (PodOnline(pod)) {  // a concurrent crash keeps the pod closed.
        be->set_admission_blocked(false);
        EmitObs(ObsKind::kBeLifecycle, pod, static_cast<uint8_t>(ObsBeOp::kReadmit), 0, 0.0);
      }
    });
    fault_->set_be_failure_handler([this](int pod) {
      BeRuntime* be = this->be(pod);
      if (be != nullptr && be->FailOneInstance()) {
        ++be_instance_failures_;
        ++crash_be_losses_;
        be->PublishActivity();
        EmitObs(ObsKind::kBeLifecycle, pod, static_cast<uint8_t>(ObsBeOp::kInstanceFailure),
                0, 1.0);
      }
    });
    if (config.enable_be) {
      for (int pod = 0; pod < pods; ++pod) {
        be_runtimes_[pod]->SetActuationGate(
            [this, pod](const char*) { return fault_->DropActuation(pod); });
      }
    }
  }

  // Interference wiring: the LC's inflation at pod i comes from machine i's
  // state and its BE runtime; a crash failover multiplies in the cold-standby
  // and survivor-absorption penalties.
  service_->SetInflationProvider([this](int pod) {
    const BeRuntime* be = be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get();
    double inflation =
        InterferenceModel::Inflation(app_.components[pod].sensitivity, *machines_[pod], be);
    if (fault_ != nullptr) {
      inflation *= fault_->FailoverInflation(pod);
    }
    return inflation;
  });
}

void Deployment::Start(const LoadProfile* profile) {
  RHYTHM_CHECK(!started_);
  started_ = true;
  service_->SetLoadProfile(profile);
  service_->Start();
  sim_->SchedulePeriodic(config_.accounting_period_s, config_.accounting_period_s,
                        [this] { AccountingTick(); });
  if (!agents_.empty()) {
    sim_->SchedulePeriodic(MachineAgent::kPeriodSeconds, MachineAgent::kPeriodSeconds,
                          [this] { ControllerTick(); });
  }
  if (fault_ != nullptr) {
    fault_->Start();
  }
}

void Deployment::RunFor(double seconds) { sim_->RunUntil(sim_->Now() + seconds); }

double Deployment::SampledTailMs() {
  const double now = sim_->Now();
  if (tail_sampled_at_ != now) {  // NaN seed never matches: first call samples.
    tail_sample_ = service_->TailLatencyMs();
    tail_sampled_at_ = now;
  }
  return tail_sample_;
}

void Deployment::AccountingTick() {
  const double now = sim_->Now();
  if (scheduler_ != nullptr) {
    // BE job arrivals into the cluster queue.
    arrival_accumulator_ += config_.be_arrival_rate_per_s * config_.accounting_period_s;
    const uint64_t whole = static_cast<uint64_t>(arrival_accumulator_);
    if (whole > 0) {
      backlog_.SubmitJobs(whole);
      arrival_accumulator_ -= static_cast<double>(whole);
    }
    if (agents_.empty()) {
      // No controllers: dispatch freely.
      scheduler_->set_obs_now(now);
      scheduler_->DispatchRound();
    }
  }
  const double load = service_->CurrentLoad();
  load_series_.Add(now, load);
  const double tail = SampledTailMs();
  tail_series_.Add(now, tail);
  const double slack = TopController::Slack(tail, app_.sla_ms);
  slack_series_.Add(now, slack);

  // Accounting-granularity violation counter: exists even when no agents run
  // (kNone baselines), so fault runs can compare controllers against "do
  // nothing" on the same measure.
  if (slack < 0.0) {
    ++slack_violation_ticks_;
    EmitObs(ObsKind::kSloViolation, /*machine=*/-1,
            static_cast<uint8_t>(ObsSloScope::kAccounting), 0, slack, tail);
  }
  if (awaiting_recovery_) {
    if (slack < 0.0) {
      // The crash's dent has reached the tail window; the clock runs until
      // the next positive-slack tick.
      recovery_dented_ = true;
      max_recovery_s_ = std::max(max_recovery_s_, now - recovery_start_);
    } else if (recovery_dented_) {
      max_recovery_s_ = std::max(max_recovery_s_, now - recovery_start_);
      awaiting_recovery_ = false;
      recovery_dented_ = false;
    } else if (fault_ == nullptr || !fault_->AnyPodOffline()) {
      // Machine back and the slack never went negative: nothing to recover.
      awaiting_recovery_ = false;
    }
  }

  // Telemetry publication — what the controller agents will see. A blackout
  // skips the update (the sample ages, which the stale detector catches); a
  // freeze refreshes the timestamp under a stale value (undetectable — the
  // guards must contain the damage).
  for (int pod = 0; pod < pod_count(); ++pod) {
    if (fault_ != nullptr && fault_->TelemetryBlackout(pod)) {
      continue;
    }
    telemetry_[pod].sampled_at = now;
    if (fault_ == nullptr || !fault_->TelemetryFrozen(pod)) {
      telemetry_[pod].tail_ms = tail;
    }
  }

  const double elapsed_hours = now / 3600.0;
  for (int pod = 0; pod < pod_count(); ++pod) {
    Machine& machine = *machines_[pod];
    if (fault_ != nullptr && fault_->PodOffline(pod)) {
      machine.SetLcActivity(0.0, 0.0, 0.0);  // dead machine, nothing runs.
    } else {
      machine.SetLcActivity(service_->PodBusyCores(pod), service_->PodMembwGbs(pod),
                            service_->PodNetGbps(pod));
    }
    BeRuntime* be = be_runtimes_.empty() ? nullptr : be_runtimes_[pod].get();
    if (be != nullptr) {
      be->Step(config_.accounting_period_s);
      be->PublishActivity();
    }
    PodSeries& series = pod_series_[pod];
    series.cpu_util.Add(now, machine.CpuUtilization());
    series.membw_util.Add(now, machine.MembwUtilization());
    if (be != nullptr) {
      series.be_instances.Add(now, be->instance_count());
      series.be_cores.Add(now, be->TotalCoresHeld());
      series.be_ways.Add(now, be->TotalWaysHeld());
      series.be_progress.Add(now, be->progress_units());
      series.be_throughput.Add(now, be->NormalizedThroughput(elapsed_hours));
    }
  }
  if (config_.observer != nullptr) {
    config_.observer->AfterAccountingTick(*this);
  }
}

void Deployment::ControllerTick() {
  const double now = sim_->Now();
  const double load = service_->CurrentLoad();
  const double tail = SampledTailMs();
  for (int pod = 0; pod < pod_count(); ++pod) {
    if (fault_ != nullptr && fault_->PodOffline(pod)) {
      continue;  // the agent died with its machine.
    }
    // Fault runs consume the *published* tail sample with its age, so
    // telemetry faults reach the stale-signal detector; healthy runs read
    // the live signal with zero age.
    const MachineAgent::TelemetrySample sample =
        fault_ != nullptr ? MachineAgent::TelemetrySample{
                                .load = load,
                                .tail_ms = telemetry_[pod].tail_ms,
                                .tail_age_s = now - telemetry_[pod].sampled_at,
                                .lc_utilization = service_->PodUtilization(pod)}
                          : MachineAgent::TelemetrySample{
                                .load = load,
                                .tail_ms = tail,
                                .lc_utilization = service_->PodUtilization(pod)};
    if (config_.observer != nullptr) {
      config_.observer->BeforeAgentTick(*this, pod, sample);
    }
    agents_[pod]->set_obs_now(now);
    agents_[pod]->Tick(sample);
  }
  // Dispatch after the fresh decisions, paced like the agents' own growth so
  // admissions cannot outrun the tail window's feedback.
  ++controller_ticks_;
  if (scheduler_ != nullptr && controller_ticks_ % MachineAgent::kGrowthPeriodTicks == 0) {
    scheduler_->set_obs_now(now);
    scheduler_->DispatchRound();
  }
  if (config_.observer != nullptr) {
    config_.observer->AfterControllerTick(*this);
  }
}

void Deployment::LaunchBeAtPod(int pod, int instances) {
  BeRuntime* be = this->be(pod);
  RHYTHM_CHECK(be != nullptr);
  for (int i = 0; i < instances; ++i) {
    if (!be->LaunchInstance()) {
      break;
    }
    // Grow this instance to its full demand (cores and CAT ways arrive one
    // step at a time).
    const int index = be->instance_count() - 1;
    while (be->GrowInstance(index)) {
    }
    while (be->GrowMemoryStep()) {
    }
  }
  be->PublishActivity();
}

void Deployment::EmitObs(ObsKind kind, int machine, uint8_t code, uint8_t detail, double a,
                         double b) {
  if (config_.obs_sink == nullptr) {
    return;
  }
  ObsEvent event;
  event.time_s = sim_->Now();
  event.machine = machine;
  event.kind = kind;
  event.code = code;
  event.detail = detail;
  event.a = a;
  event.b = b;
  config_.obs_sink->Record(event);
}

uint64_t Deployment::TotalBeKills() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().be_kills;
  }
  return total;
}

uint64_t Deployment::TotalSlaViolations() const {
  // Violations are counted once per controller tick; with one LC service the
  // agents all observe the same tail, so report the per-pod maximum rather
  // than the sum.
  uint64_t worst = 0;
  for (const auto& agent : agents_) {
    worst = std::max(worst, agent->stats().sla_violations);
  }
  return worst;
}

uint64_t Deployment::TotalStaleTicks() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().stale_ticks;
  }
  return total;
}

uint64_t Deployment::TotalFailedActuations() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().failed_actuations;
  }
  return total;
}

uint64_t Deployment::TotalBackoffHolds() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().backoff_holds;
  }
  return total;
}

uint64_t Deployment::TotalJitterHolds() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().jitter_holds;
  }
  return total;
}

uint64_t Deployment::TotalOscillationTrips() const {
  uint64_t total = 0;
  for (const auto& agent : agents_) {
    total += agent->stats().oscillation_trips;
  }
  return total;
}

void Deployment::OnPodCrash(int pod) {
  ++crash_count_;
  if (!awaiting_recovery_) {
    awaiting_recovery_ = true;
    recovery_start_ = sim_->Now();
  }
  machines_[pod]->SetLcActivity(0.0, 0.0, 0.0);
  BeRuntime* be = this->be(pod);
  if (be != nullptr) {
    // Instances die with the machine — these are crash losses, not kills.
    const int lost = be->StopAll();
    crash_be_losses_ += static_cast<uint64_t>(lost);
    be->set_admission_blocked(true);
    be->PublishActivity();
    if (lost > 0) {
      EmitObs(ObsKind::kBeLifecycle, pod, static_cast<uint8_t>(ObsBeOp::kCrashLoss), 0,
              static_cast<double>(lost));
    }
  }
  if (config_.observer != nullptr) {
    config_.observer->OnPodCrash(*this, pod);
  }
}

void Deployment::OnPodReboot(int pod) {
  BeRuntime* be = this->be(pod);
  if (be != nullptr && (fault_ == nullptr || !fault_->AdmissionHeld(pod))) {
    be->set_admission_blocked(false);  // an active hold keeps admission shut.
  }
  // The rebooted machine re-registers with a fresh measurement, but its agent
  // holds BE growth back while the pod warms up.
  telemetry_[pod].tail_ms = SampledTailMs();
  telemetry_[pod].sampled_at = sim_->Now();
  if (!agents_.empty()) {
    // A reboot is a heavier disruption than a single kill: arm the full
    // exponential hold rather than entering at level one.
    for (uint64_t i = 0; i < MachineAgent::kBackoffMaxLevel; ++i) {
      agents_[pod]->TriggerBackoff();
    }
  }
  if (config_.observer != nullptr) {
    config_.observer->OnPodReboot(*this, pod);
  }
}

}  // namespace rhythm
