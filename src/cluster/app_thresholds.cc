#include "src/cluster/app_thresholds.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

#include "src/cluster/deployment.h"
#include "src/cluster/metrics.h"
#include "src/common/logging.h"

namespace rhythm {

AppThresholds DeriveAppThresholds(LcAppKind app_kind, const ThresholdOptions& options) {
  AppThresholds result;
  const AppSpec app = MakeApp(app_kind);
  const int pods = app.pod_count();

  // 1. Solo profile (request tracer on).
  result.profile = ProfileSolo(app_kind, DefaultProfileLevels(), options.profile);

  // 2. Contributions (Eq. 1-5).
  result.contributions = AnalyzeContributions(result.profile.matrix, app.call_root);
  const std::vector<double> normalized = NormalizedContributions(result.contributions);

  // 3. loadlimit per pod from the CoV curves (Figure 8 rule).
  result.pods.resize(pods);
  for (int pod = 0; pod < pods; ++pod) {
    result.pods[pod].loadlimit =
        DeriveLoadlimit(result.profile.levels, result.profile.pod_cov[pod]);
  }

  // 4. slacklimit via Algorithm 1. Each probe runs the co-location with the
  //    candidate limits and reports whether the SLA was violated.
  uint64_t probe_seed = options.profile.seed * 7919;
  const auto probe_once = [&](const std::vector<double>& slacklimits, double load,
                              BeJobKind be) {
    DeploymentConfig config;
    config.app_kind = app_kind;
    config.be_kind = be;
    config.controller = ControllerKind::kRhythm;
    config.thresholds.resize(pods);
    for (int pod = 0; pod < pods; ++pod) {
      config.thresholds[pod].loadlimit = result.pods[pod].loadlimit;
      config.thresholds[pod].slacklimit = slacklimits[pod];
    }
    config.seed = ++probe_seed;
    Deployment deployment(config);
    const ConstantLoad profile(load);
    deployment.Start(&profile);
    deployment.RunFor(options.probe_warmup_s);
    const double t0 = deployment.sim().Now();
    const uint64_t violations_before = deployment.TotalSlaViolations();
    deployment.RunFor(options.probe_measure_s);
    if (deployment.TotalSlaViolations() > violations_before) {
      return true;
    }
    // A probe that merely grazes the SLA is already too aggressive: the
    // worst per-second tail of a longer production run would cross it.
    const double worst = deployment.tail_series().MaxIn(t0, deployment.sim().Now());
    return worst > 0.96 * deployment.sla_ms();
  };
  const SlaProbe probe = [&](const std::vector<double>& slacklimits) {
    for (double load : options.probe_loads) {
      for (BeJobKind be : options.probe_bes) {
        if (probe_once(slacklimits, load, be)) {
          return true;
        }
      }
    }
    return false;
  };
  const std::vector<double> slacklimits =
      FindSlacklimits(normalized, probe, options.max_iterations);
  for (int pod = 0; pod < pods; ++pod) {
    result.pods[pod].slacklimit = slacklimits[pod];
  }
  return result;
}

namespace {

// Fingerprint of the model parameters that influence threshold derivation,
// so a stale disk-cache entry is ignored after recalibration.
uint64_t SpecFingerprint(const AppSpec& app) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ULL;
  };
  mix(app.maxload_qps);
  mix(app.sla_ms);
  for (const ComponentSpec& comp : app.components) {
    mix(comp.base_service_ms);
    mix(comp.sigma);
    mix(comp.load_slope);
    mix(comp.load_power);
    mix(comp.sigma_slope);
    mix(comp.sigma_power);
    mix(static_cast<double>(comp.workers));
    mix(comp.sensitivity.cpu);
    mix(comp.sensitivity.llc);
    mix(comp.sensitivity.dram);
    mix(comp.sensitivity.net);
    mix(comp.sensitivity.freq);
  }
  return hash;
}

}  // namespace

std::string ThresholdDiskCachePath(LcAppKind app) {
  const char* dir = std::getenv("RHYTHM_THRESHOLD_CACHE");
  if (dir == nullptr || dir[0] == '\0') {
    return {};
  }
  char name[256];
  std::snprintf(name, sizeof(name), "%s/%s-%016llx.thresholds", dir, LcAppKindName(app),
                static_cast<unsigned long long>(SpecFingerprint(MakeApp(app))));
  return name;
}

bool LoadThresholdsFromDisk(const std::string& path, int pods, AppThresholds* out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return false;
  }
  out->pods.resize(pods);
  out->contributions.resize(pods);
  bool ok = true;
  for (int pod = 0; pod < pods && ok; ++pod) {
    ok = std::fscanf(file, "%lf %lf %lf %lf %lf %lf %lf", &out->pods[pod].loadlimit,
                     &out->pods[pod].slacklimit, &out->contributions[pod].contribution,
                     &out->contributions[pod].weight_p,
                     &out->contributions[pod].correlation_rho,
                     &out->contributions[pod].varcoef_v,
                     &out->contributions[pod].alpha) == 7;
  }
  std::fclose(file);
  return ok;
}

void SaveThresholdsToDisk(const std::string& path, const AppThresholds& thresholds) {
  // Stage the entry next to its final name and rename into place: rename(2)
  // is atomic within a filesystem, so a reader racing this writer — another
  // thread of this process or another bench process sharing the cache
  // directory — always opens a complete file. The staging name carries pid
  // plus a process-local counter so concurrent writers never collide.
  static std::atomic<uint64_t> sequence{0};
  char staging[320];
  std::snprintf(staging, sizeof(staging), "%s.tmp.%ld.%llu", path.c_str(),
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(sequence.fetch_add(1)));
  std::FILE* file = std::fopen(staging, "w");
  if (file == nullptr) {
    return;
  }
  for (size_t pod = 0; pod < thresholds.pods.size(); ++pod) {
    std::fprintf(file, "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 thresholds.pods[pod].loadlimit, thresholds.pods[pod].slacklimit,
                 thresholds.contributions[pod].contribution,
                 thresholds.contributions[pod].weight_p,
                 thresholds.contributions[pod].correlation_rho,
                 thresholds.contributions[pod].varcoef_v, thresholds.contributions[pod].alpha);
  }
  std::fclose(file);
  if (std::rename(staging, path.c_str()) != 0) {
    std::remove(staging);
  }
}

const AppThresholds& CachedAppThresholds(LcAppKind app) {
  // Per-app slots under a short-lived map lock, each filled exactly once:
  // callers racing on the same app block on its call_once while callers for
  // different apps load or derive concurrently — a RunPlan touching five
  // services characterizes them all in parallel. Slots are node-stable, so
  // returned references stay valid for the process lifetime.
  struct Slot {
    std::once_flag once;
    AppThresholds value;
  };
  static std::mutex mutex;
  static std::map<LcAppKind, Slot>* cache = new std::map<LcAppKind, Slot>();
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mutex);
    slot = &(*cache)[app];
  }
  std::call_once(slot->once, [app, slot] {
    const AppSpec spec = MakeApp(app);
    const std::string path = ThresholdDiskCachePath(app);
    if (!path.empty() && LoadThresholdsFromDisk(path, spec.pod_count(), &slot->value)) {
      RHYTHM_LOG(kInfo) << "Loaded thresholds for " << LcAppKindName(app) << " from " << path;
      return;
    }
    RHYTHM_LOG(kInfo) << "Deriving thresholds for " << LcAppKindName(app);
    slot->value = DeriveAppThresholds(app);
    if (!path.empty()) {
      SaveThresholdsToDisk(path, slot->value);
    }
  });
  return slot->value;
}

}  // namespace rhythm
