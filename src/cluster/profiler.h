// Solo-run profiler: the "profiling LC once" half of Rhythm's hybrid
// strategy. Runs the LC service alone at a sweep of load levels, captures
// kernel events through the request tracer (or reads the service's built-in
// jaeger-style sojourns for SNMS), and produces the per-pod sojourn/CoV/tail
// matrix the contribution analyzer and thresholding consume.

#ifndef RHYTHM_SRC_CLUSTER_PROFILER_H_
#define RHYTHM_SRC_CLUSTER_PROFILER_H_

#include <vector>

#include "src/analysis/contribution.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

struct ProfileOptions {
  uint64_t seed = 7;
  double warmup_s = 10.0;
  double measure_s = 45.0;
  // Use the kernel-event tracer to derive mean sojourns (validates the §3.3
  // pipeline); services with built-in tracing (SNMS) always use direct
  // recording, as the paper does.
  bool use_tracer = true;
  double noise_events_per_request = 0.5;
};

struct ProfileResult {
  std::vector<double> levels;   // load fractions profiled.
  ProfileMatrix matrix;         // mean sojourn per pod per level + tail.
  // Per-request sojourn CoV per pod per level (loadlimit input).
  std::vector<std::vector<double>> pod_cov;
  // Mean 99th-percentile latency per level (same as matrix.tail_ms).
  uint64_t requests_profiled = 0;
};

// Default sweep: 5%..95% in 5% steps (19 levels), mirroring the paper's
// 1..85% sweeps at practical cost.
std::vector<double> DefaultProfileLevels();

ProfileResult ProfileSolo(LcAppKind app, const std::vector<double>& levels,
                          const ProfileOptions& options);

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_PROFILER_H_
