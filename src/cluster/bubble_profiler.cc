#include "src/cluster/bubble_profiler.h"

#include "src/cluster/deployment.h"
#include "src/common/logging.h"

namespace rhythm {

namespace {

// One bubble run: `steps` growth steps of a single bubble instance on
// `pod`'s machine. Returns true when the SLA held throughout.
bool BubbleRunSafe(LcAppKind app, BeJobKind bubble, int pod, int steps,
                   const BubbleOptions& options) {
  DeploymentConfig config;
  config.app_kind = app;
  config.be_kind = bubble;
  config.enable_be = true;
  config.controller = ControllerKind::kNone;
  config.seed = options.seed + static_cast<uint64_t>(pod) * 131 + steps;
  Deployment deployment(config);
  const ConstantLoad profile(options.load);
  deployment.Start(&profile);
  BeRuntime* be = deployment.be(pod);
  RHYTHM_CHECK(be != nullptr);
  if (!be->LaunchInstance()) {
    return true;  // machine cannot even host the bubble: trivially safe.
  }
  for (int step = 1; step < steps; ++step) {
    be->GrowInstance(0);
  }
  be->PublishActivity();
  deployment.RunFor(options.warmup_s);
  const double t0 = deployment.sim().Now();
  deployment.RunFor(options.measure_s);
  const double worst = deployment.tail_series().MaxIn(t0, deployment.sim().Now());
  return worst <= deployment.sla_ms();
}

}  // namespace

BubbleResult ProfileBubble(LcAppKind app_kind, BeJobKind bubble, const BubbleOptions& options) {
  const AppSpec app = MakeApp(app_kind);
  BubbleResult result;
  result.tolerated_steps.assign(app.pod_count(), 0);
  result.contribution.assign(app.pod_count(), 0.0);

  for (int pod = 0; pod < app.pod_count(); ++pod) {
    int tolerated = 0;
    for (int steps = 1; steps <= options.max_steps; ++steps) {
      if (!BubbleRunSafe(app_kind, bubble, pod, steps, options)) {
        break;
      }
      tolerated = steps;
    }
    result.tolerated_steps[pod] = tolerated;
  }

  // Bubble contribution: inverse of tolerance, normalized.
  double total = 0.0;
  for (int pod = 0; pod < app.pod_count(); ++pod) {
    result.contribution[pod] = 1.0 / (1.0 + result.tolerated_steps[pod]);
    total += result.contribution[pod];
  }
  for (double& value : result.contribution) {
    value /= total;
  }
  return result;
}

}  // namespace rhythm
