// Multi-tenant LC co-location — the paper's §7 future work ("further
// improve the resource efficiency through co-locating multi-tenant LCs and
// BEs").
//
// Two LC services share the machine pool: machine i hosts service A's pod i
// and service B's pod i (while both exist), plus BE jobs. Each service keeps
// its own SLA, profile and per-Servpod thresholds; the machine's controller
// joins them conservatively — a BE action must be safe for *every* tenant on
// the machine:
//   loadlimit  = min over hosted pods,
//   slacklimit = max over hosted pods,
//   the slack signal is the minimum normalized slack across tenants,
//   the load signal is the maximum tenant load.

#ifndef RHYTHM_SRC_CLUSTER_MULTI_LC_H_
#define RHYTHM_SRC_CLUSTER_MULTI_LC_H_

#include <memory>
#include <vector>

#include "src/cluster/app_thresholds.h"
#include "src/cluster/deployment.h"

namespace rhythm {

struct MultiLcConfig {
  LcAppKind app_a = LcAppKind::kEcommerce;
  LcAppKind app_b = LcAppKind::kSolr;
  BeJobKind be = BeJobKind::kWordcount;
  ControllerKind controller = ControllerKind::kRhythm;
  // Per-service thresholds; taken from CachedAppThresholds when empty and
  // the controller is Rhythm.
  std::vector<ServpodThresholds> thresholds_a;
  std::vector<ServpodThresholds> thresholds_b;
  uint64_t seed = 101;
  MachineSpec machine_spec;
};

// Summary of one multi-tenant run.
struct MultiLcSummary {
  double be_throughput = 0.0;      // mean normalized BE throughput per machine.
  double worst_tail_ratio_a = 0.0;  // worst 99th / SLA for each tenant.
  double worst_tail_ratio_b = 0.0;
  uint64_t sla_violations = 0;      // ticks where either tenant violated.
  uint64_t be_kills = 0;
};

class MultiLcDeployment {
 public:
  explicit MultiLcDeployment(const MultiLcConfig& config);

  // Both services run against the same load profile (fraction of their own
  // MaxLoad); the profile must outlive the deployment.
  void Start(const LoadProfile* profile);
  void RunFor(double seconds);

  Simulator& sim() { return sim_; }
  int machine_count() const { return static_cast<int>(machines_.size()); }
  LcService& service_a() { return *service_a_; }
  LcService& service_b() { return *service_b_; }
  BeRuntime* be(int machine) { return be_runtimes_[machine].get(); }
  MachineAgent* agent(int machine) {
    return agents_.empty() ? nullptr : agents_[machine].get();
  }

  MultiLcSummary Summarize(double t0, double t1) const;

 private:
  void AccountingTick();
  void ControllerTick();

  // Pod index of each service hosted on `machine` (-1 when none).
  int PodA(int machine) const;
  int PodB(int machine) const;

  MultiLcConfig config_;
  AppSpec app_a_;
  AppSpec app_b_;
  Simulator sim_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unique_ptr<LcService> service_a_;
  std::unique_ptr<LcService> service_b_;
  std::vector<std::unique_ptr<BeRuntime>> be_runtimes_;
  std::vector<std::unique_ptr<MachineAgent>> agents_;
  std::vector<TimeSeries> be_progress_;
  TimeSeries tail_a_;
  TimeSeries tail_b_;
  uint64_t joint_violations_ = 0;
  bool started_ = false;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_MULTI_LC_H_
