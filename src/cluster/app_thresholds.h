// End-to-end threshold derivation for one LC application: profile solo ->
// contributions -> loadlimits (CoV rule) -> slacklimits (Algorithm 1 with a
// mixed-BE probe). This is the one-time characterization Rhythm performs
// when a new LC service is deployed (§3.2).

#ifndef RHYTHM_SRC_CLUSTER_APP_THRESHOLDS_H_
#define RHYTHM_SRC_CLUSTER_APP_THRESHOLDS_H_

#include <string>
#include <vector>

#include "src/analysis/contribution.h"
#include "src/cluster/profiler.h"
#include "src/control/thresholds.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

struct AppThresholds {
  std::vector<ServpodThresholds> pods;
  std::vector<PodContribution> contributions;
  ProfileResult profile;
};

struct ThresholdOptions {
  ProfileOptions profile;
  // Probe settings for Algorithm 1's run_system step. The paper recommends
  // probing with representative mixed-intensity BEs several times; each
  // candidate limit runs every (load, BE) combination below and counts as
  // violated if any run breaks (or grazes) the SLA.
  std::vector<double> probe_loads = {0.45, 0.80};
  double probe_warmup_s = 15.0;
  // Long enough for paced BE growth to reach its equilibrium allocation —
  // a shorter probe ends mid-ramp and overestimates how much slack survives.
  double probe_measure_s = 150.0;
  std::vector<BeJobKind> probe_bes = {BeJobKind::kWordcount, BeJobKind::kStreamDramBig};
  int max_iterations = 16;
};

AppThresholds DeriveAppThresholds(LcAppKind app, const ThresholdOptions& options = {});

// Process-wide cached derivation (thresholds are derived once per LC service
// and reused by every co-location experiment, as in the paper). When the
// RHYTHM_THRESHOLD_CACHE environment variable names a directory, derived
// thresholds are additionally persisted there — keyed by a fingerprint of
// the application's model parameters — so separate bench binaries share one
// characterization pass. Disk-cached entries carry thresholds and
// contributions but no profile matrix.
//
// Thread-safe: concurrent callers for the same app block until one of them
// finishes the load-or-derive exactly once; callers for different apps
// derive in parallel (the parallel experiment runner depends on this).
const AppThresholds& CachedAppThresholds(LcAppKind app);

// Disk-cache plumbing behind CachedAppThresholds, exposed so tests and
// tools can exercise it directly. Writers stage to a temp file and rename,
// so a concurrent reader sees either the old complete entry or the new one,
// never a torn write — within a process or across bench processes sharing
// one cache directory.
std::string ThresholdDiskCachePath(LcAppKind app);  // "" when cache disabled.
bool LoadThresholdsFromDisk(const std::string& path, int pods, AppThresholds* out);
void SaveThresholdsToDisk(const std::string& path, const AppThresholds& thresholds);

}  // namespace rhythm

#endif  // RHYTHM_SRC_CLUSTER_APP_THRESHOLDS_H_
