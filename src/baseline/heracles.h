// Heracles baseline (Lo et al., ISCA'15) as the paper configures it (§5.1):
// a feedback controller that does NOT distinguish Servpods —
//   * BE jobs are disabled on every machine whenever the LC load exceeds
//     85% of MaxLoad;
//   * BE growth is disallowed whenever the tail-latency slack drops below
//     10%.
// Mechanically it reuses the same machine agent and subcontrollers as
// Rhythm, with the uniform thresholds applied to every Servpod.

#ifndef RHYTHM_SRC_BASELINE_HERACLES_H_
#define RHYTHM_SRC_BASELINE_HERACLES_H_

#include "src/control/thresholds.h"

namespace rhythm {

// The uniform thresholds Heracles applies at every machine.
ServpodThresholds HeraclesThresholds();

constexpr double kHeraclesLoadlimit = 0.85;
constexpr double kHeraclesSlacklimit = 0.10;

}  // namespace rhythm

#endif  // RHYTHM_SRC_BASELINE_HERACLES_H_
