#include "src/baseline/heracles.h"

namespace rhythm {

ServpodThresholds HeraclesThresholds() {
  return ServpodThresholds{.loadlimit = kHeraclesLoadlimit, .slacklimit = kHeraclesSlacklimit};
}

}  // namespace rhythm
