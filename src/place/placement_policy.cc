#include "src/place/placement_policy.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace rhythm {

namespace internal {
// Defined in policies.cc; registers the four built-in policies. Called
// under the registry lock before every lookup so a static-initialization
// order cannot leave the registry empty in a static-library build.
void RegisterBuiltinPoliciesLocked(
    std::map<std::string, PlacementPolicyFactory>& registry);
}  // namespace internal

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, PlacementPolicyFactory>& Registry() {
  static std::map<std::string, PlacementPolicyFactory>* registry = [] {
    auto* map = new std::map<std::string, PlacementPolicyFactory>();
    internal::RegisterBuiltinPoliciesLocked(*map);
    return map;
  }();
  return *registry;
}

}  // namespace

bool RegisterPlacementPolicy(const std::string& name,
                             PlacementPolicyFactory factory) {
  if (name.empty() || !factory) {
    return false;
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name,
                                                     uint64_t seed) {
  PlacementPolicyFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto& registry = Registry();
    auto it = registry.find(name);
    if (it == registry.end()) {
      std::string known;
      for (const auto& [known_name, unused] : registry) {
        if (!known.empty()) {
          known += ", ";
        }
        known += known_name;
      }
      throw std::invalid_argument("unknown placement policy \"" + name +
                                  "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(seed);
}

std::vector<std::string> PlacementPolicyNames() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, unused] : Registry()) {
    names.push_back(name);
  }
  return names;
}

}  // namespace rhythm
