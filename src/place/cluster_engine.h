// Cluster-level execution: ClusterRunRequest describes one policy evaluated
// against one ClusterSpec (the same declarative value-type idiom as
// RunRequest), RunCluster/RunClusterPlan execute it, and ClusterSummary is
// the Fig. 12/15-style rollup — cluster EMU, per-app SLO violation rates,
// placement churn.
//
// Execution model: placement is computed serially (a pure function of
// spec x policy x seed x epoch), then each epoch's placed groups run
// *concurrently inside the trial* on the partitioned cluster engine
// (src/sim/sharded_engine.h): every group is a simulation island pinned to a
// logical slot, islands are weight-balanced across RunnerOptions::shards
// worker shards, and all of them advance in lockstep conservative time
// windows aligned to the controller tick, with a full barrier between
// windows. Because every island's RNG stream and trial seed derive from its
// logical slot (DeriveGroupSeed / DeriveShardSeed) — never from the physical
// shard — and barrier merges run in slot order, results are bit-identical at
// any shard count, including 1. Placement decisions are emitted as
// ObsKind::kPlacement events into a Recording auditable with
// tools/obs_query; barrier snapshots feed the optional ClusterTickHook.

#ifndef RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_
#define RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/control/cluster_tick.h"
#include "src/place/cluster_spec.h"
#include "src/place/placement_policy.h"
#include "src/runner/runner.h"

namespace rhythm {

// One cluster evaluation: `policy` placing `spec` for `epochs` placement
// rounds, every placed group simulated as a Deployment trial.
struct ClusterRunRequest {
  ClusterSpec spec;
  std::string policy = kPolicyRhythmAware;
  ControllerKind controller = ControllerKind::kRhythm;
  ControlHardening hardening;
  uint64_t seed = 11;
  // Per-group trial windows (shorter than RunRequest defaults: a cluster run
  // multiplies them by groups x epochs).
  double warmup_s = 10.0;
  double measure_s = 60.0;
  // Placement rounds. Each epoch re-places the cluster and re-runs every
  // group; churn counts assignment changes between consecutive epochs.
  int epochs = 1;
  // Optional per-epoch load multiplier (diurnal ramp); entry e scales every
  // group's offered load in epoch e (clamped to [0, 1]). Missing entries
  // default to 1. Policies see the scaled loads.
  std::vector<double> epoch_load_scale;
  // Scoring-model source for the policies. Null uses DefaultPlacementModel
  // (catalog sensitivities + cached thresholds — derives thresholds once per
  // app). Tests inject cheap stubs here.
  std::function<AppPlacementModel(LcAppKind)> model_provider;
  // Invariant monitoring forwarded to every group trial.
  InvariantOptions verify;
  // Placement observability. When enabled, the placement event stream is
  // collected into ClusterSummary::recording and written to any export paths
  // named here. Group trials themselves run unobserved (their summaries
  // carry the metrics).
  ObsOptions obs;
  // Top-controller seam: fired on the coordinating thread after every
  // conservative-window barrier with a slot-order-merged snapshot of the
  // running groups. Must be read-only; see src/control/cluster_tick.h.
  ClusterTickHook on_tick;
  // Opt-in per-group barrier events (ObsPlacementOp::kTickBarrier) merged
  // into the recording. Off by default: a long run emits one event per
  // placed group per 2 s window.
  bool record_tick_events = false;
  std::string label;
};

struct ClusterRunPlan {
  std::vector<ClusterRunRequest> requests;

  ClusterRunRequest& Add(ClusterRunRequest request) {
    requests.push_back(std::move(request));
    return requests.back();
  }

  size_t size() const { return requests.size(); }
  bool empty() const { return requests.empty(); }
};

// What happened to one group in one epoch. Unplaced groups carry a
// default-constructed summary (their demand went unserved).
struct GroupOutcome {
  int epoch = 0;
  int group = 0;
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kCpuStress;
  bool placed = false;
  bool run_solo = false;
  int first_machine = -1;
  int pods = 0;
  double load = 0.0;   // offered load after the epoch scale.
  double score = 0.0;  // the policy's predicted-interference score.
  RunSummary summary;
};

// Per-application rollup across every epoch (placed trials only).
struct AppClusterStats {
  LcAppKind app = LcAppKind::kEcommerce;
  int trials = 0;               // placed group-trials.
  int unplaced = 0;             // group-epochs that went unserved.
  double emu = 0.0;             // mean group EMU.
  double lc_throughput = 0.0;   // mean group LC throughput.
  uint64_t sla_violations = 0;  // summed controller SLO breaches.
  double slo_violation_rate = 0.0;  // violations / controller ticks.
  double worst_tail_ratio = 0.0;    // max over trials.
};

// The cluster-level metrics of one ClusterRunRequest. Machine-normalized
// quantities (emu, throughputs, utilizations) divide by spec.machines and
// average over epochs, so idle machines and unplaced groups count as zero —
// a policy that fails to place demand pays for it.
struct ClusterSummary {
  std::string policy;
  std::string label;
  int machines = 0;
  int machines_used = 0;  // max machines occupied in any epoch.
  int epochs = 0;
  int groups_total = 0;     // group-epochs demanded (groups x epochs).
  int groups_placed = 0;    // group-epochs that landed.
  int groups_unplaced = 0;  // group-epochs sacrificed for lack of machines.
  int solo_groups = 0;      // placed group-epochs that ran BE-free.

  double emu = 0.0;            // cluster EMU (the paper's §5.1 metric).
  double lc_throughput = 0.0;  // machine-normalized LC throughput.
  double be_throughput = 0.0;  // machine-normalized BE throughput.
  double cpu_util = 0.0;
  double membw_util = 0.0;
  uint64_t sla_violations = 0;
  uint64_t be_kills = 0;
  // Violations per controller tick across placed trials: sla_violations /
  // (placed trials x measure_s / MachineAgent::kPeriodSeconds).
  double slo_violation_rate = 0.0;
  double worst_tail_ratio = 0.0;
  // Groups whose assignment (BE kind, solo flag or placed-ness) changed
  // between consecutive epochs, summed; 0 for single-epoch runs.
  int placement_churn = 0;

  std::vector<AppClusterStats> per_app;  // ordered by first appearance.
  std::vector<GroupOutcome> groups;      // epoch-major, group order within.
  // Placement event stream (ObsKind::kPlacement), meta.app = "cluster",
  // meta.be = policy. Always populated; exported when the request's
  // ObsOptions name paths.
  Recording recording;
};

// Seed for `group`'s trial in `epoch`: DeriveTrialSeed over the flattened
// epoch-major index, so a group's trial is reproducible standalone with
// plain Run() given the same derived seed.
uint64_t DeriveGroupSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                         int group);

// Seed for slot-local engine streams (synthetic spec generation, per-slot
// jitter sources): a stream family separated from DeriveTrialSeed /
// DeriveGroupSeed by salting the base seed before derivation, so engine-side
// draws can never collide with a trial's stream. Keyed by logical slot,
// never by physical shard — any RHYTHM_SHARDS value sees identical streams.
uint64_t DeriveShardSeed(uint64_t base_seed, uint64_t slot);

// Executes one cluster request / a batch of them. Plan results come back in
// plan order; every request runs on one shared shard pool sized by
// RunnerOptions::shards (<= 0: RHYTHM_SHARDS, then the jobs resolution) —
// bit-identical at any shard count. Malformed requests (unknown policy,
// empty demand, non-positive windows or epochs, policy decisions that skip
// a group or overdraw the BE quota) throw std::invalid_argument; trial
// errors propagate lowest slot first, matching the flat runner's
// first-error contract.
ClusterSummary RunCluster(const ClusterRunRequest& request,
                          const RunnerOptions& options = {});
std::vector<ClusterSummary> RunClusterPlan(const ClusterRunPlan& plan,
                                           const RunnerOptions& options = {});

}  // namespace rhythm

#endif  // RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_
