// Cluster-level execution: ClusterRunRequest describes one policy evaluated
// against one ClusterSpec (the same declarative value-type idiom as
// RunRequest), RunCluster/RunClusterPlan execute it, and ClusterSummary is
// the Fig. 12/15-style rollup — cluster EMU, per-app SLO violation rates,
// placement churn.
//
// Execution model: placement is computed serially (a pure function of
// spec x policy x seed x epoch), then each epoch's placed groups run
// *concurrently inside the trial* on the partitioned cluster engine
// (src/sim/sharded_engine.h): every group is a simulation island pinned to a
// logical slot, islands are weight-balanced across RunnerOptions::shards
// worker shards, and all of them advance in lockstep conservative time
// windows aligned to the controller tick, with a full barrier between
// windows. Because every island's RNG stream and trial seed derive from its
// logical slot (DeriveGroupSeed / DeriveShardSeed) — never from the physical
// shard — and barrier merges run in slot order, results are bit-identical at
// any shard count, including 1. Placement decisions are emitted as
// ObsKind::kPlacement events into a Recording auditable with
// tools/obs_query; barrier snapshots feed the optional ClusterTickHook.

#ifndef RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_
#define RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/control/cluster_supervisor.h"
#include "src/control/cluster_tick.h"
#include "src/place/cluster_spec.h"
#include "src/place/placement_policy.h"
#include "src/runner/runner.h"

namespace rhythm {

// One cluster evaluation: `policy` placing `spec` for `epochs` placement
// rounds, every placed group simulated as a Deployment trial.
struct ClusterRunRequest {
  ClusterSpec spec;
  std::string policy = kPolicyRhythmAware;
  ControllerKind controller = ControllerKind::kRhythm;
  ControlHardening hardening;
  uint64_t seed = 11;
  // Per-group trial windows (shorter than RunRequest defaults: a cluster run
  // multiplies them by groups x epochs).
  double warmup_s = 10.0;
  double measure_s = 60.0;
  // Placement rounds. Each epoch re-places the cluster and re-runs every
  // group; churn counts assignment changes between consecutive epochs.
  int epochs = 1;
  // Optional per-epoch load multiplier (diurnal ramp); entry e scales every
  // group's offered load in epoch e (clamped to [0, 1]). Missing entries
  // default to 1. Policies see the scaled loads.
  std::vector<double> epoch_load_scale;
  // Scoring-model source for the policies. Null uses DefaultPlacementModel
  // (catalog sensitivities + cached thresholds — derives thresholds once per
  // app). Tests inject cheap stubs here.
  std::function<AppPlacementModel(LcAppKind)> model_provider;
  // Invariant monitoring forwarded to every group trial.
  InvariantOptions verify;
  // Placement observability. When enabled, the placement event stream is
  // collected into ClusterSummary::recording and written to any export paths
  // named here. Group trials themselves run unobserved (their summaries
  // carry the metrics).
  ObsOptions obs;
  // Cluster-scope fault schedule (failure domains, DESIGN.md §14). Only
  // kMachineFailure / kMachineRestart events are accepted — FaultEvent::pod
  // is a *machine index* into the spec's roster, validated against
  // spec.machines. Losses are enacted at the first barrier at/after start_s
  // (epoch starts count as barriers); victims' trials are killed and, with
  // the supervisor enabled, failed over. Per-deployment fault kinds are
  // rejected here: they belong on individual RunRequests.
  std::shared_ptr<const FaultSchedule> faults;
  // Barrier-driven failover (src/control/cluster_supervisor.h). Disabled by
  // default: losses then simply take their groups down for the epoch.
  SupervisorOptions supervisor;
  // Top-controller seam: fired on the coordinating thread after every
  // conservative-window barrier with a slot-order-merged snapshot of the
  // running groups. Must be read-only; see src/control/cluster_tick.h.
  ClusterTickHook on_tick;
  // Opt-in per-group barrier events (ObsPlacementOp::kTickBarrier) merged
  // into the recording. Off by default: a long run emits one event per
  // placed group per 2 s window.
  bool record_tick_events = false;
  std::string label;
};

struct ClusterRunPlan {
  std::vector<ClusterRunRequest> requests;

  ClusterRunRequest& Add(ClusterRunRequest request) {
    requests.push_back(std::move(request));
    return requests.back();
  }

  size_t size() const { return requests.size(); }
  bool empty() const { return requests.empty(); }
};

// What happened to one incarnation of one group in one epoch. Unplaced
// groups carry a default-constructed summary (their demand went unserved).
// Machine loss can split a group-epoch into several incarnations: the epoch
// placement (incarnation 0), then one entry per failover replacement.
// ClusterSummary::groups is sorted by (epoch, group, incarnation).
struct GroupOutcome {
  int epoch = 0;
  int group = 0;
  LcAppKind app = LcAppKind::kEcommerce;
  BeJobKind be = BeJobKind::kCpuStress;
  bool placed = false;
  bool run_solo = false;
  int first_machine = -1;
  int pods = 0;
  double load = 0.0;   // offered load after the epoch scale.
  double score = 0.0;  // the policy's predicted-interference score.
  // -- Failure domains --
  int incarnation = 0;    // 0: epoch placement; n: n-th failover replacement.
  double start_s = 0.0;   // epoch-local start (failovers start mid-epoch).
  // Seconds of the epoch's measurement window this incarnation served; the
  // rollup weights its rates by served_measure_s / measure_s. Exactly
  // measure_s for an undisrupted epoch placement.
  double served_measure_s = 0.0;
  bool disrupted = false;  // killed by machine loss before the epoch ended.
  RunSummary summary;
};

// Per-application rollup across every epoch (placed trials only).
struct AppClusterStats {
  LcAppKind app = LcAppKind::kEcommerce;
  int trials = 0;               // placed group-trials.
  int unplaced = 0;             // group-epochs that went unserved.
  double emu = 0.0;             // mean group EMU.
  double lc_throughput = 0.0;   // mean group LC throughput.
  uint64_t sla_violations = 0;  // summed controller SLO breaches.
  double slo_violation_rate = 0.0;  // violations / controller ticks.
  double worst_tail_ratio = 0.0;    // max over trials.
};

// The cluster-level metrics of one ClusterRunRequest. Machine-normalized
// quantities (emu, throughputs, utilizations) divide by spec.machines and
// average over epochs, so idle machines and unplaced groups count as zero —
// a policy that fails to place demand pays for it.
struct ClusterSummary {
  std::string policy;
  std::string label;
  int machines = 0;
  int machines_used = 0;  // max machines occupied in any epoch.
  int epochs = 0;
  int groups_total = 0;     // group-epochs demanded (groups x epochs).
  int groups_placed = 0;    // group-epochs that landed.
  int groups_unplaced = 0;  // group-epochs sacrificed for lack of machines.
  int solo_groups = 0;      // placed group-epochs that ran BE-free.

  double emu = 0.0;            // cluster EMU (the paper's §5.1 metric).
  double lc_throughput = 0.0;  // machine-normalized LC throughput.
  double be_throughput = 0.0;  // machine-normalized BE throughput.
  double cpu_util = 0.0;
  double membw_util = 0.0;
  uint64_t sla_violations = 0;
  uint64_t be_kills = 0;
  // Violations per controller tick across placed trials: sla_violations /
  // (placed trials x measure_s / MachineAgent::kPeriodSeconds).
  double slo_violation_rate = 0.0;
  double worst_tail_ratio = 0.0;
  // Groups whose assignment (BE kind, solo flag or placed-ness) changed
  // between consecutive epochs, summed; 0 for single-epoch runs.
  int placement_churn = 0;

  // -- Failure domains (all zero when the request schedules no machine
  // faults; DESIGN.md §14) --
  int machines_failed = 0;      // loss transitions enacted.
  int machines_restarted = 0;   // rejoin transitions enacted.
  int machines_down_end = 0;    // still dead when the run ended.
  int groups_disrupted = 0;     // incarnations killed by machine loss.
  int groups_failed_over = 0;   // replacement incarnations started.
  int groups_lost = 0;          // disruptions nothing replaced (budget,
                                // capacity, or supervisor disabled).
  int pods_migrated = 0;        // machines allocated to replacements.
  // Group-seconds of demanded measurement time that went unserved because of
  // machine loss (per disrupted group-epoch: measure_s minus every
  // incarnation's served seconds, floored at zero).
  double down_group_seconds = 0.0;
  // Worst loss-to-enactment latency (barrier time minus the schedule's
  // start_s) — bounded by the "fail.latency" invariant.
  double worst_failover_latency_s = 0.0;
  int degraded_barriers = 0;    // barriers spent in degraded mode.
  // Cluster-scope invariant findings (src/verify/cluster_invariants.h),
  // populated when the request's verify mode is kCollect. Distinct from the
  // per-trial violations inside each GroupOutcome::summary.
  std::vector<InvariantViolation> cluster_invariant_violations;
  uint64_t cluster_invariant_violations_total = 0;

  std::vector<AppClusterStats> per_app;  // ordered by first appearance.
  // Sorted by (epoch, group, incarnation) — epoch-major with failover
  // incarnations interleaved after their group's epoch placement.
  std::vector<GroupOutcome> groups;
  // Placement event stream (ObsKind::kPlacement), meta.app = "cluster",
  // meta.be = policy. Always populated; exported when the request's
  // ObsOptions name paths.
  Recording recording;
};

// Seed for `group`'s trial in `epoch`: DeriveTrialSeed over the flattened
// epoch-major index, so a group's trial is reproducible standalone with
// plain Run() given the same derived seed.
uint64_t DeriveGroupSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                         int group);

// Seed for slot-local engine streams (synthetic spec generation, per-slot
// jitter sources): a stream family separated from DeriveTrialSeed /
// DeriveGroupSeed by salting the base seed before derivation, so engine-side
// draws can never collide with a trial's stream. Keyed by logical slot,
// never by physical shard — any RHYTHM_SHARDS value sees identical streams.
uint64_t DeriveShardSeed(uint64_t base_seed, uint64_t slot);

// Seed for a failover replacement trial: a third stream family (salted like
// DeriveShardSeed but with SplitMix64's second mixing multiplier), keyed by
// the flat group-epoch index and the incarnation number — so replacement
// trials never share a stream with epoch placements, shard streams, or each
// other, and a replacement is reproducible standalone with plain Run().
uint64_t DeriveFailoverSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                            int group, int incarnation);

// Executes one cluster request / a batch of them. Plan results come back in
// plan order; every request runs on one shared shard pool sized by
// RunnerOptions::shards (<= 0: RHYTHM_SHARDS, then the jobs resolution) —
// bit-identical at any shard count. Malformed requests (unknown policy,
// empty demand, non-positive windows or epochs, policy decisions that skip
// a group or overdraw the BE quota) throw std::invalid_argument; trial
// errors propagate lowest slot first, matching the flat runner's
// first-error contract.
ClusterSummary RunCluster(const ClusterRunRequest& request,
                          const RunnerOptions& options = {});
std::vector<ClusterSummary> RunClusterPlan(const ClusterRunPlan& plan,
                                           const RunnerOptions& options = {});

}  // namespace rhythm

#endif  // RHYTHM_SRC_PLACE_CLUSTER_ENGINE_H_
