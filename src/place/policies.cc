// The four built-in placement policies. Registered lazily by the registry
// (placement_policy.cc) so a static-library build cannot drop them.
//
// All four are pure functions of (view, construction seed): sorts are
// stable with the group index as the implicit tiebreaker, and BE-slot ties
// resolve to the lowest quota index, so every run of the same problem
// produces byte-identical decisions.

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/place/placement_policy.h"

namespace rhythm {
namespace {

const ResourceVector kUnitPressure = {1.0, 1.0, 1.0, 1.0, 1.0};

double TotalPressure(BeJobKind be) {
  const ResourceVector& p = GetBeJobSpec(be).pressure;
  return p.cpu + p.llc + p.dram + p.net + p.freq;
}

// Indices 0..n-1 sorted by `less`, stable (ties keep ascending index).
template <typename Less>
std::vector<size_t> SortedIndices(size_t n, Less less) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), less);
  return order;
}

// Takes the BE from the remaining quota that minimizes `cost`; ties go to
// the lowest quota index. Marks the slot used; false when the quota is
// exhausted (the caller places the group solo).
template <typename Cost>
bool TakeBestSlot(const std::vector<BeJobKind>& quota, std::vector<bool>& used,
                  Cost cost, BeJobKind* be, double* best_cost) {
  size_t best = quota.size();
  double best_value = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < quota.size(); ++i) {
    if (used[i]) {
      continue;
    }
    const double value = cost(quota[i]);
    if (best == quota.size() || value < best_value) {
      best = i;
      best_value = value;
    }
  }
  if (best == quota.size()) {
    return false;
  }
  used[best] = true;
  *be = quota[best];
  if (best_cost != nullptr) {
    *best_cost = best_value;
  }
  return true;
}

// -- bin-packing ------------------------------------------------------------
// The interference-blind consolidator: biggest groups first (first-fit
// decreasing over machine runs), heaviest BEs onto the biggest groups so
// every machine is as busy as possible. Exactly the policy the paper's
// baseline cluster schedulers approximate — it never looks at sensitivity
// or thresholds.
class BinPackingPolicy final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string kName = kPolicyBinPacking;
    return kName;
  }

  std::vector<PlacementDecision> Decide(const ClusterView& view) override {
    const std::vector<size_t> group_order = SortedIndices(
        view.pending.size(), [&view](size_t a, size_t b) {
          return view.pending[a].pods > view.pending[b].pods;
        });
    const std::vector<size_t> quota_order = SortedIndices(
        view.be_quota.size(), [&view](size_t a, size_t b) {
          return TotalPressure(view.be_quota[a]) > TotalPressure(view.be_quota[b]);
        });
    std::vector<PlacementDecision> decisions;
    decisions.reserve(view.pending.size());
    for (size_t i = 0; i < group_order.size(); ++i) {
      const PendingGroup& group = view.pending[group_order[i]];
      PlacementDecision decision;
      decision.group = group.group;
      if (quota_order.empty()) {
        decision.run_solo = true;
      } else {
        decision.be = view.be_quota[quota_order[i % quota_order.size()]];
        decision.score = TotalPressure(decision.be);
      }
      decisions.push_back(decision);
    }
    return decisions;
  }
};

// -- random -----------------------------------------------------------------
// The null hypothesis: a fresh sub-seeded shuffle of both the group priority
// and the BE assignment every epoch. Re-shuffling per epoch is what makes
// this baseline churn — the same group rarely keeps its neighbor.
class RandomPolicy final : public PlacementPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : seed_(seed) {}

  const std::string& name() const override {
    static const std::string kName = kPolicyRandom;
    return kName;
  }

  std::vector<PlacementDecision> Decide(const ClusterView& view) override {
    Rng rng(SplitMix64(seed_ + static_cast<uint64_t>(view.epoch) *
                                   0x9e3779b97f4a7c15ULL)
                .Next());
    std::vector<size_t> group_order(view.pending.size());
    std::iota(group_order.begin(), group_order.end(), size_t{0});
    Shuffle(group_order, rng);
    std::vector<size_t> quota_order(view.be_quota.size());
    std::iota(quota_order.begin(), quota_order.end(), size_t{0});
    Shuffle(quota_order, rng);

    std::vector<PlacementDecision> decisions;
    decisions.reserve(view.pending.size());
    for (size_t i = 0; i < group_order.size(); ++i) {
      PlacementDecision decision;
      decision.group = view.pending[group_order[i]].group;
      if (quota_order.empty()) {
        decision.run_solo = true;
      } else {
        decision.be = view.be_quota[quota_order[i % quota_order.size()]];
      }
      decisions.push_back(decision);
    }
    return decisions;
  }

 private:
  // Fisher-Yates with our own Rng: std::shuffle's draw sequence is not
  // pinned by the standard, and bit-reproducibility across toolchains is.
  static void Shuffle(std::vector<size_t>& values, Rng& rng) {
    for (size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[rng.UniformInt(i)]);
    }
  }

  uint64_t seed_;
};

// -- greedy-interference ----------------------------------------------------
// Sensitivity-aware but threshold-blind: the most sensitive groups pick
// first, and each takes the remaining BE with the lowest
// contribution-weighted interference score. What a scheduler built on
// profiler data alone (no Rhythm thresholds) can do.
class GreedyInterferencePolicy final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string kName = kPolicyGreedy;
    return kName;
  }

  std::vector<PlacementDecision> Decide(const ClusterView& view) override {
    std::vector<double> sensitivity(view.pending.size());
    for (size_t i = 0; i < view.pending.size(); ++i) {
      sensitivity[i] =
          GroupInterferenceScore(view.model(view.pending[i].app), kUnitPressure);
    }
    const std::vector<size_t> group_order = SortedIndices(
        view.pending.size(), [&sensitivity](size_t a, size_t b) {
          return sensitivity[a] > sensitivity[b];
        });

    std::vector<bool> used(view.be_quota.size(), false);
    std::vector<PlacementDecision> decisions;
    decisions.reserve(view.pending.size());
    for (size_t index : group_order) {
      const PendingGroup& group = view.pending[index];
      const AppPlacementModel& model = view.model(group.app);
      PlacementDecision decision;
      decision.group = group.group;
      decision.run_solo = !TakeBestSlot(
          view.be_quota, used,
          [&model](BeJobKind be) {
            return GroupInterferenceScore(model, GetBeJobSpec(be).pressure);
          },
          &decision.be, &decision.score);
      decisions.push_back(decision);
    }
    return decisions;
  }
};

// -- rhythm-aware -----------------------------------------------------------
// The full Rhythm-informed policy. It maximizes predicted cluster BE
// throughput instead of minimizing a per-group cost: the value of pairing a
// group with a BE is
//
//   pods x residual-fit(BE at the group's load) / (1 + 0.2 x Rhythm score)
//
// where residual-fit estimates what fraction of the BE's solo rate survives
// next to the LC (leftover cores / LLC ways / memory bandwidth on each of
// the group's machines divided by the job's per-instance demands, relative
// to its idle-machine SoloInstanceCount), and the threshold-aware score
// discounts pairings the per-machine controller would throttle. Pairs are
// taken globally best-first, so a scarce high-yield BE goes to the big
// lightly-loaded group where it earns the most — the information advantage
// over greedy-interference, which hands the least-interfering BE to the
// most sensitive group regardless of what that slot is worth elsewhere.
// A group at or above every pod's loadlimit runs solo (each of its machines
// would suspend BEs outright, the paper's loadlimit-0 switch).
class RhythmAwarePolicy final : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string kName = kPolicyRhythmAware;
    return kName;
  }

  std::vector<PlacementDecision> Decide(const ClusterView& view) override {
    const MachineSpec& machine = view.spec->machine_spec;

    // Remaining quota per BE kind (map: deterministic kind order).
    std::map<BeJobKind, int> remaining;
    for (BeJobKind be : view.be_quota) {
      ++remaining[be];
    }

    std::vector<double> risk(view.pending.size());
    std::vector<char> solo(view.pending.size(), 0);
    for (size_t i = 0; i < view.pending.size(); ++i) {
      const PendingGroup& group = view.pending[i];
      const AppPlacementModel& model = view.model(group.app);
      risk[i] = RhythmPlacementScore(model, kUnitPressure, group.load);
      solo[i] = LoadAboveAllLoadlimits(model, group.load) ? 1 : 0;
    }

    // Every (colocatable group, quota kind) pairing, best value first; ties
    // break to the lower group index then the lower BE enum value.
    struct Candidate {
      double value;
      size_t group;
      BeJobKind be;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(view.pending.size() * remaining.size());
    for (size_t i = 0; i < view.pending.size(); ++i) {
      if (solo[i]) {
        continue;
      }
      const PendingGroup& group = view.pending[i];
      const AppPlacementModel& model = view.model(group.app);
      for (const auto& [be, count] : remaining) {
        const double fit = ResidualFitFraction(machine, be, group.load);
        const double score =
            RhythmPlacementScore(model, GetBeJobSpec(be).pressure, group.load);
        candidates.push_back(
            {group.pods * fit / (1.0 + 0.2 * score), i, be});
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.value != b.value) {
                         return a.value > b.value;
                       }
                       if (a.group != b.group) {
                         return a.group < b.group;
                       }
                       return a.be < b.be;
                     });

    // Global best-pair-first matching; decision order is pick order so the
    // highest-value pairings also get machines first when they are scarce.
    std::vector<char> matched(view.pending.size(), 0);
    std::vector<PlacementDecision> decisions;
    decisions.reserve(view.pending.size());
    for (const Candidate& candidate : candidates) {
      auto slot = remaining.find(candidate.be);
      if (matched[candidate.group] || slot->second == 0) {
        continue;
      }
      --slot->second;
      matched[candidate.group] = 1;
      PlacementDecision decision;
      decision.group = view.pending[candidate.group].group;
      decision.be = candidate.be;
      decision.score = candidate.value;
      decisions.push_back(decision);
    }

    // Solo groups and quota-starved leftovers run without a BE, riskiest
    // first (stable on the group index).
    const std::vector<size_t> rest_order =
        SortedIndices(view.pending.size(), [&risk](size_t a, size_t b) {
          return risk[a] > risk[b];
        });
    for (size_t index : rest_order) {
      if (matched[index]) {
        continue;
      }
      PlacementDecision decision;
      decision.group = view.pending[index].group;
      decision.run_solo = true;
      decision.score = risk[index];
      decisions.push_back(decision);
    }
    return decisions;
  }
};

}  // namespace

namespace internal {

void RegisterBuiltinPoliciesLocked(
    std::map<std::string, PlacementPolicyFactory>& registry) {
  registry.emplace(kPolicyBinPacking, [](uint64_t) {
    return std::make_unique<BinPackingPolicy>();
  });
  registry.emplace(kPolicyRandom, [](uint64_t seed) {
    return std::make_unique<RandomPolicy>(seed);
  });
  registry.emplace(kPolicyGreedy, [](uint64_t) {
    return std::make_unique<GreedyInterferencePolicy>();
  });
  registry.emplace(kPolicyRhythmAware, [](uint64_t) {
    return std::make_unique<RhythmAwarePolicy>();
  });
}

}  // namespace internal
}  // namespace rhythm
