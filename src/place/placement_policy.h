// PlacementPolicy: the pluggable cluster-scheduler interface (batsched's
// ISchedulingAlgorithm shape adapted to Rhythm's problem).
//
// The engine hands a policy a read-only ClusterView — the spec, the pending
// groups, the BE quota multiset, and the per-app placement models — once per
// placement epoch: OnTick() lets stateful policies observe the epoch, then
// Decide() returns one PlacementDecision per pending group in *placement
// priority order*. The engine walks decisions in that order, allocating
// contiguous machine runs until the population is exhausted; later decisions
// go unplaced. A policy therefore controls (a) which BE lands next to which
// group, (b) which groups run solo, and (c) which groups are sacrificed when
// machines run out.
//
// Determinism contract: a policy must be a pure function of the view and the
// seed it was constructed with — no wall clock, no global RNG, no state
// carried across Decide() calls other than what OnTick() derives from views
// it was shown. This is what makes cluster runs bit-identical at any worker
// count and lets the registry recreate a policy anywhere.

#ifndef RHYTHM_SRC_PLACE_PLACEMENT_POLICY_H_
#define RHYTHM_SRC_PLACE_PLACEMENT_POLICY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/place/cluster_spec.h"
#include "src/place/interference_score.h"

namespace rhythm {

// Read-only snapshot of the placement problem at one epoch.
struct ClusterView {
  const ClusterSpec* spec = nullptr;
  int epoch = 0;
  // Epoch load multiplier (diurnal ramps); group loads are already scaled.
  double load_scale = 1.0;
  // Groups awaiting placement, in stable group order, loads scaled.
  std::vector<PendingGroup> pending;
  // BE quota for this epoch: one slot per pending group, expanded from the
  // backlog by weight (canonical backlog order). Policies assign each placed
  // group a BE drawn from this multiset.
  std::vector<BeJobKind> be_quota;
  // Per-app scoring models, indexed by the app kinds present in `pending`.
  std::function<const AppPlacementModel&(LcAppKind)> model;
};

// One group's placement. Decisions are returned in priority order; the
// engine allocates machines in that order and marks the overflow unplaced.
struct PlacementDecision {
  int group = -1;             // PendingGroup::group this decides.
  BeJobKind be = BeJobKind::kCpuStress;
  bool run_solo = false;      // true: no BE lands (be is ignored).
  double score = 0.0;         // the policy's predicted-interference score.
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const std::string& name() const = 0;

  // Epoch observation hook; called once per epoch, before Decide(), with the
  // same view. Default: stateless no-op.
  virtual void OnTick(const ClusterView& view) { (void)view; }

  // Returns exactly one decision per pending group (any order; the order IS
  // the placement priority). Non-solo decisions must draw their BEs from the
  // view's quota multiset — the engine validates and throws otherwise.
  virtual std::vector<PlacementDecision> Decide(const ClusterView& view) = 0;
};

// -- Registry ---------------------------------------------------------------

using PlacementPolicyFactory =
    std::function<std::unique_ptr<PlacementPolicy>(uint64_t seed)>;

// Registers a factory under `name`; returns false (and leaves the existing
// entry) when the name is taken. The four built-ins below self-register on
// first registry use.
bool RegisterPlacementPolicy(const std::string& name, PlacementPolicyFactory factory);

// Instantiates a registered policy; throws std::invalid_argument for unknown
// names (message lists what is registered).
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const std::string& name,
                                                     uint64_t seed);

// Registered names, sorted. Built-ins: "bin-packing" (size-ordered first
// fit, interference-blind), "random" (seeded shuffle baseline),
// "greedy-interference" (min contribution-weighted score, threshold-blind),
// "rhythm-aware" (threshold-aware score + solo switch above loadlimit).
std::vector<std::string> PlacementPolicyNames();

inline constexpr const char* kPolicyBinPacking = "bin-packing";
inline constexpr const char* kPolicyRandom = "random";
inline constexpr const char* kPolicyGreedy = "greedy-interference";
inline constexpr const char* kPolicyRhythmAware = "rhythm-aware";

}  // namespace rhythm

#endif  // RHYTHM_SRC_PLACE_PLACEMENT_POLICY_H_
