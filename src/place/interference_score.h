// Predicted-interference scoring for placement candidates.
//
// A placement policy cannot afford to simulate every candidate pairing, so
// it scores them from the data Rhythm already derives per component: the
// profiler's sensitivity vectors (§2 characterization, carried on
// ComponentSpec), the per-pod tail contributions (§3.4), and the per-pod
// loadlimit/slacklimit thresholds (§3.5). The raw score is the
// sensitivity-weighted dot product of the candidate BE's pressure vector —
// the same form the interference model uses for service-time inflation —
// and the threshold-aware variant additionally scales each pod's term by
// how close the group's offered load sits to that pod's loadlimit and how
// little slack its slacklimit leaves.
//
// Contract (locked by the monotonicity property test): every score is
// >= 0, exactly 0 for an all-zero pressure vector, monotone non-decreasing
// in each pressure axis, and RhythmPlacementScore is additionally monotone
// non-decreasing in the offered load.

#ifndef RHYTHM_SRC_PLACE_INTERFERENCE_SCORE_H_
#define RHYTHM_SRC_PLACE_INTERFERENCE_SCORE_H_

#include <string>
#include <vector>

#include "src/bemodel/be_job_spec.h"
#include "src/control/thresholds.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

// What a policy knows about one Servpod when scoring: its sensitivity
// vector, its Rhythm thresholds, and its (normalized) tail contribution.
struct PodPlacementModel {
  std::string name;
  ResourceVector sensitivity;
  ServpodThresholds thresholds;
  double contribution = 0.0;  // normalized across the app's pods.
};

struct AppPlacementModel {
  LcAppKind app = LcAppKind::kEcommerce;
  std::vector<PodPlacementModel> pods;
};

// Model from the catalog's sensitivity vectors plus the cached one-time
// characterization (CachedAppThresholds): thresholds and normalized
// contributions per pod. Derives thresholds on first use per app — tests
// that must stay cheap inject stub models instead (see
// ClusterRunRequest::model_provider).
AppPlacementModel DefaultPlacementModel(LcAppKind app);

// Raw predicted interference of `pressure` against one pod: the
// sensitivity-weighted sum over the shared-resource axes.
double PodInterferenceScore(const ResourceVector& sensitivity,
                            const ResourceVector& pressure);

// Contribution-weighted sum of the pod scores — the threshold-blind group
// score the greedy policy minimizes. Pods that drive the tail (high C_i)
// dominate; a uniform weighting is used when every contribution is zero.
double GroupInterferenceScore(const AppPlacementModel& model,
                              const ResourceVector& pressure);

// Threshold-aware score: each pod's contribution-weighted raw score is
// scaled by (0.25 + tightness) / max(0.05, 1 - slacklimit), where
// tightness = min(1, load / loadlimit). A pod already near its loadlimit,
// or one whose slacklimit leaves little room before BE growth must stop,
// makes the same BE pressure much more expensive.
double RhythmPlacementScore(const AppPlacementModel& model,
                            const ResourceVector& pressure, double load);

// Predicted fraction of `be`'s solo throughput that survives on a machine
// already serving an LC pod at `load`: the leftover capacity on each
// resource axis (cores, LLC ways, memory bandwidth, DRAM) divided by the
// job's per-instance demand, bottleneck axis taken, relative to the job's
// idle-machine SoloInstanceCount. The LC's reservations are modelled
// coarsely — cores halve at zero load and shrink linearly to zero at full
// load, LLC ways and bandwidth scale with load — because only the *ranking*
// across BE kinds feeds placement. In [0, inf), non-increasing in load.
double ResidualFitFraction(const MachineSpec& machine, BeJobKind be,
                           double load);

// True when `load` is at or above any pod's loadlimit — the tightest pod's
// machine would suspend its BEs (§3.5's loadlimit semantics).
bool LoadAboveAnyLoadlimit(const AppPlacementModel& model, double load);

// True when `load` is at or above every pod's loadlimit: each machine the
// group would occupy suspends BEs outright, so co-locating gains nothing
// and the threshold-aware policy places the group solo. (Above only *some*
// loadlimits, the per-machine controller handles the tight pods while the
// rest still absorb BE work — soloing there would forfeit that headroom.)
bool LoadAboveAllLoadlimits(const AppPlacementModel& model, double load);

}  // namespace rhythm

#endif  // RHYTHM_SRC_PLACE_INTERFERENCE_SCORE_H_
