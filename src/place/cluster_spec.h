// ClusterSpec: the declarative description of a cluster-level placement
// problem — a machine population, an LC app catalog demand (how many
// deployments of each application at which offered load), and a BE backlog
// mix (which best-effort jobs are waiting, weighted by share).
//
// Plain data, like RunRequest: copying a spec copies the description only,
// and every derived quantity (group expansion, BE quota) is a pure function
// of the spec, so placement policies evaluated against the same spec see
// exactly the same problem regardless of thread or call order.

#ifndef RHYTHM_SRC_PLACE_CLUSTER_SPEC_H_
#define RHYTHM_SRC_PLACE_CLUSTER_SPEC_H_

#include <vector>

#include "src/bemodel/be_job_spec.h"
#include "src/resources/machine_spec.h"
#include "src/workload/app_catalog.h"

namespace rhythm {

// Demand for one LC application: `count` independent Servpod-group
// deployments, each offered a constant `load` fraction of MaxLoad.
struct LcGroupDemand {
  LcAppKind app = LcAppKind::kEcommerce;
  int count = 1;
  double load = 0.45;
};

// One BE job class waiting in the cluster backlog. Weights are relative
// shares of the placement quota (they need not sum to anything).
struct BeBacklogShare {
  BeJobKind be = BeJobKind::kCpuStress;
  double weight = 1.0;
};

struct ClusterSpec {
  int machines = 64;
  MachineSpec machine_spec;  // homogeneous population, like the testbed.
  std::vector<LcGroupDemand> lc_demand;
  std::vector<BeBacklogShare> be_backlog;

  // Total Servpod groups demanded (sum of counts).
  int TotalGroups() const;
  // Total machines demanded when every group lands (one machine per pod).
  int TotalPods() const;
};

// One group awaiting placement. Groups are expanded from the demand list in
// declaration order and numbered 0..TotalGroups()-1 — the stable identity
// placement decisions, seeds and churn accounting all key on.
struct PendingGroup {
  int group = 0;
  LcAppKind app = LcAppKind::kEcommerce;
  double load = 0.45;
  int pods = 0;
};

// Expands the demand into per-group entries (pure function of the spec).
std::vector<PendingGroup> ExpandGroups(const ClusterSpec& spec);

// Expands the BE backlog into exactly `slots` job assignments by weight,
// using largest-remainder apportionment with declaration order breaking
// ties — deterministic, and every slot is filled as long as the backlog is
// non-empty. Policies draw from this multiset; they may not invent BEs.
std::vector<BeJobKind> ExpandBeQuota(const ClusterSpec& spec, int slots);

// The evaluation cluster used by tools/place_eval and bench/bench_placement:
// a heterogeneous LC mix (tight high-load groups next to tolerant low-load
// ones) over a heavy/gentle BE backlog, sized to oversubscribe `machines`
// slightly so placement order matters. Fig. 12/15-style policy comparisons
// run against this spec.
ClusterSpec DefaultEvalClusterSpec(int machines = 32);

// Datacenter-scale synthetic population for the partitioned engine's
// 1000+-machine runs: Alibaba-trace-style demand (many moderate-load web /
// cache groups, a minority of tight high-load ones) generated from
// DeriveShardSeed(seed, ...) streams, sized so the expanded groups demand
// roughly `machines` pods with mild oversubscription. Pure function of
// (machines, seed): the same arguments always yield the same spec, at any
// shard count.
ClusterSpec SyntheticClusterSpec(int machines, uint64_t seed = 1);

}  // namespace rhythm

#endif  // RHYTHM_SRC_PLACE_CLUSTER_SPEC_H_
