#include "src/place/cluster_engine.h"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/env.h"
#include "src/common/shard_pool.h"
#include "src/control/machine_agent.h"
#include "src/obs/exporters.h"
#include "src/obs/merge.h"
#include "src/runner/trial.h"
#include "src/sim/sharded_engine.h"

namespace rhythm {

namespace {

// Placement skeleton for one request: outcomes (summaries unfilled), the
// placement event stream, and churn — everything that does not require
// simulation. Pure function of the request.
struct PlacedRequest {
  std::vector<GroupOutcome> outcomes;  // epoch-major, group order within.
  std::vector<ObsEvent> events;
  int placement_churn = 0;
  int machines_used = 0;
};

void ValidateRequest(const ClusterRunRequest& request) {
  if (request.spec.machines <= 0) {
    throw std::invalid_argument("ClusterRunRequest: machines must be positive");
  }
  if (request.spec.TotalGroups() <= 0) {
    throw std::invalid_argument("ClusterRunRequest: lc_demand is empty");
  }
  if (request.epochs <= 0) {
    throw std::invalid_argument("ClusterRunRequest: epochs must be positive");
  }
  if (request.warmup_s < 0.0 || request.measure_s <= 0.0) {
    throw std::invalid_argument("ClusterRunRequest: bad trial windows");
  }
}

double EpochLoadScale(const ClusterRunRequest& request, int epoch) {
  if (epoch < static_cast<int>(request.epoch_load_scale.size())) {
    return request.epoch_load_scale[epoch];
  }
  return 1.0;
}

ObsEvent PlacementEvent(double time_s, ObsPlacementOp op, int machine,
                        double a, double b, double c, double d,
                        uint8_t detail = 0) {
  ObsEvent event;
  event.time_s = time_s;
  event.machine = machine;
  event.kind = ObsKind::kPlacement;
  event.code = static_cast<uint8_t>(op);
  event.detail = detail;
  event.a = a;
  event.b = b;
  event.c = c;
  event.d = d;
  return event;
}

PlacedRequest PlaceRequest(const ClusterRunRequest& request) {
  const std::vector<PendingGroup> base_groups = ExpandGroups(request.spec);
  const int groups_per_epoch = static_cast<int>(base_groups.size());
  const double epoch_span_s = request.warmup_s + request.measure_s;

  // Scoring models, resolved once per app and shared across epochs.
  std::map<LcAppKind, AppPlacementModel> models;
  auto model_of = [&](LcAppKind app) -> const AppPlacementModel& {
    auto it = models.find(app);
    if (it == models.end()) {
      AppPlacementModel model = request.model_provider
                                    ? request.model_provider(app)
                                    : DefaultPlacementModel(app);
      it = models.emplace(app, std::move(model)).first;
    }
    return it->second;
  };

  std::unique_ptr<PlacementPolicy> policy =
      MakePlacementPolicy(request.policy, request.seed);

  PlacedRequest placed;
  placed.outcomes.reserve(static_cast<size_t>(groups_per_epoch) *
                          request.epochs);
  std::vector<GroupOutcome> previous;  // last epoch's outcomes, group order.

  for (int epoch = 0; epoch < request.epochs; ++epoch) {
    const double now_s = epoch * epoch_span_s;
    const double scale = EpochLoadScale(request, epoch);

    ClusterView view;
    view.spec = &request.spec;
    view.epoch = epoch;
    view.load_scale = scale;
    view.pending = base_groups;
    for (PendingGroup& group : view.pending) {
      group.load = std::clamp(group.load * scale, 0.0, 1.0);
    }
    view.be_quota = ExpandBeQuota(request.spec, groups_per_epoch);
    view.model = model_of;

    placed.events.push_back(PlacementEvent(now_s, ObsPlacementOp::kEpochBegin,
                                           -1, epoch, scale, 0.0, 0.0));

    policy->OnTick(view);
    std::vector<PlacementDecision> decisions = policy->Decide(view);

    // Contract checks: exactly one decision per pending group, BEs drawn
    // from the quota multiset.
    if (decisions.size() != view.pending.size()) {
      throw std::invalid_argument("placement policy \"" + request.policy +
                                  "\" returned " +
                                  std::to_string(decisions.size()) +
                                  " decisions for " +
                                  std::to_string(view.pending.size()) +
                                  " groups");
    }
    std::vector<bool> decided(view.pending.size(), false);
    std::map<BeJobKind, int> quota_left;
    for (BeJobKind be : view.be_quota) {
      ++quota_left[be];
    }
    for (const PlacementDecision& decision : decisions) {
      if (decision.group < 0 || decision.group >= groups_per_epoch ||
          decided[decision.group]) {
        throw std::invalid_argument(
            "placement policy \"" + request.policy +
            "\" decided group " + std::to_string(decision.group) +
            " zero or multiple times");
      }
      decided[decision.group] = true;
      if (!decision.run_solo && --quota_left[decision.be] < 0) {
        throw std::invalid_argument("placement policy \"" + request.policy +
                                    "\" overdraws the BE quota");
      }
    }

    // Allocate machines in decision (priority) order; a decision that no
    // longer fits is skipped, so smaller later groups may still land.
    std::vector<GroupOutcome> epoch_outcomes(view.pending.size());
    int cursor = 0;
    for (const PlacementDecision& decision : decisions) {
      const PendingGroup& group = view.pending[decision.group];
      GroupOutcome& outcome = epoch_outcomes[decision.group];
      outcome.epoch = epoch;
      outcome.group = group.group;
      outcome.app = group.app;
      outcome.be = decision.be;
      outcome.run_solo = decision.run_solo;
      outcome.pods = group.pods;
      outcome.load = group.load;
      outcome.score = decision.score;
      if (cursor + group.pods <= request.spec.machines) {
        outcome.placed = true;
        outcome.first_machine = cursor;
        cursor += group.pods;
      }
      const ObsPlacementOp op = !outcome.placed ? ObsPlacementOp::kGroupUnplaced
                                : outcome.run_solo ? ObsPlacementOp::kGroupSolo
                                                   : ObsPlacementOp::kGroupPlaced;
      const uint8_t detail = op == ObsPlacementOp::kGroupPlaced
                                 ? static_cast<uint8_t>(decision.be)
                                 : uint8_t{0};
      placed.events.push_back(PlacementEvent(
          now_s, op, outcome.first_machine, group.group, group.pods,
          decision.score, group.load, detail));
    }
    placed.machines_used = std::max(placed.machines_used, cursor);

    // Churn: any group whose effective assignment changed since last epoch.
    if (!previous.empty()) {
      for (size_t g = 0; g < epoch_outcomes.size(); ++g) {
        const GroupOutcome& now = epoch_outcomes[g];
        const GroupOutcome& was = previous[g];
        const bool same = now.placed == was.placed &&
                          now.run_solo == was.run_solo &&
                          (now.run_solo || !now.placed || now.be == was.be);
        if (!same) {
          ++placed.placement_churn;
          placed.events.push_back(PlacementEvent(
              now_s, ObsPlacementOp::kChurn, now.first_machine, now.group,
              now.pods, now.score, now.load,
              now.placed && !now.run_solo ? static_cast<uint8_t>(now.be)
                                          : uint8_t{0}));
        }
      }
    }
    previous = epoch_outcomes;
    placed.outcomes.insert(placed.outcomes.end(), epoch_outcomes.begin(),
                           epoch_outcomes.end());
  }
  return placed;
}

// Thresholds for one placed group's trial under the Rhythm controller:
// the scoring model's per-pod thresholds (so injected stub models control
// the trial too), or all-zero loadlimits for solo groups — loadlimit 0
// forbids BE admission entirely.
std::vector<ServpodThresholds> TrialThresholds(const AppPlacementModel& model,
                                               const GroupOutcome& outcome) {
  std::vector<ServpodThresholds> thresholds;
  if (outcome.run_solo) {
    thresholds.assign(static_cast<size_t>(outcome.pods),
                      ServpodThresholds{0.0, 0.5});
    return thresholds;
  }
  if (static_cast<int>(model.pods.size()) == outcome.pods) {
    thresholds.reserve(model.pods.size());
    for (const PodPlacementModel& pod : model.pods) {
      thresholds.push_back(pod.thresholds);
    }
  }
  return thresholds;  // empty: Run() falls back to CachedAppThresholds.
}

RunRequest TrialRequest(const ClusterRunRequest& request,
                        const GroupOutcome& outcome, int groups_per_epoch) {
  RunRequest trial;
  trial.app = outcome.app;
  trial.be = outcome.be;
  trial.controller = request.controller;
  trial.hardening = request.hardening;
  trial.seed = DeriveGroupSeed(request.seed, outcome.epoch, groups_per_epoch,
                               outcome.group);
  trial.warmup_s = request.warmup_s;
  trial.measure_s = request.measure_s;
  trial.load = outcome.load;
  trial.verify = request.verify;
  if (request.controller == ControllerKind::kRhythm) {
    AppPlacementModel model = request.model_provider
                                  ? request.model_provider(outcome.app)
                                  : DefaultPlacementModel(outcome.app);
    trial.thresholds = TrialThresholds(model, outcome);
  }
  trial.label = (request.label.empty() ? request.policy : request.label) +
                "/e" + std::to_string(outcome.epoch) + "/g" +
                std::to_string(outcome.group);
  return trial;
}

// Phase 2 executor: one placed request's group trials on the partitioned
// engine. Each group index owns a logical slot whose arena (simulator +
// chunk pool) persists across epochs; every epoch rebuilds the slot's trial,
// the engine advances all of them in conservative windows between barriers,
// and summaries are harvested in slot order. Fills
// placed.outcomes[...].summary and (with record_tick_events) folds the
// per-slot barrier event streams into placed.events.
void SimulatePlaced(const ClusterRunRequest& request, PlacedRequest& placed,
                    ShardedEngine& engine) {
  const int groups_per_epoch = request.spec.TotalGroups();
  const double epoch_span_s = request.warmup_s + request.measure_s;

  struct GroupSlot {
    SimArena arena;
    RunRequest trial_request;
    std::unique_ptr<Trial> trial;
    size_t outcome = 0;  // into placed.outcomes (epoch-major).
    std::exception_ptr error;
    std::vector<ObsEvent> tick_events;  // written only by the owning shard.
  };
  std::vector<GroupSlot> slots(static_cast<size_t>(groups_per_epoch));

  for (int epoch = 0; epoch < request.epochs; ++epoch) {
    // Build this epoch's trials serially in slot order, so validation
    // errors surface lowest slot first — the flat runner's first-error
    // order.
    std::vector<ShardUnit> units;
    units.reserve(slots.size());
    for (int g = 0; g < groups_per_epoch; ++g) {
      GroupSlot& slot = slots[g];
      slot.trial.reset();  // the old trial references the old request.
      const size_t index =
          static_cast<size_t>(epoch) * static_cast<size_t>(groups_per_epoch) + g;
      const GroupOutcome& outcome = placed.outcomes[index];
      if (!outcome.placed) {
        continue;
      }
      slot.outcome = index;
      slot.trial_request = TrialRequest(request, outcome, groups_per_epoch);
      slot.trial = std::make_unique<Trial>(slot.trial_request, TrialHooks{},
                                           &slot.arena);
      slot.trial->Start();

      ShardUnit unit;
      unit.slot = g;
      unit.weight = static_cast<double>(outcome.pods);
      Trial* trial = slot.trial.get();
      GroupSlot* home = &slot;
      const int group = outcome.group;
      const int first_machine = outcome.first_machine;
      const double epoch_base_s = epoch * epoch_span_s;
      const bool ticks = request.record_tick_events;
      unit.advance = [trial, home, group, first_machine, epoch_base_s,
                      ticks](double end_time) {
        if (home->error != nullptr) {
          return;  // failed earlier; hold the island at its failure point.
        }
        try {
          trial->AdvanceTo(end_time);
          if (ticks) {
            // Plain counter reads only — emission must not perturb the run.
            ObsEvent event;
            event.time_s = epoch_base_s + end_time;
            event.machine = first_machine;
            event.kind = ObsKind::kPlacement;
            event.code = static_cast<uint8_t>(ObsPlacementOp::kTickBarrier);
            event.a = static_cast<double>(group);
            event.b =
                static_cast<double>(trial->deployment().TotalSlaViolations());
            event.c = static_cast<double>(trial->deployment().TotalBeKills());
            event.d = trial->now();
            home->tick_events.push_back(event);
          }
        } catch (...) {
          home->error = std::current_exception();
        }
      };
      units.push_back(std::move(unit));
    }

    engine.Advance(
        units, 0.0, epoch_span_s, MachineAgent::kPeriodSeconds,
        [&](double window_end) {
          // First-error propagation, lowest slot first, checked while every
          // shard rests at the barrier.
          for (GroupSlot& slot : slots) {
            if (slot.error != nullptr) {
              std::rethrow_exception(slot.error);
            }
          }
          if (request.on_tick) {
            ClusterTickSnapshot snap;
            snap.time_s = epoch * epoch_span_s + window_end;
            snap.epoch = epoch;
            snap.window_end_s = window_end;
            snap.window = engine.windows_run();
            for (const GroupSlot& slot : slots) {  // slot-order merge.
              if (slot.trial == nullptr) {
                continue;
              }
              const Deployment& deployment = slot.trial->deployment();
              ++snap.groups_running;
              snap.sla_violations += deployment.TotalSlaViolations();
              snap.be_kills += deployment.TotalBeKills();
              snap.slack_violation_ticks += deployment.slack_violation_ticks();
              snap.crashes += deployment.crash_count();
            }
            request.on_tick(snap);
          }
        });

    // Harvest in slot order. Trials stay alive until the next epoch rebuilds
    // them; the last epoch's die with `slots`.
    for (GroupSlot& slot : slots) {
      if (slot.trial != nullptr) {
        placed.outcomes[slot.outcome].summary = slot.trial->Finish();
      }
    }
  }

  if (request.record_tick_events) {
    // Slot streams in slot order, placement events last — equal-timestamp
    // ties put an epoch's final barrier ticks before the next epoch's
    // placement events, and the merged timeline is independent of the shard
    // layout.
    std::vector<std::vector<ObsEvent>> streams;
    streams.reserve(slots.size() + 1);
    for (GroupSlot& slot : slots) {
      streams.push_back(std::move(slot.tick_events));
    }
    streams.push_back(std::move(placed.events));
    placed.events = MergeEventStreams(streams);
  }
}

ClusterSummary SummarizeCluster(const ClusterRunRequest& request,
                                PlacedRequest placed) {
  const int groups_per_epoch = request.spec.TotalGroups();

  ClusterSummary summary;
  summary.policy = request.policy;
  summary.label = request.label;
  summary.machines = request.spec.machines;
  summary.machines_used = placed.machines_used;
  summary.epochs = request.epochs;
  summary.groups_total = groups_per_epoch * request.epochs;
  summary.placement_churn = placed.placement_churn;

  const double machines = static_cast<double>(request.spec.machines);
  std::map<LcAppKind, size_t> app_index;
  double placed_pod_ticks = 0.0;  // pods * measure / period, summed.

  for (const GroupOutcome& outcome : placed.outcomes) {
    if (!outcome.placed) {
      ++summary.groups_unplaced;
    } else {
      ++summary.groups_placed;
      if (outcome.run_solo) {
        ++summary.solo_groups;
      }
    }

    auto it = app_index.find(outcome.app);
    if (it == app_index.end()) {
      it = app_index.emplace(outcome.app, summary.per_app.size()).first;
      summary.per_app.push_back(AppClusterStats{});
      summary.per_app.back().app = outcome.app;
    }
    AppClusterStats& app = summary.per_app[it->second];
    if (!outcome.placed) {
      ++app.unplaced;
      continue;
    }

    const double weight = outcome.pods / machines;
    summary.emu += weight * outcome.summary.emu;
    summary.lc_throughput += weight * outcome.summary.lc_throughput;
    summary.be_throughput += weight * outcome.summary.be_throughput;
    summary.cpu_util += weight * outcome.summary.cpu_util;
    summary.membw_util += weight * outcome.summary.membw_util;
    summary.sla_violations += outcome.summary.sla_violations;
    summary.be_kills += outcome.summary.be_kills;
    summary.worst_tail_ratio =
        std::max(summary.worst_tail_ratio, outcome.summary.worst_tail_ratio);
    placed_pod_ticks +=
        outcome.pods * request.measure_s / MachineAgent::kPeriodSeconds;

    ++app.trials;
    app.emu += outcome.summary.emu;
    app.lc_throughput += outcome.summary.lc_throughput;
    app.sla_violations += outcome.summary.sla_violations;
    app.worst_tail_ratio =
        std::max(app.worst_tail_ratio, outcome.summary.worst_tail_ratio);
  }

  // Machine-normalized quantities are per-epoch averages.
  const double epochs = static_cast<double>(request.epochs);
  summary.emu /= epochs;
  summary.lc_throughput /= epochs;
  summary.be_throughput /= epochs;
  summary.cpu_util /= epochs;
  summary.membw_util /= epochs;

  if (placed_pod_ticks > 0.0) {
    summary.slo_violation_rate =
        static_cast<double>(summary.sla_violations) / placed_pod_ticks;
  }
  for (AppClusterStats& app : summary.per_app) {
    if (app.trials > 0) {
      app.emu /= app.trials;
      app.lc_throughput /= app.trials;
    }
  }

  summary.groups = std::move(placed.outcomes);

  summary.recording.meta.app = "cluster";
  summary.recording.meta.be = request.policy;
  summary.recording.meta.controller = ControllerKindName(request.controller);
  summary.recording.meta.seed = request.seed;
  summary.recording.meta.controller_period_s =
      request.warmup_s + request.measure_s;
  summary.recording.events = std::move(placed.events);
  summary.recording.events_total = summary.recording.events.size();
  return summary;
}

// Per-app tick totals are finalized after the trial summaries are in.
void FinalizeAppRates(const ClusterRunRequest& request,
                      ClusterSummary& summary) {
  std::map<LcAppKind, double> pod_ticks;
  for (const GroupOutcome& outcome : summary.groups) {
    if (outcome.placed) {
      pod_ticks[outcome.app] +=
          outcome.pods * request.measure_s / MachineAgent::kPeriodSeconds;
    }
  }
  for (AppClusterStats& app : summary.per_app) {
    const double ticks = pod_ticks[app.app];
    app.slo_violation_rate =
        ticks > 0.0 ? static_cast<double>(app.sla_violations) / ticks : 0.0;
  }
}

void ExportRecording(const ClusterRunRequest& request,
                     const Recording& recording) {
  if (!request.obs.enabled) {
    return;
  }
  if (!request.obs.export_jsonl.empty()) {
    WriteJsonl(recording, request.obs.export_jsonl);
  }
  if (!request.obs.export_perfetto.empty()) {
    WritePerfettoTrace(recording, request.obs.export_perfetto);
  }
  if (!request.obs.export_metrics_csv.empty()) {
    WriteMetricsCsv(recording, request.obs.export_metrics_csv);
  }
}

}  // namespace

uint64_t DeriveGroupSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                         int group) {
  return DeriveTrialSeed(base_seed,
                         static_cast<uint64_t>(epoch) *
                                 static_cast<uint64_t>(groups_per_epoch) +
                             static_cast<uint64_t>(group));
}

uint64_t DeriveShardSeed(uint64_t base_seed, uint64_t slot) {
  // The salt (SplitMix64's first mixing multiplier; any fixed odd constant
  // works) moves the base into a family the unsalted trial/group streams
  // never draw from.
  return DeriveTrialSeed(base_seed ^ 0xbf58476d1ce4e5b9ULL, slot);
}

std::vector<ClusterSummary> RunClusterPlan(const ClusterRunPlan& plan,
                                           const RunnerOptions& options) {
  for (const ClusterRunRequest& request : plan.requests) {
    ValidateRequest(request);
  }

  // Phase 1: place everything (serial, pure).
  std::vector<PlacedRequest> placements;
  placements.reserve(plan.requests.size());
  for (const ClusterRunRequest& request : plan.requests) {
    placements.push_back(PlaceRequest(request));
  }

  // Phase 2: the partitioned engine. One shard pool serves the whole plan;
  // each request's epochs run their placed groups concurrently between
  // conservative-window barriers. Shard count is a performance knob only —
  // summaries are bit-identical at any value.
  const int shards = options.shards > 0 ? options.shards : DefaultShardCount();
  ShardPool pool(shards);
  ShardedEngine engine(&pool);
  for (size_t r = 0; r < plan.requests.size(); ++r) {
    SimulatePlaced(plan.requests[r], placements[r], engine);
  }

  // Phase 3: roll up.
  std::vector<ClusterSummary> summaries;
  summaries.reserve(plan.requests.size());
  for (size_t r = 0; r < plan.requests.size(); ++r) {
    summaries.push_back(
        SummarizeCluster(plan.requests[r], std::move(placements[r])));
    FinalizeAppRates(plan.requests[r], summaries.back());
    ExportRecording(plan.requests[r], summaries.back().recording);
  }
  return summaries;
}

ClusterSummary RunCluster(const ClusterRunRequest& request,
                          const RunnerOptions& options) {
  ClusterRunPlan plan;
  plan.Add(request);
  return std::move(RunClusterPlan(plan, options).front());
}

}  // namespace rhythm
