#include "src/place/cluster_engine.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/env.h"
#include "src/common/shard_pool.h"
#include "src/control/machine_agent.h"
#include "src/obs/exporters.h"
#include "src/obs/merge.h"
#include "src/runner/trial.h"
#include "src/sim/sharded_engine.h"
#include "src/verify/cluster_invariants.h"

namespace rhythm {

namespace {

void ValidateRequest(const ClusterRunRequest& request) {
  if (request.spec.machines <= 0) {
    throw std::invalid_argument("ClusterRunRequest: machines must be positive");
  }
  if (request.spec.TotalGroups() <= 0) {
    throw std::invalid_argument("ClusterRunRequest: lc_demand is empty");
  }
  if (request.epochs <= 0) {
    throw std::invalid_argument("ClusterRunRequest: epochs must be positive");
  }
  if (request.warmup_s < 0.0 || request.measure_s <= 0.0) {
    throw std::invalid_argument("ClusterRunRequest: bad trial windows");
  }
  if (request.faults != nullptr) {
    for (const FaultEvent& event : request.faults->events) {
      if (!IsClusterScopeFault(event.kind)) {
        throw std::invalid_argument(
            std::string("ClusterRunRequest: ") + FaultKindName(event.kind) +
            " is a per-deployment fault; cluster schedules accept only "
            "machine-scope kinds (MachineFailure, MachineRestart)");
      }
      const std::string error =
          FaultEventError(event, request.spec.machines);
      if (!error.empty()) {
        throw std::invalid_argument("ClusterRunRequest: " + error);
      }
    }
  }
}

double EpochLoadScale(const ClusterRunRequest& request, int epoch) {
  if (epoch < static_cast<int>(request.epoch_load_scale.size())) {
    return request.epoch_load_scale[epoch];
  }
  return 1.0;
}

ObsEvent PlacementEvent(double time_s, ObsPlacementOp op, int machine,
                        double a, double b, double c, double d,
                        uint8_t detail = 0) {
  ObsEvent event;
  event.time_s = time_s;
  event.machine = machine;
  event.kind = ObsKind::kPlacement;
  event.code = static_cast<uint8_t>(op);
  event.detail = detail;
  event.a = a;
  event.b = b;
  event.c = c;
  event.d = d;
  return event;
}

// One scheduled machine-liveness edge, quantized to its enactment barrier.
// Barriers are the conservative-window boundaries: epoch-local multiples of
// MachineAgent::kPeriodSeconds, plus every epoch start. An edge lands at the
// first barrier at/after its scheduled time; an edge that would land at/after
// the epoch's final barrier defers to the next epoch's start (the epoch-end
// barrier only harvests — by then the trials are already over), and edges
// past the run horizon never enact.
struct MachineTransition {
  int machine = 0;
  bool rejoin = false;
  int event_id = 0;         // pairs a restart's loss with its rejoin.
  double scheduled_s = 0.0;  // the schedule's edge time (cluster clock).
  double downtime_s = 0.0;   // loss edges: planned downtime (0 = permanent).
  int epoch = 0;             // enactment barrier.
  double window_s = 0.0;     // epoch-local; an exact multiple of the window.
};

std::vector<MachineTransition> BuildTransitions(
    const ClusterRunRequest& request, double epoch_span_s) {
  std::vector<MachineTransition> transitions;
  if (request.faults == nullptr || request.faults->empty()) {
    return transitions;
  }
  const double window = MachineAgent::kPeriodSeconds;

  // Quantization is guarded against float error in both directions: k is the
  // smallest integer with k * window >= local, found by division and then
  // corrected by comparison — the comparisons, not the division, decide.
  auto quantize = [&](double time_s, MachineTransition& out) {
    int epoch = static_cast<int>(time_s / epoch_span_s);
    double local = time_s - epoch * epoch_span_s;
    if (local < 0.0) {
      --epoch;
      local = time_s - epoch * epoch_span_s;
    }
    int k = static_cast<int>(std::ceil(local / window));
    if (k < 0) {
      k = 0;
    }
    while (k * window < local) {
      ++k;
    }
    while (k > 0 && (k - 1) * window >= local) {
      --k;
    }
    if (k * window >= epoch_span_s) {
      ++epoch;
      k = 0;
    }
    if (epoch >= request.epochs) {
      return false;  // past the horizon: inert.
    }
    out.epoch = epoch;
    out.window_s = k * window;
    return true;
  };

  int event_id = 0;
  for (const FaultEvent& event : request.faults->Sorted()) {
    MachineTransition loss;
    loss.machine = event.pod;
    loss.event_id = event_id;
    loss.scheduled_s = event.start_s;
    loss.downtime_s =
        event.kind == FaultKind::kMachineRestart ? event.duration_s : 0.0;
    const bool loss_live = quantize(event.start_s, loss);
    if (event.kind == FaultKind::kMachineRestart) {
      MachineTransition up;
      up.machine = event.pod;
      up.rejoin = true;
      up.event_id = event_id;
      up.scheduled_s = event.start_s + event.duration_s;
      const bool up_live = loss_live && quantize(up.scheduled_s, up);
      // A downtime shorter than one window quantizes loss and rejoin onto
      // the same barrier — invisible at barrier granularity, so the whole
      // restart degrades to a no-op rather than a spurious permanent loss.
      const bool same_barrier =
          up_live && up.epoch == loss.epoch && up.window_s == loss.window_s;
      if (loss_live && !same_barrier) {
        transitions.push_back(loss);
        if (up_live) {
          transitions.push_back(up);
        }
      }
    } else if (loss_live) {
      transitions.push_back(loss);
    }
    ++event_id;
  }

  // Barrier order; within one barrier, rejoins enact before losses (a
  // machine freed and re-lost at the same instant ends up down, owned by
  // the loss), then machine, then schedule order.
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const MachineTransition& a, const MachineTransition& b) {
                     if (a.epoch != b.epoch) {
                       return a.epoch < b.epoch;
                     }
                     if (a.window_s != b.window_s) {
                       return a.window_s < b.window_s;
                     }
                     if (a.rejoin != b.rejoin) {
                       return a.rejoin;
                     }
                     if (a.machine != b.machine) {
                       return a.machine < b.machine;
                     }
                     return a.event_id < b.event_id;
                   });
  return transitions;
}

// Thresholds for one placed group's trial under the Rhythm controller:
// the scoring model's per-pod thresholds (so injected stub models control
// the trial too), or all-zero loadlimits for solo groups — loadlimit 0
// forbids BE admission entirely.
std::vector<ServpodThresholds> TrialThresholds(const AppPlacementModel& model,
                                               const GroupOutcome& outcome) {
  std::vector<ServpodThresholds> thresholds;
  if (outcome.run_solo) {
    thresholds.assign(static_cast<size_t>(outcome.pods),
                      ServpodThresholds{0.0, 0.5});
    return thresholds;
  }
  if (static_cast<int>(model.pods.size()) == outcome.pods) {
    thresholds.reserve(model.pods.size());
    for (const PodPlacementModel& pod : model.pods) {
      thresholds.push_back(pod.thresholds);
    }
  }
  return thresholds;  // empty: Run() falls back to CachedAppThresholds.
}

RunRequest TrialRequest(const ClusterRunRequest& request,
                        const GroupOutcome& outcome, int groups_per_epoch) {
  RunRequest trial;
  trial.app = outcome.app;
  trial.be = outcome.be;
  trial.controller = request.controller;
  trial.hardening = request.hardening;
  trial.seed = DeriveGroupSeed(request.seed, outcome.epoch, groups_per_epoch,
                               outcome.group);
  trial.warmup_s = request.warmup_s;
  trial.measure_s = request.measure_s;
  trial.load = outcome.load;
  trial.verify = request.verify;
  if (request.controller == ControllerKind::kRhythm) {
    AppPlacementModel model = request.model_provider
                                  ? request.model_provider(outcome.app)
                                  : DefaultPlacementModel(outcome.app);
    trial.thresholds = TrialThresholds(model, outcome);
  }
  trial.label = (request.label.empty() ? request.policy : request.label) +
                "/e" + std::to_string(outcome.epoch) + "/g" +
                std::to_string(outcome.group);
  return trial;
}

// Executes one validated ClusterRunRequest on the partitioned engine:
// per-epoch placement over the machine roster, windowed simulation split
// into segments at machine-loss barriers, supervisor failover, and the
// cluster-scope invariant checks. Everything here runs on the coordinating
// thread between Advance calls and draws no randomness, so results stay
// bit-identical at any shard count; with no machine faults scheduled the
// execution reduces exactly to the pre-failure-domain engine (one segment
// per epoch, first-fit allocation == the old cursor, served fractions
// exactly 1.0).
class RequestExecution {
 public:
  explicit RequestExecution(const ClusterRunRequest& request)
      : request_(request),
        groups_per_epoch_(request.spec.TotalGroups()),
        epoch_span_s_(request.warmup_s + request.measure_s),
        policy_(MakePlacementPolicy(request.policy, request.seed)),
        supervisor_(request.spec.machines, request.supervisor),
        checker_(request.verify, request.spec.machines),
        transitions_(BuildTransitions(request, epoch_span_s_)),
        loss_owner_(static_cast<size_t>(request.spec.machines), -1),
        slots_(static_cast<size_t>(request.spec.TotalGroups())) {
    model_of_ = [this](LcAppKind app) -> const AppPlacementModel& {
      auto it = models_.find(app);
      if (it == models_.end()) {
        AppPlacementModel model = request_.model_provider
                                      ? request_.model_provider(app)
                                      : DefaultPlacementModel(app);
        it = models_.emplace(app, std::move(model)).first;
      }
      return it->second;
    };
  }

  void Run(ShardedEngine& engine) {
    engine_ = &engine;
    size_t next = 0;
    for (int epoch = 0; epoch < request_.epochs; ++epoch) {
      BeginEpoch(epoch, next);
      double from = 0.0;
      while (true) {
        double barrier = epoch_span_s_;
        bool enact = false;
        if (next < transitions_.size() && transitions_[next].epoch == epoch) {
          barrier = transitions_[next].window_s;
          enact = true;
        }
        AdvanceSegment(epoch, from, barrier, enact);
        if (!enact) {
          break;
        }
        EnactBarrier(epoch, barrier, next);
        from = barrier;
      }
      HarvestEpoch(epoch);
    }

    if (request_.record_tick_events) {
      // Slot streams in slot order, placement events last — equal-timestamp
      // ties put an epoch's final barrier ticks before the next epoch's
      // placement events, and the merged timeline is independent of the
      // shard layout.
      std::vector<std::vector<ObsEvent>> streams;
      streams.reserve(slots_.size() + 1);
      for (GroupSlot& slot : slots_) {
        streams.push_back(std::move(slot.tick_events));
      }
      streams.push_back(std::move(events_));
      events_ = MergeEventStreams(streams);
    }
  }

  ClusterSummary Summarize() {
    // Failover incarnations were appended as they started; present them
    // epoch-major with each group's incarnations together.
    std::stable_sort(outcomes_.begin(), outcomes_.end(),
                     [](const GroupOutcome& a, const GroupOutcome& b) {
                       if (a.epoch != b.epoch) {
                         return a.epoch < b.epoch;
                       }
                       if (a.group != b.group) {
                         return a.group < b.group;
                       }
                       return a.incarnation < b.incarnation;
                     });

    ClusterSummary summary;
    summary.policy = request_.policy;
    summary.label = request_.label;
    summary.machines = request_.spec.machines;
    summary.machines_used = machines_used_;
    summary.epochs = request_.epochs;
    summary.groups_total = groups_per_epoch_ * request_.epochs;
    summary.placement_churn = placement_churn_;

    const double machines = static_cast<double>(request_.spec.machines);
    std::map<LcAppKind, size_t> app_index;
    std::vector<double> app_weight;  // served-fraction sums, per app entry.
    double placed_pod_ticks = 0.0;   // pods * served / period, summed.

    for (const GroupOutcome& outcome : outcomes_) {
      if (outcome.incarnation == 0) {
        if (!outcome.placed) {
          ++summary.groups_unplaced;
        } else {
          ++summary.groups_placed;
          if (outcome.run_solo) {
            ++summary.solo_groups;
          }
        }
      }

      auto it = app_index.find(outcome.app);
      if (it == app_index.end()) {
        it = app_index.emplace(outcome.app, summary.per_app.size()).first;
        summary.per_app.push_back(AppClusterStats{});
        summary.per_app.back().app = outcome.app;
        app_weight.push_back(0.0);
      }
      AppClusterStats& app = summary.per_app[it->second];
      if (!outcome.placed) {
        ++app.unplaced;
        continue;
      }

      // A disrupted incarnation only served part of the epoch's measurement
      // window; weight its rates by the served fraction. Undisrupted epoch
      // placements carry served == measure_s, so the fraction is exactly 1.0
      // and fault-free arithmetic is bit-identical to the pre-failure-domain
      // rollup.
      const double fraction = outcome.served_measure_s / request_.measure_s;
      const double weight = fraction * (outcome.pods / machines);
      summary.emu += weight * outcome.summary.emu;
      summary.lc_throughput += weight * outcome.summary.lc_throughput;
      summary.be_throughput += weight * outcome.summary.be_throughput;
      summary.cpu_util += weight * outcome.summary.cpu_util;
      summary.membw_util += weight * outcome.summary.membw_util;
      summary.sla_violations += outcome.summary.sla_violations;
      summary.be_kills += outcome.summary.be_kills;
      summary.worst_tail_ratio =
          std::max(summary.worst_tail_ratio, outcome.summary.worst_tail_ratio);
      placed_pod_ticks += outcome.pods * outcome.served_measure_s /
                          MachineAgent::kPeriodSeconds;

      ++app.trials;
      app_weight[it->second] += fraction;
      app.emu += fraction * outcome.summary.emu;
      app.lc_throughput += fraction * outcome.summary.lc_throughput;
      app.sla_violations += outcome.summary.sla_violations;
      app.worst_tail_ratio =
          std::max(app.worst_tail_ratio, outcome.summary.worst_tail_ratio);
    }

    // Machine-normalized quantities are per-epoch averages.
    const double epochs = static_cast<double>(request_.epochs);
    summary.emu /= epochs;
    summary.lc_throughput /= epochs;
    summary.be_throughput /= epochs;
    summary.cpu_util /= epochs;
    summary.membw_util /= epochs;

    if (placed_pod_ticks > 0.0) {
      summary.slo_violation_rate =
          static_cast<double>(summary.sla_violations) / placed_pod_ticks;
    }
    for (size_t a = 0; a < summary.per_app.size(); ++a) {
      AppClusterStats& app = summary.per_app[a];
      if (app_weight[a] > 0.0) {
        app.emu /= app_weight[a];
        app.lc_throughput /= app_weight[a];
      }
    }

    // Failure-domain accounting.
    summary.machines_failed = machines_failed_;
    summary.machines_restarted = machines_restarted_;
    summary.machines_down_end = supervisor_.roster().down();
    summary.groups_disrupted = groups_disrupted_;
    summary.groups_failed_over = groups_failed_over_;
    summary.groups_lost = groups_lost_;
    summary.pods_migrated = pods_migrated_;
    summary.down_group_seconds = down_group_seconds_;
    summary.worst_failover_latency_s = worst_failover_latency_s_;
    summary.degraded_barriers = supervisor_.degraded_barriers();
    summary.cluster_invariant_violations = checker_.violations();
    summary.cluster_invariant_violations_total = checker_.total_violations();

    summary.groups = std::move(outcomes_);

    summary.recording.meta.app = "cluster";
    summary.recording.meta.be = request_.policy;
    summary.recording.meta.controller = ControllerKindName(request_.controller);
    summary.recording.meta.seed = request_.seed;
    summary.recording.meta.controller_period_s = epoch_span_s_;
    summary.recording.events = std::move(events_);
    summary.recording.events_total = summary.recording.events.size();
    return summary;
  }

 private:
  struct GroupSlot {
    SimArena arena;
    RunRequest trial_request;
    std::unique_ptr<Trial> trial;
    size_t outcome = 0;   // into outcomes_ — the live incarnation.
    double start_s = 0.0;  // epoch-local start of the live incarnation.
    int incarnations = 0;  // replacements started this epoch.
    std::exception_ptr error;
    std::vector<ObsEvent> tick_events;  // written only by the owning shard.
  };

  void BeginEpoch(int epoch, size_t& next) {
    supervisor_.roster().ReleaseAll();
    epoch_disrupted_ = 0;
    epoch_failed_over_ = 0;
    epoch_lost_ = 0;
    epoch_outcomes_begin_ = outcomes_.size();
    for (GroupSlot& slot : slots_) {
      slot.trial.reset();  // the old trial references the old request.
      slot.incarnations = 0;
      slot.start_s = 0.0;
    }

    // Losses/rejoins quantized to this epoch's start enact before placement,
    // so the policy's epoch never lands groups on machines already gone.
    EnactTransitions(epoch, 0.0, next);

    const double now_s = epoch * epoch_span_s_;
    const double scale = EpochLoadScale(request_, epoch);

    ClusterView view;
    view.spec = &request_.spec;
    view.epoch = epoch;
    view.load_scale = scale;
    view.pending = ExpandGroups(request_.spec);
    for (PendingGroup& group : view.pending) {
      group.load = std::clamp(group.load * scale, 0.0, 1.0);
    }
    view.be_quota = ExpandBeQuota(request_.spec, groups_per_epoch_);
    view.model = model_of_;

    events_.push_back(PlacementEvent(now_s, ObsPlacementOp::kEpochBegin, -1,
                                     epoch, scale, 0.0, 0.0));

    policy_->OnTick(view);
    std::vector<PlacementDecision> decisions = policy_->Decide(view);

    // Contract checks: exactly one decision per pending group, BEs drawn
    // from the quota multiset.
    if (decisions.size() != view.pending.size()) {
      throw std::invalid_argument("placement policy \"" + request_.policy +
                                  "\" returned " +
                                  std::to_string(decisions.size()) +
                                  " decisions for " +
                                  std::to_string(view.pending.size()) +
                                  " groups");
    }
    std::vector<bool> decided(view.pending.size(), false);
    std::map<BeJobKind, int> quota_left;
    for (BeJobKind be : view.be_quota) {
      ++quota_left[be];
    }
    for (const PlacementDecision& decision : decisions) {
      if (decision.group < 0 || decision.group >= groups_per_epoch_ ||
          decided[decision.group]) {
        throw std::invalid_argument(
            "placement policy \"" + request_.policy +
            "\" decided group " + std::to_string(decision.group) +
            " zero or multiple times");
      }
      decided[decision.group] = true;
      if (!decision.run_solo && --quota_left[decision.be] < 0) {
        throw std::invalid_argument("placement policy \"" + request_.policy +
                                    "\" overdraws the BE quota");
      }
    }

    // Allocate machines in decision (priority) order from the roster —
    // first-fit over contiguous alive+free runs, which with every machine
    // alive is exactly the old cursor allocation. A decision that no longer
    // fits is skipped, so smaller later groups may still land. Degraded mode
    // suspends BE cluster-wide by forcing every placement solo.
    const bool solo_everything = supervisor_.degraded();
    std::vector<GroupOutcome> epoch_placement(view.pending.size());
    for (const PlacementDecision& decision : decisions) {
      const PendingGroup& group = view.pending[decision.group];
      GroupOutcome& outcome = epoch_placement[decision.group];
      outcome.epoch = epoch;
      outcome.group = group.group;
      outcome.app = group.app;
      outcome.be = decision.be;
      outcome.run_solo = decision.run_solo || solo_everything;
      outcome.pods = group.pods;
      outcome.load = group.load;
      outcome.score = decision.score;
      const int first = supervisor_.roster().Allocate(group.pods);
      if (first >= 0) {
        outcome.placed = true;
        outcome.first_machine = first;
        machines_used_ = std::max(machines_used_, first + group.pods);
      }
      const ObsPlacementOp op = !outcome.placed ? ObsPlacementOp::kGroupUnplaced
                                : outcome.run_solo ? ObsPlacementOp::kGroupSolo
                                                   : ObsPlacementOp::kGroupPlaced;
      const uint8_t detail = op == ObsPlacementOp::kGroupPlaced
                                 ? static_cast<uint8_t>(decision.be)
                                 : uint8_t{0};
      events_.push_back(PlacementEvent(now_s, op, outcome.first_machine,
                                       group.group, group.pods, decision.score,
                                       group.load, detail));
    }

    // Churn: any group whose effective assignment changed since last epoch.
    if (!previous_.empty()) {
      for (size_t g = 0; g < epoch_placement.size(); ++g) {
        const GroupOutcome& now = epoch_placement[g];
        const GroupOutcome& was = previous_[g];
        const bool same = now.placed == was.placed &&
                          now.run_solo == was.run_solo &&
                          (now.run_solo || !now.placed || now.be == was.be);
        if (!same) {
          ++placement_churn_;
          events_.push_back(PlacementEvent(
              now_s, ObsPlacementOp::kChurn, now.first_machine, now.group,
              now.pods, now.score, now.load,
              now.placed && !now.run_solo ? static_cast<uint8_t>(now.be)
                                          : uint8_t{0}));
        }
      }
    }
    previous_ = epoch_placement;
    outcomes_.insert(outcomes_.end(), epoch_placement.begin(),
                     epoch_placement.end());

    // Build this epoch's trials serially in slot order, so validation
    // errors surface lowest slot first — the flat runner's first-error
    // order.
    for (int g = 0; g < groups_per_epoch_; ++g) {
      const size_t index = epoch_outcomes_begin_ + static_cast<size_t>(g);
      const GroupOutcome& outcome = outcomes_[index];
      if (!outcome.placed) {
        continue;
      }
      GroupSlot& slot = slots_[static_cast<size_t>(g)];
      slot.outcome = index;
      slot.start_s = 0.0;
      slot.trial_request = TrialRequest(request_, outcome, groups_per_epoch_);
      slot.trial = std::make_unique<Trial>(slot.trial_request, TrialHooks{},
                                           &slot.arena);
      slot.trial->Start();
    }
  }

  // Advances every live trial from `from` to `to` (epoch-local) in
  // conservative windows. When `suppress_final` is set, `to` is a machine-
  // loss barrier: the last window's snapshot is deferred until after the
  // enactment (EnactBarrier emits it), so hooks never observe a half-applied
  // barrier; errors are still swept there.
  void AdvanceSegment(int epoch, double from, double to, bool suppress_final) {
    std::vector<ShardUnit> units;
    units.reserve(slots_.size());
    const double epoch_base_s = epoch * epoch_span_s_;
    const bool ticks = request_.record_tick_events;
    for (int g = 0; g < groups_per_epoch_; ++g) {
      GroupSlot& slot = slots_[static_cast<size_t>(g)];
      if (slot.trial == nullptr) {
        continue;
      }
      const GroupOutcome& outcome = outcomes_[slot.outcome];
      ShardUnit unit;
      unit.slot = g;
      unit.weight = static_cast<double>(outcome.pods);
      Trial* trial = slot.trial.get();
      GroupSlot* home = &slot;
      const int group = outcome.group;
      const int first_machine = outcome.first_machine;
      const double start_s = slot.start_s;
      // Captures copies and slot pointers only: outcomes_ grows when
      // failovers start, so no reference into it may outlive this scope.
      unit.advance = [trial, home, group, first_machine, start_s, epoch_base_s,
                      ticks](double end_time) {
        if (home->error != nullptr) {
          return;  // failed earlier; hold the island at its failure point.
        }
        try {
          trial->AdvanceTo(end_time - start_s);
          if (ticks) {
            // Plain counter reads only — emission must not perturb the run.
            ObsEvent event;
            event.time_s = epoch_base_s + end_time;
            event.machine = first_machine;
            event.kind = ObsKind::kPlacement;
            event.code = static_cast<uint8_t>(ObsPlacementOp::kTickBarrier);
            event.a = static_cast<double>(group);
            event.b =
                static_cast<double>(trial->deployment().TotalSlaViolations());
            event.c = static_cast<double>(trial->deployment().TotalBeKills());
            event.d = trial->now();
            home->tick_events.push_back(event);
          }
        } catch (...) {
          home->error = std::current_exception();
        }
      };
      units.push_back(std::move(unit));
    }

    engine_->Advance(
        units, from, to, MachineAgent::kPeriodSeconds,
        [&](double window_end) {
          CheckErrors();
          if (suppress_final && window_end == to) {
            return;
          }
          AtBarrier(epoch, window_end);
        });
  }

  // First-error propagation, lowest slot first, checked while every shard
  // rests at the barrier.
  void CheckErrors() {
    for (GroupSlot& slot : slots_) {
      if (slot.error != nullptr) {
        std::rethrow_exception(slot.error);
      }
    }
  }

  // Enacts every transition quantized to (epoch, window_s). Fills
  // `newly_lost` with (machine, scheduled_s) of losses that took effect at
  // this call — the victim-detection set — and accumulates the snapshot's
  // lost/rejoined lists.
  void EnactTransitions(int epoch, double window_s, size_t& next,
                        std::vector<std::pair<int, double>>* newly_lost =
                            nullptr) {
    const double cluster_t = epoch * epoch_span_s_ + window_s;
    bool any = false;
    while (next < transitions_.size() &&
           transitions_[next].epoch == epoch &&
           transitions_[next].window_s == window_s) {
      const MachineTransition& transition = transitions_[next++];
      MachineRoster& roster = supervisor_.roster();
      if (transition.rejoin) {
        // A rejoin enacts only when its own loss transition took effect —
        // a restart whose loss found the machine already dead degrades to a
        // no-op in full, keeping overlapping schedules deterministic.
        if (loss_owner_[static_cast<size_t>(transition.machine)] ==
                transition.event_id &&
            roster.MarkUp(transition.machine)) {
          loss_owner_[static_cast<size_t>(transition.machine)] = -1;
          ++machines_restarted_;
          rejoined_pending_.push_back(transition.machine);
          checker_.OnRejoinEnacted(cluster_t, transition.machine);
          events_.push_back(PlacementEvent(cluster_t,
                                           ObsPlacementOp::kMachineUp,
                                           transition.machine,
                                           transition.scheduled_s, 0.0, 0.0,
                                           0.0));
          any = true;
        }
      } else if (roster.MarkDown(transition.machine)) {
        loss_owner_[static_cast<size_t>(transition.machine)] =
            transition.event_id;
        ++machines_failed_;
        lost_pending_.push_back(transition.machine);
        if (newly_lost != nullptr) {
          newly_lost->emplace_back(transition.machine, transition.scheduled_s);
        }
        worst_failover_latency_s_ = std::max(
            worst_failover_latency_s_, cluster_t - transition.scheduled_s);
        checker_.OnLossEnacted(cluster_t, transition.machine,
                               transition.scheduled_s);
        events_.push_back(PlacementEvent(cluster_t,
                                         ObsPlacementOp::kMachineDown,
                                         transition.machine,
                                         transition.scheduled_s,
                                         transition.downtime_s, 0.0, 0.0));
        any = true;
      }
    }
    if (any) {
      MaybeEmitDegraded(cluster_t);
    }
  }

  void MaybeEmitDegraded(double time_s) {
    const bool degraded = supervisor_.degraded();
    if (degraded == was_degraded_) {
      return;
    }
    was_degraded_ = degraded;
    const MachineRoster& roster = supervisor_.roster();
    events_.push_back(PlacementEvent(
        time_s, ObsPlacementOp::kDegraded, -1,
        static_cast<double>(roster.down()),
        static_cast<double>(roster.down()) / roster.machines(), 0.0, 0.0,
        degraded ? uint8_t{1} : uint8_t{0}));
  }

  // A mid-epoch machine-loss barrier: enact the liveness edges, kill and
  // harvest the victims, run supervisor failover, then emit the deferred
  // barrier snapshot over the settled cluster.
  void EnactBarrier(int epoch, double window_s, size_t& next) {
    const double cluster_t = epoch * epoch_span_s_ + window_s;
    std::vector<std::pair<int, double>> newly_lost;
    EnactTransitions(epoch, window_s, next, &newly_lost);

    // Victims: live groups whose machine range took a hit at THIS barrier.
    // Machines that were already dead killed their groups when they died.
    std::vector<int> victim_slots;
    std::vector<double> victim_latency;
    for (int g = 0; g < groups_per_epoch_; ++g) {
      GroupSlot& slot = slots_[static_cast<size_t>(g)];
      if (slot.trial == nullptr) {
        continue;
      }
      const GroupOutcome& outcome = outcomes_[slot.outcome];
      double earliest = std::numeric_limits<double>::infinity();
      for (const auto& [machine, scheduled_s] : newly_lost) {
        if (machine >= outcome.first_machine &&
            machine < outcome.first_machine + outcome.pods) {
          earliest = std::min(earliest, scheduled_s);
        }
      }
      if (!std::isinf(earliest)) {
        victim_slots.push_back(g);
        victim_latency.push_back(cluster_t - earliest);
      }
    }

    // Kill: harvest what the victim served, free its surviving machines.
    for (int g : victim_slots) {
      GroupSlot& slot = slots_[static_cast<size_t>(g)];
      GroupOutcome& outcome = outcomes_[slot.outcome];
      outcome.summary = slot.trial->Harvest();
      outcome.disrupted = true;
      outcome.served_measure_s =
          std::clamp(window_s - slot.start_s - slot.trial_request.warmup_s,
                     0.0, slot.trial_request.measure_s);
      slot.trial.reset();
      supervisor_.roster().Release(outcome.first_machine, outcome.pods);
      ++groups_disrupted_;
      ++epoch_disrupted_;
    }

    if (!victim_slots.empty()) {
      Failover(epoch, window_s, cluster_t, victim_slots, victim_latency);
    }

    AtBarrier(epoch, window_s);
  }

  void Failover(int epoch, double window_s, double cluster_t,
                const std::vector<int>& victim_slots,
                const std::vector<double>& victim_latency) {
    // Victim view, renumbered 0..n-1 (PlacementDecision::group indexes the
    // pending list); the quota re-offers each victim's epoch BE assignment.
    ClusterView victims;
    victims.spec = &request_.spec;
    victims.epoch = epoch;
    victims.load_scale = EpochLoadScale(request_, epoch);
    victims.model = model_of_;
    std::vector<int> original_groups;
    original_groups.reserve(victim_slots.size());
    for (int g : victim_slots) {
      const GroupOutcome& dead = outcomes_[slots_[static_cast<size_t>(g)].outcome];
      PendingGroup pending;
      pending.group = static_cast<int>(victims.pending.size());
      pending.app = dead.app;
      pending.load = dead.load;
      pending.pods = dead.pods;
      victims.pending.push_back(pending);
      victims.be_quota.push_back(dead.be);
      original_groups.push_back(dead.group);
    }

    std::vector<FailoverDecision> plan =
        supervisor_.PlanFailover(*policy_, victims, original_groups);

    // Latency lookup by original group id (victim_slots holds slot == group).
    auto latency_of = [&](int group) {
      for (size_t v = 0; v < victim_slots.size(); ++v) {
        if (original_groups[v] == group) {
          return victim_latency[v];
        }
      }
      return 0.0;
    };
    auto slot_of = [&](int group) -> GroupSlot& {
      for (size_t v = 0; v < victim_slots.size(); ++v) {
        if (original_groups[v] == group) {
          return slots_[static_cast<size_t>(victim_slots[v])];
        }
      }
      throw std::logic_error("failover decision names a non-victim group");
    };

    if (plan.empty()) {
      // Supervisor disabled: every victim is lost for the rest of the epoch.
      for (int g : victim_slots) {
        const GroupOutcome& dead = outcomes_[slots_[static_cast<size_t>(g)].outcome];
        ++groups_lost_;
        ++epoch_lost_;
        events_.push_back(PlacementEvent(cluster_t, ObsPlacementOp::kGroupDown,
                                         dead.first_machine, dead.group,
                                         dead.pods, 0.0, 0.0));
      }
      return;
    }

    for (const FailoverDecision& decision : plan) {
      GroupSlot& slot = slot_of(decision.group);
      const GroupOutcome dead = outcomes_[slot.outcome];  // copy: vector grows.
      if (decision.first_machine < 0) {
        ++groups_lost_;
        ++epoch_lost_;
        events_.push_back(PlacementEvent(cluster_t, ObsPlacementOp::kGroupDown,
                                         dead.first_machine, dead.group,
                                         dead.pods, 0.0, 0.0));
        continue;
      }

      const int incarnation = ++slot.incarnations;
      GroupOutcome replacement;
      replacement.epoch = epoch;
      replacement.group = dead.group;
      replacement.app = dead.app;
      replacement.be = decision.be;
      replacement.placed = true;
      replacement.run_solo = decision.run_solo;
      replacement.first_machine = decision.first_machine;
      replacement.pods = dead.pods;
      replacement.load = dead.load;
      replacement.score = decision.score;
      replacement.incarnation = incarnation;
      replacement.start_s = window_s;
      machines_used_ =
          std::max(machines_used_, decision.first_machine + dead.pods);
      pods_migrated_ += dead.pods;
      ++groups_failed_over_;
      ++epoch_failed_over_;

      const double latency = latency_of(decision.group);
      events_.push_back(PlacementEvent(
          cluster_t, ObsPlacementOp::kFailover, decision.first_machine,
          dead.group, dead.pods, incarnation, latency,
          decision.run_solo ? uint8_t{0}
                            : static_cast<uint8_t>(decision.be)));

      outcomes_.push_back(replacement);
      slot.outcome = outcomes_.size() - 1;
      slot.start_s = window_s;
      slot.trial_request =
          FailoverTrialRequest(replacement, window_s, incarnation);
      slot.trial = std::make_unique<Trial>(slot.trial_request, TrialHooks{},
                                           &slot.arena);
      slot.trial->Start();
    }
  }

  // A replacement trial re-warms inside what is left of the epoch: warmup is
  // the request's, shrunk so at least half the remaining span measures, and
  // BE re-admission backs off under a kBeAdmissionHold window per pod.
  RunRequest FailoverTrialRequest(const GroupOutcome& replacement,
                                  double start_s, int incarnation) {
    RunRequest trial = TrialRequest(request_, replacement, groups_per_epoch_);
    const double remaining = epoch_span_s_ - start_s;
    trial.warmup_s = std::min(request_.warmup_s, 0.5 * remaining);
    trial.measure_s = remaining - trial.warmup_s;
    trial.seed = DeriveFailoverSeed(request_.seed, replacement.epoch,
                                    groups_per_epoch_, replacement.group,
                                    incarnation);
    trial.label += "/f" + std::to_string(incarnation);
    if (!replacement.run_solo &&
        request_.supervisor.readmission_backoff_s > 0.0) {
      auto holds = std::make_shared<FaultSchedule>();
      for (int pod = 0; pod < replacement.pods; ++pod) {
        FaultEvent hold;
        hold.kind = FaultKind::kBeAdmissionHold;
        hold.pod = pod;
        hold.start_s = 0.0;
        hold.duration_s = request_.supervisor.readmission_backoff_s;
        holds->Add(hold);
      }
      trial.faults = std::move(holds);
    }
    return trial;
  }

  // Every settled barrier: assemble the slot-order-merged snapshot, audit
  // assignments against the shadow liveness, account the supervisor's
  // degraded time, and fire the user hook.
  void AtBarrier(int epoch, double window_end) {
    ClusterTickSnapshot snap;
    snap.time_s = epoch * epoch_span_s_ + window_end;
    snap.epoch = epoch;
    snap.window_end_s = window_end;
    snap.window = engine_->windows_run();
    for (const GroupSlot& slot : slots_) {  // slot-order merge.
      if (slot.trial == nullptr) {
        continue;
      }
      const Deployment& deployment = slot.trial->deployment();
      ++snap.groups_running;
      snap.sla_violations += deployment.TotalSlaViolations();
      snap.be_kills += deployment.TotalBeKills();
      snap.slack_violation_ticks += deployment.slack_violation_ticks();
      snap.crashes += deployment.crash_count();
    }
    const MachineRoster& roster = supervisor_.roster();
    snap.machines_total = roster.machines();
    snap.machines_alive = roster.alive();
    snap.machines_down = roster.down();
    snap.lost_machines = std::move(lost_pending_);
    lost_pending_.clear();
    snap.rejoined_machines = std::move(rejoined_pending_);
    rejoined_pending_.clear();
    snap.groups_down = epoch_disrupted_ - epoch_failed_over_;
    snap.degraded = supervisor_.degraded();

    if (checker_.armed()) {
      std::vector<std::pair<int, int>> live_ranges;
      for (const GroupSlot& slot : slots_) {
        if (slot.trial == nullptr) {
          continue;
        }
        const GroupOutcome& outcome = outcomes_[slot.outcome];
        live_ranges.emplace_back(outcome.first_machine, outcome.pods);
      }
      checker_.CheckAssignments(snap.time_s, live_ranges);
    }
    supervisor_.ObserveBarrier(snap);
    if (request_.on_tick) {
      request_.on_tick(snap);
    }
  }

  void HarvestEpoch(int epoch) {
    // Harvest in slot order. Trials stay alive until the next epoch rebuilds
    // them; the last epoch's die with `slots_`.
    for (GroupSlot& slot : slots_) {
      if (slot.trial == nullptr) {
        continue;
      }
      GroupOutcome& outcome = outcomes_[slot.outcome];
      outcome.summary = slot.trial->Finish();
      outcome.served_measure_s = slot.trial_request.measure_s;
    }

    // Demanded measurement seconds lost to machine loss: per disrupted
    // group-epoch, the measure window minus every incarnation's served
    // share, floored at zero (replacement windows can overlap the demand).
    if (epoch_disrupted_ > 0) {
      std::map<int, double> served;
      std::map<int, bool> disrupted;
      for (size_t i = epoch_outcomes_begin_; i < outcomes_.size(); ++i) {
        const GroupOutcome& outcome = outcomes_[i];
        if (!outcome.placed) {
          continue;
        }
        served[outcome.group] += outcome.served_measure_s;
        if (outcome.disrupted) {
          disrupted[outcome.group] = true;
        }
      }
      for (const auto& [group, hit] : disrupted) {
        if (hit) {
          down_group_seconds_ +=
              std::max(0.0, request_.measure_s - served[group]);
        }
      }
    }

    checker_.CheckConservation((epoch + 1) * epoch_span_s_, epoch,
                               epoch_disrupted_, epoch_failed_over_,
                               epoch_lost_);
  }

  const ClusterRunRequest& request_;
  const int groups_per_epoch_;
  const double epoch_span_s_;

  std::map<LcAppKind, AppPlacementModel> models_;
  std::function<const AppPlacementModel&(LcAppKind)> model_of_;
  std::unique_ptr<PlacementPolicy> policy_;
  ClusterSupervisor supervisor_;
  ClusterInvariantChecker checker_;
  std::vector<MachineTransition> transitions_;
  std::vector<int> loss_owner_;  // event_id whose loss holds the machine.

  ShardedEngine* engine_ = nullptr;
  std::vector<GroupSlot> slots_;  // fixed size: slot pointers stay valid.
  std::vector<GroupOutcome> outcomes_;
  std::vector<ObsEvent> events_;
  std::vector<GroupOutcome> previous_;  // last epoch's placement, group order.

  int placement_churn_ = 0;
  int machines_used_ = 0;

  // Failure-domain accounting (totals and per-epoch conservation counters).
  int machines_failed_ = 0;
  int machines_restarted_ = 0;
  int groups_disrupted_ = 0;
  int groups_failed_over_ = 0;
  int groups_lost_ = 0;
  int pods_migrated_ = 0;
  double down_group_seconds_ = 0.0;
  double worst_failover_latency_s_ = 0.0;
  int epoch_disrupted_ = 0;
  int epoch_failed_over_ = 0;
  int epoch_lost_ = 0;
  size_t epoch_outcomes_begin_ = 0;
  bool was_degraded_ = false;
  std::vector<int> lost_pending_;      // since the last emitted snapshot.
  std::vector<int> rejoined_pending_;
};

// Per-app tick totals are finalized after the trial summaries are in.
void FinalizeAppRates(const ClusterRunRequest& request,
                      ClusterSummary& summary) {
  std::map<LcAppKind, double> pod_ticks;
  for (const GroupOutcome& outcome : summary.groups) {
    if (outcome.placed) {
      pod_ticks[outcome.app] += outcome.pods * outcome.served_measure_s /
                                MachineAgent::kPeriodSeconds;
    }
  }
  for (AppClusterStats& app : summary.per_app) {
    const double ticks = pod_ticks[app.app];
    app.slo_violation_rate =
        ticks > 0.0 ? static_cast<double>(app.sla_violations) / ticks : 0.0;
  }
  (void)request;
}

void ExportRecording(const ClusterRunRequest& request,
                     const Recording& recording) {
  if (!request.obs.enabled) {
    return;
  }
  if (!request.obs.export_jsonl.empty()) {
    WriteJsonl(recording, request.obs.export_jsonl);
  }
  if (!request.obs.export_perfetto.empty()) {
    WritePerfettoTrace(recording, request.obs.export_perfetto);
  }
  if (!request.obs.export_metrics_csv.empty()) {
    WriteMetricsCsv(recording, request.obs.export_metrics_csv);
  }
}

}  // namespace

uint64_t DeriveGroupSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                         int group) {
  return DeriveTrialSeed(base_seed,
                         static_cast<uint64_t>(epoch) *
                                 static_cast<uint64_t>(groups_per_epoch) +
                             static_cast<uint64_t>(group));
}

uint64_t DeriveShardSeed(uint64_t base_seed, uint64_t slot) {
  // The salt (SplitMix64's first mixing multiplier; any fixed odd constant
  // works) moves the base into a family the unsalted trial/group streams
  // never draw from.
  return DeriveTrialSeed(base_seed ^ 0xbf58476d1ce4e5b9ULL, slot);
}

uint64_t DeriveFailoverSeed(uint64_t base_seed, int epoch, int groups_per_epoch,
                            int group, int incarnation) {
  // Salted with SplitMix64's second mixing multiplier — a third stream
  // family, disjoint from trial/group (unsalted) and shard (first-multiplier)
  // streams. 1024 incarnations per flat index is far beyond what one epoch's
  // barriers could start.
  const uint64_t flat = static_cast<uint64_t>(epoch) *
                            static_cast<uint64_t>(groups_per_epoch) +
                        static_cast<uint64_t>(group);
  return DeriveTrialSeed(base_seed ^ 0x94d049bb133111ebULL,
                         flat * 1024 + static_cast<uint64_t>(incarnation));
}

std::vector<ClusterSummary> RunClusterPlan(const ClusterRunPlan& plan,
                                           const RunnerOptions& options) {
  for (const ClusterRunRequest& request : plan.requests) {
    ValidateRequest(request);
  }

  // One shard pool serves the whole plan; each request's epochs run their
  // placed groups concurrently between conservative-window barriers. Shard
  // count is a performance knob only — summaries are bit-identical at any
  // value.
  const int shards = options.shards > 0 ? options.shards : DefaultShardCount();
  ShardPool pool(shards);
  ShardedEngine engine(&pool);

  std::vector<ClusterSummary> summaries;
  summaries.reserve(plan.requests.size());
  for (const ClusterRunRequest& request : plan.requests) {
    RequestExecution execution(request);
    execution.Run(engine);
    summaries.push_back(execution.Summarize());
    FinalizeAppRates(request, summaries.back());
    ExportRecording(request, summaries.back().recording);
  }
  return summaries;
}

ClusterSummary RunCluster(const ClusterRunRequest& request,
                          const RunnerOptions& options) {
  ClusterRunPlan plan;
  plan.Add(request);
  return std::move(RunClusterPlan(plan, options).front());
}

}  // namespace rhythm
