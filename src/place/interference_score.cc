#include "src/place/interference_score.h"

#include <algorithm>

#include "src/analysis/contribution.h"
#include "src/cluster/app_thresholds.h"

namespace rhythm {

AppPlacementModel DefaultPlacementModel(LcAppKind app) {
  const AppSpec spec = MakeApp(app);
  const AppThresholds& thresholds = CachedAppThresholds(app);
  const std::vector<double> weights = NormalizedContributions(thresholds.contributions);

  AppPlacementModel model;
  model.app = app;
  model.pods.reserve(spec.components.size());
  for (size_t pod = 0; pod < spec.components.size(); ++pod) {
    PodPlacementModel entry;
    entry.name = spec.components[pod].name;
    entry.sensitivity = spec.components[pod].sensitivity;
    entry.thresholds = thresholds.pods[pod];
    entry.contribution = pod < weights.size() ? weights[pod] : 0.0;
    model.pods.push_back(std::move(entry));
  }
  return model;
}

double PodInterferenceScore(const ResourceVector& sensitivity,
                            const ResourceVector& pressure) {
  return sensitivity.cpu * pressure.cpu + sensitivity.llc * pressure.llc +
         sensitivity.dram * pressure.dram + sensitivity.net * pressure.net +
         sensitivity.freq * pressure.freq;
}

namespace {

// Per-pod weights: normalized contributions, or uniform when the model
// carries none (all-zero contributions).
double PodWeight(const AppPlacementModel& model, size_t pod) {
  double total = 0.0;
  for (const PodPlacementModel& entry : model.pods) {
    total += std::max(0.0, entry.contribution);
  }
  if (total <= 0.0) {
    return model.pods.empty() ? 0.0 : 1.0 / static_cast<double>(model.pods.size());
  }
  return std::max(0.0, model.pods[pod].contribution) / total;
}

}  // namespace

double GroupInterferenceScore(const AppPlacementModel& model,
                              const ResourceVector& pressure) {
  double score = 0.0;
  for (size_t pod = 0; pod < model.pods.size(); ++pod) {
    score += PodWeight(model, pod) *
             PodInterferenceScore(model.pods[pod].sensitivity, pressure);
  }
  return score;
}

double RhythmPlacementScore(const AppPlacementModel& model,
                            const ResourceVector& pressure, double load) {
  double score = 0.0;
  for (size_t pod = 0; pod < model.pods.size(); ++pod) {
    const PodPlacementModel& entry = model.pods[pod];
    const double raw = PodInterferenceScore(entry.sensitivity, pressure);
    // Tightness in [0,1]: how far up this pod's loadlimit the offered load
    // sits. The floor keeps a degenerate loadlimit of 0 from dividing away.
    const double tightness =
        std::min(1.0, std::max(0.0, load) / std::max(entry.thresholds.loadlimit, 0.05));
    // Slack headroom: a slacklimit near 1 means BE growth must stop almost
    // immediately, so the same raw pressure costs more.
    const double headroom = std::max(0.05, 1.0 - entry.thresholds.slacklimit);
    score += PodWeight(model, pod) * raw * (0.25 + tightness) / headroom;
  }
  return score;
}

double ResidualFitFraction(const MachineSpec& machine, BeJobKind be,
                           double load) {
  const BeJobSpec& job = GetBeJobSpec(be);
  const double bounded = std::clamp(load, 0.0, 1.0);
  // What the LC leaves behind on each axis. The core pool is the scarcest:
  // the machine agent keeps a load-proportional reservation plus headroom,
  // so BEs see roughly half the idle cores even at low load. LLC ways and
  // memory bandwidth drain more gently with load; DRAM capacity is not
  // load-dependent.
  const double cores = 0.5 * (1.0 - bounded) * machine.total_cores;
  const double ways = (1.0 - 0.5 * bounded) * machine.llc_ways;
  const double bandwidth = (1.0 - 0.75 * bounded) * machine.dram_bw_gbs;
  const double fit =
      std::min({cores / std::max(job.cores_demand, 0.1),
                ways / std::max(static_cast<double>(job.llc_ways_demand), 1.0),
                bandwidth / std::max(job.membw_demand_gbs, 0.1),
                machine.dram_gb / std::max(job.memory_gb, 0.1)});
  return std::max(0.0, fit) / SoloInstanceCount(job, machine);
}

bool LoadAboveAnyLoadlimit(const AppPlacementModel& model, double load) {
  for (const PodPlacementModel& entry : model.pods) {
    if (load >= entry.thresholds.loadlimit) {
      return true;
    }
  }
  return false;
}

bool LoadAboveAllLoadlimits(const AppPlacementModel& model, double load) {
  for (const PodPlacementModel& entry : model.pods) {
    if (load < entry.thresholds.loadlimit) {
      return false;
    }
  }
  return !model.pods.empty();
}

}  // namespace rhythm
