#include "src/place/cluster_spec.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/place/cluster_engine.h"

namespace rhythm {

int ClusterSpec::TotalGroups() const {
  int groups = 0;
  for (const LcGroupDemand& demand : lc_demand) {
    groups += std::max(0, demand.count);
  }
  return groups;
}

int ClusterSpec::TotalPods() const {
  int pods = 0;
  for (const LcGroupDemand& demand : lc_demand) {
    pods += std::max(0, demand.count) * MakeApp(demand.app).pod_count();
  }
  return pods;
}

std::vector<PendingGroup> ExpandGroups(const ClusterSpec& spec) {
  std::vector<PendingGroup> groups;
  groups.reserve(static_cast<size_t>(spec.TotalGroups()));
  int next = 0;
  for (const LcGroupDemand& demand : spec.lc_demand) {
    const int pods = MakeApp(demand.app).pod_count();
    for (int i = 0; i < demand.count; ++i) {
      PendingGroup group;
      group.group = next++;
      group.app = demand.app;
      group.load = demand.load;
      group.pods = pods;
      groups.push_back(group);
    }
  }
  return groups;
}

std::vector<BeJobKind> ExpandBeQuota(const ClusterSpec& spec, int slots) {
  std::vector<BeJobKind> quota;
  if (slots <= 0 || spec.be_backlog.empty()) {
    return quota;
  }
  double total_weight = 0.0;
  for (const BeBacklogShare& share : spec.be_backlog) {
    total_weight += std::max(0.0, share.weight);
  }
  if (total_weight <= 0.0) {
    return quota;
  }

  // Largest-remainder apportionment: floor every share, then hand the
  // leftover slots to the largest fractional remainders, declaration order
  // breaking ties. Deterministic and exact (counts sum to `slots`).
  struct Cut {
    size_t index;
    int count;
    double remainder;
  };
  std::vector<Cut> cuts;
  cuts.reserve(spec.be_backlog.size());
  int assigned = 0;
  for (size_t i = 0; i < spec.be_backlog.size(); ++i) {
    const double exact =
        slots * std::max(0.0, spec.be_backlog[i].weight) / total_weight;
    Cut cut;
    cut.index = i;
    cut.count = static_cast<int>(std::floor(exact));
    cut.remainder = exact - cut.count;
    assigned += cut.count;
    cuts.push_back(cut);
  }
  std::vector<size_t> order(cuts.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&cuts](size_t a, size_t b) {
    return cuts[a].remainder > cuts[b].remainder;
  });
  for (size_t i = 0; assigned < slots && i < order.size(); ++i, ++assigned) {
    ++cuts[order[i]].count;
  }
  // Still short (all-zero remainders with few backlog entries): round-robin.
  for (size_t i = 0; assigned < slots; i = (i + 1) % cuts.size(), ++assigned) {
    ++cuts[i].count;
  }

  quota.reserve(static_cast<size_t>(slots));
  for (const Cut& cut : cuts) {
    for (int n = 0; n < cut.count; ++n) {
      quota.push_back(spec.be_backlog[cut.index].be);
    }
  }
  return quota;
}

ClusterSpec DefaultEvalClusterSpec(int machines) {
  ClusterSpec spec;
  spec.machines = machines;
  // Heterogeneous demand: tolerant low-load groups that profit from heavy
  // BEs next to tight high-load groups that any pressure tips over their
  // thresholds — the pairing problem the threshold-aware policy exists for.
  spec.lc_demand = {
      {LcAppKind::kEcommerce, 2, 0.45},     // 4 pods each, moderate.
      {LcAppKind::kEcommerce, 1, 0.85},     // 4 pods, above MySQL's loadlimit.
      {LcAppKind::kRedis, 2, 0.65},         // 2 pods each, latency-critical.
      {LcAppKind::kSolr, 2, 0.35},          // 2 pods each, tolerant.
      {LcAppKind::kElasticsearch, 1, 0.80}, // 2 pods, tight.
      {LcAppKind::kElgg, 1, 0.55},          // 3 pods, middling.
  };
  // Backlog mixing one heavy stressor per roughly two gentle application
  // BEs; quota for 9 groups: 2 dram + 1 llc + 2 cpu + 2 wordcount + 1 lstm
  // + 1 imageClassify.
  spec.be_backlog = {
      {BeJobKind::kStreamDramBig, 2.0},
      {BeJobKind::kStreamLlcBig, 1.0},
      {BeJobKind::kCpuStress, 2.0},
      {BeJobKind::kWordcount, 2.0},
      {BeJobKind::kLstm, 1.0},
      {BeJobKind::kImageClassify, 1.0},
  };
  return spec;
}

ClusterSpec SyntheticClusterSpec(int machines, uint64_t seed) {
  ClusterSpec spec;
  spec.machines = std::max(1, machines);

  // Demand archetypes, weighted like a trace-style mix: mostly moderate web
  // and cache tiers, a tolerant analytics tier, and a minority of tight
  // high-load groups that punish careless packing.
  struct Archetype {
    LcAppKind app;
    double weight;
    double load_lo;
    double load_hi;
  };
  const Archetype kMix[] = {
      {LcAppKind::kEcommerce, 3.0, 0.35, 0.55},
      {LcAppKind::kRedis, 3.0, 0.50, 0.70},
      {LcAppKind::kSolr, 2.0, 0.25, 0.45},
      {LcAppKind::kElgg, 1.0, 0.45, 0.60},
      {LcAppKind::kElasticsearch, 1.0, 0.70, 0.85},
  };
  double total_weight = 0.0;
  for (const Archetype& archetype : kMix) {
    total_weight += archetype.weight;
  }

  // Engine-side stream family (never collides with trial seeds): stream 0
  // drives the demand draw, stream 1 the backlog weights.
  Rng demand_rng(DeriveShardSeed(seed, 0));
  // Mild oversubscription (~5%) so placement order matters at every size.
  const int target_pods = spec.machines + std::max(1, spec.machines / 20);
  int pods = 0;
  while (pods < target_pods) {
    double pick = demand_rng.Uniform(0.0, total_weight);
    const Archetype* chosen = &kMix[0];
    for (const Archetype& archetype : kMix) {
      chosen = &archetype;
      pick -= archetype.weight;
      if (pick < 0.0) {
        break;
      }
    }
    // Loads rounded to 0.01 keep specs printable without changing the draw
    // count.
    const double load = std::round(demand_rng.Uniform(chosen->load_lo,
                                                      chosen->load_hi) *
                                   100.0) /
                        100.0;
    spec.lc_demand.push_back(LcGroupDemand{chosen->app, 1, load});
    pods += MakeApp(chosen->app).pod_count();
  }

  Rng backlog_rng(DeriveShardSeed(seed, 1));
  const BeJobKind kJobs[] = {BeJobKind::kStreamDramBig, BeJobKind::kStreamLlcBig,
                             BeJobKind::kCpuStress,     BeJobKind::kWordcount,
                             BeJobKind::kLstm,          BeJobKind::kImageClassify};
  for (BeJobKind job : kJobs) {
    spec.be_backlog.push_back(
        BeBacklogShare{job, backlog_rng.Uniform(0.5, 2.5)});
  }
  return spec;
}

}  // namespace rhythm
