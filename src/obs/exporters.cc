#include "src/obs/exporters.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/bemodel/be_job_spec.h"
#include "src/common/json.h"
#include "src/control/top_controller.h"
#include "src/fault/fault_schedule.h"

namespace rhythm {
namespace {

// Shared JSON primitives (src/common/json.h): %.17g doubles and string
// escaping, the same routines the serving daemon renders with.
std::string Num(double value) { return JsonNum(value); }
std::string EscapeJson(const std::string& text) { return JsonEscape(text); }

// Compact formatting for human-readable output.
std::string Short(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// The per-kind name of the `code` byte ("AllowBEGrowth", "cpu-llc",
// "PodCrash", ...). Decorative in JSONL; the numeric fields are authoritative.
std::string CodeName(const ObsEvent& event) {
  switch (event.kind) {
    case ObsKind::kDecision:
      return BeActionName(static_cast<BeAction>(event.code));
    case ObsKind::kActuation:
      return ObsKnobName(static_cast<ObsKnob>(event.code));
    case ObsKind::kFault:
      return FaultKindName(static_cast<FaultKind>(event.code));
    case ObsKind::kSloViolation:
      return ObsSloScopeName(static_cast<ObsSloScope>(event.code));
    case ObsKind::kBeLifecycle:
      return ObsBeOpName(static_cast<ObsBeOp>(event.code));
    case ObsKind::kPlacement:
      return ObsPlacementOpName(static_cast<ObsPlacementOp>(event.code));
  }
  return "?";
}

std::string DetailName(const ObsEvent& event) {
  switch (event.kind) {
    case ObsKind::kDecision:
      return ObsDecisionPhaseName(static_cast<ObsDecisionPhase>(event.detail));
    case ObsKind::kActuation:
      return event.detail != 0 ? "ok" : "failed";
    case ObsKind::kFault:
      return ObsFaultEdgeName(static_cast<ObsFaultEdge>(event.detail));
    case ObsKind::kPlacement:
      // The co-located BE for placed/churned groups; empty for epoch marks,
      // solo and unplaced groups (no BE landed).
      switch (static_cast<ObsPlacementOp>(event.code)) {
        case ObsPlacementOp::kGroupPlaced:
        case ObsPlacementOp::kChurn:
        case ObsPlacementOp::kFailover:
          return BeJobKindName(static_cast<BeJobKind>(event.detail));
        case ObsPlacementOp::kDegraded:
          return event.detail != 0 ? "enter" : "exit";
        case ObsPlacementOp::kEpochBegin:
        case ObsPlacementOp::kGroupSolo:
        case ObsPlacementOp::kGroupUnplaced:
        case ObsPlacementOp::kTickBarrier:
        case ObsPlacementOp::kMachineDown:
        case ObsPlacementOp::kMachineUp:
        case ObsPlacementOp::kGroupDown:
          return "";
      }
      return "";
    case ObsKind::kSloViolation:
    case ObsKind::kBeLifecycle:
      return "";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Minimal JSON field extraction for the flat objects *we* write. Handles
// arbitrary key order and skips unknown keys; not a general JSON parser.

// Position just past `"key":`, or npos.
size_t FindKey(const std::string& line, const char* key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) {
    return std::string::npos;
  }
  return at + needle.size();
}

bool ParseNumber(const std::string& line, const char* key, double* out) {
  const size_t at = FindKey(line, key);
  if (at == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + at, nullptr);
  return true;
}

double RequireNumber(const std::string& line, const char* key) {
  double value = 0.0;
  if (!ParseNumber(line, key, &value)) {
    throw std::runtime_error("recording JSONL: missing numeric field '" +
                             std::string(key) + "' in: " + line);
  }
  return value;
}

// Reads the string literal starting at line[at] == '"'. Advances *at past the
// closing quote.
std::string ReadStringAt(const std::string& line, size_t* at) {
  if (*at >= line.size() || line[*at] != '"') {
    throw std::runtime_error("recording JSONL: expected string in: " + line);
  }
  std::string out;
  for (size_t i = *at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      *at = i + 1;
      return out;
    }
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 >= line.size()) {
      break;
    }
    const char esc = line[++i];
    switch (esc) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 >= line.size()) {
          throw std::runtime_error("recording JSONL: bad \\u escape in: " + line);
        }
        const std::string hex = line.substr(i + 1, 4);
        out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default:
        out += esc;  // \" and \\ (and anything else verbatim).
    }
  }
  throw std::runtime_error("recording JSONL: unterminated string in: " + line);
}

bool ParseString(const std::string& line, const char* key, std::string* out) {
  size_t at = FindKey(line, key);
  if (at == std::string::npos) {
    return false;
  }
  *out = ReadStringAt(line, &at);
  return true;
}

// Parses `"key":["a","b",...]`.
std::vector<std::string> ParseStringArray(const std::string& line, const char* key) {
  std::vector<std::string> out;
  size_t at = FindKey(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '[') {
    return out;
  }
  ++at;
  while (at < line.size() && line[at] != ']') {
    if (line[at] == ',' || std::isspace(static_cast<unsigned char>(line[at]))) {
      ++at;
      continue;
    }
    out.push_back(ReadStringAt(line, &at));
  }
  return out;
}

// Parses `"points":[[t,v],[t,v],...]` into a TimeSeries.
TimeSeries ParsePoints(const std::string& line) {
  TimeSeries series;
  size_t at = FindKey(line, "points");
  if (at == std::string::npos || at >= line.size() || line[at] != '[') {
    return series;
  }
  ++at;  // outer '['.
  while (at < line.size() && line[at] != ']') {
    if (line[at] != '[') {
      ++at;
      continue;
    }
    ++at;  // inner '['.
    char* end = nullptr;
    const double time = std::strtod(line.c_str() + at, &end);
    at = static_cast<size_t>(end - line.c_str());
    while (at < line.size() && (line[at] == ',' || line[at] == ' ')) {
      ++at;
    }
    const double value = std::strtod(line.c_str() + at, &end);
    at = static_cast<size_t>(end - line.c_str());
    series.Add(time, value);
    while (at < line.size() && line[at] != ']') {
      ++at;
    }
    if (at < line.size()) {
      ++at;  // inner ']'.
    }
  }
  return series;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

std::string DescribeEvent(const ObsEvent& event) {
  std::ostringstream out;
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "t=%9.3f", event.time_s);
  out << stamp << " machine=" << event.machine << ' ' << ObsKindName(event.kind) << ' '
      << CodeName(event);
  switch (event.kind) {
    case ObsKind::kDecision:
      out << " phase=" << DetailName(event) << " load=" << Short(event.a)
          << " slack=" << Short(event.b) << " loadlimit=" << Short(event.c)
          << " slacklimit=" << Short(event.d);
      break;
    case ObsKind::kActuation: {
      out << ' ' << DetailName(event);
      switch (static_cast<ObsKnob>(event.code)) {
        case ObsKnob::kCpuLlc:
          out << " cores" << (event.a >= 0 ? "+" : "") << Short(event.a) << " ways"
              << (event.b >= 0 ? "+" : "") << Short(event.b);
          break;
        case ObsKnob::kMemory:
          out << " gb" << (event.a >= 0 ? "+" : "") << Short(event.a);
          break;
        case ObsKnob::kFrequency:
          out << " ghz=" << Short(event.a);
          break;
        case ObsKnob::kSuspend:
        case ObsKnob::kResume:
          out << " instances=" << Short(event.a);
          break;
        case ObsKnob::kStop:
          out << " killed=" << Short(event.a);
          break;
        case ObsKnob::kLaunch:
          out << " launched=" << Short(event.a);
          break;
      }
      break;
    }
    case ObsKind::kFault:
      out << ' ' << DetailName(event);
      if (event.a != 0.0) {
        out << " magnitude=" << Short(event.a);
      }
      if (event.b != 0.0) {
        out << " duration=" << Short(event.b);
      }
      break;
    case ObsKind::kSloViolation:
      out << " slack=" << Short(event.a) << " tail_ms=" << Short(event.b);
      break;
    case ObsKind::kBeLifecycle:
      out << " count=" << Short(event.a);
      if (event.b != 0.0) {
        out << " pending=" << Short(event.b);
      }
      break;
    case ObsKind::kPlacement:
      switch (static_cast<ObsPlacementOp>(event.code)) {
        case ObsPlacementOp::kEpochBegin:
          out << " epoch=" << Short(event.a) << " load_scale=" << Short(event.b);
          break;
        case ObsPlacementOp::kMachineDown:
          out << " start=" << Short(event.a) << " downtime=" << Short(event.b);
          break;
        case ObsPlacementOp::kMachineUp:
          out << " rejoin=" << Short(event.a);
          break;
        case ObsPlacementOp::kFailover: {
          const std::string be = DetailName(event);
          if (!be.empty()) {
            out << ' ' << be;
          }
          out << " group=" << Short(event.a) << " pods=" << Short(event.b)
              << " incarnation=" << Short(event.c)
              << " latency_s=" << Short(event.d);
          break;
        }
        case ObsPlacementOp::kGroupDown:
          out << " group=" << Short(event.a) << " pods=" << Short(event.b);
          break;
        case ObsPlacementOp::kDegraded:
          out << ' ' << DetailName(event) << " down=" << Short(event.a)
              << " dead_fraction=" << Short(event.b);
          break;
        default: {
          const std::string be = DetailName(event);
          if (!be.empty()) {
            out << ' ' << be;
          }
          out << " group=" << Short(event.a) << " pods=" << Short(event.b)
              << " score=" << Short(event.c) << " load=" << Short(event.d);
          break;
        }
      }
      break;
  }
  return out.str();
}

std::string ToJsonl(const Recording& recording) {
  std::ostringstream out;
  const RecordingMeta& meta = recording.meta;
  out << "{\"type\":\"meta\",\"app\":\"" << EscapeJson(meta.app) << "\",\"be\":\""
      << EscapeJson(meta.be) << "\",\"controller\":\"" << EscapeJson(meta.controller)
      << "\",\"seed\":" << meta.seed << ",\"sla_ms\":" << Num(meta.sla_ms)
      << ",\"period_s\":" << Num(meta.controller_period_s) << ",\"pods\":[";
  for (size_t i = 0; i < meta.pods.size(); ++i) {
    out << (i ? "," : "") << '"' << EscapeJson(meta.pods[i]) << '"';
  }
  out << "],\"events_total\":" << recording.events_total
      << ",\"events_dropped\":" << recording.events_dropped << "}\n";

  for (const ObsEvent& event : recording.events) {
    out << "{\"type\":\"event\",\"t\":" << Num(event.time_s)
        << ",\"machine\":" << event.machine
        << ",\"k\":" << static_cast<int>(event.kind)
        << ",\"code\":" << static_cast<int>(event.code)
        << ",\"detail\":" << static_cast<int>(event.detail) << ",\"a\":" << Num(event.a)
        << ",\"b\":" << Num(event.b) << ",\"c\":" << Num(event.c)
        << ",\"d\":" << Num(event.d) << ",\"label\":\""
        << EscapeJson(std::string(ObsKindName(event.kind)) + " " + CodeName(event))
        << "\"}\n";
  }

  for (const auto& metric : recording.metrics) {
    out << "{\"type\":\"metric\",\"name\":\"" << EscapeJson(metric.name)
        << "\",\"mtype\":" << static_cast<int>(metric.type)
        << ",\"q\":" << Num(metric.quantile) << ",\"obs\":" << metric.observations
        << ",\"current\":" << Num(metric.current) << ",\"points\":[";
    const auto& points = metric.timeline.points();
    for (size_t i = 0; i < points.size(); ++i) {
      out << (i ? "," : "") << '[' << Num(points[i].time) << ',' << Num(points[i].value)
          << ']';
    }
    out << "]}\n";
  }
  return out.str();
}

Recording FromJsonl(const std::string& jsonl) {
  Recording recording;
  bool saw_meta = false;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::string type;
    if (!ParseString(line, "type", &type)) {
      throw std::runtime_error("recording JSONL: line without \"type\": " + line);
    }
    if (type == "meta") {
      saw_meta = true;
      ParseString(line, "app", &recording.meta.app);
      ParseString(line, "be", &recording.meta.be);
      ParseString(line, "controller", &recording.meta.controller);
      double value = 0.0;
      if (ParseNumber(line, "seed", &value)) {
        recording.meta.seed = static_cast<uint64_t>(value);
      }
      ParseNumber(line, "sla_ms", &recording.meta.sla_ms);
      ParseNumber(line, "period_s", &recording.meta.controller_period_s);
      recording.meta.pods = ParseStringArray(line, "pods");
      if (ParseNumber(line, "events_total", &value)) {
        recording.events_total = static_cast<uint64_t>(value);
      }
      if (ParseNumber(line, "events_dropped", &value)) {
        recording.events_dropped = static_cast<uint64_t>(value);
      }
    } else if (type == "event") {
      ObsEvent event;
      event.time_s = RequireNumber(line, "t");
      event.machine = static_cast<int32_t>(RequireNumber(line, "machine"));
      event.kind = static_cast<ObsKind>(static_cast<int>(RequireNumber(line, "k")));
      event.code = static_cast<uint8_t>(RequireNumber(line, "code"));
      event.detail = static_cast<uint8_t>(RequireNumber(line, "detail"));
      event.a = RequireNumber(line, "a");
      event.b = RequireNumber(line, "b");
      event.c = RequireNumber(line, "c");
      event.d = RequireNumber(line, "d");
      recording.events.push_back(event);
    } else if (type == "metric") {
      MetricsRegistry::Metric metric;
      if (!ParseString(line, "name", &metric.name)) {
        throw std::runtime_error("recording JSONL: metric without name: " + line);
      }
      double value = 0.0;
      if (ParseNumber(line, "mtype", &value)) {
        metric.type = static_cast<MetricType>(static_cast<int>(value));
      }
      ParseNumber(line, "q", &metric.quantile);
      if (ParseNumber(line, "obs", &value)) {
        metric.observations = static_cast<uint64_t>(value);
      }
      ParseNumber(line, "current", &metric.current);
      metric.timeline = ParsePoints(line);
      recording.metrics.push_back(std::move(metric));
    }
    // Unknown types: skipped for forward compatibility.
  }
  if (!saw_meta) {
    throw std::runtime_error("recording JSONL: no meta line found");
  }
  return recording;
}

std::string ToPerfettoJson(const Recording& recording) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"app\":\""
      << EscapeJson(recording.meta.app) << "\",\"be\":\"" << EscapeJson(recording.meta.be)
      << "\",\"controller\":\"" << EscapeJson(recording.meta.controller)
      << "\",\"seed\":" << recording.meta.seed << "},\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& json) {
    out << (first ? "\n" : ",\n") << json;
    first = false;
  };

  // Process tracks: pid 0 = cluster-wide, pid m+1 = machine m.
  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cluster\"}}");
  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":-1}}");
  for (int pod = 0; pod < recording.pod_count(); ++pod) {
    std::ostringstream line;
    line << "{\"ph\":\"M\",\"pid\":" << pod + 1
         << ",\"name\":\"process_name\",\"args\":{\"name\":\"machine " << pod << " — "
         << EscapeJson(recording.meta.pods[static_cast<size_t>(pod)]) << "\"}}";
    emit(line.str());
  }

  // Decisions become slices as wide as the control period; everything else is
  // an instant. tid 1 = controller, tid 2 = actuations, tid 3 = events.
  const double decision_us = recording.meta.controller_period_s * 1e6;
  for (const ObsEvent& event : recording.events) {
    const int pid = event.machine >= 0 ? event.machine + 1 : 0;
    const double ts = event.time_s * 1e6;
    std::ostringstream line;
    switch (event.kind) {
      case ObsKind::kDecision:
        line << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":1,\"ts\":" << Num(ts)
             << ",\"dur\":" << Num(decision_us) << ",\"cat\":\"decision\",\"name\":\""
             << EscapeJson(CodeName(event)) << "\",\"args\":{\"phase\":\""
             << DetailName(event) << "\",\"load\":" << Num(event.a)
             << ",\"slack\":" << Num(event.b) << ",\"loadlimit\":" << Num(event.c)
             << ",\"slacklimit\":" << Num(event.d) << "}}";
        break;
      case ObsKind::kActuation:
        line << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":2,\"ts\":" << Num(ts)
             << ",\"cat\":\"actuation\",\"name\":\"" << EscapeJson(CodeName(event))
             << (event.detail != 0 ? "" : " FAILED") << "\",\"args\":{\"a\":" << Num(event.a)
             << ",\"b\":" << Num(event.b) << "}}";
        break;
      case ObsKind::kFault:
        line << "{\"ph\":\"i\",\"s\":\"" << (event.machine >= 0 ? 'p' : 'g')
             << "\",\"pid\":" << pid << ",\"tid\":3,\"ts\":" << Num(ts)
             << ",\"cat\":\"fault\",\"name\":\"" << EscapeJson(CodeName(event)) << ' '
             << DetailName(event) << "\",\"args\":{\"magnitude\":" << Num(event.a)
             << ",\"duration_s\":" << Num(event.b) << "}}";
        break;
      case ObsKind::kSloViolation:
        line << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":3,\"ts\":" << Num(ts)
             << ",\"cat\":\"slo\",\"name\":\"SLO violation (" << CodeName(event)
             << ")\",\"args\":{\"slack\":" << Num(event.a)
             << ",\"tail_ms\":" << Num(event.b) << "}}";
        break;
      case ObsKind::kBeLifecycle:
        line << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":3,\"ts\":" << Num(ts)
             << ",\"cat\":\"be\",\"name\":\"be " << CodeName(event)
             << "\",\"args\":{\"count\":" << Num(event.a) << "}}";
        break;
      case ObsKind::kPlacement:
        line << "{\"ph\":\"i\",\"s\":\"" << (event.machine >= 0 ? 'p' : 'g')
             << "\",\"pid\":" << pid << ",\"tid\":3,\"ts\":" << Num(ts)
             << ",\"cat\":\"placement\",\"name\":\"place " << CodeName(event)
             << "\",\"args\":{\"group\":" << Num(event.a) << ",\"pods\":" << Num(event.b)
             << ",\"score\":" << Num(event.c) << ",\"load\":" << Num(event.d) << "}}";
        break;
    }
    emit(line.str());
  }

  // Metric timelines as counter tracks. Per-pod metrics ("pod3.cpu_util") go
  // on their machine's track; everything else on the cluster track.
  for (const auto& metric : recording.metrics) {
    int pid = 0;
    if (metric.name.compare(0, 3, "pod") == 0) {
      const size_t dot = metric.name.find('.');
      if (dot != std::string::npos && dot > 3) {
        pid = std::atoi(metric.name.c_str() + 3) + 1;
      }
    }
    for (const auto& point : metric.timeline.points()) {
      std::ostringstream line;
      line << "{\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << Num(point.time * 1e6)
           << ",\"name\":\"" << EscapeJson(metric.name) << "\",\"args\":{\"value\":"
           << Num(point.value) << "}}";
      emit(line.str());
    }
  }

  out << "\n]}\n";
  return out.str();
}

std::string ToMetricsCsv(const Recording& recording) {
  std::ostringstream out;
  out << "time_s";
  size_t rows = 0;
  for (const auto& metric : recording.metrics) {
    out << ',' << metric.name;
    rows = std::max(rows, metric.timeline.size());
  }
  out << '\n';
  // Timelines are aligned (one Snapshot stamps every metric); late-registered
  // metrics simply leave early cells blank.
  for (size_t row = 0; row < rows; ++row) {
    double time = 0.0;
    for (const auto& metric : recording.metrics) {
      if (row < metric.timeline.size()) {
        time = metric.timeline.points()[row].time;
        break;
      }
    }
    out << Num(time);
    for (const auto& metric : recording.metrics) {
      const auto& points = metric.timeline.points();
      out << ',';
      if (row < points.size()) {
        out << Num(points[row].value);
      }
    }
    out << '\n';
  }
  return out.str();
}

bool WriteJsonl(const Recording& recording, const std::string& path) {
  return WriteFile(path, ToJsonl(recording));
}

bool WritePerfettoTrace(const Recording& recording, const std::string& path) {
  return WriteFile(path, ToPerfettoJson(recording));
}

bool WriteMetricsCsv(const Recording& recording, const std::string& path) {
  return WriteFile(path, ToMetricsCsv(recording));
}

Recording LoadJsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read recording: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJsonl(buffer.str());
}

}  // namespace rhythm
