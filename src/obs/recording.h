// Recording: the self-contained, queryable artifact one observed run leaves
// behind — run metadata, the flight recorder's event log in chronological
// order, and every metric timeline. Plain data; the exporters serialize it
// and tools/obs_query loads it back.

#ifndef RHYTHM_SRC_OBS_RECORDING_H_
#define RHYTHM_SRC_OBS_RECORDING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/obs_event.h"

namespace rhythm {

// Per-run observability knobs, carried by RunRequest. Plain data.
struct ObsOptions {
  // Master switch: false attaches nothing (zero overhead — every hook is a
  // null-pointer test).
  bool enabled = false;
  // Flight-recorder ring capacity in events. When the run outgrows it the
  // oldest events are overwritten (events_dropped counts them) — like a real
  // flight recorder, the most recent window survives.
  size_t ring_capacity = 65536;
  // Metric snapshot cadence (simulated seconds).
  double snapshot_period_s = 1.0;
  // Export destinations written by Run() after the trial; empty = skip.
  std::string export_jsonl;        // event + metric dump, one JSON per line.
  std::string export_perfetto;     // Chrome/Perfetto trace-event JSON.
  std::string export_metrics_csv;  // metric timelines as CSV.
};

struct RecordingMeta {
  std::string app;         // LC application name.
  std::string be;          // BE job kind name.
  std::string controller;  // controller kind name.
  uint64_t seed = 0;
  double sla_ms = 0.0;
  double controller_period_s = 0.0;  // decision cadence (slice width).
  std::vector<std::string> pods;     // component name per machine index.
};

struct Recording {
  RecordingMeta meta;
  // Chronological; ring overflow drops from the front (oldest first).
  std::vector<ObsEvent> events;
  uint64_t events_total = 0;    // recorded into the ring, ever.
  uint64_t events_dropped = 0;  // overwritten by ring wrap-around.
  std::vector<MetricsRegistry::Metric> metrics;

  int pod_count() const { return static_cast<int>(meta.pods.size()); }

  // Timeline of metric `name`, or null when absent.
  const TimeSeries* Metric(const std::string& name) const {
    for (const auto& metric : metrics) {
      if (metric.name == name) {
        return &metric.timeline;
      }
    }
    return nullptr;
  }

  // Events of `kind` on `machine` (machine < 0: any) within [from, to].
  std::vector<ObsEvent> Filter(ObsKind kind, int machine = -1, double from = 0.0,
                               double to = 1e300) const;

  // Time of the first verified BE kill (a kStop actuation that destroyed at
  // least one instance); negative when the run never killed.
  double FirstKillTime() const;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_RECORDING_H_
