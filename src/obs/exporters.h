// Recording exporters and the JSONL loader.
//
// Three formats, all dependency-free:
//   * JSONL   — one self-describing JSON object per line ("meta", then every
//               "event", then every "metric" timeline). This is the
//               round-trip format: FromJsonl(ToJsonl(r)) reproduces the
//               recording, and tools/obs_query consumes it.
//   * Perfetto/Chrome trace-event JSON — open in https://ui.perfetto.dev or
//               chrome://tracing. One process track per machine, controller
//               decisions as duration slices, faults/actuations/SLO breaches
//               as instants, metric timelines as counter tracks.
//   * CSV     — metric timelines as a plain table (time column + one column
//               per metric) for spreadsheets / gnuplot.
//
// Doubles are printed with %.17g so values survive the round trip exactly.

#ifndef RHYTHM_SRC_OBS_EXPORTERS_H_
#define RHYTHM_SRC_OBS_EXPORTERS_H_

#include <string>

#include "src/obs/recording.h"

namespace rhythm {

// In-memory serializers (tests use these; the Write* wrappers add file IO).
std::string ToJsonl(const Recording& recording);
std::string ToPerfettoJson(const Recording& recording);
std::string ToMetricsCsv(const Recording& recording);

// Parses the JSONL format back into a Recording. Throws std::runtime_error
// with line context on malformed input. Lines of unknown "type" are skipped
// so the format can grow forward-compatibly.
Recording FromJsonl(const std::string& jsonl);

// File wrappers; return false on IO failure (they do not throw for IO).
bool WriteJsonl(const Recording& recording, const std::string& path);
bool WritePerfettoTrace(const Recording& recording, const std::string& path);
bool WriteMetricsCsv(const Recording& recording, const std::string& path);

// Loads a JSONL recording from disk; throws std::runtime_error when the file
// cannot be read or parsed.
Recording LoadJsonl(const std::string& path);

// Human-readable one-line description of an event ("t=42.0 machine=1
// decision AllowBEGrowth load=0.45 slack=0.31 ..."); shared by obs_query and
// the diagnostics.
std::string DescribeEvent(const ObsEvent& event);

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_EXPORTERS_H_
