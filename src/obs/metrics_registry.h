// Named metrics with periodic snapshots: counters (monotone), gauges (last
// value wins) and histograms (streaming P² quantile estimate, reusing
// src/common/p2_quantile so a long run's tail costs O(1) memory).
//
// The registry separates *updates* (cheap, every accounting tick) from
// *snapshots* (a periodic simulator task appends one point per metric to its
// timeline). Exporters and the query CLI consume the timelines; the current
// values answer "now" questions. Like every obs component, the registry is
// passive — it never touches simulation state and draws no randomness.

#ifndef RHYTHM_SRC_OBS_METRICS_REGISTRY_H_
#define RHYTHM_SRC_OBS_METRICS_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/p2_quantile.h"
#include "src/common/time_series.h"

namespace rhythm {

enum class MetricType : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* MetricTypeName(MetricType type);

class MetricsRegistry {
 public:
  using MetricId = size_t;

  // Registration. Names must be unique; re-registering an existing name with
  // the same type returns the existing id (so lazy per-pod registration is
  // idempotent). Histograms track the given quantile via P².
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name, double quantile = 0.99);

  // Updates.
  void Inc(MetricId id, double delta = 1.0);    // counter
  void SetTotal(MetricId id, double total);     // counter mirroring an
                                                // external monotone total.
  void Set(MetricId id, double value);          // gauge
  void Observe(MetricId id, double sample);     // histogram

  // Appends the current value of every metric to its timeline, stamped `now`.
  // A histogram snapshots its P² quantile estimate.
  void Snapshot(double now);

  // Current value without snapshotting (histograms: the P² estimate).
  double Value(MetricId id) const;

  struct Metric {
    std::string name;
    MetricType type = MetricType::kGauge;
    double quantile = 0.0;     // histograms only.
    uint64_t observations = 0; // histogram sample count.
    double current = 0.0;      // counters and gauges.
    TimeSeries timeline;       // snapshot history.
  };

  const std::vector<Metric>& metrics() const { return metrics_; }
  size_t size() const { return metrics_.size(); }
  uint64_t snapshots_taken() const { return snapshots_; }

  // Lookup by name; returns false when absent.
  bool Find(const std::string& name, MetricId* id) const;

 private:
  MetricId Register(const std::string& name, MetricType type, double quantile);

  std::vector<Metric> metrics_;
  // P² sketches live beside the metric records (P2Quantile is not
  // assignable, so Metric stays copyable for exporters).
  std::vector<P2Quantile> sketches_;
  std::vector<size_t> sketch_of_metric_;  // metric id -> sketch index.
  uint64_t snapshots_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_METRICS_REGISTRY_H_
