// Structured observability events and the sink interface they flow through.
//
// Header-only and dependency-light on purpose: the emitting layers
// (MachineAgent, BeScheduler, FaultInjector, Deployment) include this header
// and test a null pointer — they never link against the obs library that
// implements the concrete FlightRecorder. An ObsEvent is a fixed-size POD
// (no strings, no heap) so the flight recorder's ring buffer can hold tens
// of thousands of them with a single allocation at construction.
//
// Emission rules, enforced by convention and the golden bit-identity test:
// an emitter may only *read* state it already computed for the simulation
// itself, and must draw no randomness — recording a run leaves it
// byte-identical to an unrecorded one.

#ifndef RHYTHM_SRC_OBS_OBS_EVENT_H_
#define RHYTHM_SRC_OBS_OBS_EVENT_H_

#include <cstdint>

namespace rhythm {

// Top-level event families. The `code`/`detail` bytes refine each family
// (see the per-family code enums below).
enum class ObsKind : uint8_t {
  kDecision = 0,      // one controller decision, with its inputs.
  kActuation = 1,     // one command issued against a resource knob.
  kFault = 2,         // fault-injection edge (window begin/end or instant).
  kSloViolation = 3,  // negative slack observed (accounting or controller).
  kBeLifecycle = 4,   // BE instance population changes outside actuations.
  kPlacement = 5,     // cluster placement decision (src/place).
};
inline constexpr int kObsKindCount = 6;

// kDecision: `code` carries the BeAction (cast), `detail` the decision path.
enum class ObsDecisionPhase : uint8_t {
  kNormal = 0,           // the slack-band walk of Algorithm 2.
  kStaleFailsafe = 1,    // stale/NaN telemetry forced SuspendBE.
  kBackoffHold = 2,      // band said grow, kill backoff converted it to hold.
  kReadmitJitter = 3,    // empty-pod launch deferred to its stagger phase.
  kOscillationGuard = 4, // grow/cut thrash detector held growth.
};

// kActuation: `code` names the knob, `detail` is 1 on verified success and 0
// when actuation verification caught a lost/failed command.
enum class ObsKnob : uint8_t {
  kCpuLlc = 0,     // cores + CAT ways step (a = cores delta, b = ways delta).
  kMemory = 1,     // 100 MB memory step (a = GB delta).
  kFrequency = 2,  // DVFS step (a = new BE GHz).
  kSuspend = 3,    // SuspendAll (a = instances affected).
  kResume = 4,     // ResumeAll after a suspend (a = instances running).
  kStop = 5,       // StopAll (a = instances killed).
  kLaunch = 6,     // LaunchInstance (a = 1 on success).
};

// kFault: `code` carries the FaultKind (cast), `detail` the edge.
enum class ObsFaultEdge : uint8_t {
  kBegin = 0,    // window activation (crash, blackout, freeze, drop window).
  kEnd = 1,      // window deactivation (reboot, blackout end, ...).
  kInstant = 2,  // point events: BE-instance death, one dropped actuation.
};

// kSloViolation: `code` says which loop observed it.
enum class ObsSloScope : uint8_t {
  kAccounting = 0,  // accounting tick saw negative slack (exists w/o agents).
  kController = 1,  // an agent's control tick decided on negative slack.
};

// kBeLifecycle: population changes not driven by this machine's controller.
enum class ObsBeOp : uint8_t {
  kDispatch = 0,         // cluster scheduler admitted an instance here.
  kCrashLoss = 1,        // instances died with their crashed machine.
  kInstanceFailure = 2,  // one instance died on its own (OOM/preempt).
  kWithdraw = 3,         // admission hold opened: instances withdrawn.
  kReadmit = 4,          // admission hold closed: the pod may admit again.
};

// kPlacement: one cluster-placement decision (src/place). `code` carries the
// op below, `detail` the BeJobKind (cast) for placed/churned groups.
// Payload: a = group index, b = pod count, c = policy score, d = offered load.
// `machine` is the group's first machine (-1 when unplaced / epoch-scope).
enum class ObsPlacementOp : uint8_t {
  kEpochBegin = 0,     // placement epoch boundary (a = epoch, b = load scale).
  kGroupPlaced = 1,    // group landed with a co-located BE.
  kGroupSolo = 2,      // group landed with BEs forbidden (threshold guard).
  kGroupUnplaced = 3,  // no machines left for this group.
  kChurn = 4,          // assignment changed vs the previous epoch.
  // Conservative-window barrier sample from the partitioned cluster engine
  // (opt-in via ClusterRunRequest::record_tick_events). One event per placed
  // group per window: a = group index, b = SLA violations so far, c = BE
  // kills so far, d = the group's local clock at the barrier.
  kTickBarrier = 5,
  // -- Failure-domain edges (cluster-scope machine faults, DESIGN.md §14) --
  // Machine lost at a barrier. machine = index, a = the schedule's start_s,
  // b = planned downtime seconds (0 = permanent kMachineFailure).
  kMachineDown = 6,
  // Machine rejoined empty. machine = index, a = the scheduled rejoin time.
  kMachineUp = 7,
  // A disrupted group re-placed by the ClusterSupervisor. machine = the
  // replacement's first machine, a = group index, b = pod count,
  // c = incarnation number, d = failover latency seconds (barrier time minus
  // the loss event's start_s); detail = BeJobKind unless the replacement
  // runs solo.
  kFailover = 8,
  // A disrupted group that could not be re-placed (budget or capacity).
  // machine = the dead first machine, a = group index, b = pod count.
  kGroupDown = 9,
  // Degraded-mode transition (dead fraction crossed the survivability
  // threshold). machine = -1, a = machines down, b = dead fraction,
  // detail = 1 entering, 0 leaving.
  kDegraded = 10,
};

// One recorded event. Fixed 48-byte POD; `a..d` are payload fields whose
// meaning depends on (kind, code) — see the enums above and the JSONL
// exporter, which labels them per kind.
struct ObsEvent {
  double time_s = 0.0;  // simulated time of the emission.
  int32_t machine = -1; // Servpod/machine index; -1 for cluster-wide events.
  ObsKind kind = ObsKind::kDecision;
  uint8_t code = 0;
  uint8_t detail = 0;
  uint8_t reserved = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;
};

// Receives events from the instrumented layers. Implementations must be
// strictly passive: no mutation of simulation state, no RNG draws.
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  virtual void Record(const ObsEvent& event) = 0;
};

// -- Naming helpers (inline so emitters stay link-free) ----------------------

inline const char* ObsKindName(ObsKind kind) {
  switch (kind) {
    case ObsKind::kDecision:
      return "decision";
    case ObsKind::kActuation:
      return "actuation";
    case ObsKind::kFault:
      return "fault";
    case ObsKind::kSloViolation:
      return "slo";
    case ObsKind::kBeLifecycle:
      return "be";
    case ObsKind::kPlacement:
      return "placement";
  }
  return "?";
}

inline const char* ObsDecisionPhaseName(ObsDecisionPhase phase) {
  switch (phase) {
    case ObsDecisionPhase::kNormal:
      return "normal";
    case ObsDecisionPhase::kStaleFailsafe:
      return "stale-failsafe";
    case ObsDecisionPhase::kBackoffHold:
      return "backoff-hold";
    case ObsDecisionPhase::kReadmitJitter:
      return "readmit-jitter";
    case ObsDecisionPhase::kOscillationGuard:
      return "oscillation-guard";
  }
  return "?";
}

inline const char* ObsKnobName(ObsKnob knob) {
  switch (knob) {
    case ObsKnob::kCpuLlc:
      return "cpu-llc";
    case ObsKnob::kMemory:
      return "memory";
    case ObsKnob::kFrequency:
      return "frequency";
    case ObsKnob::kSuspend:
      return "suspend";
    case ObsKnob::kResume:
      return "resume";
    case ObsKnob::kStop:
      return "stop";
    case ObsKnob::kLaunch:
      return "launch";
  }
  return "?";
}

inline const char* ObsFaultEdgeName(ObsFaultEdge edge) {
  switch (edge) {
    case ObsFaultEdge::kBegin:
      return "begin";
    case ObsFaultEdge::kEnd:
      return "end";
    case ObsFaultEdge::kInstant:
      return "instant";
  }
  return "?";
}

inline const char* ObsSloScopeName(ObsSloScope scope) {
  switch (scope) {
    case ObsSloScope::kAccounting:
      return "accounting";
    case ObsSloScope::kController:
      return "controller";
  }
  return "?";
}

inline const char* ObsBeOpName(ObsBeOp op) {
  switch (op) {
    case ObsBeOp::kDispatch:
      return "dispatch";
    case ObsBeOp::kCrashLoss:
      return "crash-loss";
    case ObsBeOp::kInstanceFailure:
      return "instance-failure";
    case ObsBeOp::kWithdraw:
      return "withdraw";
    case ObsBeOp::kReadmit:
      return "readmit";
  }
  return "?";
}

inline const char* ObsPlacementOpName(ObsPlacementOp op) {
  switch (op) {
    case ObsPlacementOp::kEpochBegin:
      return "epoch-begin";
    case ObsPlacementOp::kGroupPlaced:
      return "placed";
    case ObsPlacementOp::kGroupSolo:
      return "solo";
    case ObsPlacementOp::kGroupUnplaced:
      return "unplaced";
    case ObsPlacementOp::kChurn:
      return "churn";
    case ObsPlacementOp::kTickBarrier:
      return "tick";
    case ObsPlacementOp::kMachineDown:
      return "machine-down";
    case ObsPlacementOp::kMachineUp:
      return "machine-up";
    case ObsPlacementOp::kFailover:
      return "failover";
    case ObsPlacementOp::kGroupDown:
      return "group-down";
    case ObsPlacementOp::kDegraded:
      return "degraded";
  }
  return "?";
}

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_OBS_EVENT_H_
