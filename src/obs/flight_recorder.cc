#include "src/obs/flight_recorder.h"

#include <algorithm>

#include "src/cluster/deployment.h"
#include "src/common/logging.h"

namespace rhythm {

FlightRecorder::FlightRecorder(const ObsOptions& options) : options_(options) {
  RHYTHM_CHECK(options.ring_capacity > 0);
  RHYTHM_CHECK(options.snapshot_period_s > 0.0);
  ring_.reserve(options.ring_capacity);
}

void FlightRecorder::Record(const ObsEvent& event) {
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % options_.ring_capacity;
  }
  ++events_total_;
}

void FlightRecorder::BindMetrics(const Deployment& deployment) {
  if (metrics_bound_) {
    return;
  }
  metrics_bound_ = true;
  load_id_ = registry_.Gauge("load");
  slack_id_ = registry_.Gauge("slack");
  tail_id_ = registry_.Gauge("tail_ms");
  tail_p99_id_ = registry_.Histogram("tail_ms_p99", 0.99);
  kills_id_ = registry_.Counter("be_kills_total");
  violations_id_ = registry_.Counter("slack_violation_ticks_total");
  crashes_id_ = registry_.Counter("crashes_total");
  stale_id_ = registry_.Counter("stale_ticks_total");
  failed_act_id_ = registry_.Counter("failed_actuations_total");
  backoff_id_ = registry_.Counter("backoff_holds_total");
  pod_ids_.reserve(static_cast<size_t>(deployment.pod_count()));
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    const std::string prefix = "pod" + std::to_string(pod) + ".";
    PodMetricIds ids;
    ids.cpu_util = registry_.Gauge(prefix + "cpu_util");
    ids.membw_util = registry_.Gauge(prefix + "membw_util");
    ids.be_instances = registry_.Gauge(prefix + "be_instances");
    ids.be_cores = registry_.Gauge(prefix + "be_cores");
    ids.be_ways = registry_.Gauge(prefix + "be_ways");
    ids.be_throughput = registry_.Gauge(prefix + "be_throughput");
    pod_ids_.push_back(ids);
  }
}

void FlightRecorder::AfterAccountingTick(const Deployment& deployment) {
  BindMetrics(deployment);
  // The accounting tick just appended to every series; read its samples back
  // rather than recomputing anything (same values, zero perturbation).
  const auto last = [](const TimeSeries& series) {
    return series.empty() ? 0.0 : series.points().back().value;
  };
  const double tail = last(deployment.tail_series());
  registry_.Set(load_id_, last(deployment.load_series()));
  registry_.Set(slack_id_, last(deployment.slack_series()));
  registry_.Set(tail_id_, tail);
  registry_.Observe(tail_p99_id_, tail);
  registry_.SetTotal(kills_id_, static_cast<double>(deployment.TotalBeKills()));
  registry_.SetTotal(violations_id_,
                     static_cast<double>(deployment.slack_violation_ticks()));
  registry_.SetTotal(crashes_id_, static_cast<double>(deployment.crash_count()));
  registry_.SetTotal(stale_id_, static_cast<double>(deployment.TotalStaleTicks()));
  registry_.SetTotal(failed_act_id_,
                     static_cast<double>(deployment.TotalFailedActuations()));
  registry_.SetTotal(backoff_id_, static_cast<double>(deployment.TotalBackoffHolds()));
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    const PodSeries& series = deployment.pod_series(pod);
    const PodMetricIds& ids = pod_ids_[static_cast<size_t>(pod)];
    registry_.Set(ids.cpu_util, last(series.cpu_util));
    registry_.Set(ids.membw_util, last(series.membw_util));
    registry_.Set(ids.be_instances, last(series.be_instances));
    registry_.Set(ids.be_cores, last(series.be_cores));
    registry_.Set(ids.be_ways, last(series.be_ways));
    registry_.Set(ids.be_throughput, last(series.be_throughput));
  }
}

void FlightRecorder::ScheduleSnapshots(Deployment& deployment) {
  Deployment* live = &deployment;
  deployment.sim().SchedulePeriodic(options_.snapshot_period_s, options_.snapshot_period_s,
                                    [this, live] {
                                      BindMetrics(*live);
                                      registry_.Snapshot(live->sim().Now());
                                    });
}

void FlightRecorder::DescribeDeployment(const Deployment& deployment) {
  meta_.app = deployment.app().name;
  meta_.sla_ms = deployment.sla_ms();
  meta_.controller_period_s = MachineAgent::kPeriodSeconds;
  meta_.pods.clear();
  for (int pod = 0; pod < deployment.pod_count(); ++pod) {
    meta_.pods.push_back(deployment.app().components[pod].name);
  }
}

Recording FlightRecorder::TakeRecording() const {
  Recording recording;
  recording.meta = meta_;
  recording.events_total = events_total_;
  recording.events_dropped = events_dropped();
  recording.events.reserve(ring_.size());
  // Unwrap the ring: oldest surviving event first.
  for (size_t i = 0; i < ring_.size(); ++i) {
    recording.events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  recording.metrics = registry_.metrics();
  return recording;
}

// -- Recording helpers (declared in recording.h) -----------------------------

std::vector<ObsEvent> Recording::Filter(ObsKind kind, int machine, double from,
                                        double to) const {
  std::vector<ObsEvent> out;
  for (const ObsEvent& event : events) {
    if (event.kind != kind || event.time_s < from || event.time_s > to) {
      continue;
    }
    if (machine >= 0 && event.machine != machine) {
      continue;
    }
    out.push_back(event);
  }
  return out;
}

double Recording::FirstKillTime() const {
  for (const ObsEvent& event : events) {
    if (event.kind == ObsKind::kActuation &&
        event.code == static_cast<uint8_t>(ObsKnob::kStop) && event.a > 0.0) {
      return event.time_s;
    }
  }
  return -1.0;
}

}  // namespace rhythm
