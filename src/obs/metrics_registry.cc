#include "src/obs/metrics_registry.h"

#include <stdexcept>

#include "src/common/logging.h"

namespace rhythm {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricsRegistry::MetricId MetricsRegistry::Register(const std::string& name, MetricType type,
                                                    double quantile) {
  MetricId existing;
  if (Find(name, &existing)) {
    if (metrics_[existing].type != type) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' re-registered with a different type");
    }
    return existing;
  }
  Metric metric;
  metric.name = name;
  metric.type = type;
  metric.quantile = quantile;
  metrics_.push_back(std::move(metric));
  if (type == MetricType::kHistogram) {
    sketch_of_metric_.push_back(sketches_.size());
    sketches_.emplace_back(quantile);
  } else {
    sketch_of_metric_.push_back(static_cast<size_t>(-1));
  }
  return metrics_.size() - 1;
}

MetricsRegistry::MetricId MetricsRegistry::Counter(const std::string& name) {
  return Register(name, MetricType::kCounter, 0.0);
}

MetricsRegistry::MetricId MetricsRegistry::Gauge(const std::string& name) {
  return Register(name, MetricType::kGauge, 0.0);
}

MetricsRegistry::MetricId MetricsRegistry::Histogram(const std::string& name, double quantile) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("MetricsRegistry: histogram quantile must be in (0, 1)");
  }
  return Register(name, MetricType::kHistogram, quantile);
}

void MetricsRegistry::Inc(MetricId id, double delta) {
  RHYTHM_CHECK(id < metrics_.size());
  metrics_[id].current += delta;
}

void MetricsRegistry::SetTotal(MetricId id, double total) {
  RHYTHM_CHECK(id < metrics_.size());
  // Monotone mirror: never move a counter backwards (a torn external read
  // must not make the timeline lie about direction).
  if (total > metrics_[id].current) {
    metrics_[id].current = total;
  }
}

void MetricsRegistry::Set(MetricId id, double value) {
  RHYTHM_CHECK(id < metrics_.size());
  metrics_[id].current = value;
}

void MetricsRegistry::Observe(MetricId id, double sample) {
  RHYTHM_CHECK(id < metrics_.size());
  Metric& metric = metrics_[id];
  RHYTHM_CHECK(metric.type == MetricType::kHistogram);
  sketches_[sketch_of_metric_[id]].Add(sample);
  ++metric.observations;
}

double MetricsRegistry::Value(MetricId id) const {
  RHYTHM_CHECK(id < metrics_.size());
  const Metric& metric = metrics_[id];
  if (metric.type == MetricType::kHistogram) {
    return sketches_[sketch_of_metric_[id]].Value();
  }
  return metric.current;
}

void MetricsRegistry::Snapshot(double now) {
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    metrics_[id].timeline.Add(now, Value(id));
  }
  ++snapshots_;
}

bool MetricsRegistry::Find(const std::string& name, MetricId* id) const {
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      *id = i;
      return true;
    }
  }
  return false;
}

}  // namespace rhythm
