#include "src/obs/merge.h"

#include <algorithm>
#include <cstddef>
#include <queue>

namespace rhythm {

namespace {

struct Head {
  double time_s;
  size_t stream;
  size_t offset;
};

// Min-heap order: earliest time first, lowest stream index breaking ties.
// (std::priority_queue is a max-heap, so the comparator is reversed.)
struct HeadAfter {
  bool operator()(const Head& a, const Head& b) const {
    if (a.time_s != b.time_s) {
      return a.time_s > b.time_s;
    }
    return a.stream > b.stream;
  }
};

}  // namespace

std::vector<ObsEvent> MergeEventStreams(
    const std::vector<std::vector<ObsEvent>>& streams) {
  size_t total = 0;
  for (const std::vector<ObsEvent>& stream : streams) {
    total += stream.size();
  }
  std::vector<ObsEvent> merged;
  merged.reserve(total);

  std::priority_queue<Head, std::vector<Head>, HeadAfter> heads;
  for (size_t s = 0; s < streams.size(); ++s) {
    if (!streams[s].empty()) {
      heads.push(Head{streams[s][0].time_s, s, 0});
    }
  }
  while (!heads.empty()) {
    const Head head = heads.top();
    heads.pop();
    merged.push_back(streams[head.stream][head.offset]);
    const size_t next = head.offset + 1;
    if (next < streams[head.stream].size()) {
      heads.push(Head{streams[head.stream][next].time_s, head.stream, next});
    }
  }
  return merged;
}

}  // namespace rhythm
