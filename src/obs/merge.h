// Deterministic merge of per-shard / per-slot event streams.
//
// The partitioned cluster engine gives every logical slot its own event
// buffer — written only by whichever shard happens to own the slot, so
// emission is contention-free — and reconciles them after the run with
// MergeEventStreams. The merge is a pure function of the streams' *contents*
// and their order in the input vector: time-sorted, ties broken by stream
// index then intra-stream order. Callers pass streams in slot order, so the
// merged sequence is bit-identical at any shard count — the physical thread
// that wrote a buffer never influences the result.

#ifndef RHYTHM_SRC_OBS_MERGE_H_
#define RHYTHM_SRC_OBS_MERGE_H_

#include <vector>

#include "src/obs/obs_event.h"

namespace rhythm {

// K-way stable merge. Each input stream must be sorted by time_s
// (non-decreasing); events with equal timestamps keep stream order (lower
// input index first) and, within one stream, emission order.
std::vector<ObsEvent> MergeEventStreams(
    const std::vector<std::vector<ObsEvent>>& streams);

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_MERGE_H_
