// FlightRecorder: the in-run half of the observability subsystem.
//
// One recorder observes one Deployment. It is simultaneously
//   * an ObsSink — the instrumented layers (MachineAgent, BeScheduler,
//     FaultInjector, Deployment) push structured ObsEvents into its
//     fixed-capacity ring buffer (one allocation at construction, oldest
//     events overwritten on overflow);
//   * a DeploymentObserver — after every accounting tick it refreshes the
//     standard metric set (load, slack, tail, per-pod utilization and BE
//     allocation, hardening counters) in its MetricsRegistry;
//   * the owner of a periodic snapshot task that samples every metric into
//     its timeline at ObsOptions::snapshot_period_s.
//
// The recorder is strictly read-only over the simulation and draws no
// randomness, so a recorded run is byte-identical to an unrecorded one — the
// golden bit-identity test runs the golden plan with a recorder attached and
// compares hexfloat-exact summaries to prove it.

#ifndef RHYTHM_SRC_OBS_FLIGHT_RECORDER_H_
#define RHYTHM_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/obs_event.h"
#include "src/obs/recording.h"
#include "src/verify/deployment_observer.h"

namespace rhythm {

class Deployment;

class FlightRecorder final : public DeploymentObserver, public ObsSink {
 public:
  explicit FlightRecorder(const ObsOptions& options);

  // ObsSink: stamps nothing, copies the event into the ring.
  void Record(const ObsEvent& event) override;

  // DeploymentObserver: refresh the standard metrics from the deployment's
  // already-sampled series (never recomputes simulation state).
  void AfterAccountingTick(const Deployment& deployment) override;

  // Installs the periodic metric-snapshot task. Call once, after
  // Deployment::Start() (Run() does this when the request enables obs).
  void ScheduleSnapshots(Deployment& deployment);

  // Fills the recording's run metadata (Run() knows the request; manual
  // attachments may call DescribeDeployment instead).
  void set_meta(const RecordingMeta& meta) { meta_ = meta; }
  // Derives meta from the deployment itself (app/pod names, SLA, cadence);
  // seed/be/controller fall back to what the deployment exposes.
  void DescribeDeployment(const Deployment& deployment);

  // Snapshot of everything recorded so far, events in chronological order.
  Recording TakeRecording() const;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  uint64_t events_total() const { return events_total_; }
  uint64_t events_dropped() const {
    return events_total_ > ring_.size() ? events_total_ - ring_.size() : 0;
  }
  const ObsOptions& options() const { return options_; }

 private:
  // Lazy standard-metric registration (needs the pod count).
  void BindMetrics(const Deployment& deployment);

  ObsOptions options_;
  RecordingMeta meta_;
  MetricsRegistry registry_;

  // Ring buffer: next_ is the slot the next event lands in; once
  // events_total_ exceeds capacity the ring holds the latest
  // `capacity` events and next_ points at the oldest.
  std::vector<ObsEvent> ring_;
  size_t next_ = 0;
  uint64_t events_total_ = 0;

  bool metrics_bound_ = false;
  // Standard metric ids (valid once metrics_bound_).
  MetricsRegistry::MetricId load_id_ = 0;
  MetricsRegistry::MetricId slack_id_ = 0;
  MetricsRegistry::MetricId tail_id_ = 0;
  MetricsRegistry::MetricId tail_p99_id_ = 0;
  MetricsRegistry::MetricId kills_id_ = 0;
  MetricsRegistry::MetricId violations_id_ = 0;
  MetricsRegistry::MetricId crashes_id_ = 0;
  MetricsRegistry::MetricId stale_id_ = 0;
  MetricsRegistry::MetricId failed_act_id_ = 0;
  MetricsRegistry::MetricId backoff_id_ = 0;
  struct PodMetricIds {
    MetricsRegistry::MetricId cpu_util;
    MetricsRegistry::MetricId membw_util;
    MetricsRegistry::MetricId be_instances;
    MetricsRegistry::MetricId be_cores;
    MetricsRegistry::MetricId be_ways;
    MetricsRegistry::MetricId be_throughput;
  };
  std::vector<PodMetricIds> pod_ids_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_OBS_FLIGHT_RECORDER_H_
