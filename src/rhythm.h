// Umbrella header for the Rhythm library: a reproduction of
// "Rhythm: Component-distinguishable Workload Deployment in Datacenters"
// (Zhao et al., EuroSys 2020).
//
// Typical usage (see examples/quickstart.cc):
//   1. Derive per-Servpod thresholds once:   CachedAppThresholds(app)
//   2. Describe co-location trials:          RunRequest / RunPlan
//   3. Run one:                              Run(request)
//      ... or a whole plan across a pool:    ParallelRunner().RunAll(plan)
//   4. Compare against Heracles by flipping  request.controller.

#ifndef RHYTHM_SRC_RHYTHM_H_
#define RHYTHM_SRC_RHYTHM_H_

#include "src/analysis/contribution.h"
#include "src/analysis/online_contribution.h"
#include "src/baseline/heracles.h"
#include "src/bemodel/be_job_spec.h"
#include "src/bemodel/be_runtime.h"
#include "src/cluster/app_thresholds.h"
#include "src/cluster/bubble_profiler.h"
#include "src/cluster/deployment.h"
#include "src/cluster/metrics.h"
#include "src/cluster/multi_lc.h"
#include "src/cluster/profiler.h"
#include "src/common/env.h"
#include "src/common/logging.h"
#include "src/common/p2_quantile.h"
#include "src/common/percentile_window.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time_series.h"
#include "src/control/machine_agent.h"
#include "src/control/thresholds.h"
#include "src/control/top_controller.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/fault/fault_schedule_io.h"
#include "src/fault/spiked_load_profile.h"
#include "src/interference/interference_model.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/obs_event.h"
#include "src/obs/recording.h"
#include "src/place/cluster_engine.h"
#include "src/place/cluster_spec.h"
#include "src/place/interference_score.h"
#include "src/place/placement_policy.h"
#include "src/resources/machine.h"
#include "src/runner/run_request.h"
#include "src/runner/runner.h"
#include "src/scheduler/be_backlog.h"
#include "src/scheduler/be_scheduler.h"
#include "src/sim/simulator.h"
#include "src/trace/cpg_builder.h"
#include "src/verify/adversary/corpus.h"
#include "src/verify/adversary/fitness.h"
#include "src/verify/adversary/genome.h"
#include "src/verify/adversary/search.h"
#include "src/verify/chaos_fuzzer.h"
#include "src/verify/cluster_fuzzer.h"
#include "src/verify/cluster_invariants.h"
#include "src/verify/deployment_observer.h"
#include "src/verify/invariant_monitor.h"
#include "src/verify/invariant_types.h"
#include "src/verify/repro_io.h"
#include "src/verify/schedule_minimizer.h"
#include "src/trace/path_classifier.h"
#include "src/trace/trace_io.h"
#include "src/trace/event_log.h"
#include "src/trace/sojourn_extractor.h"
#include "src/workload/app_catalog.h"
#include "src/workload/lc_service.h"
#include "src/workload/load_profile.h"
#include "src/workload/trace_file_profile.h"

#endif  // RHYTHM_SRC_RHYTHM_H_
