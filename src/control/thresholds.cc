#include "src/control/thresholds.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace rhythm {

double DeriveLoadlimit(std::span<const double> load_levels, std::span<const double> covs) {
  RHYTHM_CHECK(load_levels.size() == covs.size());
  RHYTHM_CHECK(!load_levels.empty());
  const double avg = Mean(covs);
  // The paper picks "the first load point whose fluctuation is greater than
  // the average". Measured CoV curves carry sampling noise, so we anchor on
  // the *final* upward crossing: the first point of the trailing run where
  // the CoV stays above its average. For a flat curve this lands near the
  // top (a tolerant pod), for a rising curve at the fluctuation knee.
  size_t start_of_run = covs.size();
  for (size_t i = covs.size(); i-- > 0;) {
    if (covs[i] > avg) {
      start_of_run = i;
    } else {
      break;
    }
  }
  if (start_of_run < covs.size()) {
    return load_levels[start_of_run];
  }
  return load_levels.back();
}

std::vector<double> FindSlacklimits(const std::vector<double>& normalized_contributions,
                                    const SlaProbe& probe, int max_iterations) {
  const size_t n = normalized_contributions.size();
  RHYTHM_CHECK(n > 0);

  std::vector<double> step(n);
  for (size_t i = 0; i < n; ++i) {
    // Small contributors take big steps down (they can afford tiny slack
    // limits); big contributors shrink slowly.
    step[i] = std::clamp(1.0 - normalized_contributions[i], 0.05, 0.99);
  }

  // Candidates are floored at a guard band exceeding the per-second p99
  // jitter amplitude (latency hiccups): a slacklimit below it would let BEs
  // ride within one hiccup of the SLA, which the probe always rejects.
  constexpr double kFloor = 0.12;
  std::vector<double> safe(n, 1.0);     // last configuration that kept SLA.
  std::vector<double> current(n, 1.0);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    bool any_above_floor = false;
    for (size_t i = 0; i < n; ++i) {
      current[i] = std::max(kFloor, 1.0 - iter * step[i]);
      if (current[i] > kFloor) {
        any_above_floor = true;
      }
    }
    if (probe(current)) {
      break;  // SLA violated: keep the previous configuration.
    }
    safe = current;
    if (!any_above_floor) {
      break;  // every limit has bottomed out.
    }
  }
  return safe;
}

}  // namespace rhythm
