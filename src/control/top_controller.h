// Top-level controller decision logic (paper Algorithm 2).
//
// Every 2 seconds, from the current request load and the tail-latency slack
//   slack = (T_sla - T_tail) / T_sla
// the top controller picks one of five actions:
//
//   slack < 0                         -> StopBE          (SLA broken: kill)
//   load >= loadlimit                 -> SuspendBE       (keep memory)
//   0 < slack < slacklimit/2          -> CutBE           (shrink resources)
//   slacklimit/2 < slack < slacklimit -> DisallowBEGrowth
//   otherwise                         -> AllowBEGrowth
//
// Degenerate inputs — an unconfigured SLA (<= 0 or NaN) or NaN telemetry —
// have no meaningful slack; Decide fails safe with SuspendBE rather than
// letting a silently-zero slack admit blind growth.

#ifndef RHYTHM_SRC_CONTROL_TOP_CONTROLLER_H_
#define RHYTHM_SRC_CONTROL_TOP_CONTROLLER_H_

#include <cmath>

#include "src/control/thresholds.h"

namespace rhythm {

enum class BeAction { kStopBe, kSuspendBe, kCutBe, kDisallowGrowth, kAllowGrowth };

const char* BeActionName(BeAction action);

class TopController {
 public:
  // Everything a decision was based on — captured by the traced Decide
  // overload so the observability layer can audit the band walk without
  // re-deriving (and possibly mis-deriving) it.
  struct DecisionTrace {
    double slack = 0.0;
    double loadlimit = 0.0;
    double slacklimit = 0.0;
    bool degenerate = false;  // fail-safe path: invalid SLA or NaN telemetry.
  };

  explicit TopController(const ServpodThresholds& thresholds) : thresholds_(thresholds) {}

  // Pure decision function: load in [0,1], tail and SLA in ms.
  BeAction Decide(double load, double tail_ms, double sla_ms) const;

  // Identical decision, plus the inputs it banded on. `trace` may be null.
  BeAction Decide(double load, double tail_ms, double sla_ms, DecisionTrace* trace) const;

  // Neutral 0.0 on degenerate inputs (sla <= 0, NaN tail/SLA): callers
  // banding on slack must not see NaN poison a comparison chain; the
  // fail-safe action for such inputs lives in Decide.
  static double Slack(double tail_ms, double sla_ms) {
    if (!(sla_ms > 0.0) || std::isnan(tail_ms)) {
      return 0.0;
    }
    return (sla_ms - tail_ms) / sla_ms;
  }

  const ServpodThresholds& thresholds() const { return thresholds_; }
  void set_thresholds(const ServpodThresholds& t) { thresholds_ = t; }

 private:
  ServpodThresholds thresholds_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_CONTROL_TOP_CONTROLLER_H_
