#include "src/control/machine_agent.h"

#include "src/common/logging.h"

namespace rhythm {

MachineAgent::MachineAgent(Machine* machine, BeRuntime* be, const ServpodThresholds& thresholds,
                           double sla_ms, int stagger)
    : machine_(machine),
      be_(be),
      top_(thresholds),
      sla_ms_(sla_ms),
      stagger_(static_cast<uint64_t>(stagger)) {
  RHYTHM_CHECK(machine != nullptr);
  RHYTHM_CHECK(be != nullptr);
}

void MachineAgent::Tick(double load, double tail_ms, double lc_utilization) {
  ++stats_.ticks;
  const double slack = TopController::Slack(tail_ms, sla_ms_);
  if (slack < 0.0) {
    ++stats_.sla_violations;
  }
  const BeAction action = top_.Decide(load, tail_ms, sla_ms_);
  Apply(action, slack, lc_utilization);
  stats_.last_action = action;
  RunFrequencySubcontroller();
  RunNetworkSubcontroller();
  be_->PublishActivity();
}

void MachineAgent::Apply(BeAction action, double slack, double lc_utilization) {
  switch (action) {
    case BeAction::kStopBe:
      ++stats_.stops;
      stats_.be_kills += be_->StopAll();
      break;
    case BeAction::kSuspendBe:
      ++stats_.suspends;
      be_->SuspendAll();
      break;
    case BeAction::kCutBe:
      ++stats_.cuts;
      be_->ResumeAll();  // load is back under the limit; jobs may run again.
      be_->Cut();
      be_->CutMemoryStep();
      if (slack < top_.thresholds().slacklimit / 4.0) {
        // Deep in the red band: shed a second step so a fast load ramp (or a
        // burst) cannot outrun the 2-second control cadence.
        be_->Cut();
      }
      break;
    case BeAction::kDisallowGrowth:
      ++stats_.disallows;
      be_->ResumeAll();
      break;
    case BeAction::kAllowGrowth:
      ++stats_.grows;
      be_->ResumeAll();
      if (lc_utilization > kUtilGrowthGuard) {
        // Heracles-style headroom check in the CPU/LLC subcontroller: the
        // slack band says grow, but the local station has no room.
        ++stats_.util_guard_trips;
        break;
      }
      {
        // DRAM-bandwidth subcontroller: keep the channel off its saturation
        // cliff — the next growth step must fit in the guard band.
        const MembwAccountant& membw = machine_->membw();
        if (membw.lc_demand_gbs() + membw.be_demand_gbs() + be_->GrowthMembwStepGbs() >
            kMembwGuardFraction * membw.capacity_gbs()) {
          ++stats_.util_guard_trips;
          break;
        }
      }
      if (be_->instance_count() == 0) {
        be_->LaunchInstance();
        break;
      }
      if ((stats_.ticks + stagger_) % kGrowthPeriodTicks != 0) {
        break;  // paced growth: not this machine's turn.
      }
      be_->Grow();
      be_->GrowMemoryStep();
      break;
  }
  // Saturation shed: past the upper guard the station's queueing delay grows
  // without bound, so release resources regardless of the slack band (but do
  // not fight StopBE/SuspendBE, which already removed the pressure). Close
  // to the cliff the shed doubles — a fast load ramp must never outrun it.
  if (lc_utilization > kUtilShedGuard && action != BeAction::kStopBe &&
      action != BeAction::kSuspendBe) {
    ++stats_.util_guard_trips;
    be_->Cut();
    be_->Cut();
    if (lc_utilization > kUtilEmergencyGuard) {
      be_->Cut();
      be_->Cut();
    }
  }
}

void MachineAgent::RunFrequencySubcontroller() {
  PowerModel& power = machine_->power();
  if (power.TdpFraction() > kTdpThreshold) {
    power.SetBeFrequency(power.be_frequency_ghz() - kFreqStepGhz);
  } else if (power.TdpFraction() < kTdpThreshold - 0.1) {
    // Headroom returned: restore BE frequency gradually toward nominal.
    power.SetBeFrequency(power.be_frequency_ghz() + kFreqStepGhz);
  }
}

void MachineAgent::RunNetworkSubcontroller() {
  // The qdisc allocation derives from the measured LC traffic, which the
  // accounting tick publishes; re-offering BE traffic refreshes the shaping.
  machine_->network().SetBeOffered(be_->NetOffered());
}

}  // namespace rhythm
