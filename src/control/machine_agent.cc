#include "src/control/machine_agent.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/logging.h"

namespace rhythm {

MachineAgent::MachineAgent(Machine* machine, BeRuntime* be, const ServpodThresholds& thresholds,
                           double sla_ms, int stagger, const ControlHardening& hardening)
    : machine_(machine),
      be_(be),
      top_(thresholds),
      sla_ms_(sla_ms),
      stagger_(static_cast<uint64_t>(stagger)),
      hardening_(hardening) {
  RHYTHM_CHECK(machine != nullptr);
  RHYTHM_CHECK(be != nullptr);
}

void MachineAgent::Tick(const TelemetrySample& sample) {
  ++stats_.ticks;
  // Stale-signal detector: no fresh tail sample (accounting silent for
  // several periods) or NaN telemetry means the slack is unknowable. Fail
  // safe — assume zero slack and suspend rather than grow blind; memory
  // stays resident so recovery is cheap once the signal returns.
  const bool invalid = std::isnan(sample.tail_ms) || std::isnan(sample.load);
  if (invalid || sample.tail_age_s > kStaleTailLimitS) {
    ++stats_.stale_ticks;
    Emit(ObsKind::kDecision, static_cast<uint8_t>(BeAction::kSuspendBe),
         static_cast<uint8_t>(ObsDecisionPhase::kStaleFailsafe),
         std::isnan(sample.load) ? -1.0 : sample.load, /*slack=*/0.0,
         top_.thresholds().loadlimit, top_.thresholds().slacklimit);
    Apply(BeAction::kSuspendBe, /*slack=*/0.0, sample.lc_utilization);
    stats_.last_action = BeAction::kSuspendBe;
    RunFrequencySubcontroller();
    RunNetworkSubcontroller();
    be_->PublishActivity();
    return;
  }
  const double slack = TopController::Slack(sample.tail_ms, sla_ms_);
  if (slack < 0.0) {
    ++stats_.sla_violations;
    Emit(ObsKind::kSloViolation, static_cast<uint8_t>(ObsSloScope::kController), 0, slack,
         sample.tail_ms);
  }
  TopController::DecisionTrace trace;
  BeAction action = top_.Decide(sample.load, sample.tail_ms, sla_ms_, &trace);
  ObsDecisionPhase phase = ObsDecisionPhase::kNormal;
  if (action == BeAction::kAllowGrowth && stats_.ticks < backoff_until_tick_) {
    // Kill backoff: the slack band says grow, but this pod recently killed
    // (or lost) its BEs — re-admission waits out the hold.
    ++stats_.backoff_holds;
    action = BeAction::kDisallowGrowth;
    phase = ObsDecisionPhase::kBackoffHold;
  }
  if (hardening_.oscillation_guard) {
    // Feed the flip window from the *band's* decision (pre-conversion):
    // oscillation is a property of the slack walk, and the guard's own holds
    // must not mask continued flipping. Bit i of the history marks a
    // grow<->cut flip i ticks ago; kOscFlipsToTrip flips inside the last
    // kOscWindowTicks ticks is denser than any benign band walk and trips
    // the guard.
    const int direction = action == BeAction::kAllowGrowth                         ? 1
                          : action == BeAction::kCutBe || action == BeAction::kStopBe ? -1
                                                                                      : 0;
    osc_flip_history_ <<= 1;
    if (direction != 0) {
      if (osc_last_direction_ != 0 && direction != osc_last_direction_) {
        osc_flip_history_ |= 1;
      }
      osc_last_direction_ = direction;
    }
    const uint64_t window_mask = (uint64_t{1} << kOscWindowTicks) - 1;
    if (static_cast<uint64_t>(std::popcount(osc_flip_history_ & window_mask)) >=
        kOscFlipsToTrip) {
      ++stats_.oscillation_trips;
      osc_hold_until_tick_ = stats_.ticks + kOscHoldTicks;
      osc_flip_history_ = 0;  // re-arm: the next trip needs fresh flips.
    }
    if (action == BeAction::kAllowGrowth && stats_.ticks < osc_hold_until_tick_) {
      action = BeAction::kDisallowGrowth;
      phase = ObsDecisionPhase::kOscillationGuard;
    }
  }
  if (hardening_.readmission_jitter && action == BeAction::kAllowGrowth &&
      be_->instance_count() == 0 &&
      (stats_.ticks + stagger_) % kReadmitJitterPeriodTicks != 0) {
    // Re-admission jitter: an empty pod launches only on its stagger phase,
    // so a cluster-wide hold release cannot re-admit every pod in one tick.
    ++stats_.jitter_holds;
    action = BeAction::kDisallowGrowth;
    phase = ObsDecisionPhase::kReadmitJitter;
  }
  Emit(ObsKind::kDecision, static_cast<uint8_t>(action), static_cast<uint8_t>(phase),
       sample.load, trace.slack, trace.loadlimit, trace.slacklimit);
  Apply(action, slack, sample.lc_utilization);
  stats_.last_action = action;
  UpdateBackoff(slack);
  RunFrequencySubcontroller();
  RunNetworkSubcontroller();
  be_->PublishActivity();
}

void MachineAgent::TriggerBackoff() {
  backoff_level_ = std::min(backoff_level_ + 1, kBackoffMaxLevel);
  backoff_until_tick_ = stats_.ticks + (kBackoffBaseTicks << (backoff_level_ - 1));
  healthy_ticks_ = 0;
}

void MachineAgent::UpdateBackoff(double slack) {
  if (slack < top_.thresholds().slacklimit) {
    healthy_ticks_ = 0;
    return;
  }
  if (backoff_level_ > 0 && ++healthy_ticks_ >= kBackoffDecayTicks) {
    --backoff_level_;
    healthy_ticks_ = 0;
  }
}

bool MachineAgent::SuspendVerified() {
  const int affected = be_->instance_count();
  be_->SuspendAll();
  if (be_->all_suspended()) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kSuspend), 1, affected);
    return true;
  }
  // The suspend was silently dropped; re-issue once now rather than leaving
  // BEs running a full period against a thin slack.
  ++stats_.failed_actuations;
  ++stats_.actuation_retries;
  be_->SuspendAll();
  if (be_->all_suspended()) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kSuspend), 1, affected);
    return true;
  }
  ++stats_.failed_actuations;
  Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kSuspend), 0, affected);
  return false;
}

bool MachineAgent::CutVerified() {
  const int cores_before = be_->TotalCoresHeld();
  const int ways_before = be_->TotalWaysHeld();
  const int before = cores_before + ways_before;
  if (!be_->Cut()) {
    return false;  // nothing held — honest refusal, not a lost command.
  }
  const auto done = [&](uint8_t ok) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kCpuLlc), ok,
         be_->TotalCoresHeld() - cores_before, be_->TotalWaysHeld() - ways_before);
    return ok != 0;
  };
  if (be_->TotalCoresHeld() + be_->TotalWaysHeld() < before) {
    return done(1);
  }
  ++stats_.failed_actuations;
  ++stats_.actuation_retries;
  if (be_->Cut() && be_->TotalCoresHeld() + be_->TotalWaysHeld() < before) {
    return done(1);
  }
  ++stats_.failed_actuations;
  return done(0);
}

bool MachineAgent::GrowVerified() {
  const int cores_before = be_->TotalCoresHeld();
  const int ways_before = be_->TotalWaysHeld();
  const int count_before = be_->instance_count();
  if (!be_->Grow()) {
    return false;  // machine full — honest refusal.
  }
  auto grew = [&] {
    return be_->TotalCoresHeld() > cores_before || be_->TotalWaysHeld() > ways_before ||
           be_->instance_count() > count_before;
  };
  const auto done = [&](uint8_t ok) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kCpuLlc), ok,
         be_->TotalCoresHeld() - cores_before, be_->TotalWaysHeld() - ways_before,
         be_->instance_count() - count_before);
    return ok != 0;
  };
  if (grew()) {
    return done(1);
  }
  ++stats_.failed_actuations;
  ++stats_.actuation_retries;
  if (be_->Grow() && grew()) {
    return done(1);
  }
  ++stats_.failed_actuations;
  return done(0);
}

void MachineAgent::Apply(BeAction action, double slack, double lc_utilization) {
  switch (action) {
    case BeAction::kStopBe: {
      ++stats_.stops;
      const int killed = be_->StopAll();
      stats_.be_kills += static_cast<uint64_t>(killed);
      Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kStop), 1, killed);
      // Thrash guard: the pod just proved hostile to BEs; make re-admission
      // earn its way back with an exponentially growing hold.
      TriggerBackoff();
      break;
    }
    case BeAction::kSuspendBe:
      ++stats_.suspends;
      SuspendVerified();
      break;
    case BeAction::kCutBe:
      ++stats_.cuts;
      ResumeAllObserved();  // load is back under the limit; jobs may run again.
      CutVerified();
      if (be_->CutMemoryStep()) {
        Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kMemory), 1, -0.1);
      }
      if (slack < top_.thresholds().slacklimit / 4.0) {
        // Deep in the red band: shed a second step so a fast load ramp (or a
        // burst) cannot outrun the 2-second control cadence.
        CutVerified();
      }
      break;
    case BeAction::kDisallowGrowth:
      ++stats_.disallows;
      ResumeAllObserved();
      break;
    case BeAction::kAllowGrowth:
      ++stats_.grows;
      ResumeAllObserved();
      if (lc_utilization > kUtilGrowthGuard) {
        // Heracles-style headroom check in the CPU/LLC subcontroller: the
        // slack band says grow, but the local station has no room.
        ++stats_.util_guard_trips;
        break;
      }
      {
        // DRAM-bandwidth subcontroller: keep the channel off its saturation
        // cliff — the next growth step must fit in the guard band.
        const MembwAccountant& membw = machine_->membw();
        if (membw.lc_demand_gbs() + membw.be_demand_gbs() + be_->GrowthMembwStepGbs() >
            kMembwGuardFraction * membw.capacity_gbs()) {
          ++stats_.util_guard_trips;
          break;
        }
      }
      if (be_->instance_count() == 0) {
        const bool launched = be_->LaunchInstance();
        Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kLaunch), launched ? 1 : 0,
             launched ? 1.0 : 0.0);
        break;
      }
      if ((stats_.ticks + stagger_) % kGrowthPeriodTicks != 0) {
        break;  // paced growth: not this machine's turn.
      }
      GrowVerified();
      if (be_->GrowMemoryStep()) {
        Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kMemory), 1, 0.1);
      }
      break;
  }
  // Saturation shed: past the upper guard the station's queueing delay grows
  // without bound, so release resources regardless of the slack band (but do
  // not fight StopBE/SuspendBE, which already removed the pressure). Close
  // to the cliff the shed doubles — a fast load ramp must never outrun it.
  if (lc_utilization > kUtilShedGuard && action != BeAction::kStopBe &&
      action != BeAction::kSuspendBe) {
    ++stats_.util_guard_trips;
    CutVerified();
    CutVerified();
    if (lc_utilization > kUtilEmergencyGuard) {
      CutVerified();
      CutVerified();
    }
  }
}

void MachineAgent::RunFrequencySubcontroller() {
  PowerModel& power = machine_->power();
  const double before_ghz = power.be_frequency_ghz();
  if (power.TdpFraction() > kTdpThreshold) {
    power.SetBeFrequency(power.be_frequency_ghz() - kFreqStepGhz);
  } else if (power.TdpFraction() < kTdpThreshold - 0.1) {
    // Headroom returned: restore BE frequency gradually toward nominal.
    power.SetBeFrequency(power.be_frequency_ghz() + kFreqStepGhz);
  }
  if (power.be_frequency_ghz() != before_ghz) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kFrequency), 1,
         power.be_frequency_ghz(), power.be_frequency_ghz() - before_ghz);
  }
}

void MachineAgent::ResumeAllObserved() {
  bool was_suspended = false;
  for (const BeInstance& inst : be_->instances()) {
    if (inst.suspended) {
      was_suspended = true;
      break;
    }
  }
  be_->ResumeAll();
  if (was_suspended) {
    Emit(ObsKind::kActuation, static_cast<uint8_t>(ObsKnob::kResume), 1,
         be_->instance_count());
  }
}

void MachineAgent::Emit(ObsKind kind, uint8_t code, uint8_t detail, double a, double b,
                        double c, double d) {
  if (obs_ == nullptr) {
    return;
  }
  ObsEvent event;
  event.time_s = obs_now_;
  event.machine = obs_machine_;
  event.kind = kind;
  event.code = code;
  event.detail = detail;
  event.a = a;
  event.b = b;
  event.c = c;
  event.d = d;
  obs_->Record(event);
}

void MachineAgent::RunNetworkSubcontroller() {
  // The qdisc allocation derives from the measured LC traffic, which the
  // accounting tick publishes; re-offering BE traffic refreshes the shaping.
  machine_->network().SetBeOffered(be_->NetOffered());
}

}  // namespace rhythm
