#include "src/control/top_controller.h"

namespace rhythm {

const char* BeActionName(BeAction action) {
  switch (action) {
    case BeAction::kStopBe:
      return "StopBE";
    case BeAction::kSuspendBe:
      return "SuspendBE";
    case BeAction::kCutBe:
      return "CutBE";
    case BeAction::kDisallowGrowth:
      return "DisallowBEGrowth";
    case BeAction::kAllowGrowth:
      return "AllowBEGrowth";
  }
  return "?";
}

BeAction TopController::Decide(double load, double tail_ms, double sla_ms) const {
  return Decide(load, tail_ms, sla_ms, nullptr);
}

BeAction TopController::Decide(double load, double tail_ms, double sla_ms,
                               DecisionTrace* trace) const {
  if (trace != nullptr) {
    trace->slack = Slack(tail_ms, sla_ms);
    trace->loadlimit = thresholds_.loadlimit;
    trace->slacklimit = thresholds_.slacklimit;
    trace->degenerate = false;
  }
  // Fail safe on degenerate inputs: with no meaningful slack signal the
  // controller must not grow blind, and killing on garbage would forfeit BE
  // work for what may be a telemetry glitch — SuspendBE holds the line.
  if (!(sla_ms > 0.0) || std::isnan(tail_ms) || std::isnan(load)) {
    if (trace != nullptr) {
      trace->degenerate = true;
    }
    return BeAction::kSuspendBe;
  }
  const double slack = Slack(tail_ms, sla_ms);
  if (slack < 0.0) {
    return BeAction::kStopBe;
  }
  if (load >= thresholds_.loadlimit) {
    return BeAction::kSuspendBe;
  }
  if (slack < thresholds_.slacklimit / 2.0) {
    return BeAction::kCutBe;
  }
  if (slack < thresholds_.slacklimit) {
    return BeAction::kDisallowGrowth;
  }
  return BeAction::kAllowGrowth;
}

}  // namespace rhythm
