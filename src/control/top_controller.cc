#include "src/control/top_controller.h"

namespace rhythm {

const char* BeActionName(BeAction action) {
  switch (action) {
    case BeAction::kStopBe:
      return "StopBE";
    case BeAction::kSuspendBe:
      return "SuspendBE";
    case BeAction::kCutBe:
      return "CutBE";
    case BeAction::kDisallowGrowth:
      return "DisallowBEGrowth";
    case BeAction::kAllowGrowth:
      return "AllowBEGrowth";
  }
  return "?";
}

BeAction TopController::Decide(double load, double tail_ms, double sla_ms) const {
  const double slack = Slack(tail_ms, sla_ms);
  if (slack < 0.0) {
    return BeAction::kStopBe;
  }
  if (load >= thresholds_.loadlimit) {
    return BeAction::kSuspendBe;
  }
  if (slack < thresholds_.slacklimit / 2.0) {
    return BeAction::kCutBe;
  }
  if (slack < thresholds_.slacklimit) {
    return BeAction::kDisallowGrowth;
  }
  return BeAction::kAllowGrowth;
}

}  // namespace rhythm
