// Per-machine controller agent (paper §3.5.2).
//
// One agent runs on every machine hosting an LC Servpod. Each 2-second tick
// it feeds the current load and tail-latency slack to the top controller and
// executes the resulting action through four subcontrollers:
//   CPU/LLC  — grows/cuts BE cores and CAT ways (1 core + 10% LLC steps);
//   frequency — DVFS: drops BE frequency 100 MHz when power > 80% TDP;
//   memory   — grows/cuts BE memory in 100 MB steps;
//   network  — maintains the qdisc allocation B_link - 1.2 * B_LC.
//
// Fail-safe hardening beyond the paper's healthy-testbed assumptions:
//   * stale-signal detector — a tail sample older than kStaleTailLimitS (or
//     NaN) is treated as zero slack: the agent suspends BEs instead of
//     acting on fiction;
//   * actuation verification — every Grow/Cut/Suspend is checked against the
//     runtime's observable state and retried once when the command was
//     silently lost (dropped IPC to the machine daemon);
//   * kill backoff — after a StopBE (or an externally signalled disruption
//     such as a machine reboot) BE re-admission waits out an exponentially
//     growing hold, so work does not thrash back into a still-degraded pod.

#ifndef RHYTHM_SRC_CONTROL_MACHINE_AGENT_H_
#define RHYTHM_SRC_CONTROL_MACHINE_AGENT_H_

#include <cstdint>

#include "src/bemodel/be_runtime.h"
#include "src/control/top_controller.h"
#include "src/obs/obs_event.h"
#include "src/resources/machine.h"

namespace rhythm {

// Opt-in fail-safes closing weaknesses the adversarial search
// (src/verify/adversary) demonstrated against the baseline controller. Both
// default off so existing seeded runs stay bit-identical; the golden
// bit-identity test pins that inertness.
struct ControlHardening {
  // Weakness: a cluster-wide admission-hold release re-admits BEs on every
  // pod in the same control tick — aligned with a load ramp, all pods pay
  // the launch interference inside one tail window. Fix: launches from an
  // empty pod obey the same stagger phasing as growth, spread over
  // kReadmitJitterPeriodTicks instead of firing simultaneously.
  bool readmission_jitter = false;
  // Weakness: pressure oscillating near the slack band edges makes the band
  // walk alternate grow/cut at the controller's own cadence, thrashing
  // resources while the tail stays degraded. Fix: a sliding-window detector
  // trips when grow<->cut flips pack tighter than any benign band walk and
  // holds growth until the band's decisions settle.
  bool oscillation_guard = false;
};

class MachineAgent {
 public:
  // The paper's controller cadence.
  static constexpr double kPeriodSeconds = 2.0;
  // DVFS adjustment step (100 MHz).
  static constexpr double kFreqStepGhz = 0.1;
  // Power threshold that triggers BE frequency reduction.
  static constexpr double kTdpThreshold = 0.8;

  // CPU/LLC subcontroller headroom guards (the paper adopts Heracles' CPU
  // subcontroller, which gates BE growth on the LC's measured load): BE
  // growth pauses when the local Servpod's station utilization — including
  // interference dilation — exceeds kUtilGrowthGuard, and resources are shed
  // beyond kUtilShedGuard, so a load ramp cannot push the pod over its
  // saturation cliff faster than slack feedback reacts.
  static constexpr double kUtilGrowthGuard = 0.55;
  static constexpr double kUtilShedGuard = 0.72;
  static constexpr double kUtilEmergencyGuard = 0.85;

  // DRAM-bandwidth subcontroller guard (Heracles' memory-bandwidth
  // controller): BE growth is blocked when the next step would push combined
  // demand past this fraction of the channel peak, keeping the machine off
  // the saturation cliff where one core-step flips the latency regime.
  static constexpr double kMembwGuardFraction = 0.90;

  // Growth pacing: a machine grows at most once per kGrowthPeriodTicks
  // control periods, phase-offset by its stagger index, so co-located
  // machines do not all step inside the tail window's blind spot (growth is
  // deliberately gradual in Heracles for the same reason).
  static constexpr uint64_t kGrowthPeriodTicks = 2;

  // Stale-signal detector: a tail sample older than this is no basis for
  // action — several accounting periods have silently failed to publish.
  static constexpr double kStaleTailLimitS = 5.0;

  // Kill backoff: after a StopBE, growth stays held for
  // kBackoffBaseTicks << (level - 1) ticks, the level rising with every kill
  // up to kBackoffMaxLevel (2, 4, 8 ticks = 4..16 s at the 2 s cadence) and
  // decaying one step per kBackoffDecayTicks consecutive healthy ticks.
  static constexpr uint64_t kBackoffBaseTicks = 2;
  static constexpr uint64_t kBackoffMaxLevel = 3;
  static constexpr uint64_t kBackoffDecayTicks = 15;

  // Re-admission jitter (ControlHardening::readmission_jitter): an empty pod
  // may launch only on its stagger phase of this period, spreading a
  // synchronized re-admission over 4 ticks (8 s at the 2 s cadence).
  static constexpr uint64_t kReadmitJitterPeriodTicks = 4;

  // Oscillation guard (ControlHardening::oscillation_guard): grow<->cut band
  // flips are counted over a sliding kOscWindowTicks-tick window;
  // kOscFlipsToTrip flips inside one window trip the guard, which holds
  // growth for kOscHoldTicks and re-arms the window. The thresholds sit well
  // above benign band-walk density (the evaluation apps flip roughly once
  // per 25 ticks per pod, so a 32-tick window holds 1-2 flips) but below
  // burst- or pressure-driven thrash, which packs flips a few ticks apart.
  static constexpr uint64_t kOscWindowTicks = 32;
  static constexpr uint64_t kOscFlipsToTrip = 4;
  static constexpr uint64_t kOscHoldTicks = 8;

  struct Stats {
    uint64_t ticks = 0;
    uint64_t be_kills = 0;         // instances destroyed by StopBE.
    uint64_t sla_violations = 0;   // ticks with negative slack.
    uint64_t stops = 0;
    uint64_t suspends = 0;
    uint64_t cuts = 0;
    uint64_t disallows = 0;
    uint64_t grows = 0;
    uint64_t util_guard_trips = 0;  // subcontroller overrode the top action.
    uint64_t stale_ticks = 0;        // ticks decided on the fail-safe path.
    uint64_t failed_actuations = 0;  // verification caught a lost command.
    uint64_t actuation_retries = 0;  // immediate re-issues after a loss.
    uint64_t backoff_holds = 0;      // growth ticks converted to holds.
    uint64_t jitter_holds = 0;       // empty-pod launches deferred off-phase.
    uint64_t oscillation_trips = 0;  // oscillation guard activations.
    BeAction last_action = BeAction::kAllowGrowth;
  };

  // Telemetry as the control loop actually receives it: the tail sample
  // carries its age (time since the accounting daemon published it); load
  // and utilization are measured locally and always fresh.
  struct TelemetrySample {
    double load = 0.0;
    double tail_ms = 0.0;
    double tail_age_s = 0.0;
    double lc_utilization = 0.0;
  };

  // `stagger` phase-offsets this machine's growth ticks (use the pod index).
  MachineAgent(Machine* machine, BeRuntime* be, const ServpodThresholds& thresholds,
               double sla_ms, int stagger = 0,
               const ControlHardening& hardening = ControlHardening{});

  // One control period: decide and actuate on the published telemetry.
  void Tick(const TelemetrySample& sample);

  // Fresh-sample convenience overload (the healthy-testbed call sites).
  void Tick(double load, double tail_ms, double lc_utilization = 0.0) {
    Tick(TelemetrySample{.load = load, .tail_ms = tail_ms, .lc_utilization = lc_utilization});
  }

  // External disruption (machine reboot, failover): arm the same backoff a
  // kill would, so BE work does not rush back into a pod still warming up.
  void TriggerBackoff();
  uint64_t backoff_ticks_remaining() const {
    return backoff_until_tick_ > stats_.ticks ? backoff_until_tick_ - stats_.ticks : 0;
  }

  const Stats& stats() const { return stats_; }
  const TopController& top() const { return top_; }
  void set_thresholds(const ServpodThresholds& t) { top_.set_thresholds(t); }

  // Observability (src/obs): when a sink is attached the agent emits one
  // decision event per tick (with the inputs it banded on) and one actuation
  // event per knob command. Events are stamped with the time last passed to
  // set_obs_now — the deployment sets it right before Tick. Emission reads
  // only state the agent already computed; it never perturbs the control
  // path, so recorded runs stay byte-identical.
  void AttachObs(ObsSink* sink, int machine_index) {
    obs_ = sink;
    obs_machine_ = machine_index;
  }
  void set_obs_now(double now_s) { obs_now_ = now_s; }

 private:
  void Apply(BeAction action, double slack, double lc_utilization);
  // ResumeAll plus a kResume actuation event when instances were suspended.
  void ResumeAllObserved();
  void Emit(ObsKind kind, uint8_t code, uint8_t detail, double a = 0.0, double b = 0.0,
            double c = 0.0, double d = 0.0);
  void RunFrequencySubcontroller();
  void RunNetworkSubcontroller();
  // Verified actuations: issue the command, compare observable state, retry
  // once when the command was lost. Return whether the effect landed.
  bool SuspendVerified();
  bool CutVerified();
  bool GrowVerified();
  void UpdateBackoff(double slack);

  Machine* machine_;
  BeRuntime* be_;
  TopController top_;
  double sla_ms_;
  uint64_t stagger_;
  ControlHardening hardening_;
  uint64_t backoff_level_ = 0;
  uint64_t backoff_until_tick_ = 0;
  uint64_t healthy_ticks_ = 0;
  // Oscillation-guard state (all inert unless the guard is enabled).
  int osc_last_direction_ = 0;       // +1 grow, -1 cut/stop, 0 none yet.
  uint64_t osc_flip_history_ = 0;    // bit i set = band flip i ticks ago.
  uint64_t osc_hold_until_tick_ = 0; // growth held while ticks < this.
  Stats stats_;
  ObsSink* obs_ = nullptr;
  int32_t obs_machine_ = -1;
  double obs_now_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_CONTROL_MACHINE_AGENT_H_
