// ClusterSupervisor: barrier-driven failover for the partitioned cluster
// engine (DESIGN.md §14).
//
// Machine loss is a cluster-scope fault (FaultKind::kMachineFailure /
// kMachineRestart) enacted at the shard barrier — the only instant the whole
// cluster rests in a consistent state. The engine kills the trials of groups
// whose machines died, then hands the supervisor the victims; the supervisor
// consults the regular PlacementPolicy registry for priority/BE/solo choices
// and re-places whole groups onto contiguous runs of surviving free machines,
// bounded by a per-barrier migration budget. Replacements re-warm and carry a
// BE re-admission backoff (a kBeAdmissionHold window), so failover costs what
// it should. When the dead fraction reaches the survivability threshold the
// supervisor flips to degraded mode: every subsequent placement — epoch or
// failover — runs solo, suspending BE cluster-wide until enough machines
// rejoin.
//
// Determinism contract: everything here runs on the coordinating thread
// between Advance calls, consumes only slot-order-merged state, and draws no
// randomness of its own (the policy's seed is fixed at construction) — so a
// run with machine loss is bit-identical at any RHYTHM_SHARDS / RHYTHM_JOBS,
// with or without the supervisor enabled.
//
// Layering: this header needs src/place types (policy, views), so the
// implementation compiles into the rhythm_place library even though the file
// lives with the other controllers under src/control.

#ifndef RHYTHM_SRC_CONTROL_CLUSTER_SUPERVISOR_H_
#define RHYTHM_SRC_CONTROL_CLUSTER_SUPERVISOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/control/cluster_tick.h"
#include "src/place/placement_policy.h"

namespace rhythm {

struct SupervisorOptions {
  // Master switch. Disabled, machine losses still kill the victims' trials
  // (physics is not optional) but nothing is re-placed: disrupted demand
  // stays down until the next epoch re-places the cluster.
  bool enabled = false;
  // Most victim groups re-placed per loss barrier; victims beyond the budget
  // (in policy priority order) are lost for the rest of the epoch.
  int migration_budget = std::numeric_limits<int>::max();
  // BE re-admission backoff for migrated groups: every pod of a replacement
  // trial starts under a kBeAdmissionHold window of this length, so BE work
  // ramps back instead of slamming into a cold re-warmed group. <= 0: off.
  double readmission_backoff_s = 10.0;
  // Survivability threshold: when machines_down / machines >= this fraction,
  // degraded mode forces run_solo on every subsequent placement until
  // rejoins bring the dead fraction back under.
  double degraded_dead_fraction = 0.5;
};

// Machine liveness + occupancy, the allocation substrate for both epoch
// placement and failover. First-fit over contiguous alive+free runs: with
// every machine alive this is exactly the cursor allocation the engine used
// before failure domains existed, which is what keeps fault-free runs
// bit-identical.
class MachineRoster {
 public:
  explicit MachineRoster(int machines);

  int machines() const { return static_cast<int>(state_.size()); }
  int down() const { return down_; }
  int alive() const { return machines() - down_; }
  bool IsAlive(int machine) const;

  // Loss/rejoin transitions. Return false (and change nothing) when the
  // machine is already in the target state — duplicate schedule events
  // degrade to no-ops.
  bool MarkDown(int machine);
  bool MarkUp(int machine);

  // Lowest-index contiguous run of `pods` alive+free machines, marked
  // occupied; -1 when no such run exists.
  int Allocate(int pods);

  // Frees the surviving machines of [first, first + pods); dead ones stay
  // dead (they free on rejoin).
  void Release(int first, int pods);

  // Epoch boundary: every occupied machine frees; dead machines stay dead.
  void ReleaseAll();

 private:
  enum State : uint8_t { kFree = 0, kOccupied = 1, kDead = 2 };
  std::vector<uint8_t> state_;
  int down_ = 0;
};

// One victim group's failover plan, in policy priority order.
struct FailoverDecision {
  int group = 0;  // PendingGroup::group of the victim (original numbering).
  BeJobKind be = BeJobKind::kCpuStress;
  bool run_solo = false;
  double score = 0.0;
  int first_machine = -1;  // -1: lost (budget exhausted or nothing fits).
};

class ClusterSupervisor {
 public:
  ClusterSupervisor(int machines, const SupervisorOptions& options);

  MachineRoster& roster() { return roster_; }
  const MachineRoster& roster() const { return roster_; }
  const SupervisorOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  // Degraded while enabled and the dead fraction sits at/above the
  // survivability threshold. Rejoins can clear it.
  bool degraded() const;

  // Failover plan for the victim groups. `victims.pending` must be
  // renumbered 0..n-1 (PlacementDecision::group indexes the pending list);
  // `original_groups[i]` maps entry i back to the real group id. Applies the
  // migration budget and degraded mode, allocates from the roster, and
  // validates the policy's decision contract (one decision per victim, BEs
  // from the quota multiset). Returns decisions in policy priority order.
  std::vector<FailoverDecision> PlanFailover(PlacementPolicy& policy,
                                             const ClusterView& victims,
                                             const std::vector<int>& original_groups);

  // Barrier accounting: counts barriers spent degraded (for
  // ClusterSummary::degraded_barriers).
  void ObserveBarrier(const ClusterTickSnapshot& snapshot);

  int degraded_barriers() const { return degraded_barriers_; }
  int migrations() const { return migrations_; }

 private:
  MachineRoster roster_;
  SupervisorOptions options_;
  int degraded_barriers_ = 0;
  int migrations_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_CONTROL_CLUSTER_SUPERVISOR_H_
