// Cluster tick boundary: what a top-level controller sees at the partitioned
// engine's conservative-window barrier.
//
// Between barriers, machine-local controllers act independently on their own
// islands; at every window boundary (aligned to MachineAgent::kPeriodSeconds,
// the controller tick) the engine pauses all shards and assembles this
// snapshot by merging island state in slot order on the coordinating thread.
// A ClusterTickHook is therefore the seam for top-controller logic — global
// admission, load shedding, placement feedback — that needs a consistent
// cluster-wide view.
//
// Determinism contract: the snapshot is assembled from plain counter reads
// (no RNG, no mutation, no quantile queries that could compact windows) and
// the merge order is logical slot order, never physical shard order — so a
// hook observes bit-identical snapshots at any RHYTHM_SHARDS value.

#ifndef RHYTHM_SRC_CONTROL_CLUSTER_TICK_H_
#define RHYTHM_SRC_CONTROL_CLUSTER_TICK_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rhythm {

struct ClusterTickSnapshot {
  // Cluster timeline: epoch * (warmup_s + measure_s) + window_end_s.
  double time_s = 0.0;
  // Placement epoch this window belongs to, and the window's end on the
  // epoch-local clock (every running group rests exactly here).
  int epoch = 0;
  double window_end_s = 0.0;
  // Windows completed so far across the whole cluster run (1-based at the
  // first hook firing).
  uint64_t window = 0;
  // Placed groups currently running in this epoch.
  int groups_running = 0;
  // Merged (slot-order summed) counters across running groups, cumulative
  // since each group's trial began — warmup included, exactly what the
  // groups' own counters say at the barrier.
  uint64_t sla_violations = 0;
  uint64_t be_kills = 0;
  uint64_t slack_violation_ticks = 0;
  uint64_t crashes = 0;
  // -- Failure domains (DESIGN.md §14). All zero/empty when the request
  // schedules no machine faults, so pre-existing hooks see unchanged data. --
  int machines_total = 0;
  int machines_alive = 0;
  int machines_down = 0;
  // Machine indices whose loss/rejoin was enacted at *this* barrier, sorted
  // ascending. Most barriers leave both empty.
  std::vector<int> lost_machines;
  std::vector<int> rejoined_machines;
  // Placed groups currently down: disrupted this epoch and not (yet)
  // failed over.
  int groups_down = 0;
  // The supervisor's degraded mode (BE suspended cluster-wide) is active.
  bool degraded = false;
};

// Fired on the coordinating thread after every window's barrier, while all
// shards rest. The hook must treat the cluster as read-only.
using ClusterTickHook = std::function<void(const ClusterTickSnapshot&)>;

}  // namespace rhythm

#endif  // RHYTHM_SRC_CONTROL_CLUSTER_TICK_H_
