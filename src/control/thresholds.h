// Threshold derivation (paper §3.5.1).
//
// loadlimit: the "switch" — the LC load above which no BE may run with this
// Servpod. Chosen as the first load level whose sojourn-time CoV exceeds the
// average CoV across levels (Figure 8).
//
// slacklimit: the lower bound of tail-latency slack that still allows BE
// growth, found by Algorithm 1: every pod's limit starts at 1.0 and walks
// down by its own step size (1 - C_i / Σ C), the system runs with mixed BEs
// at each candidate setting, and the last SLA-safe setting wins.

#ifndef RHYTHM_SRC_CONTROL_THRESHOLDS_H_
#define RHYTHM_SRC_CONTROL_THRESHOLDS_H_

#include <functional>
#include <span>
#include <vector>

namespace rhythm {

struct ServpodThresholds {
  double loadlimit = 0.85;
  double slacklimit = 0.10;
};

// loadlimit from a CoV-versus-load curve: the first load level whose CoV is
// strictly greater than the mean CoV across all levels. Falls back to the
// last level when the curve never crosses its mean (a flat, tolerant pod).
double DeriveLoadlimit(std::span<const double> load_levels, std::span<const double> covs);

// Runs the system for a probing window at the candidate per-pod slacklimits;
// returns true when the SLA was violated during the window.
using SlaProbe = std::function<bool(const std::vector<double>& slacklimits)>;

// Algorithm 1, coordinated across pods: per-pod step sizes from normalized
// contributions, iterate until the probe reports a violation or every limit
// reaches its floor, return the last safe limits.
std::vector<double> FindSlacklimits(const std::vector<double>& normalized_contributions,
                                    const SlaProbe& probe, int max_iterations = 32);

}  // namespace rhythm

#endif  // RHYTHM_SRC_CONTROL_THRESHOLDS_H_
