#include "src/control/cluster_supervisor.h"

#include <map>
#include <stdexcept>
#include <string>

#include "src/common/logging.h"

namespace rhythm {

MachineRoster::MachineRoster(int machines)
    : state_(static_cast<size_t>(machines), kFree) {
  RHYTHM_CHECK(machines > 0);
}

bool MachineRoster::IsAlive(int machine) const {
  return machine >= 0 && machine < machines() &&
         state_[static_cast<size_t>(machine)] != kDead;
}

bool MachineRoster::MarkDown(int machine) {
  if (machine < 0 || machine >= machines() ||
      state_[static_cast<size_t>(machine)] == kDead) {
    return false;
  }
  state_[static_cast<size_t>(machine)] = kDead;
  ++down_;
  return true;
}

bool MachineRoster::MarkUp(int machine) {
  if (machine < 0 || machine >= machines() ||
      state_[static_cast<size_t>(machine)] != kDead) {
    return false;
  }
  state_[static_cast<size_t>(machine)] = kFree;  // rejoins come back empty.
  --down_;
  return true;
}

int MachineRoster::Allocate(int pods) {
  if (pods <= 0 || pods > machines()) {
    return -1;
  }
  int run = 0;
  for (int m = 0; m < machines(); ++m) {
    if (state_[static_cast<size_t>(m)] == kFree) {
      if (++run == pods) {
        const int first = m - pods + 1;
        for (int k = first; k <= m; ++k) {
          state_[static_cast<size_t>(k)] = kOccupied;
        }
        return first;
      }
    } else {
      run = 0;
    }
  }
  return -1;
}

void MachineRoster::Release(int first, int pods) {
  for (int m = first; m < first + pods; ++m) {
    if (m >= 0 && m < machines() && state_[static_cast<size_t>(m)] == kOccupied) {
      state_[static_cast<size_t>(m)] = kFree;
    }
  }
}

void MachineRoster::ReleaseAll() {
  for (uint8_t& state : state_) {
    if (state == kOccupied) {
      state = kFree;
    }
  }
}

ClusterSupervisor::ClusterSupervisor(int machines, const SupervisorOptions& options)
    : roster_(machines), options_(options) {
  if (options_.migration_budget < 0) {
    throw std::invalid_argument("SupervisorOptions: migration_budget must be >= 0");
  }
  if (!(options_.degraded_dead_fraction > 0.0) || options_.degraded_dead_fraction > 1.0) {
    throw std::invalid_argument(
        "SupervisorOptions: degraded_dead_fraction must lie in (0, 1]");
  }
}

bool ClusterSupervisor::degraded() const {
  return options_.enabled &&
         static_cast<double>(roster_.down()) >=
             options_.degraded_dead_fraction * roster_.machines();
}

std::vector<FailoverDecision> ClusterSupervisor::PlanFailover(
    PlacementPolicy& policy, const ClusterView& victims,
    const std::vector<int>& original_groups) {
  RHYTHM_CHECK(victims.pending.size() == original_groups.size());
  std::vector<FailoverDecision> plan;
  if (!options_.enabled || victims.pending.empty()) {
    return plan;
  }

  policy.OnTick(victims);
  std::vector<PlacementDecision> decisions = policy.Decide(victims);

  // Same decision contract as epoch placement: exactly one decision per
  // victim, non-solo BEs drawn from the quota multiset.
  if (decisions.size() != victims.pending.size()) {
    throw std::invalid_argument("failover policy \"" + policy.name() + "\" returned " +
                                std::to_string(decisions.size()) + " decisions for " +
                                std::to_string(victims.pending.size()) + " victims");
  }
  std::vector<bool> decided(victims.pending.size(), false);
  std::map<BeJobKind, int> quota_left;
  for (BeJobKind be : victims.be_quota) {
    ++quota_left[be];
  }
  for (const PlacementDecision& decision : decisions) {
    if (decision.group < 0 ||
        decision.group >= static_cast<int>(victims.pending.size()) ||
        decided[static_cast<size_t>(decision.group)]) {
      throw std::invalid_argument("failover policy \"" + policy.name() +
                                  "\" decided victim " + std::to_string(decision.group) +
                                  " zero or multiple times");
    }
    decided[static_cast<size_t>(decision.group)] = true;
    if (!decision.run_solo && --quota_left[decision.be] < 0) {
      throw std::invalid_argument("failover policy \"" + policy.name() +
                                  "\" overdraws the victim BE quota");
    }
  }

  // Enact in priority order under the migration budget; degraded mode
  // forces solo. A victim that fits nowhere (or falls past the budget) comes
  // back with first_machine = -1 — lost, not silently dropped.
  const bool solo_everything = degraded();
  int budget = options_.migration_budget;
  plan.reserve(decisions.size());
  for (const PlacementDecision& decision : decisions) {
    const PendingGroup& victim = victims.pending[static_cast<size_t>(decision.group)];
    FailoverDecision out;
    out.group = original_groups[static_cast<size_t>(decision.group)];
    out.be = decision.be;
    out.run_solo = decision.run_solo || solo_everything;
    out.score = decision.score;
    if (budget > 0) {
      out.first_machine = roster_.Allocate(victim.pods);
      if (out.first_machine >= 0) {
        --budget;
        ++migrations_;
      }
    }
    plan.push_back(out);
  }
  return plan;
}

void ClusterSupervisor::ObserveBarrier(const ClusterTickSnapshot& snapshot) {
  (void)snapshot;
  if (degraded()) {
    ++degraded_barriers_;
  }
}

}  // namespace rhythm
