// Sliding-window tail-latency tracker.
//
// The paper measures the 99th percentile latency per second over a sliding
// window; the controllers consume that signal every 2 s. This tracker keeps
// the samples of the last `window` seconds and answers percentile queries
// exactly.
//
// Implementation: alongside the FIFO used for expiration, samples live in a
// SortedChunkIndex — a sorted ring of bounded chunks maintained
// incrementally on add/expire — so a quantile query selects the needed order
// statistics by walking chunk counts instead of copying and nth_element-ing
// the whole window (the pre-overhaul behaviour: O(window) copy + partition
// per query, several times per simulated second). A per-(timestamp, q) memo
// makes the accounting tick, controller tick and reboot handler reads at the
// same simulated instant pay for one selection only. Results are
// bit-identical to the old sort-based math: the same interpolation formula
// runs on the same order statistics.

#ifndef RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_
#define RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace rhythm {

// A free-list of chunk buffers shared *across* SortedChunkIndex instances,
// so tearing one window down and building the next (e.g. per-epoch trials
// in the partitioned cluster engine) reuses buffers instead of returning
// them to the heap. Single-threaded: a pool must only be shared by indexes
// that live on the same shard. The pool must outlive every index wired to
// it — a dying index hands its chunks back.
class ChunkPool {
 public:
  using Chunk = std::vector<double>;

  // A pooled buffer, or null when the pool is empty.
  std::unique_ptr<Chunk> Take();
  // Accepts a buffer back; the buffer's capacity is retained, its contents
  // dropped.
  void Put(std::unique_ptr<Chunk> chunk);

  size_t size() const { return free_.size(); }
  // Buffers handed out minus buffers returned that came from the heap —
  // i.e. how many allocations the pool has absorbed (for tests/benches).
  uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::unique_ptr<Chunk>> free_;
  uint64_t reuses_ = 0;
};

// An incrementally ordered multiset of doubles: a vector of sorted chunks,
// every element of chunk i <= every element of chunk i+1. Insert and erase
// cost one binary search plus an O(chunk) shift; selecting the k-th order
// statistic walks chunk headers (O(size / chunk capacity)) instead of the
// elements themselves. Emptied chunks are pooled, so steady-state
// add/expire/select cycles perform no heap allocation.
class SortedChunkIndex {
 public:
  SortedChunkIndex() = default;
  ~SortedChunkIndex();

  // Split threshold: chunks hold at most this many values.
  static constexpr size_t kMaxChunk = 256;
  // Merge hysteresis: a chunk shrinking below kMergeBelow joins a neighbour
  // when the pair fits in kMergeTarget, bounding fragmentation from erases.
  static constexpr size_t kMergeBelow = kMaxChunk / 4;
  static constexpr size_t kMergeTarget = (kMaxChunk * 3) / 4;

  void Insert(double value);
  // Erases one instance of `value`, which must be present.
  void Erase(double value);
  // k-th smallest value, 0-based; k must be < size(). `chunks_scanned`, when
  // non-null, is incremented by the number of chunk headers walked (the
  // query's cost certificate).
  double SelectKth(size_t k, uint64_t* chunks_scanned = nullptr) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t chunk_count() const { return chunks_.size(); }
  void Clear();

  // Wires a shared buffer pool: TakeChunk draws from it before touching the
  // heap, and retired chunks (including everything held at destruction) go
  // back to it. Must be set before the first Insert; the pool must outlive
  // this index. Pooling only changes where buffers come from — the values
  // stored and every query answer are bit-identical with or without it.
  void set_pool(ChunkPool* pool) { pool_ = pool; }

 private:
  using Chunk = std::vector<double>;

  // Index of the first chunk whose maximum is >= value (== chunks_.size()
  // when value exceeds every maximum). If `value` is present anywhere, this
  // chunk holds an instance of it.
  size_t FindChunk(double value) const;
  std::unique_ptr<Chunk> TakeChunk();
  void RetireChunk(std::unique_ptr<Chunk> chunk);
  void SplitChunk(size_t index);
  void MaybeMergeAround(size_t index);

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<Chunk>> free_chunks_;
  ChunkPool* pool_ = nullptr;
  size_t size_ = 0;
};

class PercentileWindow {
 public:
  // window: horizon in seconds over which samples are retained. `pool`, when
  // non-null, backs the chunk index with a shared buffer pool (see
  // ChunkPool; the pool must outlive the window).
  explicit PercentileWindow(double window_seconds = 10.0,
                            ChunkPool* pool = nullptr)
      : window_(window_seconds) {
    if (pool != nullptr) {
      index_.set_pool(pool);
    }
  }

  // Records a latency sample observed at simulated time `now` (seconds).
  void Add(double now, double latency);

  // Drops samples older than `now - window`.
  void Expire(double now);

  // Exact q-quantile of the retained samples (0 if empty). Expires first.
  double Quantile(double now, double q);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double window_seconds() const { return window_; }

  // Query-cost introspection for tests and micro-benchmarks.
  struct QueryStats {
    uint64_t queries = 0;          // Quantile calls on a non-empty window.
    uint64_t memo_hits = 0;        // answered from the per-timestamp memo.
    uint64_t last_chunks_scanned = 0;  // chunk headers walked by the last
                                       // uncached query (certifies the scan
                                       // is O(size / kMaxChunk), not O(size)).
  };
  const QueryStats& query_stats() const { return query_stats_; }

 private:
  struct Sample {
    double time;
    double latency;
  };

  double window_;
  std::deque<Sample> samples_;  // FIFO, in insertion order (for expiration).
  SortedChunkIndex index_;      // same latencies, kept ordered.

  // Memo of the last computed quantile: valid until samples change.
  bool memo_valid_ = false;
  double memo_now_ = 0.0;
  double memo_q_ = 0.0;
  double memo_value_ = 0.0;

  QueryStats query_stats_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_
