// Sliding-window tail-latency tracker.
//
// The paper measures the 99th percentile latency per second over a sliding
// window; the controllers consume that signal every 2 s. This tracker keeps
// the samples of the last `window` seconds and answers percentile queries
// exactly (the windows are small enough — thousands of requests — that an
// exact answer is cheaper and simpler than a sketch).

#ifndef RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_
#define RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_

#include <cstddef>
#include <deque>

namespace rhythm {

class PercentileWindow {
 public:
  // window: horizon in seconds over which samples are retained.
  explicit PercentileWindow(double window_seconds = 10.0) : window_(window_seconds) {}

  // Records a latency sample observed at simulated time `now` (seconds).
  void Add(double now, double latency);

  // Drops samples older than `now - window`.
  void Expire(double now);

  // Exact q-quantile of the retained samples (0 if empty). Expires first.
  double Quantile(double now, double q);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double window_seconds() const { return window_; }

 private:
  struct Sample {
    double time;
    double latency;
  };

  double window_;
  std::deque<Sample> samples_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_PERCENTILE_WINDOW_H_
