// Shared JSON writing: the one escaping routine and the one %.17g double
// rendering every JSON-emitting layer (obs exporters, the serving daemon,
// bench artifacts) agrees on. Factored out of src/obs/exporters.cc so the
// serving subsystem cannot drift from the recorder on number formatting —
// bit-identical doubles across the batch/served boundary depend on it.
//
// JsonWriter is a small streaming writer with comma/nesting bookkeeping for
// code that builds whole documents (responses, snapshots); the free
// functions remain for printf-style emitters that only need the primitives.

#ifndef RHYTHM_SRC_COMMON_JSON_H_
#define RHYTHM_SRC_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rhythm {

// %.17g keeps every double bit-exact across a write/parse round trip.
std::string JsonNum(double value);

// Body of a JSON string literal for `text` (no surrounding quotes): escapes
// quote, backslash, \n, \t and renders other control bytes as \u00xx.
std::string JsonEscape(const std::string& text);

// Streaming JSON document builder. Usage:
//   JsonWriter w;
//   w.BeginObject().Key("emu").Number(0.81).Key("pods").BeginArray();
//   ...
//   w.EndArray().EndObject();
//   std::string body = std::move(w).str();
// The writer tracks nesting depth and element counts, inserting commas; it
// does not validate key/value alternation beyond what the methods imply.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }

  JsonWriter& EndObject() {
    out_ += '}';
    fresh_.pop_back();
    return *this;
  }

  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }

  JsonWriter& EndArray() {
    out_ += ']';
    fresh_.pop_back();
    return *this;
  }

  JsonWriter& Key(const std::string& key) {
    Separate();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    after_key_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Separate();
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
    return *this;
  }

  JsonWriter& Number(double value) {
    Separate();
    out_ += JsonNum(value);
    return *this;
  }

  JsonWriter& Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& UInt(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
    return *this;
  }

  JsonWriter& Null() {
    Separate();
    out_ += "null";
    return *this;
  }

  // Pre-rendered JSON spliced in verbatim (e.g. a nested document built
  // elsewhere). The caller vouches for its validity.
  JsonWriter& Raw(const std::string& json) {
    Separate();
    out_ += json;
    return *this;
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  // Emits the separating comma for the second and later elements of the
  // innermost container; a value directly after Key() never separates.
  void Separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (fresh_.empty()) {
      return;
    }
    if (!fresh_.back()) {
      out_ += ',';
    }
    fresh_.back() = false;
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open container: no element emitted yet.
  bool after_key_ = false;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_JSON_H_
