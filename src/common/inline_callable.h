// Small-buffer-optimized callable for the simulator's hot path.
//
// Every simulated request schedules at least one event; with std::function
// each event risks a heap allocation (libstdc++ only inlines captures up to
// two words) and periodic re-arming copies the stored target. InlineFunction
// stores closures up to kInlineCapacity bytes directly inside the event, is
// move-only (no accidental target copies), and falls back to the heap only
// for oversized targets — counted, so tests and micro-benchmarks can assert
// the simulator's standard closures never allocate.

#ifndef RHYTHM_SRC_COMMON_INLINE_CALLABLE_H_
#define RHYTHM_SRC_COMMON_INLINE_CALLABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace rhythm {

class InlineFunction {
 public:
  // Sized to hold every closure the control plane schedules (the largest,
  // the fault injector's [this, event], is 40 bytes) with headroom; larger
  // targets still work via the counted heap fallback.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function.
    using Target = std::decay_t<F>;
    if constexpr (sizeof(Target) <= kInlineCapacity &&
                  alignof(Target) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Target(std::forward<F>(f));
      ops_ = &kInlineOps<Target>;
    } else {
      *BoxSlot() = new Target(std::forward<F>(f));
      ops_ = &kHeapOps<Target>;
      heap_allocations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
    }
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Process-wide count of oversized targets boxed on the heap. Zero across a
  // run proves the event path stayed allocation-free.
  static uint64_t heap_allocations() {
    return heap_allocations_.load(std::memory_order_relaxed);
  }
  static void ResetHeapAllocationCount() {
    heap_allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    // Move-constructs the target from `from` into `to`, destroying `from`.
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char* storage);
  };

  template <typename Target>
  static Target* InlineSlot(unsigned char* storage) {
    return std::launder(reinterpret_cast<Target*>(storage));
  }
  void** BoxSlot() { return reinterpret_cast<void**>(storage_); }

  template <typename Target>
  static constexpr Ops kInlineOps = {
      [](unsigned char* storage) { (*InlineSlot<Target>(storage))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Target(std::move(*InlineSlot<Target>(from)));
        InlineSlot<Target>(from)->~Target();
      },
      [](unsigned char* storage) { InlineSlot<Target>(storage)->~Target(); },
  };

  template <typename Target>
  static constexpr Ops kHeapOps = {
      [](unsigned char* storage) {
        (**std::launder(reinterpret_cast<Target**>(storage)))();
      },
      [](unsigned char* from, unsigned char* to) {
        *reinterpret_cast<void**>(to) = *std::launder(reinterpret_cast<void**>(from));
      },
      [](unsigned char* storage) {
        delete *std::launder(reinterpret_cast<Target**>(storage));
      },
  };

  inline static std::atomic<uint64_t> heap_allocations_{0};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_INLINE_CALLABLE_H_
