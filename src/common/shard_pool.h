// ShardPool: a fixed set of persistent worker threads driven in synchronized
// phases — the worker machinery behind both the parallel experiment runner
// (src/runner) and the partitioned cluster engine (src/sim/sharded_engine).
//
// A phase runs `fn(shard)` once per shard, concurrently, and RunPhase does
// not return until every shard finished — a full barrier. The calling thread
// participates as shard 0, so a pool of N shards spawns N-1 threads and a
// 1-shard pool spawns none (the serial path stays a plain function call,
// with no synchronization in the loop).
//
// Exception contract: if shards throw, the exception from the lowest shard
// index is rethrown after the barrier (mirroring the parallel runner's
// first-error propagation); the others are discarded. The pool stays usable
// for further phases afterwards.
//
// Threads persist across phases, so a caller advancing thousands of
// conservative time windows pays thread creation once, not per window.

#ifndef RHYTHM_SRC_COMMON_SHARD_POOL_H_
#define RHYTHM_SRC_COMMON_SHARD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rhythm {

class ShardPool {
 public:
  // Spawns `shards - 1` worker threads; shards < 1 is clamped to 1.
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  // Runs fn(shard) for every shard in [0, shards()) and waits for all of
  // them (barrier). `fn` must be safe to call concurrently for distinct
  // shard arguments. Not reentrant: RunPhase must not be called from inside
  // a phase, and only one thread may drive the pool.
  void RunPhase(const std::function<void(int shard)>& fn);

  int shards() const { return shards_; }

 private:
  void WorkerLoop(int shard);

  const int shards_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable phase_begin_;
  std::condition_variable phase_done_;
  const std::function<void(int)>* phase_fn_ = nullptr;  // valid during a phase.
  uint64_t phase_ = 0;       // generation counter; bumped to start a phase.
  int running_ = 0;          // workers still inside the current phase.
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  // per shard, cleared each phase.
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_SHARD_POOL_H_
