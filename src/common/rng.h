// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic draw in the system flows through an explicitly seeded Rng
// instance so that experiments are bit-reproducible. The generator is
// xoshiro256++ seeded via SplitMix64, which is fast, has a 256-bit state and
// passes BigCrush; we deliberately avoid std::mt19937 whose stream differs
// subtly across standard libraries.

#ifndef RHYTHM_SRC_COMMON_RNG_H_
#define RHYTHM_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace rhythm {

// SplitMix64: used to expand a single 64-bit seed into generator state, and
// to derive independent child seeds for sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256++ with convenience distributions used by the simulator.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  // Derives an independent child generator; used to give each machine /
  // component / generator its own stream so adding one consumer does not
  // perturb the draws seen by another.
  Rng Fork() { return Rng(NextU64()); }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  // Exponential with the given mean (mean = 1/rate).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log1p(-u);
  }

  // Standard normal via Box-Muller (single value; the twin is discarded to
  // keep the draw count per call deterministic).
  double Normal() {
    double u1 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 0x1.0p-53;
    }
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Lognormal parameterized by the mean of the *resulting* distribution and
  // the shape sigma (standard deviation of the underlying normal). Used for
  // service times: mean is the calibrated service time, sigma controls the
  // heaviness of the tail.
  double LognormalMean(double mean, double sigma) {
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * Normal());
  }

  // Bernoulli with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation for large ones).
  uint64_t Poisson(double mean) {
    if (mean <= 0.0) {
      return 0;
    }
    if (mean > 64.0) {
      const double v = Normal(mean, std::sqrt(mean));
      return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint64_t n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_RNG_H_
