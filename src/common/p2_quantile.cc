#include "src/common/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace rhythm {

P2Quantile::P2Quantile(double q) : q_(q) {
  RHYTHM_CHECK(q > 0.0 && q < 1.0);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

double P2Quantile::Parabolic(int i, int direction) const {
  const double d = static_cast<double>(direction);
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) * (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, int direction) const {
  return heights_[i] + direction * (heights_[i + direction] - heights_[i]) /
                           (positions_[i + direction] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
    }
    return;
  }

  // Find the cell containing x and update the extreme markers.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) {
      ++cell;
    }
  }

  for (int i = cell + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    if ((delta >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (delta <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int direction = delta >= 1.0 ? 1 : -1;
      double candidate = Parabolic(i, direction);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, direction);
      }
      positions_[i] += direction;
    }
  }
  ++count_;
}

double P2Quantile::Value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact nearest-rank over the few samples seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const size_t rank = static_cast<size_t>(q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace rhythm
