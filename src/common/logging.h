// Minimal leveled logging. Output goes to stderr so bench tables on stdout
// stay machine-parsable. Level is a process-wide setting; default WARNING
// keeps simulations quiet unless a caller opts in.

#ifndef RHYTHM_SRC_COMMON_LOGGING_H_
#define RHYTHM_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rhythm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink; prefer the RHYTHM_LOG macro below.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace rhythm

#define RHYTHM_LOG(level) ::rhythm::LogStream(::rhythm::LogLevel::level, __FILE__, __LINE__)

// Invariant check that survives NDEBUG: simulator state corruption must never
// be silently ignored in release benches.
#define RHYTHM_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::rhythm::LogMessage(::rhythm::LogLevel::kError, __FILE__, __LINE__,     \
                           "CHECK failed: " #cond);                            \
      ::std::abort();                                                          \
    }                                                                          \
  } while (0)

#endif  // RHYTHM_SRC_COMMON_LOGGING_H_
