#include "src/common/env.h"

#include <cstdlib>
#include <thread>

namespace rhythm {

bool EnvFlag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] == '1';
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

bool FastMode() { return EnvFlag("RHYTHM_FAST"); }

int DefaultJobCount() {
  const int jobs = EnvInt("RHYTHM_JOBS", 0);
  if (jobs > 0) {
    return jobs;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

int DefaultShardCount() {
  const int shards = EnvInt("RHYTHM_SHARDS", 0);
  return shards > 0 ? shards : DefaultJobCount();
}

}  // namespace rhythm
