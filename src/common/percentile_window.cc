#include "src/common/percentile_window.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

// ---------------------------------------------------------------------------
// ChunkPool

std::unique_ptr<ChunkPool::Chunk> ChunkPool::Take() {
  if (free_.empty()) {
    return nullptr;
  }
  std::unique_ptr<Chunk> chunk = std::move(free_.back());
  free_.pop_back();
  ++reuses_;
  return chunk;
}

void ChunkPool::Put(std::unique_ptr<Chunk> chunk) {
  chunk->clear();
  free_.push_back(std::move(chunk));
}

// ---------------------------------------------------------------------------
// SortedChunkIndex

SortedChunkIndex::~SortedChunkIndex() {
  if (pool_ == nullptr) {
    return;
  }
  for (std::unique_ptr<Chunk>& chunk : chunks_) {
    pool_->Put(std::move(chunk));
  }
  for (std::unique_ptr<Chunk>& chunk : free_chunks_) {
    pool_->Put(std::move(chunk));
  }
}

size_t SortedChunkIndex::FindChunk(double value) const {
  size_t lo = 0;
  size_t hi = chunks_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_[mid]->back() < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::unique_ptr<SortedChunkIndex::Chunk> SortedChunkIndex::TakeChunk() {
  if (!free_chunks_.empty()) {
    std::unique_ptr<Chunk> chunk = std::move(free_chunks_.back());
    free_chunks_.pop_back();
    return chunk;
  }
  if (pool_ != nullptr) {
    std::unique_ptr<Chunk> chunk = pool_->Take();
    if (chunk != nullptr) {
      chunk->reserve(kMaxChunk + 1);
      return chunk;
    }
  }
  auto chunk = std::make_unique<Chunk>();
  chunk->reserve(kMaxChunk + 1);
  return chunk;
}

void SortedChunkIndex::RetireChunk(std::unique_ptr<Chunk> chunk) {
  chunk->clear();
  free_chunks_.push_back(std::move(chunk));
}

void SortedChunkIndex::Insert(double value) {
  if (chunks_.empty()) {
    // Directly seed the first chunk: FindChunk reads chunk maxima and an
    // empty chunk has none (chunks_ never holds empties otherwise — Erase
    // retires them).
    chunks_.push_back(TakeChunk());
    chunks_.front()->push_back(value);
    ++size_;
    return;
  }
  size_t target = FindChunk(value);
  if (target == chunks_.size()) {
    target = chunks_.size() - 1;  // larger than every maximum: append to last.
  }
  Chunk& chunk = *chunks_[target];
  chunk.insert(std::upper_bound(chunk.begin(), chunk.end(), value), value);
  ++size_;
  if (chunk.size() > kMaxChunk) {
    SplitChunk(target);
  }
}

void SortedChunkIndex::SplitChunk(size_t index) {
  Chunk& chunk = *chunks_[index];
  std::unique_ptr<Chunk> upper = TakeChunk();
  const size_t half = chunk.size() / 2;
  upper->assign(chunk.begin() + static_cast<ptrdiff_t>(half), chunk.end());
  chunk.resize(half);
  chunks_.insert(chunks_.begin() + static_cast<ptrdiff_t>(index) + 1, std::move(upper));
}

void SortedChunkIndex::Erase(double value) {
  const size_t target = FindChunk(value);
  RHYTHM_CHECK(target < chunks_.size());
  Chunk& chunk = *chunks_[target];
  const auto it = std::lower_bound(chunk.begin(), chunk.end(), value);
  RHYTHM_CHECK(it != chunk.end() && *it == value);
  chunk.erase(it);
  --size_;
  if (chunk.empty()) {
    RetireChunk(std::move(chunks_[target]));
    chunks_.erase(chunks_.begin() + static_cast<ptrdiff_t>(target));
  } else if (chunk.size() < kMergeBelow) {
    MaybeMergeAround(target);
  }
}

void SortedChunkIndex::MaybeMergeAround(size_t index) {
  // Join with whichever neighbour keeps the pair under the merge target; the
  // hysteresis gap to kMaxChunk prevents split/merge thrash at the boundary.
  const auto merge_into_prev = [this](size_t i) {
    Chunk& prev = *chunks_[i - 1];
    Chunk& cur = *chunks_[i];
    prev.insert(prev.end(), cur.begin(), cur.end());
    RetireChunk(std::move(chunks_[i]));
    chunks_.erase(chunks_.begin() + static_cast<ptrdiff_t>(i));
  };
  if (index > 0 && chunks_[index - 1]->size() + chunks_[index]->size() <= kMergeTarget) {
    merge_into_prev(index);
  } else if (index + 1 < chunks_.size() &&
             chunks_[index]->size() + chunks_[index + 1]->size() <= kMergeTarget) {
    merge_into_prev(index + 1);
  }
}

double SortedChunkIndex::SelectKth(size_t k, uint64_t* chunks_scanned) const {
  RHYTHM_CHECK(k < size_);
  size_t skipped = 0;
  for (const std::unique_ptr<Chunk>& chunk : chunks_) {
    if (chunks_scanned != nullptr) {
      ++*chunks_scanned;
    }
    if (k < skipped + chunk->size()) {
      return (*chunk)[k - skipped];
    }
    skipped += chunk->size();
  }
  RHYTHM_CHECK(false);  // unreachable: k < size_.
  return 0.0;
}

void SortedChunkIndex::Clear() {
  for (std::unique_ptr<Chunk>& chunk : chunks_) {
    RetireChunk(std::move(chunk));
  }
  chunks_.clear();
  size_ = 0;
}

// ---------------------------------------------------------------------------
// PercentileWindow

void PercentileWindow::Add(double now, double latency) {
  samples_.push_back(Sample{now, latency});
  index_.Insert(latency);
  memo_valid_ = false;
}

void PercentileWindow::Expire(double now) {
  const double cutoff = now - window_;
  while (!samples_.empty() && samples_.front().time < cutoff) {
    index_.Erase(samples_.front().latency);
    samples_.pop_front();
    memo_valid_ = false;
  }
}

double PercentileWindow::Quantile(double now, double q) {
  Expire(now);
  if (samples_.empty()) {
    return 0.0;
  }
  ++query_stats_.queries;
  if (memo_valid_ && memo_now_ == now && memo_q_ == q) {
    ++query_stats_.memo_hits;
    return memo_value_;
  }
  // Same arithmetic as PercentileInplace (src/common/stats.cc) on the same
  // order statistics — the answers are bit-identical to the sort-based path.
  const double clamped = std::clamp(q, 0.0, 1.0);
  const size_t n = index_.size();
  const double rank = clamped * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  query_stats_.last_chunks_scanned = 0;
  const double vlo = index_.SelectKth(lo, &query_stats_.last_chunks_scanned);
  double value = vlo;
  if (frac != 0.0 && lo + 1 < n) {
    const double vhi = index_.SelectKth(lo + 1, &query_stats_.last_chunks_scanned);
    value = vlo + frac * (vhi - vlo);
  }
  memo_valid_ = true;
  memo_now_ = now;
  memo_q_ = q;
  memo_value_ = value;
  return value;
}

}  // namespace rhythm
