#include "src/common/percentile_window.h"

#include <algorithm>
#include <vector>

#include "src/common/stats.h"

namespace rhythm {

void PercentileWindow::Add(double now, double latency) {
  samples_.push_back(Sample{now, latency});
}

void PercentileWindow::Expire(double now) {
  const double cutoff = now - window_;
  while (!samples_.empty() && samples_.front().time < cutoff) {
    samples_.pop_front();
  }
}

double PercentileWindow::Quantile(double now, double q) {
  Expire(now);
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const Sample& s : samples_) {
    values.push_back(s.latency);
  }
  return PercentileInplace(values, q);
}

}  // namespace rhythm
