// Process-environment policy knobs, in one place so higher layers (cluster,
// runner, benches) agree on their meaning:
//
//   RHYTHM_FAST=1    fast (CI-scale) mode — benches shrink their sweeps.
//   RHYTHM_JOBS=N    worker threads for the parallel experiment runner;
//                    unset or 0 means hardware_concurrency.
//   RHYTHM_SHARDS=N  machine shards for the partitioned cluster engine
//                    (intra-trial parallelism); unset or 0 falls back to
//                    RHYTHM_JOBS, then hardware_concurrency. Results are
//                    bit-identical at any value.
//
// RHYTHM_THRESHOLD_CACHE (a directory for the one-time characterization
// cache) is consumed by src/cluster/app_thresholds directly.

#ifndef RHYTHM_SRC_COMMON_ENV_H_
#define RHYTHM_SRC_COMMON_ENV_H_

namespace rhythm {

// True when the named variable is set to a value starting with '1'.
bool EnvFlag(const char* name);

// Integer value of the named variable; `fallback` when unset or unparsable.
int EnvInt(const char* name, int fallback);

// True when the environment requests a fast (CI-scale) run; benches shrink
// their sweeps accordingly. Controlled by RHYTHM_FAST=1.
bool FastMode();

// Worker-thread count for the parallel experiment runner: RHYTHM_JOBS when
// set to a positive value, otherwise std::thread::hardware_concurrency()
// (floored at 1 when the hardware cannot be queried).
int DefaultJobCount();

// Shard count for the partitioned cluster engine: RHYTHM_SHARDS when set to
// a positive value, otherwise DefaultJobCount(). Shard count never changes
// results, only how machines are spread over worker threads.
int DefaultShardCount();

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_ENV_H_
