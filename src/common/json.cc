#include "src/common/json.h"

#include <cstdio>

namespace rhythm {

std::string JsonNum(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rhythm
