// Statistics primitives used by the contribution analyzer and the metrics
// pipeline: running moments, coefficient of variation, Pearson correlation
// and exact percentiles.

#ifndef RHYTHM_SRC_COMMON_STATS_H_
#define RHYTHM_SRC_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace rhythm {

// Welford's online algorithm for mean and variance. Numerically stable and
// single-pass, so it can absorb millions of per-request samples.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator).
  double variance() const;
  double stddev() const;
  // Coefficient of variation: stddev / mean (0 when mean is 0).
  double cov() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Pearson correlation coefficient between two equal-length series
// (paper Eq. 2). Returns 0 when either series is constant.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Mean of a series (0 for empty input).
double Mean(std::span<const double> xs);

// Sample standard deviation of a series.
double Stddev(std::span<const double> xs);

// Normalized coefficient of variation as defined by paper Eq. 3:
//   V = (1 / mean) * sqrt( (1 / (m(m-1))) * sum (x_j - mean)^2 )
// i.e. the coefficient of variation of the *mean estimator* across the m
// load levels.
double NormalizedCovEq3(std::span<const double> xs);

// Exact percentile of a sample (q in [0, 1], nearest-rank with linear
// interpolation). Sorts a copy; suitable for per-window computation.
double Percentile(std::span<const double> xs, double q);

// Exact percentile of a sample that the caller allows to be reordered
// (uses nth_element; no allocation).
double PercentileInplace(std::vector<double>& xs, double q);

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_STATS_H_
