// P² (piecewise-parabolic) streaming quantile estimator (Jain & Chlamtac,
// CACM 1985): estimates a single quantile in O(1) memory without storing
// samples. The exact sliding window is right for controller windows of a few
// thousand samples; this sketch serves long-horizon monitoring (e.g. the
// worst-per-day 99th of a production service) where retaining samples is
// impractical.

#ifndef RHYTHM_SRC_COMMON_P2_QUANTILE_H_
#define RHYTHM_SRC_COMMON_P2_QUANTILE_H_

#include <cstddef>

namespace rhythm {

class P2Quantile {
 public:
  // q in (0, 1): the quantile to track (e.g. 0.99).
  explicit P2Quantile(double q);

  void Add(double x);

  // Current estimate. Before five samples have arrived, falls back to the
  // exact value over the seen samples.
  double Value() const;

  size_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double Parabolic(int i, int direction) const;
  double Linear(int i, int direction) const;

  double q_;
  size_t count_ = 0;
  // Marker heights, positions and desired positions (5-marker scheme).
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_P2_QUANTILE_H_
