#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace rhythm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cov() const {
  const double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / m;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Stddev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - m) * (x - m);
  }
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return 0.0;
  }
  const double mx = Mean(xs.subspan(0, n));
  const double my = Mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double NormalizedCovEq3(std::span<const double> xs) {
  const size_t m = xs.size();
  if (m < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  if (mean == 0.0) {
    return 0.0;
  }
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  const double md = static_cast<double>(m);
  return std::sqrt(ss / (md * (md - 1.0))) / mean;
}

double Percentile(std::span<const double> xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  std::vector<double> copy(xs.begin(), xs.end());
  return PercentileInplace(copy, q);
}

double PercentileInplace(std::vector<double>& xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(xs.begin(), xs.begin() + static_cast<ptrdiff_t>(lo), xs.end());
  const double vlo = xs[lo];
  if (frac == 0.0 || lo + 1 >= xs.size()) {
    return vlo;
  }
  std::nth_element(xs.begin() + static_cast<ptrdiff_t>(lo) + 1,
                   xs.begin() + static_cast<ptrdiff_t>(lo) + 1, xs.end());
  const double vhi = *std::min_element(xs.begin() + static_cast<ptrdiff_t>(lo) + 1, xs.end());
  return vlo + frac * (vhi - vlo);
}

}  // namespace rhythm
