// Time-stamped value series used by the metrics pipeline and the timeline
// reproduction (Figure 17).

#ifndef RHYTHM_SRC_COMMON_TIME_SERIES_H_
#define RHYTHM_SRC_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <vector>

namespace rhythm {

class TimeSeries {
 public:
  void Add(double time, double value) { points_.push_back(Point{time, value}); }

  struct Point {
    double time;
    double value;
  };

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Average of values with time in [t0, t1).
  double AverageIn(double t0, double t1) const;

  // Maximum value in [t0, t1); 0 if no points fall inside.
  double MaxIn(double t0, double t1) const;

  // Average of all values.
  double Average() const;

  // Last value at or before `t` (0 if none).
  double ValueAt(double t) const;

 private:
  std::vector<Point> points_;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_COMMON_TIME_SERIES_H_
