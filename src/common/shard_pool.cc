#include "src/common/shard_pool.h"

#include <algorithm>

namespace rhythm {

ShardPool::ShardPool(int shards)
    : shards_(std::max(shards, 1)), errors_(static_cast<size_t>(shards_)) {
  threads_.reserve(static_cast<size_t>(shards_ - 1));
  for (int shard = 1; shard < shards_; ++shard) {
    threads_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  phase_begin_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ShardPool::WorkerLoop(int shard) {
  uint64_t seen_phase = 0;
  for (;;) {
    const std::function<void(int)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      phase_begin_.wait(lock,
                        [&] { return shutdown_ || phase_ != seen_phase; });
      if (shutdown_) {
        return;
      }
      seen_phase = phase_;
      fn = phase_fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(shard);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      errors_[static_cast<size_t>(shard)] = error;
      if (--running_ == 0) {
        phase_done_.notify_one();
      }
    }
  }
}

void ShardPool::RunPhase(const std::function<void(int shard)>& fn) {
  if (shards_ == 1) {
    fn(0);  // serial pool: no threads, no locking.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_fn_ = &fn;
    running_ = shards_ - 1;
    ++phase_;
  }
  phase_begin_.notify_all();

  std::exception_ptr own_error;
  try {
    fn(0);  // the caller works shard 0.
  } catch (...) {
    own_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  phase_done_.wait(lock, [&] { return running_ == 0; });
  phase_fn_ = nullptr;
  errors_[0] = own_error;
  for (std::exception_ptr& error : errors_) {
    if (error != nullptr) {
      std::exception_ptr first = error;
      for (std::exception_ptr& e : errors_) {
        e = nullptr;
      }
      std::rethrow_exception(first);
    }
  }
}

}  // namespace rhythm
