#include "src/common/time_series.h"

#include <algorithm>

namespace rhythm {

double TimeSeries::AverageIn(double t0, double t1) const {
  double sum = 0.0;
  size_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= t0 && p.time < t1) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::MaxIn(double t0, double t1) const {
  double best = 0.0;
  bool found = false;
  for (const Point& p : points_) {
    if (p.time >= t0 && p.time < t1) {
      best = found ? std::max(best, p.value) : p.value;
      found = true;
    }
  }
  return best;
}

double TimeSeries::Average() const {
  if (points_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Point& p : points_) {
    sum += p.value;
  }
  return sum / static_cast<double>(points_.size());
}

double TimeSeries::ValueAt(double t) const {
  double value = 0.0;
  for (const Point& p : points_) {
    if (p.time > t) {
      break;
    }
    value = p.value;
  }
  return value;
}

}  // namespace rhythm
