#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace rhythm {

void Simulator::Schedule(double delay, Action action) {
  ScheduleAt(now_ + std::max(delay, 0.0), std::move(action));
}

void Simulator::ScheduleAt(double time, Action action) {
  queue_.push(Event{std::max(time, now_), next_seq_++, std::move(action)});
}

uint64_t Simulator::SchedulePeriodic(double start, double period, Action action) {
  RHYTHM_CHECK(period > 0.0);
  const uint64_t id = next_periodic_id_++;
  periodics_.emplace(id, PeriodicTask{std::max(start, now_), period, std::move(action)});
  ArmPeriodic(id, std::max(start, now_));
  return id;
}

void Simulator::ArmPeriodic(uint64_t id, double time) {
  ScheduleAt(time, [this, id] { FirePeriodic(id); });
}

void Simulator::FirePeriodic(uint64_t id) {
  auto it = periodics_.find(id);
  if (it == periodics_.end()) {
    return;
  }
  // A periodic task has exactly one event in flight, so this firing is a
  // cancelled task's last: drop the table entry with it.
  if (it->second.cancelled) {
    periodics_.erase(it);
    return;
  }
  it->second.action();
  // The action may have cancelled tasks or scheduled new periodics (which
  // can rehash the table) — re-find before re-arming in place.
  it = periodics_.find(id);
  if (it == periodics_.end()) {
    return;
  }
  it->second.next_time += it->second.period;
  ArmPeriodic(id, it->second.next_time);
}

void Simulator::CancelPeriodic(uint64_t id) {
  // Ids never handed out — or whose last firing already drained — have no
  // table entry; marking nothing keeps bogus cancels from suppressing a
  // future task that reuses the id after Reset.
  const auto it = periodics_.find(id);
  if (it != periodics_.end()) {
    it->second.cancelled = true;
  }
}

size_t Simulator::cancelled_pending_count() const {
  size_t count = 0;
  for (const auto& [id, task] : periodics_) {
    if (task.cancelled) {
      ++count;
    }
  }
  return count;
}

size_t Simulator::periodic_task_count() const {
  return periodics_.size() - cancelled_pending_count();
}

void Simulator::RunUntil(double end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    Step();
  }
  now_ = std::max(now_, end_time);
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Moving out of the priority queue requires a const_cast because top() is
  // const; the pop immediately afterwards makes this safe.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = std::max(now_, event.time);
  ++executed_;
  event.action();
  return true;
}

void Simulator::Reset() {
  while (!queue_.empty()) {
    queue_.pop();
  }
  now_ = 0.0;
  next_seq_ = 0;
  next_periodic_id_ = 1;
  executed_ = 0;
  // Dropping the queue above discarded every pending firing, so no entry can
  // drain naturally — clear the table with it. Periodic ids restart at 1; a
  // stale cancellation must not suppress a reused id.
  periodics_.clear();
}

}  // namespace rhythm
