#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace rhythm {

void Simulator::Schedule(double delay, Action action) {
  ScheduleAt(now_ + std::max(delay, 0.0), std::move(action));
}

void Simulator::ScheduleAt(double time, Action action) {
  queue_.push(Event{std::max(time, now_), next_seq_++, std::move(action)});
}

uint64_t Simulator::SchedulePeriodic(double start, double period, Action action) {
  RHYTHM_CHECK(period > 0.0);
  const uint64_t id = next_periodic_id_++;
  ArmPeriodic(id, std::max(start, now_), period, std::move(action));
  return id;
}

void Simulator::ArmPeriodic(uint64_t id, double time, double period, Action action) {
  ScheduleAt(time, [this, id, time, period, action = std::move(action)]() {
    // A periodic task has exactly one event in flight, so this firing is the
    // cancelled task's last: drop the bookkeeping entry with it.
    if (cancelled_periodics_.erase(id) > 0) {
      return;
    }
    action();
    ArmPeriodic(id, time + period, period, action);
  });
}

void Simulator::CancelPeriodic(uint64_t id) {
  // Ignore ids never handed out: a bogus id has no pending firing to drain
  // the entry, and would pin it (and possibly suppress a future task with
  // the same id after Reset) forever.
  if (id == 0 || id >= next_periodic_id_) {
    return;
  }
  cancelled_periodics_.insert(id);
}

void Simulator::RunUntil(double end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    Step();
  }
  now_ = std::max(now_, end_time);
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Moving out of the priority queue requires a const_cast because top() is
  // const; the pop immediately afterwards makes this safe.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = std::max(now_, event.time);
  ++executed_;
  event.action();
  return true;
}

void Simulator::Reset() {
  while (!queue_.empty()) {
    queue_.pop();
  }
  now_ = 0.0;
  next_seq_ = 0;
  next_periodic_id_ = 1;
  executed_ = 0;
  // Dropping the queue above discarded every pending firing, so no entry can
  // drain naturally — clear them with it. Periodic ids restart at 1; a stale
  // cancellation must not suppress a reused id.
  cancelled_periodics_.clear();
}

}  // namespace rhythm
