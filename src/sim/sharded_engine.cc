#include "src/sim/sharded_engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace rhythm {

std::vector<std::vector<size_t>> PartitionUnits(
    const std::vector<ShardUnit>& units, int shards) {
  RHYTHM_CHECK(shards >= 1);
  std::vector<std::vector<size_t>> assignment(static_cast<size_t>(shards));
  std::vector<double> load(static_cast<size_t>(shards), 0.0);
  for (size_t i = 0; i < units.size(); ++i) {
    // Greedy into the lightest shard; scanning in index order makes the
    // lowest index win ties, so the partition is a pure function of the
    // weight sequence.
    size_t lightest = 0;
    for (size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) {
        lightest = s;
      }
    }
    assignment[lightest].push_back(i);
    load[lightest] += std::max(units[i].weight, 0.0);
  }
  return assignment;
}

ShardedEngine::ShardedEngine(ShardPool* pool) : pool_(pool) {
  RHYTHM_CHECK(pool_ != nullptr);
}

void ShardedEngine::Advance(
    const std::vector<ShardUnit>& units, double from, double to,
    double window_s, const std::function<void(double window_end)>& on_window) {
  if (units.empty() || to <= from) {
    return;
  }
  const std::vector<std::vector<size_t>> assignment =
      PartitionUnits(units, pool_->shards());

  double now = from;
  while (now < to) {
    const double window_end =
        window_s > 0.0 ? std::min(now + window_s, to) : to;
    pool_->RunPhase([&](int shard) {
      for (size_t index : assignment[static_cast<size_t>(shard)]) {
        units[index].advance(window_end);
      }
    });
    ++windows_run_;
    ++barriers_;
    if (on_window) {
      on_window(window_end);
    }
    now = window_end;
  }
}

}  // namespace rhythm
