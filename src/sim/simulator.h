// Discrete-event simulation engine.
//
// The simulator owns a virtual clock and an event queue ordered by
// (time, sequence). Sequence numbers break ties deterministically in FIFO
// order, which keeps runs bit-reproducible regardless of how many events
// share a timestamp.
//
// Events carry their closures in a small-buffer-optimized InlineFunction, so
// scheduling a typical arrival-chain or tick closure performs no heap
// allocation. Periodic tasks live in a side table and the in-flight firing
// only references the task id: re-arming never copies the captured action.

#ifndef RHYTHM_SRC_SIM_SIMULATOR_H_
#define RHYTHM_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/inline_callable.h"

namespace rhythm {

class Simulator {
 public:
  using Action = InlineFunction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time in seconds.
  double Now() const { return now_; }

  // Schedules `action` to run `delay` seconds from now. Negative delays are
  // clamped to zero (run "immediately", after already-queued events at Now).
  void Schedule(double delay, Action action);

  // Schedules `action` at an absolute time; times in the past are clamped to
  // Now.
  void ScheduleAt(double time, Action action);

  // Schedules `action` every `period` seconds starting at `start`. The task
  // keeps re-arming itself until the simulation stops or `Cancel` is called
  // on the returned id.
  uint64_t SchedulePeriodic(double start, double period, Action action);

  // Cancels a periodic task. Pending one-shot firings of the task are
  // suppressed. The task's table entry is compacted away when its last
  // pending firing drains (each periodic has exactly one event in flight),
  // so cancellations never accumulate across a long run.
  void CancelPeriodic(uint64_t id);

  // Runs events until the queue is empty or the clock passes `end_time`.
  // Events scheduled exactly at `end_time` are executed.
  void RunUntil(double end_time);

  // Runs a single event; returns false if the queue is empty.
  bool Step();

  // Drops all pending events and resets the clock.
  void Reset();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }
  // Cancelled periodic ids whose final pending firing has not drained yet
  // (exposed so tests can assert the bookkeeping compacts).
  size_t cancelled_pending_count() const;
  // Live (armed, not cancelled) periodic tasks.
  size_t periodic_task_count() const;

 private:
  struct Event {
    double time;
    uint64_t seq;
    Action action;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // One self-re-arming task. The action is stored here exactly once; the
  // queued firing captures only [this, id].
  struct PeriodicTask {
    double next_time;
    double period;
    Action action;
    bool cancelled = false;
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_periodic_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::unordered_map<uint64_t, PeriodicTask> periodics_;

  void ArmPeriodic(uint64_t id, double time);
  void FirePeriodic(uint64_t id);
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SIM_SIMULATOR_H_
