// Partitioned cluster event engine: conservative time-window synchronization
// over independently advancing simulation islands.
//
// The paper's setting is a datacenter — tens of thousands of machines whose
// machine-local controllers act independently between controller ticks. One
// global event queue would serialize all of them; instead, each island (a
// machine group: one Deployment with its own Simulator) is assigned to a
// shard, shards advance their islands' local clocks window by window on
// worker threads, and a full barrier at every window boundary (the
// controller-tick / top-controller boundary) keeps the cluster's view
// consistent: no island is ever more than one window ahead of another, and
// cluster-level hooks observe all islands at the same simulated instant.
//
// Determinism contract: islands never share mutable state, every island owns
// its RNG stream (seeded by logical slot, not physical shard — see
// DeriveShardSeed in src/place/cluster_engine.h), and barrier hooks merge
// island state in slot order on the coordinating thread. Therefore results
// are bit-identical at any shard count, including 1: sharding changes only
// which thread advances an island, never what the island computes. Windowed
// advancement itself is exact, not approximate — Simulator::RunUntil clamps
// the clock to the window end, so advancing to t in k windows executes
// precisely the event sequence of advancing to t in one call.

#ifndef RHYTHM_SRC_SIM_SHARDED_ENGINE_H_
#define RHYTHM_SRC_SIM_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/shard_pool.h"

namespace rhythm {

// One simulation island: an opaque advance callback plus the weight the
// partitioner balances on (machine count for cluster groups). `slot` is the
// island's stable logical identity — partition assignment derives from slot
// order, and barrier merges run in slot order.
struct ShardUnit {
  int slot = 0;
  double weight = 1.0;
  // Advances the island's local clock to `end_time` (absolute, local
  // timebase shared by every unit of one Advance call).
  std::function<void(double end_time)> advance;
};

// Deterministic weight-balanced partition: units (in slot order) are dealt
// greedily to the currently lightest shard, ties broken by lowest shard
// index. Returns unit indices per shard, ascending within each shard. Pure
// function of (weights, shards) — the same units always land the same way.
std::vector<std::vector<size_t>> PartitionUnits(
    const std::vector<ShardUnit>& units, int shards);

class ShardedEngine {
 public:
  // The engine drives `pool` (not owned; one phase per window). The pool's
  // shard count is the partition width.
  explicit ShardedEngine(ShardPool* pool);

  // Advances every unit from `from` to `to` in windows of `window_s`
  // seconds (the final window is clamped to end exactly at `to`). After
  // each window's barrier, `on_window(window_end)` — when non-empty — runs
  // on the calling thread while all units rest at `window_end`; this is the
  // seam the cluster-level tick hooks (src/control/cluster_tick.h) plug
  // into. A non-positive `window_s` collapses to a single window [from, to].
  //
  // Exceptions thrown by unit callbacks propagate after the window's
  // barrier, lowest shard first (ShardPool's contract); the engine itself
  // holds no state that could be corrupted by an abandoned advance.
  void Advance(const std::vector<ShardUnit>& units, double from, double to,
               double window_s,
               const std::function<void(double window_end)>& on_window = {});

  // Windows executed by Advance calls so far (for tests and benches).
  uint64_t windows_run() const { return windows_run_; }
  // Barrier phases executed (== windows_run, kept separate in case the
  // engine ever adds half-window phases).
  uint64_t barriers() const { return barriers_; }

 private:
  ShardPool* pool_;
  uint64_t windows_run_ = 0;
  uint64_t barriers_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SIM_SHARDED_ENGINE_H_
