// SimArena: the reusable per-slot simulation state of the partitioned
// cluster engine. A slot (one machine group's home in the shard layout)
// runs one trial per epoch; instead of reallocating the event queue and the
// tail window's chunk buffers every epoch, the slot keeps this arena alive
// and each new trial resets and reuses it:
//
//   * `sim` — the discrete-event engine. Reset() drops events and restarts
//     the clock/sequence counters exactly as a fresh Simulator would, but
//     the priority queue's backing vector keeps its capacity.
//   * `chunk_pool` — buffer free-list for the tail-latency window's
//     SortedChunkIndex (src/common/percentile_window.h); chunks retired by
//     epoch e's window feed epoch e+1's.
//
// Reuse never changes results: Reset() restores the simulator's observable
// state bit-exactly, and pooled chunks only recycle capacity. The arena is
// single-threaded — it belongs to one shard slot and must outlive any
// deployment wired to it.

#ifndef RHYTHM_SRC_SIM_SIM_ARENA_H_
#define RHYTHM_SRC_SIM_SIM_ARENA_H_

#include "src/common/percentile_window.h"
#include "src/sim/simulator.h"

namespace rhythm {

struct SimArena {
  Simulator sim;
  ChunkPool chunk_pool;

  // Readies the arena for the next trial. Pooled chunks stay pooled.
  void Reset() { sim.Reset(); }
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SIM_SIM_ARENA_H_
