// Cluster-wide queue of waiting BE jobs (paper §4, "Interact with
// scheduler": the scheduler checks the waiting queue of BE jobs and
// dispatches them to physical machines with sufficient resources).
//
// The §5 evaluation assumes an effectively infinite backlog (BE jobs always
// available); the scheduler example exercises a finite-rate arrival stream
// where queueing delay and machine acceptance interact.

#ifndef RHYTHM_SRC_SCHEDULER_BE_BACKLOG_H_
#define RHYTHM_SRC_SCHEDULER_BE_BACKLOG_H_

#include <cstdint>

namespace rhythm {

class BeBacklog {
 public:
  // Infinite mode (default): TryTakeJob always succeeds — the evaluation's
  // "BE jobs are always waiting" assumption.
  explicit BeBacklog(bool infinite = true) : infinite_(infinite) {}

  void set_infinite(bool infinite) { infinite_ = infinite; }
  bool infinite() const { return infinite_; }

  // Enqueues `n` jobs (finite mode).
  void SubmitJobs(uint64_t n) { submitted_ += n; }

  // A BE instance pulls its next job. Returns false when the queue is empty
  // (the instance idles until work arrives).
  bool TryTakeJob() {
    if (infinite_) {
      ++taken_;
      return true;
    }
    if (taken_ < submitted_) {
      ++taken_;
      return true;
    }
    return false;
  }

  uint64_t pending() const { return infinite_ ? UINT64_MAX : submitted_ - taken_; }
  uint64_t submitted() const { return submitted_; }
  uint64_t taken() const { return taken_; }

 private:
  bool infinite_;
  uint64_t submitted_ = 0;
  uint64_t taken_ = 0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SCHEDULER_BE_BACKLOG_H_
