// Cluster BE scheduler (paper §4).
//
// Each machine's top controller reports whether it currently accepts BE
// jobs (its last decision was AllowBEGrowth). The scheduler walks the
// waiting queue and dispatches new BE instances to accepting machines with
// free resources; the machines' subcontrollers then grow or shrink the
// instances' allocations locally.

#ifndef RHYTHM_SRC_SCHEDULER_BE_SCHEDULER_H_
#define RHYTHM_SRC_SCHEDULER_BE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/bemodel/be_runtime.h"
#include "src/control/machine_agent.h"
#include "src/obs/obs_event.h"
#include "src/scheduler/be_backlog.h"

namespace rhythm {

class BeScheduler {
 public:
  struct MachineSlot {
    Machine* machine = nullptr;
    BeRuntime* be = nullptr;
    const MachineAgent* agent = nullptr;  // may be null (uncontrolled).
    int pod = -1;  // machine index, stamped into dispatch events.
  };

  struct Stats {
    uint64_t dispatched = 0;  // instances launched by the scheduler.
    uint64_t rejected_full = 0;    // machine accepted but had no resources.
    uint64_t skipped_declined = 0;  // machine's controller declined BEs.
  };

  explicit BeScheduler(BeBacklog* backlog) : backlog_(backlog) {}

  void AddMachine(const MachineSlot& slot) { machines_.push_back(slot); }

  // One scheduling round: for each accepting machine, dispatch one queued
  // job as a fresh instance (resource growth stays with the subcontrollers).
  // Returns the number of instances launched this round.
  int DispatchRound();

  const Stats& stats() const { return stats_; }

  // A machine accepts BEs when its controller's last action allows growth
  // (or when it runs uncontrolled).
  static bool MachineAccepts(const MachineSlot& slot);

  // Observability: each admission emits a kBeLifecycle/kDispatch event,
  // stamped with the time last passed to set_obs_now (the deployment sets it
  // before every dispatch round).
  void AttachObs(ObsSink* sink) { obs_ = sink; }
  void set_obs_now(double now_s) { obs_now_ = now_s; }

 private:
  BeBacklog* backlog_;
  std::vector<MachineSlot> machines_;
  Stats stats_;
  size_t next_machine_ = 0;  // round-robin fairness across machines.
  ObsSink* obs_ = nullptr;
  double obs_now_ = 0.0;
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_SCHEDULER_BE_SCHEDULER_H_
