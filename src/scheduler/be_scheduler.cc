#include "src/scheduler/be_scheduler.h"

namespace rhythm {

bool BeScheduler::MachineAccepts(const MachineSlot& slot) {
  if (slot.agent == nullptr) {
    return true;
  }
  // A controller that has not run yet has expressed no decision: decline
  // conservatively until its first tick.
  return slot.agent->stats().ticks > 0 &&
         slot.agent->stats().last_action == BeAction::kAllowGrowth;
}

int BeScheduler::DispatchRound() {
  if (machines_.empty()) {
    return 0;
  }
  int launched = 0;
  // One dispatch opportunity per machine per round, round-robin so the same
  // machine does not soak the queue head every time.
  for (size_t step = 0; step < machines_.size(); ++step) {
    const size_t index = (next_machine_ + step) % machines_.size();
    MachineSlot& slot = machines_[index];
    if (!MachineAccepts(slot)) {
      ++stats_.skipped_declined;
      continue;
    }
    if (backlog_->pending() == 0) {
      break;
    }
    // AdmitInstance pulls the instance's first job from the backlog itself.
    if (slot.be->AdmitInstance()) {
      ++stats_.dispatched;
      ++launched;
      if (obs_ != nullptr) {
        ObsEvent event;
        event.time_s = obs_now_;
        event.machine = slot.pod;
        event.kind = ObsKind::kBeLifecycle;
        event.code = static_cast<uint8_t>(ObsBeOp::kDispatch);
        event.a = 1.0;
        event.b = static_cast<double>(backlog_->pending());
        obs_->Record(event);
      }
    } else {
      ++stats_.rejected_full;
    }
  }
  next_machine_ = (next_machine_ + 1) % machines_.size();
  return launched;
}

}  // namespace rhythm
