// Interference model: how BE pressure on shared resources dilates an LC
// component's service time.
//
// For each shared resource r the machine state yields a contention level in
// [0, ~1]: the fraction of that resource effectively taken from the LC side
// by BE jobs after the isolation mechanisms have done their work (CAT ways
// granted away, memory-bandwidth oversubscription, NIC headroom squeeze,
// residual same-socket scheduler pressure). A component with sensitivity
// vector s then runs
//
//   inflation = (1 + sum_r s[r] * contention[r]) * freq_penalty
//
// Slower service raises the component's utilization, so queueing delay — and
// hence tail latency — grows nonlinearly with both BE pressure and LC load,
// reproducing the load-dependent blow-ups of the paper's Figure 2.

#ifndef RHYTHM_SRC_INTERFERENCE_INTERFERENCE_MODEL_H_
#define RHYTHM_SRC_INTERFERENCE_INTERFERENCE_MODEL_H_

#include "src/bemodel/be_job_spec.h"
#include "src/bemodel/be_runtime.h"
#include "src/resources/machine.h"

namespace rhythm {

class InterferenceModel {
 public:
  // Contention levels currently present on `machine`, given the BE runtime
  // co-located there (`be` may be null: no BE jobs).
  static ResourceVector Contention(const Machine& machine, const BeRuntime* be);

  // Service-time inflation factor (>= 1) for a component with sensitivity
  // `sensitivity` hosted on `machine`.
  static double Inflation(const ResourceVector& sensitivity, const Machine& machine,
                          const BeRuntime* be);

  // Inflation from precomputed contention (used by tests and sweeps).
  static double InflationFromContention(const ResourceVector& sensitivity,
                                        const ResourceVector& contention,
                                        double lc_freq_factor);
};

}  // namespace rhythm

#endif  // RHYTHM_SRC_INTERFERENCE_INTERFERENCE_MODEL_H_
