#include "src/interference/interference_model.h"

#include <algorithm>
#include <cmath>

namespace rhythm {

ResourceVector InterferenceModel::Contention(const Machine& machine, const BeRuntime* be) {
  ResourceVector contention;
  if (be == nullptr || be->running_count() == 0) {
    return contention;
  }
  const ResourceVector pressure = be->ExertedPressure();

  // Core contention: cpuset keeps core sets disjoint, so what remains is
  // same-socket scheduler, SMT sibling and uncore pressure, proportional to
  // how much of the socket the BEs occupy.
  const double be_core_share =
      machine.be_busy_cores() / std::max(1, machine.spec().total_cores);
  contention.cpu = pressure.cpu * be_core_share;

  // LLC contention: CAT confines BEs to their ways; the LC loses exactly the
  // ways granted away, scaled by how aggressively the BE actually thrashes
  // its partition.
  const double be_way_share =
      static_cast<double>(machine.cat().be_ways()) / machine.cat().total_ways();
  contention.llc = pressure.llc * be_way_share;

  // DRAM bandwidth: no hardware partitioning; contention ramps as combined
  // demand approaches the channel peak (quadratic onset: queueing in the
  // memory controller builds gradually) and grows steeply past saturation.
  const double demand_ratio =
      (machine.membw().lc_demand_gbs() + machine.membw().be_demand_gbs()) /
      machine.membw().capacity_gbs();
  const double approach = std::max(0.0, (demand_ratio - 0.5) / 0.5);
  contention.dram = pressure.dram * std::min(1.5, approach * approach +
                                                      2.0 * machine.membw().saturation());

  // Network: qdisc headroom squeeze.
  contention.net = pressure.net * machine.network().lc_contention();

  return contention;
}

double InterferenceModel::InflationFromContention(const ResourceVector& sensitivity,
                                                  const ResourceVector& contention,
                                                  double lc_freq_factor) {
  const double additive = sensitivity.cpu * contention.cpu + sensitivity.llc * contention.llc +
                          sensitivity.dram * contention.dram + sensitivity.net * contention.net;
  // DVFS: running the LC at reduced frequency dilates compute-bound work.
  const double freq_deficit = lc_freq_factor > 0.0 ? (1.0 / lc_freq_factor - 1.0) : 0.0;
  const double freq_penalty = 1.0 + sensitivity.freq * freq_deficit;
  return (1.0 + additive) * freq_penalty;
}

double InterferenceModel::Inflation(const ResourceVector& sensitivity, const Machine& machine,
                                    const BeRuntime* be) {
  return InflationFromContention(sensitivity, Contention(machine, be),
                                 machine.power().LcSpeedFactor());
}

}  // namespace rhythm
