// Interference + controller smoke checks.
#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;

static double SoloP99(LcAppKind kind, double load) {
  DeploymentConfig c; c.app_kind=kind; c.enable_be=false; c.tail_window_s=60; c.seed=5;
  Deployment d(c); ConstantLoad p(load); d.Start(&p); d.RunFor(70);
  return d.service().TailLatencyMs();
}

int main() {
  // Fig2-style: co-locate each BE with ONE pod of E-commerce (uncontrolled).
  for (auto app : {LcAppKind::kEcommerce, LcAppKind::kRedis}) {
    const AppSpec spec = MakeApp(app);
    std::printf("== %s interference (p99 increase %% vs solo)\n", spec.name.c_str());
    for (auto be : {BeJobKind::kStreamLlcBig, BeJobKind::kStreamDramBig, BeJobKind::kCpuStress, BeJobKind::kIperf}) {
      std::printf("  %-18s", GetBeJobSpec(be).name.c_str());
      for (int pod = 0; pod < spec.pod_count(); ++pod) {
        double load = 0.6;
        double solo = SoloP99(app, load);
        DeploymentConfig c; c.app_kind=app; c.be_kind=be; c.enable_be=true;
        c.controller=ControllerKind::kNone; c.tail_window_s=60; c.seed=5;
        Deployment d(c); ConstantLoad p(load); d.Start(&p);
        d.LaunchBeAtPod(pod, 4);
        d.RunFor(70);
        double inter = d.service().TailLatencyMs();
        std::printf("  %s=+%.0f%%", spec.components[pod].name.c_str(), 100*(inter/solo-1));
      }
      std::printf("\n");
    }
  }
  {
    const AppThresholds& th = CachedAppThresholds(LcAppKind::kEcommerce);
    const AppSpec spec = MakeApp(LcAppKind::kEcommerce);
    for (int i = 0; i < spec.pod_count(); ++i)
      std::printf("thresholds %-10s loadlimit=%.2f slacklimit=%.3f C=%.4f (P=%.2f rho=%.2f V=%.3f)\n",
        spec.components[i].name.c_str(), th.pods[i].loadlimit, th.pods[i].slacklimit,
        th.contributions[i].contribution, th.contributions[i].weight_p,
        th.contributions[i].correlation_rho, th.contributions[i].varcoef_v);
  }
  // Controller comparison at load 0.45 with wordcount on E-commerce.
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) {
    ExperimentConfig e; e.app=LcAppKind::kEcommerce; e.be=BeJobKind::kWordcount;
    e.controller=ctrl; e.warmup_s=30; e.measure_s=120;
    RunSummary s = RunColocation(e, 0.45);
    std::printf("%s: EMU=%.3f beThr=%.3f cpu=%.3f membw=%.3f worstTail=%.2f viol=%llu kills=%llu\n",
      ControllerKindName(ctrl), s.emu, s.be_throughput, s.cpu_util, s.membw_util,
      s.worst_tail_ratio, (unsigned long long)s.sla_violations, (unsigned long long)s.be_kills);
    for (size_t i=0;i<s.pods.size();++i)
      std::printf("   pod%zu beThr=%.3f cpu=%.2f membw=%.2f inst=%.1f\n", i,
        s.pods[i].be_throughput, s.pods[i].cpu_util, s.pods[i].membw_util, s.pods[i].be_instances);
  }
  return 0;
}
