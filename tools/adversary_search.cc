// Adversarial BE workload search CLI: evolve attack genomes against the
// controller, minimize the champions into checked-in repro files, and
// measure how much of each attack's damage the ControlHardening fail-safes
// recover.
//
// Usage: adversary_search [options]
//   --seed S               GA seed (search is a pure function of it) (1)
//   --run-seed S           base trial seed; candidates derive theirs (11)
//   --generations N        GA generations (6)
//   --population N         genomes per generation (12)
//   --hill-climb N         coordinate hill-climb steps on the champion (0)
//   --plateau N            stop after N stale generations (3)
//   --wall-clock-budget-s F  safety cap, checked at generation bounds (off)
//   --jobs N               worker threads (default: RHYTHM_JOBS or cores)
//   --measure-s F          measured seconds per trial (300)
//   --harden-jitter        evaluate against readmission-jitter hardening
//   --harden-osc           evaluate against oscillation-guard hardening
//   --corpus-out DIR       minimize top attacks into DIR as repro files
//   --corpus-count N       attacks to minimize (3)
//   --keep-damage F        minimizer damage-retention fraction (0.6)
//   --bench-json PATH      write hardening before/after damage comparison
//   --obs-out PATH         write search progress as a Recording JSONL
//                          (obs_query summarizes it)
//   --expect-best-fitness X  fail unless the best fitness prints exactly X
//                          (%.17g) — the CI bit-reproducibility assertion
//   --replay PATH          instead of searching: replay a repro file and
//                          check its expect_* directives bit-exactly
//   --probe PATH           instead of searching: replay a repro under every
//                          hardening combination and print the damage split
//
// Budget flags (--generations/--population/--wall-clock-budget-s) are shared
// with tools/chaos_fuzz; see tools/README.md.
//
// Exit status: 0 success, 1 replay/expectation mismatch, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/rhythm.h"
#include "tools/common_flags.h"

using namespace rhythm;

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void PrintCandidate(const char* tag, const AdversaryCandidate& candidate) {
  std::printf("%s: fitness=%s damage=%s cost=%s slack_ticks=%llu tail_ratio=%.3f "
              "be=%.4f (baseline %.4f) eval#%llu\n",
              tag, Num(candidate.fitness).c_str(), Num(candidate.damage).c_str(),
              Num(candidate.cost).c_str(),
              (unsigned long long)candidate.attack.slack_violation_ticks,
              candidate.attack.worst_tail_ratio, candidate.attack.be_throughput,
              candidate.baseline_be_throughput, (unsigned long long)candidate.evaluation_index);
}

// Replays a repro with the given hardening and reports its damage split.
struct HardeningProbe {
  double damage = 0.0;
  uint64_t slack_ticks = 0;
  double tail_ratio = 0.0;
  double be_throughput = 0.0;
  uint64_t jitter_holds = 0;
  uint64_t oscillation_trips = 0;
};

HardeningProbe ProbeRepro(ChaosRepro repro, const ControlHardening& hardening) {
  repro.hardening = hardening;
  const RunSummary summary = Run(ReproToRequest(repro));
  HardeningProbe probe;
  probe.damage = AttackDamage(summary);
  probe.slack_ticks = summary.slack_violation_ticks;
  probe.tail_ratio = summary.worst_tail_ratio;
  probe.be_throughput = summary.be_throughput;
  probe.jitter_holds = summary.jitter_holds;
  probe.oscillation_trips = summary.oscillation_trips;
  return probe;
}

void WriteProbeJson(FILE* out, const char* key, const HardeningProbe& probe) {
  std::fprintf(out,
               "    \"%s\": {\"damage\": %s, \"slack_ticks\": %llu, "
               "\"tail_ratio\": %s, \"be_throughput\": %s}",
               key, Num(probe.damage).c_str(), (unsigned long long)probe.slack_ticks,
               Num(probe.tail_ratio).c_str(), Num(probe.be_throughput).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  AdversarySearchOptions options;
  AttackCorpusOptions corpus_options;
  std::string corpus_out, bench_json, obs_out, replay_path, probe_path, expect_best;
  int corpus_count = 3;

  FlagParser flags(argc, argv);
  while (flags.Next()) {
    if (flags.U64("--seed", &options.seed) ||
        flags.U64("--run-seed", &options.config.run_seed) ||
        MatchBudgetFlags(flags, &options.generations, &options.population,
                         &options.wall_clock_budget_s) ||
        flags.Int("--hill-climb", &options.hill_climb_steps) ||
        flags.Int("--plateau", &options.plateau_generations) ||
        flags.Int("--jobs", &options.jobs) ||
        flags.Double("--measure-s", &options.config.measure_s) ||
        flags.Str("--corpus-out", &corpus_out) ||
        flags.Int("--corpus-count", &corpus_count) ||
        flags.Double("--keep-damage", &corpus_options.keep_damage_fraction) ||
        flags.Str("--bench-json", &bench_json) ||
        flags.Str("--obs-out", &obs_out) ||
        flags.Str("--expect-best-fitness", &expect_best) ||
        flags.Str("--replay", &replay_path) ||
        flags.Str("--probe", &probe_path)) {
      continue;
    }
    if (flags.Is("--harden-jitter")) {
      options.config.hardening.readmission_jitter = true;
    } else if (flags.Is("--harden-osc")) {
      options.config.hardening.oscillation_guard = true;
    } else {
      std::fprintf(stderr, "adversary_search: unknown or incomplete option '%s'\n",
                   flags.arg().c_str());
      return 2;
    }
  }

  // Probe mode: replay one repro under every hardening combination and print
  // the damage split plus how often each fail-safe fired.
  if (!probe_path.empty()) {
    try {
      const ChaosRepro repro = LoadChaosRepro(probe_path);
      const struct {
        const char* name;
        ControlHardening hardening;
      } combos[] = {
          {"unhardened", {}},
          {"jitter", {.readmission_jitter = true}},
          {"osc-guard", {.oscillation_guard = true}},
          {"both", {.readmission_jitter = true, .oscillation_guard = true}},
      };
      for (const auto& combo : combos) {
        const HardeningProbe probe = ProbeRepro(repro, combo.hardening);
        std::printf("%-10s damage=%-22s slack_ticks=%-5llu tail_ratio=%-8.3f be=%-8.4f "
                    "jitter_holds=%llu osc_trips=%llu\n",
                    combo.name, Num(probe.damage).c_str(),
                    (unsigned long long)probe.slack_ticks, probe.tail_ratio,
                    probe.be_throughput, (unsigned long long)probe.jitter_holds,
                    (unsigned long long)probe.oscillation_trips);
      }
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "adversary_search: probe failed: %s\n", error.what());
      return 2;
    }
  }

  // Replay mode: verify one repro file's expectations bit-exactly.
  if (!replay_path.empty()) {
    try {
      const ChaosRepro repro = LoadChaosRepro(replay_path);
      const std::string mismatch = VerifyReproExpectations(repro);
      if (!mismatch.empty()) {
        std::fprintf(stderr, "adversary_search: %s: %s\n", replay_path.c_str(),
                     mismatch.c_str());
        return 1;
      }
      std::printf("replay ok: %s (%d events, %s)\n", replay_path.c_str(),
                  (int)repro.schedule.events.size(),
                  ClassifyWeakness(repro.schedule).c_str());
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "adversary_search: replay failed: %s\n", error.what());
      return 2;
    }
  }

  std::printf("adversary_search: seed %llu, %d generations x %d genomes, "
              "run-seed %llu, hardening jitter=%d osc=%d\n",
              (unsigned long long)options.seed, options.generations, options.population,
              (unsigned long long)options.config.run_seed,
              options.config.hardening.readmission_jitter ? 1 : 0,
              options.config.hardening.oscillation_guard ? 1 : 0);

  MetricsRegistry metrics;
  AdversarySearchResult result;
  try {
    result = AdversarySearch(options, &metrics);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "adversary_search: search failed: %s\n", error.what());
    return 2;
  }

  for (const AdversaryGenerationStats& stats : result.generations) {
    std::printf("  gen %2d: best=%s gen_best=%s gen_mean=%s evals=%llu\n", stats.generation,
                Num(stats.best_fitness).c_str(), Num(stats.generation_best).c_str(),
                Num(stats.generation_mean).c_str(), (unsigned long long)stats.evaluations);
  }
  if (result.stopped_on_plateau) {
    std::printf("stopped early: fitness plateau\n");
  }
  if (result.budget_exhausted) {
    std::printf("wall-clock budget exhausted at a generation boundary\n");
  }
  PrintCandidate("best", result.best);
  std::printf("best genome: %s\n", GenomeToString(result.best.genome).c_str());

  if (!expect_best.empty() && Num(result.best.fitness) != expect_best) {
    std::fprintf(stderr,
                 "adversary_search: best fitness %s does not match expected %s — the "
                 "search is no longer bit-reproducible\n",
                 Num(result.best.fitness).c_str(), expect_best.c_str());
    return 1;
  }

  if (!obs_out.empty()) {
    Recording recording;
    recording.meta.app = LcAppKindName(options.config.app);
    recording.meta.be = "adversary-search";
    recording.meta.controller = ControllerKindName(options.config.controller);
    recording.meta.seed = options.seed;
    recording.metrics = metrics.metrics();
    if (!WriteJsonl(recording, obs_out)) {
      std::fprintf(stderr, "adversary_search: cannot write %s\n", obs_out.c_str());
      return 2;
    }
    std::printf("search progress written to %s (obs_query can summarize it)\n",
                obs_out.c_str());
  }

  // Minimize the strongest attacks into repro files, one per weakness class:
  // a single dominant attack family must not crowd the catalogued failure
  // modes out of the corpus. The candidate pool is the hall of fame plus the
  // generation-0 archetypes (evaluation indices 0..kArchetypeCount-1, cheap
  // to replay deterministically) in case stronger genomes displaced them.
  std::vector<AttackReproResult> minimized;
  if (!corpus_out.empty()) {
    std::vector<AdversaryCandidate> pool = result.hall_of_fame;
    if (options.population > kArchetypeCount) {
      for (int i = 0; i < kArchetypeCount; ++i) {
        const AdversaryGenome archetype = ArchetypeGenome(i);
        bool held = false;
        for (const AdversaryCandidate& candidate : pool) {
          held = held || candidate.genome == archetype;
        }
        if (!held) {
          pool.push_back(
              ReplayCandidate(archetype, static_cast<uint64_t>(i), options.config));
        }
      }
    }
    std::vector<std::string> classes_minted;
    for (const AdversaryCandidate& candidate : pool) {
      if (static_cast<int>(minimized.size()) >= corpus_count) {
        break;
      }
      if (candidate.damage <= 0.0) {
        continue;
      }
      try {
        AttackReproResult attack = MinimizeAttack(candidate, options.config, corpus_options);
        bool duplicate = false;
        for (const std::string& minted : classes_minted) {
          duplicate = duplicate || minted == attack.weakness_class;
        }
        if (duplicate) {
          std::printf("skipping second %s attack (eval#%llu)\n",
                      attack.weakness_class.c_str(),
                      (unsigned long long)candidate.evaluation_index);
          continue;
        }
        const std::string path = corpus_out + "/adversary_" + attack.weakness_class + "_" +
                                 std::to_string(minimized.size()) + ".txt";
        SaveChaosRepro(attack.repro, path);
        std::printf("minimized attack -> %s: %d -> %d events, damage %s -> %s, class %s\n",
                    path.c_str(), attack.minimize.events_before, attack.minimize.events_after,
                    Num(attack.original_damage).c_str(), Num(attack.minimized_damage).c_str(),
                    attack.weakness_class.c_str());
        classes_minted.push_back(attack.weakness_class);
        minimized.push_back(std::move(attack));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "adversary_search: minimization skipped: %s\n", error.what());
      }
    }
  }

  if (!bench_json.empty()) {
    FILE* out = std::fopen(bench_json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "adversary_search: cannot write %s\n", bench_json.c_str());
      return 2;
    }
    ControlHardening jitter_only, osc_only, both;
    jitter_only.readmission_jitter = true;
    osc_only.oscillation_guard = true;
    both.readmission_jitter = true;
    both.oscillation_guard = true;
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"seed\": %llu,\n", (unsigned long long)options.seed);
    std::fprintf(out, "  \"run_seed\": %llu,\n", (unsigned long long)options.config.run_seed);
    std::fprintf(out, "  \"generations_run\": %d,\n", (int)result.generations.size());
    std::fprintf(out, "  \"evaluations\": %llu,\n", (unsigned long long)result.evaluations);
    std::fprintf(out, "  \"best_fitness\": %s,\n", Num(result.best.fitness).c_str());
    std::fprintf(out, "  \"best_damage\": %s,\n", Num(result.best.damage).c_str());
    std::fprintf(out, "  \"best_genome\": \"%s\",\n",
                 GenomeToString(result.best.genome).c_str());
    std::fprintf(out, "  \"progress\": [");
    for (size_t i = 0; i < result.generations.size(); ++i) {
      const AdversaryGenerationStats& stats = result.generations[i];
      std::fprintf(out,
                   "%s\n    {\"generation\": %d, \"best\": %s, \"gen_best\": %s, "
                   "\"gen_mean\": %s, \"evaluations\": %llu}",
                   i == 0 ? "" : ",", stats.generation, Num(stats.best_fitness).c_str(),
                   Num(stats.generation_best).c_str(), Num(stats.generation_mean).c_str(),
                   (unsigned long long)stats.evaluations);
    }
    std::fprintf(out, "\n  ],\n");
    std::fprintf(out, "  \"attacks\": [");
    for (size_t i = 0; i < minimized.size(); ++i) {
      const AttackReproResult& attack = minimized[i];
      const HardeningProbe unhardened = ProbeRepro(attack.repro, ControlHardening{});
      const HardeningProbe jittered = ProbeRepro(attack.repro, jitter_only);
      const HardeningProbe guarded = ProbeRepro(attack.repro, osc_only);
      const HardeningProbe hardened = ProbeRepro(attack.repro, both);
      const auto reduction_pct = [&](const HardeningProbe& probe) {
        return unhardened.damage > 0.0
                   ? 100.0 * (unhardened.damage - probe.damage) / unhardened.damage
                   : 0.0;
      };
      std::fprintf(out, "%s\n  {\n    \"weakness\": \"%s\",\n    \"events\": %d,\n",
                   i == 0 ? "" : ",", attack.weakness_class.c_str(),
                   (int)attack.repro.schedule.events.size());
      WriteProbeJson(out, "unhardened", unhardened);
      std::fprintf(out, ",\n");
      WriteProbeJson(out, "readmission_jitter", jittered);
      std::fprintf(out, ",\n");
      WriteProbeJson(out, "oscillation_guard", guarded);
      std::fprintf(out, ",\n");
      WriteProbeJson(out, "both_fixes", hardened);
      std::fprintf(out,
                   ",\n    \"damage_reduction_pct\": {\"readmission_jitter\": %s, "
                   "\"oscillation_guard\": %s, \"both_fixes\": %s}\n  }",
                   Num(reduction_pct(jittered)).c_str(), Num(reduction_pct(guarded)).c_str(),
                   Num(reduction_pct(hardened)).c_str());
      std::printf("hardening on %s: damage %s | jitter %s (%.1f%%) | osc %s (%.1f%%) | "
                  "both %s (%.1f%%)\n",
                  attack.weakness_class.c_str(), Num(unhardened.damage).c_str(),
                  Num(jittered.damage).c_str(), reduction_pct(jittered),
                  Num(guarded.damage).c_str(), reduction_pct(guarded),
                  Num(hardened.damage).c_str(), reduction_pct(hardened));
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("bench written to %s\n", bench_json.c_str());
  }

  return 0;
}
