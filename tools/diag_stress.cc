#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;
int main() {
  DeploymentConfig config;
  config.app_kind = LcAppKind::kEcommerce;
  config.be_kind = BeJobKind::kStreamDramBig;
  config.controller = ControllerKind::kRhythm;
  config.thresholds = CachedAppThresholds(LcAppKind::kEcommerce).pods;
  config.seed = 11;
  Deployment d(config);
  ConstantLoad profile(0.45);
  d.Start(&profile);
  d.RunFor(140.0);
  for (double t = 4; t <= 140; t += 4) {
    std::printf("t=%5.0f tail=%6.1f slack=%+.3f cores:", t, d.tail_series().ValueAt(t),
                d.slack_series().ValueAt(t));
    for (int p = 0; p < 4; ++p)
      std::printf(" %d:%.0f/u%.2f", p, d.pod_series(p).be_cores.ValueAt(t),
                  d.service().PodUtilization(p));
    std::printf("\n");
  }
  std::printf("viol=%llu kills=%llu\n", (unsigned long long)d.TotalSlaViolations(),
              (unsigned long long)d.TotalBeKills());
  return 0;
}
