// Calibration tool: the model-fitting sanity checks used while tuning the
// simulator, folded into one binary. Not part of the benches.
//
// Usage: calibrate <solo|interference|thresholds|compare|all> [load]
//   solo          solo-run tail latency vs SLA per app across loads, with
//                 per-pod sojourn statistics
//   interference  Fig.2-style p99 inflation when each BE is co-located
//                 (uncontrolled) with one pod at a time
//   thresholds    derived loadlimit/slacklimit/contribution per app
//   compare       Heracles vs Rhythm on E-commerce + wordcount at the given
//                 load (default 0.45; the paper's stress point is 0.85)
//   all           everything above

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/rhythm.h"

using namespace rhythm;

namespace {

double SoloP99(LcAppKind kind, double load) {
  DeploymentConfig config;
  config.app_kind = kind;
  config.enable_be = false;
  config.tail_window_s = 60.0;
  config.seed = 5;
  Deployment deployment(config);
  ConstantLoad profile(load);
  deployment.Start(&profile);
  deployment.RunFor(70.0);
  return deployment.service().TailLatencyMs();
}

void CmdSolo() {
  for (LcAppKind kind : AllLcAppKinds()) {
    const AppSpec app = MakeApp(kind);
    std::printf("== %s (maxload=%.0f sla=%.2fms)\n", app.name.c_str(), app.maxload_qps,
                app.sla_ms);
    for (double load : {0.25, 0.50, 0.75, 0.90, 1.00}) {
      DeploymentConfig config;
      config.app_kind = kind;
      config.enable_be = false;
      config.record_sojourns = true;
      config.tail_window_s = 60.0;
      config.seed = 99;
      Deployment d(config);
      ConstantLoad profile(load);
      d.Start(&profile);
      d.RunFor(70.0);
      std::printf("  load=%.2f p99=%8.2fms  (sla ratio %.2f)  sojourns:", load,
                  d.service().TailLatencyMs(), d.service().TailLatencyMs() / app.sla_ms);
      for (int pod = 0; pod < app.pod_count(); ++pod) {
        std::printf(" %s=%.1f/cov%.2f", app.components[pod].name.c_str(),
                    d.service().PodSojournStats(pod).mean(),
                    d.service().PodSojournStats(pod).cov());
      }
      std::printf("\n");
    }
  }
}

void CmdInterference() {
  // Fig2-style: co-locate each BE with ONE pod at a time (uncontrolled) and
  // report the p99 inflation over the solo run.
  for (LcAppKind app : {LcAppKind::kEcommerce, LcAppKind::kRedis}) {
    const AppSpec spec = MakeApp(app);
    std::printf("== %s interference (p99 increase %% vs solo)\n", spec.name.c_str());
    for (BeJobKind be : {BeJobKind::kStreamLlcBig, BeJobKind::kStreamDramBig,
                         BeJobKind::kCpuStress, BeJobKind::kIperf}) {
      std::printf("  %-18s", GetBeJobSpec(be).name.c_str());
      for (int pod = 0; pod < spec.pod_count(); ++pod) {
        const double load = 0.6;
        const double solo = SoloP99(app, load);
        DeploymentConfig config;
        config.app_kind = app;
        config.be_kind = be;
        config.enable_be = true;
        config.controller = ControllerKind::kNone;
        config.tail_window_s = 60.0;
        config.seed = 5;
        Deployment d(config);
        ConstantLoad profile(load);
        d.Start(&profile);
        d.LaunchBeAtPod(pod, 4);
        d.RunFor(70.0);
        const double inter = d.service().TailLatencyMs();
        std::printf("  %s=+%.0f%%", spec.components[pod].name.c_str(),
                    100.0 * (inter / solo - 1.0));
      }
      std::printf("\n");
    }
  }
}

void CmdThresholds() {
  for (LcAppKind kind : AllLcAppKinds()) {
    const AppThresholds& th = CachedAppThresholds(kind);
    const AppSpec spec = MakeApp(kind);
    std::printf("== %s\n", spec.name.c_str());
    for (int i = 0; i < spec.pod_count(); ++i) {
      std::printf("  %-14s loadlimit=%.2f slacklimit=%.3f C=%.4f (P=%.2f rho=%.2f V=%.3f)\n",
                  spec.components[i].name.c_str(), th.pods[i].loadlimit,
                  th.pods[i].slacklimit, th.contributions[i].contribution,
                  th.contributions[i].weight_p, th.contributions[i].correlation_rho,
                  th.contributions[i].varcoef_v);
    }
  }
}

void CmdCompare(double load) {
  // Rhythm should still co-locate at tolerant pods near the loadlimit;
  // Heracles's app-granularity gate shuts every pod down together.
  for (ControllerKind ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) {
    RunRequest request;
    request.app = LcAppKind::kEcommerce;
    request.be = BeJobKind::kWordcount;
    request.controller = ctrl;
    request.warmup_s = 30.0;
    request.measure_s = 120.0;
    request.load = load;
    RunSummary s = Run(request);
    std::printf("%s@%.2f: EMU=%.3f beThr=%.3f cpu=%.3f membw=%.3f worstTail=%.2f "
                "viol=%llu kills=%llu\n",
                ControllerKindName(ctrl), load, s.emu, s.be_throughput, s.cpu_util,
                s.membw_util, s.worst_tail_ratio, (unsigned long long)s.sla_violations,
                (unsigned long long)s.be_kills);
    for (size_t i = 0; i < s.pods.size(); ++i) {
      std::printf("   pod%zu beThr=%.3f cpu=%.2f membw=%.2f inst=%.1f\n", i,
                  s.pods[i].be_throughput, s.pods[i].cpu_util, s.pods[i].membw_util,
                  s.pods[i].be_instances);
    }
  }
}

int Usage() {
  std::fprintf(stderr, "usage: calibrate <solo|interference|thresholds|compare|all> [load]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const double load = argc > 2 ? std::atof(argv[2]) : 0.45;
  if (command == "solo") {
    CmdSolo();
  } else if (command == "interference") {
    CmdInterference();
  } else if (command == "thresholds") {
    CmdThresholds();
  } else if (command == "compare") {
    CmdCompare(load);
  } else if (command == "all") {
    CmdSolo();
    CmdInterference();
    CmdThresholds();
    CmdCompare(load);
  } else {
    return Usage();
  }
  return 0;
}
