// Calibration scratch tool: prints solo-run tail latency vs SLA for each app
// across loads, plus interference sanity checks. Not part of the benches.

#include <cstdio>

#include "src/rhythm.h"

using namespace rhythm;

int main() {
  for (LcAppKind kind : AllLcAppKinds()) {
    const AppSpec app = MakeApp(kind);
    std::printf("== %s (maxload=%.0f sla=%.2fms)\n", app.name.c_str(), app.maxload_qps,
                app.sla_ms);
    for (double load : {0.25, 0.50, 0.75, 0.90, 1.00}) {
      DeploymentConfig config;
      config.app_kind = kind;
      config.enable_be = false;
      config.record_sojourns = true;
      config.tail_window_s = 60.0;
      config.seed = 99;
      Deployment d(config);
      ConstantLoad profile(load);
      d.Start(&profile);
      d.RunFor(70.0);
      std::printf("  load=%.2f p99=%8.2fms  (sla ratio %.2f)  sojourns:", load,
                  d.service().TailLatencyMs(), d.service().TailLatencyMs() / app.sla_ms);
      for (int pod = 0; pod < app.pod_count(); ++pod) {
        std::printf(" %s=%.1f/cov%.2f", app.components[pod].name.c_str(),
                    d.service().PodSojournStats(pod).mean(),
                    d.service().PodSojournStats(pod).cov());
      }
      std::printf("\n");
    }
  }
  return 0;
}
