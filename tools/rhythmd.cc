// rhythmd — the Rhythm serving daemon. Serves concurrent what-if queries
// (single co-location trials or whole cluster evaluations) over HTTP,
// bit-identical to the equivalent batch run at the same seed.
//
//   rhythmd --port 8080 --threads 4 &
//   curl -s http://127.0.0.1:8080/healthz
//   curl -s http://127.0.0.1:8080/v1/whatif \
//        -d '{"app":"E-commerce","be":"wordcount","seed":7}'
//   kill -TERM %1    # graceful drain: in-flight queries finish, exit 0
//
// `--oneshot FILE` evaluates one what-if body from FILE (or stdin with "-")
// through exactly the serving code path and prints the response body — the
// CI smoke job diffs this against the served bytes to prove the boundary is
// deterministic.
//
// Flags:
//   --port N           listen port (default 8080; 0 = kernel-assigned)
//   --host ADDR        bind address (default 127.0.0.1)
//   --threads N        worker threads (default 4)
//   --queue-depth N    admission limit: queued connections before 503 (64)
//   --jobs N           trial worker threads inside a query (RHYTHM_JOBS)
//   --shards N         cluster engine shards (RHYTHM_SHARDS)
//   --snapshot PATH    default path for /v1/snapshot + /v1/restore
//   --restore PATH     restore a snapshot before serving (warm start)
//   --audit-dir DIR    write per-query obs recordings (whatif-<seq>.jsonl)
//   --prewarm LIST     comma-separated app names (or "all") to characterize
//                      before the port opens
//   --oneshot FILE     batch mode: evaluate FILE ("-" = stdin), print, exit

#include <signal.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/serve/daemon.h"
#include "src/workload/app_catalog.h"
#include "tools/common_flags.h"

namespace rhythm {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rhythmd [--port N] [--host ADDR] [--threads N]\n"
               "               [--queue-depth N] [--jobs N] [--shards N]\n"
               "               [--snapshot PATH] [--restore PATH]\n"
               "               [--audit-dir DIR] [--prewarm LIST]\n"
               "               [--oneshot FILE]\n");
  return 2;
}

bool ParsePrewarmList(const std::string& list, std::vector<LcAppKind>* out) {
  if (list == "all") {
    *out = AllLcAppKinds();
    return true;
  }
  std::stringstream stream(list);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (name.empty()) {
      continue;
    }
    LcAppKind app = LcAppKind::kEcommerce;
    if (!ParseLcAppKindName(name, &app)) {
      std::fprintf(stderr, "rhythmd: unknown app '%s' in --prewarm\n",
                   name.c_str());
      return false;
    }
    out->push_back(app);
  }
  return true;
}

int OneShot(const std::string& file, const RunnerOptions& runner) {
  std::string body;
  if (file == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    body = buffer.str();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "rhythmd: cannot open %s\n", file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    body = buffer.str();
  }
  WhatIfEvalOptions options;
  options.runner = runner;
  try {
    // Exactly the served bytes — no trailing newline, so `cmp` against a
    // captured response body passes. This is the CI determinism check.
    std::fputs(EvalWhatIfJson(body, options).c_str(), stdout);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "rhythmd: %s\n", error.what());
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  DaemonOptions options;
  options.server.port = 8080;
  std::string restore_path;
  std::string prewarm_list;
  std::string oneshot_file;

  FlagParser flags(argc, argv);
  while (flags.Next()) {
    if (flags.Int("--port", &options.server.port) ||
        flags.Str("--host", &options.server.host) ||
        flags.Int("--threads", &options.server.threads) ||
        flags.Int("--queue-depth", &options.server.queue_depth) ||
        flags.Int("--jobs", &options.runner.jobs) ||
        flags.Int("--shards", &options.runner.shards) ||
        flags.Str("--snapshot", &options.snapshot_path) ||
        flags.Str("--restore", &restore_path) ||
        flags.Str("--audit-dir", &options.audit_dir) ||
        flags.Str("--prewarm", &prewarm_list) ||
        flags.Str("--oneshot", &oneshot_file)) {
      continue;
    }
    std::fprintf(stderr, "rhythmd: unknown or incomplete option '%s'\n",
                 flags.arg().c_str());
    return Usage();
  }

  if (!oneshot_file.empty()) {
    return OneShot(oneshot_file, options.runner);
  }
  if (!prewarm_list.empty() &&
      !ParsePrewarmList(prewarm_list, &options.prewarm)) {
    return 2;
  }

  // Block the shutdown signals BEFORE any thread exists so every server
  // thread inherits the mask and only the sigwait below ever sees them.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  RhythmDaemon daemon(options);
  if (!restore_path.empty()) {
    std::string error;
    if (!daemon.RestoreSnapshot(restore_path, &error)) {
      std::fprintf(stderr, "rhythmd: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "rhythmd: restored %s\n", restore_path.c_str());
  }
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "rhythmd: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "rhythmd: listening on %s:%d\n",
               options.server.host.c_str(), daemon.port());
  std::fflush(stderr);

  int caught = 0;
  sigwait(&signals, &caught);
  std::fprintf(stderr, "rhythmd: signal %d, draining\n", caught);
  daemon.Stop();  // graceful: queued + in-flight queries finish first.
  if (!options.snapshot_path.empty()) {
    std::string save_error;
    if (daemon.SaveSnapshot(options.snapshot_path, &save_error)) {
      std::fprintf(stderr, "rhythmd: snapshot written to %s\n",
                   options.snapshot_path.c_str());
    } else {
      std::fprintf(stderr, "rhythmd: %s\n", save_error.c_str());
    }
  }
  std::fprintf(stderr, "rhythmd: drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace rhythm

int main(int argc, char** argv) { return rhythm::Main(argc, argv); }
