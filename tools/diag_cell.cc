#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;
static void Run(LcAppKind app, BeJobKind be, ControllerKind ctrl, double load) {
  DeploymentConfig config;
  config.app_kind = app; config.be_kind = be; config.controller = ctrl;
  if (ctrl == ControllerKind::kRhythm) config.thresholds = CachedAppThresholds(app).pods;
  config.seed = 11;
  Deployment d(config);
  ConstantLoad p(load); d.Start(&p);
  d.RunFor(20.0);
  const double t0 = d.sim().Now();
  d.RunFor(90.0);
  RunSummary s = Summarize(d, t0, d.sim().Now());
  std::printf("%-9s EMU=%.3f beThr=%.3f tail=%.2f viol=%llu |", ControllerKindName(ctrl),
              s.emu, s.be_throughput, s.worst_tail_ratio, (unsigned long long)s.sla_violations);
  for (int pod = 0; pod < d.pod_count(); ++pod) {
    const MachineAgent::Stats& st = d.agent(pod)->stats();
    std::printf(" p%d[thr=%.2f inst=%.1f cores=%d g=%llu d=%llu c=%llu s=%llu guard=%llu]",
      pod, s.pods[pod].be_throughput, s.pods[pod].be_instances, d.be(pod)->TotalCoresHeld(),
      (unsigned long long)st.grows,(unsigned long long)st.disallows,(unsigned long long)st.cuts,
      (unsigned long long)st.suspends,(unsigned long long)st.util_guard_trips);
  }
  std::printf("\n");
}
int main() {
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) Run(LcAppKind::kRedis, BeJobKind::kCpuStress, ctrl, 0.45);
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) Run(LcAppKind::kEcommerce, BeJobKind::kLstm, ctrl, 0.45);
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) Run(LcAppKind::kEcommerce, BeJobKind::kLstm, ctrl, 0.65);
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) Run(LcAppKind::kEcommerce, BeJobKind::kWordcount, ctrl, 0.65);
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) Run(LcAppKind::kEcommerce, BeJobKind::kLstm, ctrl, 0.25);
  return 0;
}
