// obs_query: offline query CLI over a recorded run (the JSONL export of
// RunRequest::obs). Answers questions like "every event on machine 3 in the
// 60 s before the first BE kill" without re-running anything.
//
// Usage:
//   obs_query summary  <recording.jsonl>
//   obs_query events   <recording.jsonl> [filters]
//   obs_query timeline <recording.jsonl> [--step S]
//
// Event filters (combinable; all default to "everything"):
//   --kind K               decision | actuation | fault | slo | be
//   --machine M            only machine M (-1 = cluster-wide events)
//   --from T --to T        time window [T, T] in simulated seconds
//   --before-first-kill S  window = the S seconds up to the first BE kill
//   --limit N              print at most N events (default unlimited)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/obs/exporters.h"
#include "src/obs/recording.h"

using namespace rhythm;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: obs_query <summary|events|timeline> <recording.jsonl> [options]\n"
               "  summary                 run metadata and event/metric counts\n"
               "  events [filters]        print matching events chronologically\n"
               "    --kind K              decision|actuation|fault|slo|be\n"
               "    --machine M           only machine M (-1 = cluster-wide)\n"
               "    --from T --to T       time window in simulated seconds\n"
               "    --before-first-kill S the S seconds up to the first BE kill\n"
               "    --limit N             print at most N events\n"
               "  timeline [--step S]     Fig.17-style metric table\n");
  return 2;
}

bool ParseKind(const std::string& name, ObsKind* kind) {
  for (int k = 0; k < kObsKindCount; ++k) {
    if (name == ObsKindName(static_cast<ObsKind>(k))) {
      *kind = static_cast<ObsKind>(k);
      return true;
    }
  }
  return false;
}

// Pulls `--flag value` out of argv; returns nullptr when absent.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

int CmdSummary(const Recording& recording) {
  const RecordingMeta& meta = recording.meta;
  std::printf("run: %s + %s under %s, seed %llu, SLA %.3f ms\n", meta.app.c_str(),
              meta.be.c_str(), meta.controller.c_str(), (unsigned long long)meta.seed,
              meta.sla_ms);
  std::printf("machines (%d):", recording.pod_count());
  for (int pod = 0; pod < recording.pod_count(); ++pod) {
    std::printf(" %d=%s", pod, meta.pods[static_cast<size_t>(pod)].c_str());
  }
  std::printf("\nevents: %zu held (%llu recorded, %llu dropped by ring wrap)\n",
              recording.events.size(), (unsigned long long)recording.events_total,
              (unsigned long long)recording.events_dropped);
  if (!recording.events.empty()) {
    std::printf("window: t=%.3f .. %.3f s\n", recording.events.front().time_s,
                recording.events.back().time_s);
  }

  uint64_t by_kind[kObsKindCount] = {0};
  std::map<int, uint64_t> decisions_by_machine;
  for (const ObsEvent& event : recording.events) {
    ++by_kind[static_cast<int>(event.kind)];
    if (event.kind == ObsKind::kDecision) {
      ++decisions_by_machine[event.machine];
    }
  }
  std::printf("by kind:");
  for (int k = 0; k < kObsKindCount; ++k) {
    std::printf(" %s=%llu", ObsKindName(static_cast<ObsKind>(k)),
                (unsigned long long)by_kind[k]);
  }
  std::printf("\ndecisions per machine:");
  for (const auto& [machine, count] : decisions_by_machine) {
    std::printf(" %d=%llu", machine, (unsigned long long)count);
  }
  const double first_kill = recording.FirstKillTime();
  if (first_kill >= 0.0) {
    std::printf("\nfirst BE kill: t=%.3f s\n", first_kill);
  } else {
    std::printf("\nfirst BE kill: none\n");
  }
  std::printf("metrics (%zu):", recording.metrics.size());
  size_t shown = 0;
  for (const auto& metric : recording.metrics) {
    if (++shown > 12) {
      std::printf(" ... +%zu more", recording.metrics.size() - 12);
      break;
    }
    std::printf(" %s[%zu]", metric.name.c_str(), metric.timeline.size());
  }
  std::printf("\n");
  return 0;
}

int CmdEvents(const Recording& recording, int argc, char** argv) {
  bool kind_set = false;
  ObsKind kind = ObsKind::kDecision;
  if (const char* value = FlagValue(argc, argv, "--kind")) {
    if (!ParseKind(value, &kind)) {
      std::fprintf(stderr, "obs_query: unknown kind '%s'\n", value);
      return 2;
    }
    kind_set = true;
  }
  int machine = -2;  // -2 = any (since -1 legitimately means cluster-wide).
  if (const char* value = FlagValue(argc, argv, "--machine")) {
    machine = std::atoi(value);
  }
  double from = -1e300;
  double to = 1e300;
  if (const char* value = FlagValue(argc, argv, "--from")) {
    from = std::atof(value);
  }
  if (const char* value = FlagValue(argc, argv, "--to")) {
    to = std::atof(value);
  }
  if (const char* value = FlagValue(argc, argv, "--before-first-kill")) {
    const double first_kill = recording.FirstKillTime();
    if (first_kill < 0.0) {
      std::printf("no BE kill in this recording\n");
      return 0;
    }
    from = first_kill - std::atof(value);
    to = first_kill;
  }
  long limit = -1;
  if (const char* value = FlagValue(argc, argv, "--limit")) {
    limit = std::atol(value);
  }

  long printed = 0;
  size_t matched = 0;
  for (const ObsEvent& event : recording.events) {
    if (kind_set && event.kind != kind) continue;
    if (machine != -2 && event.machine != machine) continue;
    if (event.time_s < from || event.time_s > to) continue;
    ++matched;
    if (limit >= 0 && printed >= limit) continue;
    ++printed;
    std::printf("%s\n", DescribeEvent(event).c_str());
  }
  if (limit >= 0 && matched > static_cast<size_t>(printed)) {
    std::printf("... %zu more (raise --limit)\n", matched - static_cast<size_t>(printed));
  }
  std::printf("%zu event(s) matched\n", matched);
  return 0;
}

int CmdTimeline(const Recording& recording, int argc, char** argv) {
  const TimeSeries* load = recording.Metric("load");
  const TimeSeries* slack = recording.Metric("slack");
  if (load == nullptr || slack == nullptr || load->empty()) {
    std::fprintf(stderr, "obs_query: recording has no metric timelines\n");
    return 1;
  }
  const double t0 = load->points().front().time;
  const double t1 = load->points().back().time;
  double step = (t1 - t0) / 40.0;
  if (const char* value = FlagValue(argc, argv, "--step")) {
    step = std::atof(value);
  }
  if (!(step > 0.0)) {
    step = 1.0;
  }

  std::printf("%8s %6s %7s %8s", "t(s)", "load", "slack", "tail_ms");
  for (int pod = 0; pod < recording.pod_count(); ++pod) {
    std::printf(" | %5s.%-3d %7s %6s %6s", "cpu", pod, "cores", "ways", "inst");
  }
  std::printf("\n");
  const TimeSeries* tail = recording.Metric("tail_ms");
  for (double t = t0 + step; t <= t1 + 1e-9; t += step) {
    std::printf("%8.1f %6.2f %7.2f %8.1f", t, load->ValueAt(t), slack->ValueAt(t),
                tail != nullptr ? tail->ValueAt(t) : 0.0);
    for (int pod = 0; pod < recording.pod_count(); ++pod) {
      const std::string prefix = "pod" + std::to_string(pod) + ".";
      const TimeSeries* cpu = recording.Metric(prefix + "cpu_util");
      const TimeSeries* cores = recording.Metric(prefix + "be_cores");
      const TimeSeries* ways = recording.Metric(prefix + "be_ways");
      const TimeSeries* inst = recording.Metric(prefix + "be_instances");
      std::printf(" | %9.2f %7.0f %6.0f %6.0f", cpu != nullptr ? cpu->ValueAt(t) : 0.0,
                  cores != nullptr ? cores->ValueAt(t) : 0.0,
                  ways != nullptr ? ways->ValueAt(t) : 0.0,
                  inst != nullptr ? inst->ValueAt(t) : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  Recording recording;
  try {
    recording = LoadJsonl(argv[2]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "obs_query: %s\n", error.what());
    return 1;
  }
  if (command == "summary") {
    return CmdSummary(recording);
  }
  if (command == "events") {
    return CmdEvents(recording, argc, argv);
  }
  if (command == "timeline") {
    return CmdTimeline(recording, argc, argv);
  }
  return Usage();
}
