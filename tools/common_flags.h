// Shared command-line parsing for the tools/ CLIs.
//
// Every tool parses flags the same way — walk argv once, `--flag value` /
// `--flag=value` pairs plus a few valueless switches, reject anything
// unrecognized with exit status 2 — and several of them share whole flag
// families (the search budget of adversary_search and chaos_fuzz,
// seed/jobs/output paths). FlagParser centralizes the walk; the Match*
// helpers bundle the shared families so the tools cannot drift apart on
// spelling or semantics.
//
// Usage:
//   FlagParser flags(argc, argv);
//   while (flags.Next()) {
//     if (flags.U64("--seed", &seed) || flags.Int("--jobs", &jobs)) {
//       continue;
//     }
//     if (flags.Is("--scan")) { fail_fast = false; continue; }
//     std::fprintf(stderr, "tool: unknown or incomplete option '%s'\n",
//                  flags.arg().c_str());
//     return 2;
//   }
//
// A typed matcher returns false both for a non-matching argument and for a
// matching flag with no value left to consume — either way the caller's
// fall-through prints the same "unknown or incomplete option" diagnostic the
// tools have always emitted.

#ifndef RHYTHM_TOOLS_COMMON_FLAGS_H_
#define RHYTHM_TOOLS_COMMON_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace rhythm {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) : argc_(argc), argv_(argv) {}

  // Advances to the next argument; false when argv is exhausted.
  bool Next() { return ++index_ < argc_; }

  // The current argument, for diagnostics.
  std::string arg() const { return argv_[index_]; }

  // Valueless switch (exact match only; `--flag=x` never matches).
  bool Is(const char* flag) const {
    return std::strcmp(argv_[index_], flag) == 0;
  }

  // `--flag value` / `--flag=value` matchers: on match they consume the
  // value and return true; a matching flag missing its value is NOT
  // consumed (false).
  bool Int(const char* flag, int* out) {
    const char* value = Value(flag);
    if (value == nullptr) {
      return false;
    }
    *out = std::atoi(value);
    return true;
  }

  bool U64(const char* flag, uint64_t* out) {
    const char* value = Value(flag);
    if (value == nullptr) {
      return false;
    }
    *out = std::strtoull(value, nullptr, 10);
    return true;
  }

  bool Double(const char* flag, double* out) {
    const char* value = Value(flag);
    if (value == nullptr) {
      return false;
    }
    *out = std::atof(value);
    return true;
  }

  bool Str(const char* flag, std::string* out) {
    const char* value = Value(flag);
    if (value == nullptr) {
      return false;
    }
    *out = value;
    return true;
  }

  // `--flag on|off` (also accepts true/false/1/0; anything else reads as
  // off, matching the tools' permissive numeric parsing).
  bool OnOff(const char* flag, bool* out) {
    const char* value = Value(flag);
    if (value == nullptr) {
      return false;
    }
    *out = std::strcmp(value, "on") == 0 || std::strcmp(value, "true") == 0 ||
           std::strcmp(value, "1") == 0;
    return true;
  }

 private:
  const char* Value(const char* flag) {
    const char* arg = argv_[index_];
    const size_t length = std::strlen(flag);
    if (std::strncmp(arg, flag, length) != 0) {
      return nullptr;
    }
    if (arg[length] == '=') {
      return arg + length + 1;
    }
    if (arg[length] == '\0' && index_ + 1 < argc_) {
      return argv_[++index_];
    }
    return nullptr;
  }

  int argc_;
  char** argv_;
  int index_ = 0;
};

// The search-budget family shared by adversary_search and chaos_fuzz (and
// any future sweeping tool): generations x population sizes the work,
// wall-clock-budget-s caps it at chunk boundaries (see tools/README.md).
inline bool MatchBudgetFlags(FlagParser& flags, int* generations,
                             int* population, double* wall_clock_budget_s) {
  return flags.Int("--generations", generations) ||
         flags.Int("--population", population) ||
         flags.Double("--wall-clock-budget-s", wall_clock_budget_s);
}

}  // namespace rhythm

#endif  // RHYTHM_TOOLS_COMMON_FLAGS_H_
