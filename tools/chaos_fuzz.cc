// Chaos fuzzer CLI: sweep seeded random fault schedules through full runs
// with the invariant monitor attached, report the first violating
// (config, seed), optionally ddmin-minimize it and write the repro file.
//
// Usage: chaos_fuzz [options]
//   --trials N         sweep size (default 200)
//   --seed S           base seed; trial schedules/runs derive from it (1)
//   --jobs N           worker threads (default: RHYTHM_JOBS or all cores)
//   --load F           offered LC load fraction (0.6)
//   --scan             keep sweeping after a violation (default: fail fast)
//   --tripwire-ms F    arm the synthetic tail tripwire at F ms (off)
//   --horizon-s F      live.recovery horizon (120)
//   --minimize         ddmin-shrink the first finding's schedule
//   --repro-out PATH   write the (minimized) finding as a repro file
//
// Cluster mode (machine-loss schedules against full cluster runs, with the
// cluster invariant checker armed; DESIGN.md §14):
//   --cluster              fuzz cluster runs instead of flat trials
//   --machines N           cluster size per trial (48)
//   --epochs N             placement epochs per trial (2)
//   --policy NAME          placement policy (rhythm-aware)
//   --shards N             engine shard count (RHYTHM_SHARDS or auto)
//   --machine-failures F   expected permanent losses per run (3)
//   --machine-restarts F   expected loss+rejoin cycles per run (2)
//   --supervisor on|off    barrier-driven failover (on)
//   --migration-budget N   re-placements allowed per loss barrier
//   (--minimize / --repro-out apply to flat mode only)
//
// Budget flags shared with tools/adversary_search (see tools/README.md):
//   --generations N        with --population: trials = N * population,
//                          chunked one generation at a time
//   --population N         trials per generation chunk
//   --wall-clock-budget-s F  stop launching chunks after F seconds; checked
//                          only between chunks, so completed trials stay
//                          bit-identical to an unbudgeted sweep (fail-fast
//                          is the deterministic early-stop)
//
// Exit status: 0 sweep clean, 1 violations found, 2 usage/setup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/rhythm.h"
#include "tools/common_flags.h"

using namespace rhythm;

namespace {

void PrintViolations(const std::vector<InvariantViolation>& violations, uint64_t total) {
  for (const InvariantViolation& v : violations) {
    std::printf("    t=%8.1fs machine=%2d %-18s %s\n", v.time_s, v.machine, v.id.c_str(),
                v.detail.c_str());
  }
  if (total > violations.size()) {
    std::printf("    ... and %llu more breaches past the storage cap\n",
                (unsigned long long)(total - violations.size()));
  }
}

}  // namespace

int RunClusterMode(const FuzzOptions& options, const ClusterFuzzOptions& cluster) {
  std::printf("chaos_fuzz: cluster mode, %d trials, seed %llu, %d machines, "
              "%d epochs, policy %s, supervisor %s, %s\n",
              cluster.trials, (unsigned long long)cluster.seed, cluster.machines,
              cluster.epochs, cluster.policy.c_str(),
              cluster.supervisor ? "on" : "off",
              cluster.fail_fast ? "fail-fast" : "full scan");
  (void)options;

  ClusterFuzzReport report;
  try {
    report = FuzzClusterChaos(cluster);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "chaos_fuzz: cluster sweep failed: %s\n", error.what());
    return 2;
  }

  std::printf("trials run: %d, violating: %d\n", report.trials_run, report.violating_trials);
  if (report.budget_exhausted) {
    std::printf("wall-clock budget exhausted; sweep stopped between trials\n");
  }
  if (report.clean()) {
    std::printf("sweep clean: every cluster invariant held on all %d trials\n",
                report.trials_run);
    return 0;
  }
  for (const ClusterFuzzFinding& finding : report.findings) {
    std::printf("  trial #%d: %d events, sched_seed=%llu run_seed=%llu, %llu breaches\n",
                finding.trial, (int)finding.schedule.events.size(),
                (unsigned long long)finding.schedule_seed,
                (unsigned long long)finding.run_seed,
                (unsigned long long)finding.violations_total);
    PrintViolations(finding.violations, finding.violations_total);
  }
  return 1;
}

int main(int argc, char** argv) {
  FuzzOptions options;
  ClusterFuzzOptions cluster;
  bool cluster_mode = false;
  bool minimize = false;
  int trials = 0;  // 0: keep each mode's default sweep size.
  std::string repro_out;

  FlagParser flags(argc, argv);
  while (flags.Next()) {
    if (flags.Int("--trials", &trials) ||
        flags.U64("--seed", &options.seed) ||
        flags.Int("--jobs", &options.jobs) ||
        flags.Double("--load", &options.load) ||
        flags.Double("--tripwire-ms", &options.verify.synthetic_tail_tripwire_ms) ||
        flags.Double("--horizon-s", &options.verify.recovery_horizon_s) ||
        flags.Str("--repro-out", &repro_out) ||
        flags.Int("--machines", &cluster.machines) ||
        flags.Int("--epochs", &cluster.epochs) ||
        flags.Str("--policy", &cluster.policy) ||
        flags.Int("--shards", &cluster.shards) ||
        flags.Double("--machine-failures", &cluster.expected_machine_failures) ||
        flags.Double("--machine-restarts", &cluster.expected_machine_restarts) ||
        flags.OnOff("--supervisor", &cluster.supervisor) ||
        flags.Int("--migration-budget", &cluster.migration_budget) ||
        MatchBudgetFlags(flags, &options.generations, &options.population,
                         &options.wall_clock_budget_s)) {
      continue;
    }
    if (flags.Is("--scan")) {
      options.fail_fast = false;
    } else if (flags.Is("--cluster")) {
      cluster_mode = true;
    } else if (flags.Is("--minimize")) {
      minimize = true;
    } else {
      std::fprintf(stderr, "chaos_fuzz: unknown or incomplete option '%s'\n",
                   flags.arg().c_str());
      return 2;
    }
  }
  if (trials != 0) {
    if (trials < 0) {
      std::fprintf(stderr, "chaos_fuzz: --trials must be positive\n");
      return 2;
    }
    options.trials = trials;
    cluster.trials = trials;
  }
  if (cluster_mode) {
    if (minimize || !repro_out.empty()) {
      std::fprintf(stderr,
                   "chaos_fuzz: --minimize / --repro-out are flat-mode only\n");
      return 2;
    }
    cluster.seed = options.seed;
    cluster.fail_fast = options.fail_fast;
    cluster.wall_clock_budget_s = options.wall_clock_budget_s;
    cluster.verify = options.verify;
    return RunClusterMode(options, cluster);
  }

  std::printf("chaos_fuzz: %d trials, seed %llu, load %.2f, %s\n", options.trials,
              (unsigned long long)options.seed, options.load,
              options.fail_fast ? "fail-fast" : "full scan");

  FuzzReport report;
  try {
    report = FuzzChaos(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "chaos_fuzz: sweep failed: %s\n", error.what());
    return 2;
  }

  std::printf("trials run: %d, violating: %d\n", report.trials_run, report.violating_trials);
  if (report.budget_exhausted) {
    std::printf("wall-clock budget exhausted; sweep stopped at a chunk boundary\n");
  }
  if (report.clean()) {
    std::printf("sweep clean: every invariant held on all %d trials\n", report.trials_run);
    return 0;
  }

  for (const FuzzFinding& finding : report.findings) {
    std::printf("  trial #%d %s: %d events, sched_seed=%llu run_seed=%llu, %llu breaches\n",
                finding.trial, LcAppKindName(finding.app),
                (int)finding.schedule.events.size(), (unsigned long long)finding.schedule_seed,
                (unsigned long long)finding.run_seed,
                (unsigned long long)finding.violations_total);
    PrintViolations(finding.violations, finding.violations_total);
  }

  const FuzzFinding& first = report.findings.front();
  RunRequest repro_request = FuzzTrialRequest(options, first.trial);
  if (minimize) {
    try {
      const MinimizeResult minimal = MinimizeSchedule(repro_request);
      std::printf("minimized trial #%d: %d -> %d events in %d candidate runs\n", first.trial,
                  minimal.events_before, minimal.events_after, minimal.candidates_tried);
      PrintViolations(minimal.violations, minimal.violations.size());
      repro_request.faults = std::make_shared<FaultSchedule>(minimal.schedule);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "chaos_fuzz: minimization failed: %s\n", error.what());
      return 2;
    }
  }
  if (!repro_out.empty()) {
    try {
      SaveChaosRepro(ReproFromRequest(repro_request), repro_out);
      std::printf("repro written to %s\n", repro_out.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "chaos_fuzz: %s\n", error.what());
      return 2;
    }
  }
  return 1;
}
