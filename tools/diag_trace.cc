#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;
int main() {
  DeploymentConfig config;
  config.app_kind = LcAppKind::kEcommerce;
  config.be_kind = BeJobKind::kWordcount;
  config.controller = ControllerKind::kRhythm;
  config.thresholds = CachedAppThresholds(LcAppKind::kEcommerce).pods;
  config.seed = 11;
  Deployment d(config);
  DiurnalTrace trace(1500.0, 0.15, 0.80);
  d.Start(&trace);
  d.RunFor(1500.0);
  for (double t = 10; t <= 1500; t += 10) {
    double tail = d.tail_series().ValueAt(t);
    if (tail > 0.8 * d.sla_ms() || ((int)t % 100)==0) {
      std::printf("t=%6.0f load=%.2f tail=%7.1f slack=%+.2f | cores:", t,
        d.load_series().ValueAt(t), tail, d.slack_series().ValueAt(t));
      for (int p = 0; p < 4; ++p) std::printf(" %d:%.0f", p, d.pod_series(p).be_cores.ValueAt(t));
      std::printf("\n");
    }
  }
  std::printf("violations=%llu kills=%llu\n", (unsigned long long)d.TotalSlaViolations(),
              (unsigned long long)d.TotalBeKills());
  return 0;
}
