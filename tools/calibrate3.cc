// Prints derived thresholds for every app, and the 85%-load comparison.
#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;
int main() {
  for (LcAppKind kind : AllLcAppKinds()) {
    const AppThresholds& th = CachedAppThresholds(kind);
    const AppSpec spec = MakeApp(kind);
    std::printf("== %s\n", spec.name.c_str());
    for (int i = 0; i < spec.pod_count(); ++i)
      std::printf("  %-14s loadlimit=%.2f slacklimit=%.3f C=%.4f\n",
        spec.components[i].name.c_str(), th.pods[i].loadlimit, th.pods[i].slacklimit,
        th.contributions[i].contribution);
  }
  // 85% load: Rhythm should still co-locate at tolerant pods, Heracles not.
  for (auto ctrl : {ControllerKind::kHeracles, ControllerKind::kRhythm}) {
    ExperimentConfig e; e.app=LcAppKind::kEcommerce; e.be=BeJobKind::kWordcount;
    e.controller=ctrl; e.warmup_s=30; e.measure_s=120;
    RunSummary s = RunColocation(e, 0.85);
    std::printf("%s@0.85: EMU=%.3f beThr=%.3f worstTail=%.2f viol=%llu ", ControllerKindName(ctrl),
      s.emu, s.be_throughput, s.worst_tail_ratio, (unsigned long long)s.sla_violations);
    for (size_t i=0;i<s.pods.size();++i) std::printf(" p%zu=%.2f", i, s.pods[i].be_throughput);
    std::printf("\n");
  }
  return 0;
}
