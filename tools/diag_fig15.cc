#include <cstdio>
#include "src/rhythm.h"
using namespace rhythm;
int main() {
  DeploymentConfig config;
  config.app_kind = LcAppKind::kSolr;
  config.be_kind = BeJobKind::kStreamDramBig;
  config.controller = ControllerKind::kRhythm;
  config.thresholds = CachedAppThresholds(LcAppKind::kSolr).pods;
  config.seed = 11;
  Deployment d(config);
  DiurnalTrace trace(900.0, 0.15, 0.85);
  d.Start(&trace);
  for (double t = 4; t <= 920; t += 4) {
    d.RunFor(4.0);
    double tail = d.service().TailLatencyMs();
    if (t > 756 && t < 792) {
      const ResourceVector c = InterferenceModel::Contention(d.machine(0), d.be(0));
      std::printf("   contention cpu=%.3f llc=%.3f dram=%.3f net=%.3f | lcfreq=%.2f membw lc=%.1f be=%.1f inst=%d ways=%d\n",
        c.cpu, c.llc, c.dram, c.net, d.machine(0).power().LcSpeedFactor(),
        d.machine(0).membw().lc_demand_gbs(), d.machine(0).membw().be_demand_gbs(),
        d.be(0)->instance_count(), d.be(0)->TotalWaysHeld());
    }
    if ((t > 700 && t < 800) || tail > 0.95 * d.sla_ms()) {
      std::printf("t=%5.0f load=%.2f tail=%7.1f | solr: cores=%.0f util=%.2f infl=%.2f | zk: cores=%.0f infl=%.2f\n",
        t, d.service().CurrentLoad(), tail,
        d.pod_series(0).be_cores.ValueAt(t), d.service().PodUtilization(0),
        d.service().PodInflation(0),
        d.pod_series(1).be_cores.ValueAt(t), d.service().PodInflation(1));
    }
  }
  std::printf("viol=%llu kills=%llu thresholds solr=%.2f/%.3f zk=%.2f/%.3f\n",
    (unsigned long long)d.TotalSlaViolations(), (unsigned long long)d.TotalBeKills(),
    config.thresholds[0].loadlimit, config.thresholds[0].slacklimit,
    config.thresholds[1].loadlimit, config.thresholds[1].slacklimit);
  return 0;
}
