// Measures the hiccup amplitude: the ratio of the worst to the mean
// per-second 99th percentile of a solo run at high load. The slacklimit
// guard floor in FindSlacklimits must exceed (ratio - 1), or derived
// thresholds would let BEs ride within one hiccup of the SLA.
//
// The solo run (enable_be=false) is not expressible through Run(), so this
// also doubles as the manual-attachment example for the flight recorder:
// wire it into DeploymentConfig yourself (observer + obs_sink), schedule the
// metric snapshots after Start(), and read the tail timeline back from the
// Recording instead of from the deployment.

#include <cstdio>

#include "src/rhythm.h"

using namespace rhythm;

int main() {
  ObsOptions obs;
  obs.enabled = true;
  FlightRecorder recorder(obs);

  DeploymentConfig config;
  config.app_kind = LcAppKind::kEcommerce;
  config.enable_be = false;
  config.seed = 3;
  config.observer = &recorder;
  config.obs_sink = &recorder;
  Deployment deployment(config);
  ConstantLoad profile(0.8);
  deployment.Start(&profile);
  recorder.ScheduleSnapshots(deployment);
  deployment.RunFor(150.0);

  recorder.DescribeDeployment(deployment);
  const Recording recording = recorder.TakeRecording();
  const TimeSeries* tail = recording.Metric("tail_ms");
  if (tail == nullptr || tail->empty()) {
    std::fprintf(stderr, "diag_hiccup: recorder captured no tail_ms timeline\n");
    return 1;
  }
  const double mean = tail->AverageIn(20.0, 150.0);
  const double worst = tail->MaxIn(20.0, 150.0);
  std::printf("solo @80%% load: mean p99 = %.1f ms, worst per-second p99 = %.1f ms, "
              "hiccup amplitude = %.3f\n",
              mean, worst, worst / mean);
  std::printf("(from a %zu-point recorded timeline; %llu events, SLO violations: %zu)\n",
              tail->size(), (unsigned long long)recording.events_total,
              recording.Filter(ObsKind::kSloViolation).size());
  return 0;
}
