// Measures the hiccup amplitude: the ratio of the worst to the mean
// per-second 99th percentile of a solo run at high load. The slacklimit
// guard floor in FindSlacklimits must exceed (ratio - 1), or derived
// thresholds would let BEs ride within one hiccup of the SLA.

#include <cstdio>

#include "src/rhythm.h"

using namespace rhythm;

int main() {
  DeploymentConfig config;
  config.app_kind = LcAppKind::kEcommerce;
  config.enable_be = false;
  config.seed = 3;
  Deployment deployment(config);
  ConstantLoad profile(0.8);
  deployment.Start(&profile);
  deployment.RunFor(150.0);
  const double mean = deployment.tail_series().AverageIn(20.0, 150.0);
  const double worst = deployment.tail_series().MaxIn(20.0, 150.0);
  std::printf("solo @80%% load: mean p99 = %.1f ms, worst per-second p99 = %.1f ms, "
              "hiccup amplitude = %.3f\n",
              mean, worst, worst / mean);
  return 0;
}
