// Chaos calibration: one mid-run machine crash under steady load, replayed
// against each controller. Prints the slack trajectory around the crash plus
// the recovery/violation counters, so the crash magnitude and load level can
// be tuned until the acceptance shape holds: Rhythm recovers to positive
// slack during the outage while the uncontrolled baseline stays in
// violation.
//
// Usage: diag_chaos [load] [inflation] [down_s]

#include <cstdio>
#include <cstdlib>

#include "src/rhythm.h"

using namespace rhythm;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  const double inflation = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double down_s = argc > 3 ? std::atof(argv[3]) : 60.0;

  const LcAppKind app_kind = LcAppKind::kEcommerce;
  const AppSpec app = MakeApp(app_kind);
  const int crash_pod = app.PodIndex("MySQL");
  const double crash_at = 120.0;
  const double duration = 300.0;

  FaultSchedule faults;
  faults.Add({FaultKind::kPodCrash, crash_pod, crash_at, down_s, inflation});

  std::printf("chaos: crash pod %d (%s) at t=%.0fs for %.0fs, inflation %.2f, load %.2f\n",
              crash_pod, app.components[crash_pod].name.c_str(), crash_at, down_s, inflation,
              load);
  const AppThresholds& thresholds = CachedAppThresholds(app_kind);
  for (int pod = 0; pod < static_cast<int>(thresholds.pods.size()); ++pod) {
    std::printf("  pod %d %-10s loadlimit %.2f slacklimit %.3f\n", pod,
                app.components[pod].name.c_str(), thresholds.pods[pod].loadlimit,
                thresholds.pods[pod].slacklimit);
  }
  std::printf("\n");

  for (ControllerKind controller :
       {ControllerKind::kRhythm, ControllerKind::kHeracles, ControllerKind::kNone}) {
    DeploymentConfig config;
    config.app_kind = app_kind;
    config.be_kind = BeJobKind::kWordcount;
    config.controller = controller;
    if (controller == ControllerKind::kRhythm) {
      config.thresholds = CachedAppThresholds(app_kind).pods;
    }
    config.seed = 31;
    config.faults = &faults;
    Deployment deployment(config);
    ConstantLoad profile(load);
    deployment.Start(&profile);
    if (controller == ControllerKind::kNone) {
      // Uncontrolled co-location: one full-demand BE per pod — light enough
      // that the pre-crash state is healthy, so the violations that follow
      // are the crash's doing.
      for (int pod = 0; pod < deployment.pod_count(); ++pod) {
        deployment.LaunchBeAtPod(pod, 1);
      }
    }
    deployment.RunFor(duration);

    std::printf("--- %s ---\n", ControllerKindName(controller));
    std::printf("%8s %7s %7s %9s\n", "t(s)", "slack", "tail", "be_inst");
    for (double t = crash_at - 20.0; t <= crash_at + down_s + 60.0; t += 10.0) {
      double instances = 0.0;
      for (int pod = 0; pod < deployment.pod_count(); ++pod) {
        instances += deployment.pod_series(pod).be_instances.ValueAt(t);
      }
      std::printf("%8.0f %7.2f %7.1f %9.1f\n", t, deployment.slack_series().ValueAt(t),
                  deployment.tail_series().ValueAt(t), instances);
    }
    int outage_violations = 0;
    for (double t = crash_at + 1.0; t <= crash_at + down_s; t += 1.0) {
      if (deployment.slack_series().ValueAt(t) < 0.0) {
        ++outage_violations;
      }
    }
    std::printf("outage violations: %d / %.0f ticks\n", outage_violations, down_s);
    const RunSummary summary = Summarize(deployment, 0.0, duration);
    std::printf("recovery_s=%.1f recovered=%d slack_violation_ticks=%llu crashes=%llu "
                "crash_be_losses=%llu stale_ticks=%llu failed_actuations=%llu "
                "backoff_holds=%llu kills=%llu\n\n",
                summary.recovery_s, summary.recovered ? 1 : 0,
                (unsigned long long)summary.slack_violation_ticks,
                (unsigned long long)summary.crashes,
                (unsigned long long)summary.crash_be_losses,
                (unsigned long long)summary.stale_ticks,
                (unsigned long long)summary.failed_actuations,
                (unsigned long long)summary.backoff_holds,
                (unsigned long long)summary.be_kills);
  }
  return 0;
}
