// Chaos calibration: one mid-run machine crash under steady load, replayed
// against each controller. Prints the slack trajectory around the crash plus
// the recovery/violation counters, so the crash magnitude and load level can
// be tuned until the acceptance shape holds: Rhythm recovers to positive
// slack during the outage while the uncontrolled baseline stays in
// violation.
//
// Each replay is a plain RunRequest played through Run() with the invariant
// monitor (collect mode) AND a flight recorder attached — the slack/tail
// trajectory and the decision chain around the crash are printed from the
// finished Recording, and the counters from the RunSummary. Set
// RHYTHM_OBS_DIR=<dir> to also export each replay's recording
// (chaos_<controller>.jsonl / .trace.json / .csv) for obs_query or Perfetto;
// the CI obs smoke step drives exactly that path.
//
// Usage: diag_chaos [load] [inflation] [down_s]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/rhythm.h"

using namespace rhythm;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  double inflation = argc > 2 ? std::atof(argv[2]) : 0.5;
  double down_s = argc > 3 ? std::atof(argv[3]) : 60.0;
  // Garbage argv parses to 0 (atof); a zero-length crash window or an
  // out-of-range inflation is rejected by fault validation, so fall back to
  // legal values instead of aborting.
  if (!(down_s > 0.0)) down_s = 60.0;
  if (!(inflation >= 0.0 && inflation <= kMaxCrashInflation)) inflation = 0.5;

  const LcAppKind app_kind = LcAppKind::kEcommerce;
  const AppSpec app = MakeApp(app_kind);
  const int crash_pod = app.PodIndex("MySQL");
  const double crash_at = 120.0;
  const double duration = 300.0;
  const char* obs_dir = std::getenv("RHYTHM_OBS_DIR");

  auto faults = std::make_shared<FaultSchedule>();
  faults->Add({FaultKind::kPodCrash, crash_pod, crash_at, down_s, inflation});

  std::printf("chaos: crash pod %d (%s) at t=%.0fs for %.0fs, inflation %.2f, load %.2f\n",
              crash_pod, app.components[crash_pod].name.c_str(), crash_at, down_s, inflation,
              load);
  const AppThresholds& thresholds = CachedAppThresholds(app_kind);
  for (int pod = 0; pod < static_cast<int>(thresholds.pods.size()); ++pod) {
    std::printf("  pod %d %-10s loadlimit %.2f slacklimit %.3f\n", pod,
                app.components[pod].name.c_str(), thresholds.pods[pod].loadlimit,
                thresholds.pods[pod].slacklimit);
  }
  std::printf("\n");

  for (ControllerKind controller :
       {ControllerKind::kRhythm, ControllerKind::kHeracles, ControllerKind::kNone}) {
    RunRequest request;
    request.app = app_kind;
    request.be = BeJobKind::kWordcount;
    request.controller = controller;
    request.seed = 31;
    request.load = load;
    request.warmup_s = 0.0;
    request.measure_s = duration;
    request.faults = faults;
    request.verify.mode = InvariantMode::kCollect;
    request.obs.enabled = true;
    if (obs_dir != nullptr) {
      const std::string stem =
          std::string(obs_dir) + "/chaos_" + ControllerKindName(controller);
      request.obs.export_jsonl = stem + ".jsonl";
      request.obs.export_perfetto = stem + ".trace.json";
      request.obs.export_metrics_csv = stem + ".csv";
    }

    TrialHooks hooks;
    if (controller == ControllerKind::kNone) {
      // Uncontrolled co-location: one full-demand BE per pod — light enough
      // that the pre-crash state is healthy, so the violations that follow
      // are the crash's doing.
      hooks.after_start = [](Deployment& deployment) {
        for (int pod = 0; pod < deployment.pod_count(); ++pod) {
          deployment.LaunchBeAtPod(pod, 1);
        }
      };
    }
    RunSummary summary;
    hooks.inspect = [&summary](const Deployment&, const RunSummary& s) { summary = s; };
    hooks.on_recording = [&](const Recording& recording) {
      std::printf("--- %s ---\n", ControllerKindName(controller));
      const TimeSeries* slack = recording.Metric("slack");
      const TimeSeries* tail = recording.Metric("tail_ms");
      std::printf("%8s %7s %7s %9s\n", "t(s)", "slack", "tail", "be_inst");
      for (double t = crash_at - 20.0; t <= crash_at + down_s + 60.0; t += 10.0) {
        double instances = 0.0;
        for (int pod = 0; pod < recording.pod_count(); ++pod) {
          const TimeSeries* inst =
              recording.Metric("pod" + std::to_string(pod) + ".be_instances");
          instances += inst != nullptr ? inst->ValueAt(t) : 0.0;
        }
        std::printf("%8.0f %7.2f %7.1f %9.1f\n", t, slack->ValueAt(t), tail->ValueAt(t),
                    instances);
      }
      int outage_violations = 0;
      for (double t = crash_at + 1.0; t <= crash_at + down_s; t += 1.0) {
        if (slack->ValueAt(t) < 0.0) {
          ++outage_violations;
        }
      }
      std::printf("outage violations: %d / %.0f ticks\n", outage_violations, down_s);
      std::printf("recovery_s=%.1f recovered=%d slack_violation_ticks=%llu crashes=%llu "
                  "crash_be_losses=%llu stale_ticks=%llu failed_actuations=%llu "
                  "backoff_holds=%llu kills=%llu invariant_breaches=%llu\n",
                  summary.recovery_s, summary.recovered ? 1 : 0,
                  (unsigned long long)summary.slack_violation_ticks,
                  (unsigned long long)summary.crashes,
                  (unsigned long long)summary.crash_be_losses,
                  (unsigned long long)summary.stale_ticks,
                  (unsigned long long)summary.failed_actuations,
                  (unsigned long long)summary.backoff_holds,
                  (unsigned long long)summary.be_kills,
                  (unsigned long long)summary.invariant_violations_total);
      for (const InvariantViolation& v : summary.invariant_violations) {
        std::printf("  INVARIANT t=%.1fs machine=%d %s: %s\n", v.time_s, v.machine,
                    v.id.c_str(), v.detail.c_str());
      }
      // Decision audit around the crash: what the crash pod's controller saw
      // and did from just before the outage to just after the reboot.
      std::printf("decision chain on pod %d around the crash:\n", crash_pod);
      int printed = 0;
      for (const ObsEvent& event :
           recording.Filter(ObsKind::kDecision, crash_pod, crash_at - 10.0,
                            crash_at + down_s + 20.0)) {
        std::printf("  %s\n", DescribeEvent(event).c_str());
        if (++printed >= 12) {
          std::printf("  ...\n");
          break;
        }
      }
      std::printf("fault edges: %zu, events recorded: %llu (%llu dropped)\n\n",
                  recording.Filter(ObsKind::kFault).size(),
                  (unsigned long long)recording.events_total,
                  (unsigned long long)recording.events_dropped);
    };

    Run(request, hooks);
  }
  return 0;
}
