// Cluster placement-policy comparison CLI (Fig. 12/15-style): run the same
// ClusterSpec under several PlacementPolicies and print cluster EMU,
// SLO-violation rate and churn side by side.
//
// Usage: place_eval [options]
//   --policies A,B,C   comma-separated policy names (default: all registered)
//   --machines N       cluster machine population (32)
//   --synthetic        use SyntheticClusterSpec instead of the default eval
//                      spec — the datacenter-scale preset (pair with
//                      --machines 1000)
//   --seed S           base seed; group trials derive theirs (11)
//   --jobs N           worker threads (default: RHYTHM_JOBS or all cores)
//   --shards N         machine shards inside each cluster trial (default:
//                      RHYTHM_SHARDS, then the jobs resolution); results are
//                      bit-identical at any value
//   --epochs N         placement rounds (1)
//   --warmup-s F       per-group warmup window (10)
//   --measure-s F      per-group measurement window (60)
//   --ramp F           ramp epoch load scale linearly from 1.0 to F (1.0)
//   --fail-machines N@t  permanently fail N machines at t seconds into the
//                      run (evenly spaced over the roster, machine
//                      i*machines/N) — a replayable failure-domain scenario;
//                      adds a per-policy "failover" line to the output
//   --supervisor on|off  barrier-driven failover for the injected losses
//                      (default on; only meaningful with --fail-machines)
//   --bench-json PATH  write the comparison as BENCH_placement.json
//   --obs-out PATH     write each policy's placement Recording as JSONL
//                      (multi-policy runs insert the policy name before the
//                      extension; obs_query can summarize the stream)
//   --assert-order     fail unless rhythm-aware >= greedy-interference >=
//                      random on EMU, rhythm-aware beats bin-packing and
//                      random outright, and rhythm-aware's SLO-violation
//                      rate is no worse than bin-packing's or random's —
//                      the CI regression gate
//
// All output is deterministic for a fixed seed (%.17g metrics, no
// wall-clock or worker-count dependence), so CI diffs RHYTHM_JOBS=1
// against RHYTHM_JOBS=4 — and --shards 1 against --shards 4 —
// byte-for-byte.
//
// Exit status: 0 success, 1 assertion failure, 2 usage/setup error.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/rhythm.h"
#include "tools/common_flags.h"

using namespace rhythm;

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::vector<std::string> SplitPolicies(const std::string& csv) {
  std::vector<std::string> names;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      names.push_back(csv.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return names;
}

// out.jsonl -> out.rhythm-aware.jsonl when several policies share one path.
std::string PolicyPath(const std::string& path, const std::string& policy,
                       bool multi) {
  if (!multi) {
    return path;
  }
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + policy;
  }
  return path.substr(0, dot) + "." + policy + path.substr(dot);
}

// "N@t" -> (count, time). Returns false on malformed input.
bool ParseFailMachines(const std::string& value, int* count, double* at_s) {
  char trailing = '\0';
  if (std::sscanf(value.c_str(), "%d@%lf%c", count, at_s, &trailing) != 2) {
    return false;
  }
  return *count > 0 && *at_s >= 0.0;
}

const ClusterSummary* FindPolicy(const std::vector<ClusterSummary>& summaries,
                                 const char* policy) {
  for (const ClusterSummary& summary : summaries) {
    if (summary.policy == policy) {
      return &summary;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policies_csv, bench_json, obs_out;
  int machines = 32;
  uint64_t seed = 11;
  int jobs = 0;
  int shards = 0;
  int epochs = 1;
  bool synthetic = false;
  double warmup_s = 10.0;
  double measure_s = 60.0;
  double ramp = 1.0;
  bool assert_order = false;
  std::string fail_machines;
  bool supervisor_on = true;

  FlagParser flags(argc, argv);
  while (flags.Next()) {
    if (flags.Str("--policies", &policies_csv) ||
        flags.Int("--machines", &machines) || flags.U64("--seed", &seed) ||
        flags.Int("--jobs", &jobs) || flags.Int("--shards", &shards) ||
        flags.Int("--epochs", &epochs) ||
        flags.Double("--warmup-s", &warmup_s) ||
        flags.Double("--measure-s", &measure_s) ||
        flags.Double("--ramp", &ramp) ||
        flags.Str("--fail-machines", &fail_machines) ||
        flags.OnOff("--supervisor", &supervisor_on) ||
        flags.Str("--bench-json", &bench_json) ||
        flags.Str("--obs-out", &obs_out)) {
      continue;
    }
    if (flags.Is("--assert-order")) {
      assert_order = true;
    } else if (flags.Is("--synthetic")) {
      synthetic = true;
    } else {
      std::fprintf(stderr, "place_eval: unknown or incomplete option '%s'\n",
                   flags.arg().c_str());
      return 2;
    }
  }

  const std::vector<std::string> policies =
      policies_csv.empty() ? PlacementPolicyNames()
                           : SplitPolicies(policies_csv);
  if (policies.empty()) {
    std::fprintf(stderr, "place_eval: no policies selected\n");
    return 2;
  }

  const ClusterSpec spec = synthetic ? SyntheticClusterSpec(machines, seed)
                                     : DefaultEvalClusterSpec(machines);
  std::printf("place_eval: %d machines, %d groups (%d pods), seed %llu, "
              "%d epoch(s), warmup %g s + measure %g s, ramp %g\n",
              spec.machines, spec.TotalGroups(), spec.TotalPods(),
              (unsigned long long)seed, epochs, warmup_s, measure_s, ramp);

  // --fail-machines N@t: N permanent losses at t, evenly spaced over the
  // roster so the victims hit distinct placement regions deterministically.
  std::shared_ptr<const FaultSchedule> faults;
  if (!fail_machines.empty()) {
    int fail_count = 0;
    double fail_at_s = 0.0;
    if (!ParseFailMachines(fail_machines, &fail_count, &fail_at_s)) {
      std::fprintf(stderr, "place_eval: --fail-machines wants N@t, got '%s'\n",
                   fail_machines.c_str());
      return 2;
    }
    if (fail_count > spec.machines) {
      std::fprintf(stderr,
                   "place_eval: --fail-machines %d exceeds the %d-machine "
                   "roster\n",
                   fail_count, spec.machines);
      return 2;
    }
    FaultSchedule schedule;
    for (int i = 0; i < fail_count; ++i) {
      FaultEvent event;
      event.kind = FaultKind::kMachineFailure;
      event.pod = static_cast<int>(
          static_cast<int64_t>(i) * spec.machines / fail_count);
      event.start_s = fail_at_s;
      schedule.Add(event);
    }
    faults = std::make_shared<FaultSchedule>(std::move(schedule));
    std::printf("failure scenario: %d machine(s) lost at t=%g s, "
                "supervisor %s\n",
                fail_count, fail_at_s, supervisor_on ? "on" : "off");
  }

  ClusterRunPlan plan;
  for (const std::string& policy : policies) {
    ClusterRunRequest request;
    request.spec = spec;
    request.policy = policy;
    request.seed = seed;
    request.epochs = epochs;
    request.warmup_s = warmup_s;
    request.measure_s = measure_s;
    for (int e = 0; e < epochs; ++e) {
      const double t = epochs > 1 ? static_cast<double>(e) / (epochs - 1) : 0.0;
      request.epoch_load_scale.push_back(1.0 + (ramp - 1.0) * t);
    }
    if (faults != nullptr) {
      request.faults = faults;
      request.supervisor.enabled = supervisor_on;
    }
    if (!obs_out.empty()) {
      request.obs.enabled = true;
      request.obs.export_jsonl =
          PolicyPath(obs_out, policy, policies.size() > 1);
    }
    plan.Add(std::move(request));
  }

  std::vector<ClusterSummary> summaries;
  try {
    RunnerOptions options;
    options.jobs = jobs;
    options.shards = shards;
    summaries = RunClusterPlan(plan, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "place_eval: %s\n", error.what());
    return 2;
  }

  std::printf("%-20s %-10s %-10s %-10s %-10s %-6s %-6s %-5s %-5s %-6s %-5s\n",
              "policy", "emu", "lc", "be", "slo_rate", "viol", "kills",
              "solo", "unpl", "churn", "used");
  for (const ClusterSummary& summary : summaries) {
    std::printf("%-20s %-10.4f %-10.4f %-10.4f %-10.6f %-6llu %-6llu %-5d "
                "%-5d %-6d %-5d\n",
                summary.policy.c_str(), summary.emu, summary.lc_throughput,
                summary.be_throughput, summary.slo_violation_rate,
                (unsigned long long)summary.sla_violations,
                (unsigned long long)summary.be_kills, summary.solo_groups,
                summary.groups_unplaced, summary.placement_churn,
                summary.machines_used);
  }
  if (faults != nullptr) {
    std::printf("%-20s %-7s %-10s %-7s %-5s %-9s %-12s %-9s\n", "policy",
                "failed", "disrupted", "failov", "lost", "migrated",
                "down_grp_s", "latency");
    for (const ClusterSummary& summary : summaries) {
      std::printf("%-20s %-7d %-10d %-7d %-5d %-9d %-12.2f %-9.2f\n",
                  summary.policy.c_str(), summary.machines_failed,
                  summary.groups_disrupted, summary.groups_failed_over,
                  summary.groups_lost, summary.pods_migrated,
                  summary.down_group_seconds,
                  summary.worst_failover_latency_s);
    }
    for (const ClusterSummary& summary : summaries) {
      std::printf("raw-failover %s down_group_seconds=%s "
                  "worst_failover_latency_s=%s\n",
                  summary.policy.c_str(),
                  Num(summary.down_group_seconds).c_str(),
                  Num(summary.worst_failover_latency_s).c_str());
    }
  }
  for (const ClusterSummary& summary : summaries) {
    std::printf("raw %s emu=%s slo_rate=%s tail_ratio=%s\n",
                summary.policy.c_str(), Num(summary.emu).c_str(),
                Num(summary.slo_violation_rate).c_str(),
                Num(summary.worst_tail_ratio).c_str());
  }
  if (!obs_out.empty()) {
    std::printf("placement recordings written to %s\n", obs_out.c_str());
  }

  if (!bench_json.empty()) {
    FILE* out = std::fopen(bench_json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "place_eval: cannot write %s\n", bench_json.c_str());
      return 2;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"machines\": %d,\n", spec.machines);
    std::fprintf(out, "  \"groups\": %d,\n", spec.TotalGroups());
    std::fprintf(out, "  \"pods\": %d,\n", spec.TotalPods());
    std::fprintf(out, "  \"seed\": %llu,\n", (unsigned long long)seed);
    std::fprintf(out, "  \"epochs\": %d,\n", epochs);
    std::fprintf(out, "  \"warmup_s\": %s,\n", Num(warmup_s).c_str());
    std::fprintf(out, "  \"measure_s\": %s,\n", Num(measure_s).c_str());
    std::fprintf(out, "  \"policies\": [");
    for (size_t i = 0; i < summaries.size(); ++i) {
      const ClusterSummary& s = summaries[i];
      std::fprintf(out,
                   "%s\n    {\"policy\": \"%s\", \"emu\": %s, "
                   "\"lc_throughput\": %s, \"be_throughput\": %s, "
                   "\"cpu_util\": %s, \"membw_util\": %s, "
                   "\"slo_violation_rate\": %s, \"sla_violations\": %llu, "
                   "\"be_kills\": %llu, \"worst_tail_ratio\": %s, "
                   "\"groups_placed\": %d, \"groups_unplaced\": %d, "
                   "\"solo_groups\": %d, \"machines_used\": %d, "
                   "\"placement_churn\": %d}",
                   i == 0 ? "" : ",", s.policy.c_str(), Num(s.emu).c_str(),
                   Num(s.lc_throughput).c_str(), Num(s.be_throughput).c_str(),
                   Num(s.cpu_util).c_str(), Num(s.membw_util).c_str(),
                   Num(s.slo_violation_rate).c_str(),
                   (unsigned long long)s.sla_violations,
                   (unsigned long long)s.be_kills,
                   Num(s.worst_tail_ratio).c_str(), s.groups_placed,
                   s.groups_unplaced, s.solo_groups, s.machines_used,
                   s.placement_churn);
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("bench written to %s\n", bench_json.c_str());
  }

  if (assert_order) {
    const ClusterSummary* rhythm = FindPolicy(summaries, kPolicyRhythmAware);
    const ClusterSummary* greedy = FindPolicy(summaries, kPolicyGreedy);
    const ClusterSummary* random = FindPolicy(summaries, kPolicyRandom);
    const ClusterSummary* packing = FindPolicy(summaries, kPolicyBinPacking);
    int failures = 0;
    const auto expect = [&failures](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "place_eval: order violated: %s\n", what);
        ++failures;
      }
    };
    if (rhythm != nullptr && greedy != nullptr) {
      expect(rhythm->emu >= greedy->emu,
             "emu(rhythm-aware) >= emu(greedy-interference)");
    }
    if (greedy != nullptr && random != nullptr) {
      expect(greedy->emu >= random->emu,
             "emu(greedy-interference) >= emu(random)");
    }
    if (rhythm != nullptr && packing != nullptr) {
      expect(rhythm->emu > packing->emu, "emu(rhythm-aware) > emu(bin-packing)");
      expect(rhythm->slo_violation_rate <= packing->slo_violation_rate,
             "slo_rate(rhythm-aware) <= slo_rate(bin-packing)");
    }
    if (rhythm != nullptr && random != nullptr) {
      expect(rhythm->emu > random->emu, "emu(rhythm-aware) > emu(random)");
      expect(rhythm->slo_violation_rate <= random->slo_violation_rate,
             "slo_rate(rhythm-aware) <= slo_rate(random)");
    }
    if (failures > 0) {
      return 1;
    }
    std::printf("policy ordering holds\n");
  }
  return 0;
}
