// rhythm_cli: flag-driven experiment runner.
//
//   rhythm_cli run --app=<name> --be=<name> --controller=<rhythm|heracles>
//              [--load=0.45] [--measure=120] [--warmup=20] [--seed=11] [--csv]
//   rhythm_cli thresholds --app=<name>
//   rhythm_cli profile --app=<name> [--measure=30]
//
// App names: E-commerce | Redis | Solr | Elasticsearch | Elgg | SNMS
// BE names:  CPU-stress | stream-llc(big) | stream-llc(small) |
//            stream-dram(big) | stream-dram(small) | iperf | wordcount |
//            imageClassify | LSTM

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/rhythm.h"

using namespace rhythm;

namespace {

// Minimal --key=value parsing.
std::optional<std::string> FlagValue(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

bool HasFlag(int argc, char** argv, const char* key) {
  const std::string flag = std::string("--") + key;
  for (int i = 2; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

double DoubleFlag(int argc, char** argv, const char* key, double fallback) {
  const auto value = FlagValue(argc, argv, key);
  return value.has_value() ? std::atof(value->c_str()) : fallback;
}

std::optional<LcAppKind> ParseApp(const std::string& name) {
  for (LcAppKind kind : AllLcAppKinds()) {
    if (name == LcAppKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<BeJobKind> ParseBe(const std::string& name) {
  for (BeJobKind kind : AllBeJobKinds()) {
    if (name == GetBeJobSpec(kind).name) {
      return kind;
    }
  }
  return std::nullopt;
}

int CmdRun(int argc, char** argv) {
  const auto app_name = FlagValue(argc, argv, "app");
  const auto be_name = FlagValue(argc, argv, "be");
  const auto controller_name = FlagValue(argc, argv, "controller");
  if (!app_name || !be_name || !controller_name) {
    std::fprintf(stderr, "run requires --app, --be and --controller\n");
    return 2;
  }
  const auto app = ParseApp(*app_name);
  const auto be = ParseBe(*be_name);
  if (!app || !be) {
    std::fprintf(stderr, "unknown app or BE name\n");
    return 2;
  }
  RunRequest request;
  request.app = *app;
  request.be = *be;
  request.controller =
      *controller_name == "heracles" ? ControllerKind::kHeracles : ControllerKind::kRhythm;
  request.warmup_s = DoubleFlag(argc, argv, "warmup", 20.0);
  request.measure_s = DoubleFlag(argc, argv, "measure", 120.0);
  request.seed = static_cast<uint64_t>(DoubleFlag(argc, argv, "seed", 11.0));
  request.load = DoubleFlag(argc, argv, "load", 0.45);
  const double load = request.load;
  const ControllerKind controller = request.controller;

  const RunSummary s = Run(request);
  if (HasFlag(argc, argv, "csv")) {
    std::printf("app,be,controller,load,emu,be_throughput,cpu_util,membw_util,"
                "worst_tail_ratio,sla_violations,be_kills\n");
    std::printf("%s,%s,%s,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%llu\n", LcAppKindName(*app),
                GetBeJobSpec(*be).name.c_str(), ControllerKindName(controller), load,
                s.emu, s.be_throughput, s.cpu_util, s.membw_util, s.worst_tail_ratio,
                (unsigned long long)s.sla_violations, (unsigned long long)s.be_kills);
    return 0;
  }
  std::printf("%s + %s under %s at %.0f%% load (%.0fs window):\n", LcAppKindName(*app),
              GetBeJobSpec(*be).name.c_str(), ControllerKindName(controller),
              load * 100.0, request.measure_s);
  std::printf("  EMU            %8.3f\n", s.emu);
  std::printf("  BE throughput  %8.3f (normalized)\n", s.be_throughput);
  std::printf("  CPU util       %8.3f\n", s.cpu_util);
  std::printf("  MemBW util     %8.3f\n", s.membw_util);
  std::printf("  worst tail     %8.2fx SLA\n", s.worst_tail_ratio);
  std::printf("  SLA violations %8llu\n", (unsigned long long)s.sla_violations);
  std::printf("  BE kills       %8llu\n", (unsigned long long)s.be_kills);
  for (size_t pod = 0; pod < s.pods.size(); ++pod) {
    std::printf("  pod %zu: beThr=%.3f cpu=%.3f membw=%.3f instances=%.1f\n", pod,
                s.pods[pod].be_throughput, s.pods[pod].cpu_util, s.pods[pod].membw_util,
                s.pods[pod].be_instances);
  }
  return 0;
}

int CmdThresholds(int argc, char** argv) {
  const auto app_name = FlagValue(argc, argv, "app");
  const auto app = app_name ? ParseApp(*app_name) : std::nullopt;
  if (!app) {
    std::fprintf(stderr, "thresholds requires --app=<name>\n");
    return 2;
  }
  const AppSpec spec = MakeApp(*app);
  const AppThresholds& thresholds = CachedAppThresholds(*app);
  std::printf("%-16s %10s %10s %14s\n", "Servpod", "loadlimit", "slacklimit", "contribution");
  for (int pod = 0; pod < spec.pod_count(); ++pod) {
    std::printf("%-16s %10.2f %10.3f %14.5f\n", spec.components[pod].name.c_str(),
                thresholds.pods[pod].loadlimit, thresholds.pods[pod].slacklimit,
                thresholds.contributions[pod].contribution);
  }
  return 0;
}

int CmdProfile(int argc, char** argv) {
  const auto app_name = FlagValue(argc, argv, "app");
  const auto app = app_name ? ParseApp(*app_name) : std::nullopt;
  if (!app) {
    std::fprintf(stderr, "profile requires --app=<name>\n");
    return 2;
  }
  ProfileOptions options;
  options.measure_s = DoubleFlag(argc, argv, "measure", 30.0);
  const ProfileResult profile = ProfileSolo(*app, DefaultProfileLevels(), options);
  const AppSpec spec = MakeApp(*app);
  std::printf("load");
  for (int pod = 0; pod < spec.pod_count(); ++pod) {
    std::printf(",%s_mean_ms,%s_cov", spec.components[pod].name.c_str(),
                spec.components[pod].name.c_str());
  }
  std::printf(",p99_ms\n");
  for (size_t level = 0; level < profile.levels.size(); ++level) {
    std::printf("%.2f", profile.levels[level]);
    for (int pod = 0; pod < spec.pod_count(); ++pod) {
      std::printf(",%.3f,%.4f", profile.matrix.pod_sojourn_ms[pod][level],
                  profile.pod_cov[pod][level]);
    }
    std::printf(",%.3f\n", profile.matrix.tail_ms[level]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "run") == 0) {
    return CmdRun(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "thresholds") == 0) {
    return CmdThresholds(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "profile") == 0) {
    return CmdProfile(argc, argv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  rhythm_cli run --app=<name> --be=<name> --controller=<rhythm|heracles>\n"
               "             [--load=0.45] [--measure=120] [--warmup=20] [--seed=11] [--csv]\n"
               "  rhythm_cli thresholds --app=<name>\n"
               "  rhythm_cli profile --app=<name> [--measure=30]\n");
  return 2;
}
