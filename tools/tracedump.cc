// tracedump: capture, store and analyze kernel-event traces.
//
//   tracedump capture <file> [seconds] [app]   record a solo-run trace
//   tracedump stats <file>                     sojourn + path analysis
//
// Demonstrates the archival workflow: traces written by `capture` are plain
// versioned CSV (see src/trace/trace_io.h) and can be analyzed offline.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/rhythm.h"

using namespace rhythm;

namespace {

LcAppKind ParseApp(const char* name) {
  for (LcAppKind kind : AllLcAppKinds()) {
    if (std::strcmp(name, LcAppKindName(kind)) == 0) {
      return kind;
    }
  }
  return LcAppKind::kEcommerce;
}

int Capture(const char* path, double seconds, LcAppKind kind) {
  Simulator sim;
  EventLog log;
  LcService::Config config;
  config.seed = 1234;
  config.sink = &log;
  config.noise_events_per_request = 0.5;
  const AppSpec app = MakeApp(kind);
  LcService service(&sim, app, config);
  ConstantLoad profile(0.4);
  service.SetLoadProfile(&profile);
  service.Start();
  sim.RunUntil(seconds);
  if (!WriteTraceFile(path, log.events())) {
    std::fprintf(stderr, "tracedump: cannot write %s\n", path);
    return 1;
  }
  std::printf("captured %zu events (%llu requests) from %s into %s\n", log.size(),
              (unsigned long long)service.completed_requests(), app.name.c_str(), path);
  return 0;
}

int Stats(const char* path) {
  std::vector<KernelEvent> events;
  if (!ReadTraceFile(path, &events)) {
    std::fprintf(stderr, "tracedump: cannot read %s\n", path);
    return 1;
  }
  // Infer the pod count from the highest LC program id present.
  int pods = 0;
  for (const KernelEvent& event : events) {
    if (event.context.program >= 100 && event.context.program < 200) {
      pods = std::max(pods, static_cast<int>(event.context.program) - 99);
    }
  }
  const TracerConfig tracer{.program_base = 100, .num_pods = pods};
  const SojournSummary summary = ExtractMeanSojourns(events, tracer);
  std::printf("%zu events, %llu requests, %llu noise events filtered, %d Servpods\n",
              events.size(), (unsigned long long)summary.requests,
              (unsigned long long)summary.noise_filtered, pods);
  for (int pod = 0; pod < pods; ++pod) {
    std::printf("  pod %d: %8.3f ms mean sojourn over %llu visits\n", pod,
                summary.mean_sojourn_s[pod] * 1000.0, (unsigned long long)summary.visits[pod]);
  }
  const CpgResult cpgs = BuildCpgs(events, tracer);
  const auto classes = ClassifyPaths(cpgs, tracer);
  std::printf("%zu request CPGs, %zu path class(es):\n", cpgs.requests.size(), classes.size());
  for (const PathClass& cls : classes) {
    std::printf("  pods {");
    for (size_t i = 0; i < cls.pods.size(); ++i) {
      std::printf("%s%d", i > 0 ? "," : "", cls.pods[i]);
    }
    std::printf("}: %llu requests, mean %.2f ms\n", (unsigned long long)cls.requests,
                cls.mean_latency_s * 1000.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "capture") == 0) {
    const double seconds = argc > 3 ? std::atof(argv[3]) : 5.0;
    const LcAppKind app = argc > 4 ? ParseApp(argv[4]) : LcAppKind::kEcommerce;
    return Capture(argv[2], seconds, app);
  }
  if (argc >= 3 && std::strcmp(argv[1], "stats") == 0) {
    return Stats(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n  tracedump capture <file> [seconds] [app]\n"
               "  tracedump stats <file>\n");
  return 2;
}
