// Fault timeline (Fig. 17-style, under injected faults): the ecommerce
// service co-located with wordcount rides through a scripted chaos window —
// a telemetry dropout, an actuation-drop window, a flash-crowd load spike, a
// BE-instance death and a mid-run MySQL machine crash with failover — once
// per controller. The expected shape: Rhythm sheds BEs as the failover
// inflates the tail, recovers to positive slack during the outage and
// re-admits BEs under backoff after the reboot, while the uncontrolled
// baseline rides the whole outage in violation.

#include "bench/bench_util.h"

using namespace rhythm_bench;

int main() {
  const LcAppKind app_kind = LcAppKind::kEcommerce;
  const AppSpec app = MakeApp(app_kind);
  const int mysql = app.PodIndex("MySQL");
  const int tomcat = app.PodIndex("Tomcat");

  const double duration = 420.0;
  const double crash_at = 180.0;
  const double crash_down_s = 60.0;

  FaultSchedule faults;
  faults.Add({FaultKind::kTelemetryDropout, tomcat, 60.0, 20.0, 0.0});
  faults.Add({FaultKind::kActuationDrop, tomcat, 100.0, 20.0, 1.0});
  faults.Add({FaultKind::kLoadSpike, 0, 120.0, 30.0, 0.2});
  faults.Add({FaultKind::kPodCrash, mysql, crash_at, crash_down_s, 1.0});
  faults.Add({FaultKind::kBeInstanceFailure, tomcat, 320.0, 0.0, 0.0});

  std::printf("=== Fault timeline: chaos window against each controller ===\n");
  std::printf("faults: telemetry dropout @60s (Tomcat, 20s), actuation drops @100s\n"
              "        (Tomcat, 20s, p=1.0), load spike @120s (+0.20, 30s),\n"
              "        machine crash @%.0fs (MySQL, %.0fs down, 2.0x failover\n"
              "        inflation), BE-instance death @320s (Tomcat)\n\n",
              crash_at, crash_down_s);

  for (ControllerKind controller :
       {ControllerKind::kRhythm, ControllerKind::kHeracles, ControllerKind::kNone}) {
    DeploymentConfig config;
    config.app_kind = app_kind;
    config.be_kind = BeJobKind::kWordcount;
    config.controller = controller;
    if (controller == ControllerKind::kRhythm) {
      config.thresholds = CachedAppThresholds(app_kind).pods;
    }
    config.seed = 31;
    config.faults = &faults;
    Deployment deployment(config);
    const ConstantLoad base(0.6);
    const SpikedLoadProfile profile(&base, faults);
    deployment.Start(&profile);
    if (controller == ControllerKind::kNone) {
      for (int pod = 0; pod < deployment.pod_count(); ++pod) {
        deployment.LaunchBeAtPod(pod, 1);
      }
    }
    deployment.RunFor(duration);

    std::printf("--- %s ---\n", ControllerKindName(controller));
    std::printf("%7s %6s %7s %8s %8s %8s\n", "t(s)", "load", "slack", "tail(ms)", "be_inst",
                "be_cores");
    const double step = FastMode() ? 20.0 : 10.0;
    for (double t = step; t <= duration; t += step) {
      double instances = 0.0;
      double cores = 0.0;
      for (int pod = 0; pod < deployment.pod_count(); ++pod) {
        instances += deployment.pod_series(pod).be_instances.ValueAt(t);
        cores += deployment.pod_series(pod).be_cores.ValueAt(t);
      }
      std::printf("%7.0f %6.2f %7.2f %8.1f %8.1f %8.1f\n", t,
                  deployment.load_series().ValueAt(t), deployment.slack_series().ValueAt(t),
                  deployment.tail_series().ValueAt(t), instances, cores);
    }
    int outage_violations = 0;
    for (double t = crash_at + 1.0; t <= crash_at + crash_down_s; t += 1.0) {
      if (deployment.slack_series().ValueAt(t) < 0.0) {
        ++outage_violations;
      }
    }
    const RunSummary summary = Summarize(deployment, 0.0, duration);
    std::printf("summary: outage violations %d/%.0f ticks\n", outage_violations, crash_down_s);
    std::printf("         crashes=%llu crash_be_losses=%llu stale_ticks=%llu "
                "failed_actuations=%llu backoff_holds=%llu kills=%llu\n"
                "         slack_violation_ticks=%llu recovery_s=%.1f recovered=%s\n\n",
                (unsigned long long)summary.crashes,
                (unsigned long long)summary.crash_be_losses,
                (unsigned long long)summary.stale_ticks,
                (unsigned long long)summary.failed_actuations,
                (unsigned long long)summary.backoff_holds,
                (unsigned long long)summary.be_kills,
                (unsigned long long)summary.slack_violation_ticks, summary.recovery_s,
                summary.recovered ? "yes" : "NO");
  }

  std::printf("Expected shape: Rhythm and Heracles shed BEs as the failover inflates\n"
              "the tail, recover to positive slack during the outage and re-admit BEs\n"
              "under backoff after the reboot; the uncontrolled run rides the outage\n"
              "in violation. Stale ticks come from the Tomcat telemetry dropout,\n"
              "failed actuations from the drop window.\n");
  return 0;
}
