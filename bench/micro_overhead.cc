// Micro-benchmarks for Rhythm's runtime overhead claims (§5.1 "Overhead"):
// the request tracer consumes ~6% CPU, each controller agent tick is cheap
// (2-second cadence), and the analyzer/threshold math is negligible. These
// google-benchmark timings quantify the per-event / per-tick costs of this
// implementation's equivalents.

#include <benchmark/benchmark.h>

#include "src/rhythm.h"

namespace rhythm {
namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  Simulator sim;
  uint64_t count = 0;
  for (auto _ : state) {
    sim.Schedule(1.0, [&count] { ++count; });
    sim.Step();
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_TracerEventRecord(benchmark::State& state) {
  EventLog log;
  KernelEvent event{.type = EventType::kRecv,
                    .timestamp = 1.0,
                    .context = {1, 100, 1000, 4},
                    .message = {1, 2, 3, 4, 5}};
  for (auto _ : state) {
    event.timestamp += 0.001;
    log.Record(event);
    if (log.size() > 1u << 20) {
      state.PauseTiming();
      log.Clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TracerEventRecord);

void BM_MeanSojournExtraction(benchmark::State& state) {
  // Build a realistic captured trace once; measure extraction throughput.
  Simulator sim;
  EventLog log;
  LcService::Config config;
  config.sink = &log;
  LcService service(&sim, MakeApp(LcAppKind::kEcommerce), config);
  ConstantLoad profile(0.5);
  service.SetLoadProfile(&profile);
  service.Start();
  sim.RunUntil(5.0);
  const TracerConfig tracer{.program_base = 100, .num_pods = 4};
  for (auto _ : state) {
    const SojournSummary summary = ExtractMeanSojourns(log.events(), tracer);
    benchmark::DoNotOptimize(summary.requests);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_MeanSojournExtraction);

void BM_CpgConstruction(benchmark::State& state) {
  Simulator sim;
  EventLog log;
  LcService::Config config;
  config.sink = &log;
  LcService service(&sim, MakeApp(LcAppKind::kSolr), config);
  ConstantLoad profile(0.3);
  service.SetLoadProfile(&profile);
  service.Start();
  sim.RunUntil(2.0);
  const TracerConfig tracer{.program_base = 100, .num_pods = 2};
  for (auto _ : state) {
    const CpgResult result = BuildCpgs(log.events(), tracer);
    benchmark::DoNotOptimize(result.requests.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_CpgConstruction);

void BM_ControllerDecision(benchmark::State& state) {
  TopController controller(ServpodThresholds{.loadlimit = 0.85, .slacklimit = 0.2});
  double tail = 100.0;
  for (auto _ : state) {
    tail = tail > 240.0 ? 100.0 : tail + 1.0;
    benchmark::DoNotOptimize(controller.Decide(0.6, tail, 250.0));
  }
}
BENCHMARK(BM_ControllerDecision);

void BM_MachineAgentTick(benchmark::State& state) {
  MachineSpec spec;
  LcReservation reservation;
  Machine machine("m0", spec, reservation);
  BeRuntime be(&machine, BeJobKind::kWordcount);
  MachineAgent agent(&machine, &be, ServpodThresholds{.loadlimit = 0.85, .slacklimit = 0.2},
                     250.0);
  for (auto _ : state) {
    agent.Tick(0.5, 120.0);
  }
}
BENCHMARK(BM_MachineAgentTick);

void BM_InterferenceInflation(benchmark::State& state) {
  MachineSpec spec;
  LcReservation reservation;
  Machine machine("m0", spec, reservation);
  BeRuntime be(&machine, BeJobKind::kStreamDramBig);
  be.LaunchInstance();
  be.PublishActivity();
  const ResourceVector sens{.cpu = 0.7, .llc = 1.4, .dram = 1.9, .net = 0.9, .freq = 0.45};
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterferenceModel::Inflation(sens, machine, &be));
  }
}
BENCHMARK(BM_InterferenceInflation);

void BM_ContributionAnalysis(benchmark::State& state) {
  ProfileMatrix profile;
  const int levels = 19;
  for (int pod = 0; pod < 4; ++pod) {
    std::vector<double> row;
    for (int level = 0; level < levels; ++level) {
      row.push_back(10.0 + pod * 5.0 + level * 0.7);
    }
    profile.pod_sojourn_ms.push_back(row);
  }
  for (int level = 0; level < levels; ++level) {
    profile.tail_ms.push_back(100.0 + level * 8.0);
  }
  const AppSpec app = MakeApp(LcAppKind::kEcommerce);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeContributions(profile, app.call_root));
  }
}
BENCHMARK(BM_ContributionAnalysis);

void BM_LatencySample(benchmark::State& state) {
  const AppSpec app = MakeApp(LcAppKind::kEcommerce);
  const ComponentModel model(app.components[3]);
  Rng rng(41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SampleLocalMs(700.0, 0.6, 1.2, rng));
  }
}
BENCHMARK(BM_LatencySample);

void BM_PercentileWindowQuantile(benchmark::State& state) {
  PercentileWindow window(10.0);
  Rng rng(43);
  double now = 0.0;
  for (int i = 0; i < 10000; ++i) {
    now += 0.001;
    window.Add(now, rng.Exponential(10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.Quantile(now, 0.99));
  }
}
BENCHMARK(BM_PercentileWindowQuantile);

}  // namespace
}  // namespace rhythm

BENCHMARK_MAIN();
