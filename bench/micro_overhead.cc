// Micro-benchmarks for Rhythm's runtime overhead claims (§5.1 "Overhead"):
// the request tracer consumes ~6% CPU, each controller agent tick is cheap
// (2-second cadence), and the analyzer/threshold math is negligible. These
// google-benchmark timings quantify the per-event / per-tick costs of this
// implementation's equivalents.

#include <benchmark/benchmark.h>

#include "src/rhythm.h"

namespace rhythm {
namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  Simulator sim;
  uint64_t count = 0;
  for (auto _ : state) {
    sim.Schedule(1.0, [&count] { ++count; });
    sim.Step();
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_TracerEventRecord(benchmark::State& state) {
  EventLog log;
  KernelEvent event{.type = EventType::kRecv,
                    .timestamp = 1.0,
                    .context = {1, 100, 1000, 4},
                    .message = {1, 2, 3, 4, 5}};
  for (auto _ : state) {
    event.timestamp += 0.001;
    log.Record(event);
    if (log.size() > 1u << 20) {
      state.PauseTiming();
      log.Clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TracerEventRecord);

void BM_MeanSojournExtraction(benchmark::State& state) {
  // Build a realistic captured trace once; measure extraction throughput.
  Simulator sim;
  EventLog log;
  LcService::Config config;
  config.sink = &log;
  LcService service(&sim, MakeApp(LcAppKind::kEcommerce), config);
  ConstantLoad profile(0.5);
  service.SetLoadProfile(&profile);
  service.Start();
  sim.RunUntil(5.0);
  const TracerConfig tracer{.program_base = 100, .num_pods = 4};
  for (auto _ : state) {
    const SojournSummary summary = ExtractMeanSojourns(log.events(), tracer);
    benchmark::DoNotOptimize(summary.requests);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_MeanSojournExtraction);

void BM_CpgConstruction(benchmark::State& state) {
  Simulator sim;
  EventLog log;
  LcService::Config config;
  config.sink = &log;
  LcService service(&sim, MakeApp(LcAppKind::kSolr), config);
  ConstantLoad profile(0.3);
  service.SetLoadProfile(&profile);
  service.Start();
  sim.RunUntil(2.0);
  const TracerConfig tracer{.program_base = 100, .num_pods = 2};
  for (auto _ : state) {
    const CpgResult result = BuildCpgs(log.events(), tracer);
    benchmark::DoNotOptimize(result.requests.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_CpgConstruction);

void BM_ControllerDecision(benchmark::State& state) {
  TopController controller(ServpodThresholds{.loadlimit = 0.85, .slacklimit = 0.2});
  double tail = 100.0;
  for (auto _ : state) {
    tail = tail > 240.0 ? 100.0 : tail + 1.0;
    benchmark::DoNotOptimize(controller.Decide(0.6, tail, 250.0));
  }
}
BENCHMARK(BM_ControllerDecision);

void BM_MachineAgentTick(benchmark::State& state) {
  MachineSpec spec;
  LcReservation reservation;
  Machine machine("m0", spec, reservation);
  BeRuntime be(&machine, BeJobKind::kWordcount);
  MachineAgent agent(&machine, &be, ServpodThresholds{.loadlimit = 0.85, .slacklimit = 0.2},
                     250.0);
  for (auto _ : state) {
    agent.Tick(0.5, 120.0);
  }
}
BENCHMARK(BM_MachineAgentTick);

void BM_InterferenceInflation(benchmark::State& state) {
  MachineSpec spec;
  LcReservation reservation;
  Machine machine("m0", spec, reservation);
  BeRuntime be(&machine, BeJobKind::kStreamDramBig);
  be.LaunchInstance();
  be.PublishActivity();
  const ResourceVector sens{.cpu = 0.7, .llc = 1.4, .dram = 1.9, .net = 0.9, .freq = 0.45};
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterferenceModel::Inflation(sens, machine, &be));
  }
}
BENCHMARK(BM_InterferenceInflation);

void BM_ContributionAnalysis(benchmark::State& state) {
  ProfileMatrix profile;
  const int levels = 19;
  for (int pod = 0; pod < 4; ++pod) {
    std::vector<double> row;
    for (int level = 0; level < levels; ++level) {
      row.push_back(10.0 + pod * 5.0 + level * 0.7);
    }
    profile.pod_sojourn_ms.push_back(row);
  }
  for (int level = 0; level < levels; ++level) {
    profile.tail_ms.push_back(100.0 + level * 8.0);
  }
  const AppSpec app = MakeApp(LcAppKind::kEcommerce);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeContributions(profile, app.call_root));
  }
}
BENCHMARK(BM_ContributionAnalysis);

void BM_LatencySample(benchmark::State& state) {
  const AppSpec app = MakeApp(LcAppKind::kEcommerce);
  const ComponentModel model(app.components[3]);
  Rng rng(41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SampleLocalMs(700.0, 0.6, 1.2, rng));
  }
}
BENCHMARK(BM_LatencySample);

void BM_PercentileWindowQuantile(benchmark::State& state) {
  // Repeated query at one instant: after the first selection this measures
  // the per-(timestamp, q) memo the tick handlers lean on.
  PercentileWindow window(10.0);
  Rng rng(43);
  double now = 0.0;
  for (int i = 0; i < 10000; ++i) {
    now += 0.001;
    window.Add(now, rng.Exponential(10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.Quantile(now, 0.99));
  }
  state.counters["memo_hits"] =
      static_cast<double>(window.query_stats().memo_hits);
}
BENCHMARK(BM_PercentileWindowQuantile);

void BM_PercentileWindowAddQuery(benchmark::State& state) {
  // The control-plane steady state: samples stream in, the quantile is
  // re-asked at a fresh timestamp each time (no memo). Pre-overhaul each
  // query copied and nth_element-ed the entire window.
  PercentileWindow window(10.0);
  Rng rng(44);
  double now = 0.0;
  for (int i = 0; i < 10000; ++i) {
    now += 0.001;
    window.Add(now, rng.Exponential(10.0));
  }
  for (auto _ : state) {
    now += 0.001;
    window.Add(now, rng.Exponential(10.0));
    benchmark::DoNotOptimize(window.Quantile(now, 0.99));
  }
  state.counters["chunks_scanned"] =
      static_cast<double>(window.query_stats().last_chunks_scanned);
  state.counters["window_n"] = static_cast<double>(window.size());
}
BENCHMARK(BM_PercentileWindowAddQuery);

void BM_SimulatorPeriodicReArm(benchmark::State& state) {
  // One firing of a periodic task per iteration: dequeue, run the action,
  // advance next_time, re-arm. Pre-overhaul the re-arm copied the stored
  // std::function each firing.
  Simulator sim;
  uint64_t ticks = 0;
  double payload[4] = {1.0, 2.0, 3.0, 4.0};
  sim.SchedulePeriodic(0.0, 1.0, [&ticks, payload] {
    ticks += static_cast<uint64_t>(payload[0]);
  });
  for (auto _ : state) {
    sim.Step();
  }
  benchmark::DoNotOptimize(ticks);
  state.counters["heap_allocations"] =
      static_cast<double>(InlineFunction::heap_allocations());
}
BENCHMARK(BM_SimulatorPeriodicReArm);

void BM_LatencySampleMemoized(benchmark::State& state) {
  // The per-request fast path: parameters fixed between ticks, so only the
  // two or three RNG draws remain per sample.
  const AppSpec app = MakeApp(LcAppKind::kEcommerce);
  const ComponentModel model(app.components[3]);
  const ComponentModel::LocalParams params = model.ComputeLocalParams(700.0, 0.6, 1.2);
  Rng rng(41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComponentModel::SampleWithParams(params, rng));
  }
}
BENCHMARK(BM_LatencySampleMemoized);

}  // namespace
}  // namespace rhythm

BENCHMARK_MAIN();
