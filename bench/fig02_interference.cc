// Figure 2: impact of interference on the 99th percentile latency of LC
// service components. Each Servpod of Redis (a) and E-commerce (b) is
// co-located — without any controller — with one BE stressor at a time, at
// 20/40/60/80% of MaxLoad; reported is the 99th-percentile increase over the
// solo run, in percent (the paper plots log2 of this).

#include <cmath>

#include "bench/bench_util.h"

using namespace rhythm_bench;

namespace {

constexpr double kDvfsFreqGhz = 1.2;  // DVFS interference group.

double SoloP99(LcAppKind app, double load, double window) {
  DeploymentConfig config;
  config.app_kind = app;
  config.enable_be = false;
  config.seed = 17;
  config.tail_window_s = window;
  Deployment deployment(config);
  const ConstantLoad profile(load);
  deployment.Start(&profile);
  deployment.RunFor(window + 5.0);
  return deployment.service().TailLatencyMs();
}

double InterferedP99(LcAppKind app, int pod, BeJobKind be, bool dvfs, int instances,
                     double load, double window) {
  DeploymentConfig config;
  config.app_kind = app;
  config.be_kind = be;
  config.enable_be = !dvfs;
  config.seed = 17;
  config.tail_window_s = window;
  Deployment deployment(config);
  const ConstantLoad profile(load);
  deployment.Start(&profile);
  if (dvfs) {
    deployment.machine(pod).power().SetLcFrequency(kDvfsFreqGhz);
  } else {
    // BE jobs at full demand, as the paper's characterization deploys
    // (CPU-stress spans the socket's spare cores like `stress -c N`).
    deployment.LaunchBeAtPod(pod, instances);
  }
  deployment.RunFor(window + 5.0);
  return deployment.service().TailLatencyMs();
}

void RunPanel(LcAppKind app, const std::vector<const char*>& pod_names) {
  const AppSpec spec = MakeApp(app);
  const double window = FastMode() ? 20.0 : 40.0;
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8};

  struct Group {
    const char* name;
    BeJobKind be;
    bool dvfs;
    int instances;
  };
  const std::vector<Group> groups = {
      {"stream-dram(big)", BeJobKind::kStreamDramBig, false, 1},
      {"stream-dram(small)", BeJobKind::kStreamDramSmall, false, 1},
      {"stream-llc(big)", BeJobKind::kStreamLlcBig, false, 1},
      {"stream-llc(small)", BeJobKind::kStreamLlcSmall, false, 1},
      {"DVFS", BeJobKind::kCpuStress, true, 0},
      {"iperf", BeJobKind::kIperf, false, 1},
      {"CPU-stress", BeJobKind::kCpuStress, false, 5},
  };

  std::printf("--- %s: 99th-latency increase (%%) over solo, by Servpod and load ---\n",
              spec.name.c_str());
  std::vector<double> solo(loads.size());
  for (size_t i = 0; i < loads.size(); ++i) {
    solo[i] = SoloP99(app, loads[i], window);
  }
  for (const Group& group : groups) {
    for (const char* pod_name : pod_names) {
      const int pod = spec.PodIndex(pod_name);
      std::printf("%-20s %-8s", group.name, pod_name);
      for (size_t i = 0; i < loads.size(); ++i) {
        const double p99 =
            InterferedP99(app, pod, group.be, group.dvfs, group.instances, loads[i], window);
        const double increase = 100.0 * (p99 / solo[i] - 1.0);
        std::printf(" %9.0f", increase);
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 2: interference tolerance is component-specific ===\n");
  std::printf("(columns: 20%% 40%% 60%% 80%% of MaxLoad)\n\n");
  RunPanel(LcAppKind::kRedis, {"Master", "Slave"});
  RunPanel(LcAppKind::kEcommerce, {"Tomcat", "MySQL"});
  std::printf("Expected shape: interference grows with load; Master >> Slave and\n"
              "MySQL >> Tomcat under stream-llc(big)/stream-dram(big); Tomcat more\n"
              "DVFS-sensitive than MySQL; CPU-stress mildest (cpuset isolation).\n");
  return 0;
}
