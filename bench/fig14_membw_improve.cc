// Figure 14: memory-bandwidth-utilization improvement of Rhythm over
// Heracles, per LC service, BE workload and load.

#include "bench/grid_figures.h"

using namespace rhythm_bench;

int main() {
  RunImprovementGrid("Figure 14: memory-bandwidth utilization improvement",
                     [](const RunSummary& summary) { return summary.membw_util; });
  std::printf("\nExpected shape: stream-dram and wordcount show the largest gains\n"
              "(paper averages 16.8-33.4%% per service, up to 120%% for\n"
              "Elasticsearch+stream-dram).\n");
  return 0;
}
