// Figure 12: EMU (effective machine utilization = LC throughput + BE
// throughput) improvement of Rhythm over Heracles, per LC service, BE
// workload and load.

#include "bench/grid_figures.h"

using namespace rhythm_bench;

int main() {
  RunImprovementGrid("Figure 12: EMU improvement",
                     [](const RunSummary& summary) { return summary.emu; });
  std::printf("\nExpected shape: positive everywhere and growing with load (paper\n"
              "averages: E-commerce 11.6%%, Redis 18.4%%, Solr 24.6%%, Elgg 14%%,\n"
              "Elasticsearch 12.7%%; up to 57%% for Solr with imageClassify).\n");
  return 0;
}
