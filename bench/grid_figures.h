// Shared grid driver for Figures 9-14.
//
// Figures 9-11 report one Servpod per LC service (Tomcat/E-commerce,
// Slave/Redis, Zookeeper/Solr, Memcached/Elgg, Kibana/Elasticsearch) across
// six BE workloads and five load points, for Rhythm vs Heracles:
//   fig 9: BE throughput, fig 10: CPU utilization, fig 11: MemBW utilization.
// Figures 12-14 report the whole-service relative improvement
// (Rhythm - Heracles) / Heracles of EMU / CPU / MemBW on the same grid.
//
// Each driver declares the whole grid as one RunPlan and fans it out through
// the ParallelRunner before printing — cells are independent trials, so the
// printed rows are identical at any RHYTHM_JOBS setting.

#ifndef RHYTHM_BENCH_GRID_FIGURES_H_
#define RHYTHM_BENCH_GRID_FIGURES_H_

#include <functional>

#include "bench/bench_util.h"

namespace rhythm_bench {

using PodMetric = std::function<double(const RunSummary&, int pod)>;
using AppMetric = std::function<double(const RunSummary&)>;

// Figures 9-11: per-Servpod metric, both controllers printed side by side.
inline void RunPodGrid(const char* title, const PodMetric& metric) {
  const std::vector<double> loads = GridLoads();

  RunPlan plan;
  for (const FigurePod& figure_pod : Figure9Pods()) {
    for (BeJobKind be : EvaluationBeJobKinds()) {
      for (ControllerKind controller : {ControllerKind::kRhythm, ControllerKind::kHeracles}) {
        for (double load : loads) {
          plan.Add(GridRequest(figure_pod.app, be, controller, load));
        }
      }
    }
  }
  const std::vector<RunSummary> summaries = RunMany(plan);

  size_t cell = 0;
  std::printf("=== %s ===\n", title);
  for (const FigurePod& figure_pod : Figure9Pods()) {
    const AppSpec app = MakeApp(figure_pod.app);
    const int pod = app.PodIndex(figure_pod.pod_name);
    std::printf("\n--- %s/%s ---\n", figure_pod.pod_name, app.name.c_str());
    PrintHeaderLoads(loads);
    for (BeJobKind be : EvaluationBeJobKinds()) {
      for (ControllerKind controller : {ControllerKind::kRhythm, ControllerKind::kHeracles}) {
        std::printf("%-12s %-9s", BeJobKindName(be), ControllerKindName(controller));
        for (size_t i = 0; i < loads.size(); ++i) {
          std::printf(" %8.3f", metric(summaries[cell++], pod));
        }
        std::printf("\n");
      }
    }
  }
}

// Figures 12-14: relative improvement per LC service.
inline void RunImprovementGrid(const char* title, const AppMetric& metric) {
  const std::vector<double> loads = GridLoads();
  const std::vector<LcAppKind> apps = {LcAppKind::kEcommerce, LcAppKind::kRedis,
                                       LcAppKind::kSolr, LcAppKind::kElgg,
                                       LcAppKind::kElasticsearch};

  RunPlan plan;
  for (LcAppKind app : apps) {
    for (BeJobKind be : EvaluationBeJobKinds()) {
      for (double load : loads) {
        plan.Add(GridRequest(app, be, ControllerKind::kRhythm, load));
        plan.Add(GridRequest(app, be, ControllerKind::kHeracles, load));
      }
    }
  }
  const std::vector<RunSummary> summaries = RunMany(plan);

  size_t cell = 0;
  std::printf("=== %s ===\n", title);
  for (LcAppKind app : apps) {
    std::printf("\n--- %s: (Rhythm - Heracles) / Heracles, %% ---\n", LcAppKindName(app));
    PrintHeaderLoads(loads);
    for (BeJobKind be : EvaluationBeJobKinds()) {
      std::printf("%-22s", BeJobKindName(be));
      for (size_t i = 0; i < loads.size(); ++i) {
        const RunSummary& rhythm = summaries[cell++];
        const RunSummary& heracles = summaries[cell++];
        std::printf(" %8.1f", 100.0 * RelativeImprovement(metric(rhythm), metric(heracles)));
      }
      std::printf("\n");
    }
  }
}

}  // namespace rhythm_bench

#endif  // RHYTHM_BENCH_GRID_FIGURES_H_
