// Failure-domain benchmark: the 1,000-machine synthetic cluster swept over
// machine-loss rates, every loss schedule run twice — supervisor off (losses
// just take their groups down) and supervisor on (barrier-driven failover,
// DESIGN.md §14) — so the JSON shows exactly what failover buys on the same
// disaster. Per loss point the bench records SLO damage (down_group_seconds:
// demanded measurement time that went unserved), cluster EMU, recovered BE
// throughput, and the failover accounting from ClusterSummary.
//
// Losses are deterministic, not drawn: N machines evenly spaced over the
// roster (machine i*machines/N) all fail permanently mid-measure of the
// first epoch, the same scenario place_eval --fail-machines replays. The
// sweep is therefore a pure function of the seed — reruns and shard counts
// change nothing but wall_s.
//
// --assert-improvement (the failover-smoke CI gate) fails the bench unless,
// at every nonzero loss point, the supervisor strictly reduces
// down_group_seconds and does not reduce cluster EMU.
//
// Usage: bench_failover [output.json] [--assert-improvement]
//        (default: BENCH_failover.json in cwd)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

using namespace rhythm_bench;

namespace {

// The evenly-spaced permanent-loss schedule shared with place_eval
// --fail-machines: victims hit distinct placement regions deterministically.
std::shared_ptr<const FaultSchedule> LossSchedule(int count, int machines,
                                                  double at_s) {
  FaultSchedule schedule;
  for (int i = 0; i < count; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kMachineFailure;
    event.pod = static_cast<int>(static_cast<int64_t>(i) * machines / count);
    event.start_s = at_s;
    schedule.Add(event);
  }
  return std::make_shared<FaultSchedule>(std::move(schedule));
}

struct SideResult {
  ClusterSummary summary;
  double wall_s = 0.0;
};

SideResult RunSide(ClusterRunRequest request, bool supervisor_on) {
  request.supervisor.enabled = supervisor_on;
  const auto t0 = std::chrono::steady_clock::now();
  SideResult result;
  result.summary = RunCluster(request);
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

void WriteSide(JsonWriter& json, const char* key, const SideResult& side) {
  const ClusterSummary& s = side.summary;
  json.BeginObject(key)
      .Field("emu", s.emu)
      .Field("slo_violation_rate", s.slo_violation_rate)
      .Field("be_throughput", s.be_throughput)
      .Field("lc_throughput", s.lc_throughput)
      .Field("down_group_seconds", s.down_group_seconds)
      .Field("machines_failed", s.machines_failed)
      .Field("machines_down_end", s.machines_down_end)
      .Field("groups_disrupted", s.groups_disrupted)
      .Field("groups_failed_over", s.groups_failed_over)
      .Field("groups_lost", s.groups_lost)
      .Field("pods_migrated", s.pods_migrated)
      .Field("worst_failover_latency_s", s.worst_failover_latency_s)
      .Field("degraded_barriers", s.degraded_barriers)
      .Field("wall_s", side.wall_s)
      .EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_failover.json";
  bool assert_improvement = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-improvement") == 0) {
      assert_improvement = true;
    } else {
      out_path = argv[i];
    }
  }

  const int machines = FastMode() ? 120 : 1000;
  const double warmup_s = FastMode() ? 2.0 : 10.0;
  const double measure_s = FastMode() ? 10.0 : 50.0;
  const int epochs = 2;
  // Mid-measure of the first epoch: victims are warm and serving, and the
  // second epoch then re-places the cluster around the dead machines.
  const double loss_at_s = warmup_s + 0.5 * measure_s;

  // Loss points as roster fractions; 0 is the control (both sides must agree
  // bit-for-bit when nothing fails).
  std::vector<int> loss_counts;
  for (double fraction : FastMode()
                             ? std::vector<double>{0.0, 0.02, 0.05}
                             : std::vector<double>{0.0, 0.01, 0.02, 0.05}) {
    loss_counts.push_back(static_cast<int>(fraction * machines + 0.5));
  }

  ClusterRunRequest base;
  base.spec = SyntheticClusterSpec(machines, 11);
  base.policy = kPolicyRhythmAware;
  base.seed = 11;
  base.warmup_s = warmup_s;
  base.measure_s = measure_s;
  base.epochs = epochs;

  JsonWriter json;
  json.Field("bench", "failover");
  json.Field("fast_mode", static_cast<uint64_t>(FastMode() ? 1 : 0));
  json.Field("host_cores",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.BeginObject("cluster")
      .Field("machines", base.spec.machines)
      .Field("groups", base.spec.TotalGroups())
      .Field("pods", base.spec.TotalPods())
      .Field("epochs", epochs)
      .Field("warmup_s", warmup_s)
      .Field("measure_s", measure_s)
      .Field("loss_at_s", loss_at_s)
      .Field("seed", static_cast<uint64_t>(11))
      .EndObject();

  std::printf("cluster: %d machines, %d groups, %d pods, loss at t=%g s\n",
              base.spec.machines, base.spec.TotalGroups(),
              base.spec.TotalPods(), loss_at_s);
  std::printf("%6s %12s %18s %18s %10s %10s\n", "lost", "supervisor",
              "down_group_s", "emu", "failov", "wall_s");

  int assertion_failures = 0;
  json.BeginObject("loss_sweep");
  for (const int lost : loss_counts) {
    ClusterRunRequest request = base;
    if (lost > 0) {
      request.faults = LossSchedule(lost, machines, loss_at_s);
    }
    const SideResult off = RunSide(request, false);
    const SideResult on = RunSide(request, true);

    std::printf("%6d %12s %18.2f %18.6f %10d %10.2f\n", lost, "off",
                off.summary.down_group_seconds, off.summary.emu,
                off.summary.groups_failed_over, off.wall_s);
    std::printf("%6d %12s %18.2f %18.6f %10d %10.2f\n", lost, "on",
                on.summary.down_group_seconds, on.summary.emu,
                on.summary.groups_failed_over, on.wall_s);

    json.BeginObject(std::to_string(lost));
    json.Field("machines_lost", lost);
    WriteSide(json, "supervisor_off", off);
    WriteSide(json, "supervisor_on", on);
    json.BeginObject("improvement")
        .Field("down_group_seconds_saved",
               off.summary.down_group_seconds - on.summary.down_group_seconds)
        .Field("emu_delta", on.summary.emu - off.summary.emu)
        .Field("be_throughput_delta",
               on.summary.be_throughput - off.summary.be_throughput)
        .EndObject();
    json.EndObject();

    if (lost == 0) {
      // Control point: with nothing scheduled the supervisor must be
      // invisible (same placements, same seeds, same summaries).
      if (off.summary.emu != on.summary.emu ||
          off.summary.down_group_seconds != on.summary.down_group_seconds) {
        std::fprintf(stderr,
                     "FAIL: supervisor changed a fault-free run "
                     "(emu %.17g vs %.17g)\n",
                     off.summary.emu, on.summary.emu);
        ++assertion_failures;
      }
      continue;
    }
    if (assert_improvement) {
      if (on.summary.groups_failed_over <= 0) {
        std::fprintf(stderr,
                     "FAIL: %d losses produced no failovers to measure\n",
                     lost);
        ++assertion_failures;
      }
      if (on.summary.down_group_seconds >= off.summary.down_group_seconds) {
        std::fprintf(stderr,
                     "FAIL: %d losses: supervisor did not reduce SLO damage "
                     "(down_group_seconds %.2f -> %.2f)\n",
                     lost, off.summary.down_group_seconds,
                     on.summary.down_group_seconds);
        ++assertion_failures;
      }
      if (on.summary.emu < off.summary.emu) {
        std::fprintf(stderr,
                     "FAIL: %d losses: supervisor reduced cluster EMU "
                     "(%.17g -> %.17g)\n",
                     lost, off.summary.emu, on.summary.emu);
        ++assertion_failures;
      }
    }
  }
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (assertion_failures > 0) {
    std::fprintf(stderr, "FAIL: %d failover assertions violated\n",
                 assertion_failures);
    return 1;
  }
  if (assert_improvement) {
    std::printf("failover improvement holds at every loss point\n");
  }
  return 0;
}
